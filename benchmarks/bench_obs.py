"""Observability overhead benchmark — the no-op tracer must be ~free.

The tracing layer (:mod:`repro.obs`) keeps its instrumentation *enabled*
at every call site and relies on the ambient :data:`NULL_TRACER` being
allocation-free on the hot path.  This benchmark guards that contract on
the hardest workload the repo ships — the fully simulated exact-quantile
driver — three ways:

* ``noop``: end-to-end wall of the simulated exact path with the default
  null tracer (min over repeats);
* ``traced``: the same seeded run under a real :class:`Tracer` — asserts
  the returned quantile and round count are identical (tracing reads
  state, never the RNG) and reports the real-tracer slowdown;
* ``overhead``: a microbenchmark of the null span enter/exit (the exact
  instrumented call-site pattern) times the traced run's span/event count
  to project ``slowdown_noop`` — the null-tracer overhead the instrumented
  sites add to an untraced run.  Asserted ``< 1.03`` (the PR's acceptance
  bound).

Emits ``BENCH_obs.json``; ``bench_trend.py`` gates ``rounds`` and the
``slowdown*`` columns against HEAD~1.  Usable standalone::

    PYTHONPATH=src python benchmarks/bench_obs.py --sizes 100000

``--smoke`` runs n = 10⁴ with the same assertions; CI runs it on every
push.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:  # pragma: no cover - environment dependent
    sys.path.insert(0, str(SRC))

from repro.core.exact_quantile import exact_quantile
from repro.obs.tracer import NULL_TRACER, Tracer, get_tracer, use_tracer
from repro.utils.rand import RandomSource

DEFAULT_JSON = Path(__file__).resolve().parent / "BENCH_obs.json"
DEFAULT_SIZES = (100_000,)
PHI = 0.5
#: The acceptance bound: instrumentation with the null tracer must cost
#: less than 3% of the n = 10⁵ simulated exact path.
MAX_NOOP_SLOWDOWN = 1.03


def _values(n: int, seed: int):
    return RandomSource(seed).random(n) * 100.0


def _run_exact(values, seed: int):
    start = time.perf_counter()
    result = exact_quantile(values, phi=PHI, rng=seed, fidelity="simulated")
    return result, time.perf_counter() - start


def _null_span_ns(iters: int = 200_000) -> float:
    """ns per instrumented call site when the null tracer is ambient.

    Times the exact pattern the hot paths use — ambient-tracer lookup,
    ``span()`` (returns the shared singleton) and context enter/exit.
    """
    assert get_tracer() is NULL_TRACER
    start = time.perf_counter()
    for _ in range(iters):
        with get_tracer().span("bench", None):
            pass
    return (time.perf_counter() - start) / iters * 1e9


def run_benchmark(sizes, seed: int = 7, repeats: int = 3):
    """Three rows per n: noop wall, traced wall + purity, projected overhead."""
    rows = []
    for n in sizes:
        values = _values(n, seed)

        noop_wall = float("inf")
        noop_result = None
        for _ in range(repeats):
            result, wall = _run_exact(values, seed + 1)
            noop_wall = min(noop_wall, wall)
            noop_result = result
        rows.append({
            "mode": "noop",
            "n": n,
            "rounds": noop_result.rounds,
            "wall_s": noop_wall,
        })

        traced_wall = float("inf")
        traced_result = None
        tracer = None
        for _ in range(repeats):
            tracer = Tracer()
            with use_tracer(tracer):
                result, wall = _run_exact(values, seed + 1)
            traced_wall = min(traced_wall, wall)
            traced_result = result
        # Tracing only *reads* state: the same seed must give the same
        # quantile through the same number of rounds.
        assert traced_result.value == noop_result.value, (
            traced_result.value, noop_result.value)
        assert traced_result.rounds == noop_result.rounds, (
            traced_result.rounds, noop_result.rounds)
        totals = tracer.totals()
        assert totals["rounds"] == traced_result.rounds, (
            totals, traced_result.rounds)
        spans_per_run = totals["spans"] + totals["events"]
        rows.append({
            "mode": "traced",
            "n": n,
            "rounds": traced_result.rounds,
            "wall_s": traced_wall,
            "slowdown_traced": traced_wall / noop_wall,
            "spans": totals["spans"],
            "events": totals["events"],
            "hook_rounds": totals["hook_rounds"],
        })

        null_span_ns = _null_span_ns()
        projected = spans_per_run * null_span_ns * 1e-9 / noop_wall
        rows.append({
            "mode": "overhead",
            "n": n,
            "null_span_ns": null_span_ns,
            "projected_overhead_frac": projected,
            "slowdown_noop": 1.0 + projected,
        })
    return rows


def check_rows(rows) -> None:
    """The acceptance bound and the hook sanity checks."""
    for row in rows:
        if row["mode"] == "overhead":
            assert row["slowdown_noop"] < MAX_NOOP_SLOWDOWN, row
        if row["mode"] == "traced":
            # simulated fidelity drives engine substrates: the per-round
            # hook must have observed their rounds
            assert row["hook_rounds"] > 0, row
            assert row["spans"] > 0 and row["events"] > 0, row


def write_json(rows, path: Path, smoke: bool) -> None:
    payload = {
        "benchmark": "obs_overhead",
        "unit": "seconds",
        "smoke": smoke,
        "rows": rows,
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {path}")


def _print_rows(rows) -> None:
    for row in rows:
        if row["mode"] == "overhead":
            print(
                f"n={row['n']:>7} overhead: {row['null_span_ns']:.0f}ns/site, "
                f"projected noop slowdown {row['slowdown_noop']:.6f}x"
            )
        else:
            extra = (
                f" ({row['slowdown_traced']:.3f}x, {row['spans']} spans, "
                f"{row['events']} events, {row['hook_rounds']} hooked rounds)"
                if row["mode"] == "traced" else ""
            )
            print(
                f"n={row['n']:>7} {row['mode']:<7} {row['rounds']:>6} rounds "
                f"in {row['wall_s']:.3f}s{extra}"
            )


def smoke(json_path: Path, seed: int = 7) -> int:
    rows = run_benchmark(sizes=(10_000,), seed=seed, repeats=2)
    check_rows(rows)
    write_json(rows, json_path, smoke=True)
    _print_rows(rows)
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sizes", type=int, nargs="+", default=list(DEFAULT_SIZES))
    parser.add_argument(
        "--json", type=Path, default=None,
        help=f"output path (default: {DEFAULT_JSON.name}, or a .smoke.json "
             "sibling under --smoke so the checked-in trajectory survives)",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--smoke", action="store_true",
        help="reduced CI run (n = 10^4) with the same assertions",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        json_path = args.json or DEFAULT_JSON.with_suffix(".smoke.json")
        return smoke(json_path, seed=args.seed)
    if args.json is None:
        args.json = DEFAULT_JSON

    rows = run_benchmark(args.sizes, seed=args.seed, repeats=args.repeats)
    check_rows(rows)
    write_json(rows, args.json, smoke=False)
    _print_rows(rows)
    return 0


if __name__ == "__main__":
    sys.exit(main())
