"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the experiment tables from DESIGN.md /
EXPERIMENTS.md (with reduced parameters so the whole suite stays fast) and
attaches the headline shape numbers to ``benchmark.extra_info`` so they are
recorded in pytest-benchmark's output alongside the timings.
"""

from __future__ import annotations

import sys
from pathlib import Path

# Allow running the benchmarks without installing the package first.
SRC = Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:  # pragma: no cover - environment dependent
    sys.path.insert(0, str(SRC))


def record_rows(benchmark, rows, keys):
    """Attach selected columns of the experiment rows to the benchmark report."""
    for index, row in enumerate(rows):
        for key in keys:
            if key in row:
                benchmark.extra_info[f"row{index}_{key}"] = row[key]
