"""Benchmark: fault injection and graceful degradation end to end.

Times the robustness stack on four scenarios per size: a fault-free
:class:`~repro.core.service.QuantileService` build (the baseline), the
same build through a seeded ``drop+crash`` :class:`~repro.faults
.FaultInjector`, degraded serving after churn plus a distribution shift,
and the epoch rebuild — incremental (stale lanes only) vs full — run
under injected faults.  A Theorem-1.4 robust tournament with an injector
layered on top of the Section-5 failure model rounds out the table.
Usable standalone::

    PYTHONPATH=src python benchmarks/bench_robustness.py --sizes 2048

Emits a machine-readable trajectory (``--json
benchmarks/BENCH_robustness.json`` by default) that ``bench_trend.py``
diffs across PRs.  ``--smoke`` runs a reduced grid with hard end-to-end
assertions (every query answered under chaos, incremental rebuild
strictly cheaper than full, seeded chaos replay bit-for-bit); CI runs it
on every push.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:  # pragma: no cover - environment dependent
    sys.path.insert(0, str(SRC))

import numpy as np

from repro.core.robust import robust_approximate_quantile
from repro.core.service import QuantileService
from repro.experiments.chaos import build_injector
from repro.topology import ChurnProcess
from repro.utils.rand import RandomSource

PROBE_PHIS = (0.1, 0.25, 0.5, 0.75, 0.9)


def _fresh_service(n, seed, eps, max_lanes, faults=None, churn=False):
    values = RandomSource(seed).random(n) * 100.0
    churn_process = (
        ChurnProcess(n, churn_rate=0.03, rng=seed) if churn else None
    )
    start = time.perf_counter()
    service = QuantileService(
        values, eps=eps, rng=seed, max_lanes=max_lanes,
        faults=faults, churn_process=churn_process,
    )
    return service, values, time.perf_counter() - start


def _shift_band(service, values, rng, lo=0.4, hi=0.55):
    """Move the values in one quantile band to the top of the range.

    Only lanes at or above the band see their ranks move, so some lanes
    stay fresh — which is exactly what makes the incremental rebuild
    strictly cheaper than the full one.
    """
    active = (
        service.churn_process.active
        if service.churn_process is not None
        else np.ones(values.size, dtype=bool)
    )
    low, high = np.quantile(values[active], [lo, hi])
    band = np.flatnonzero(active & (values >= low) & (values < high))
    top = float(values[active].max())
    for index in band:
        new_value = top + 1.0 + float(rng.random())
        values[index] = new_value
        service.update_value(int(index), new_value)
    return band.size


def _scenario_rows(n, seed, eps=0.1, max_lanes=4, intensity=0.1):
    rows = []

    service, values, clean_wall = _fresh_service(n, seed, eps, max_lanes)
    clean_rounds = service.rounds
    rows.append({
        "n": n, "scenario": "build-clean",
        "rounds": clean_rounds, "wall_s": clean_wall,
        "rounds_per_sec": clean_rounds / clean_wall,
    })

    faulted, _, faulted_wall = _fresh_service(
        n, seed, eps, max_lanes,
        faults=build_injector(("drop", "crash"), intensity, seed),
    )
    rows.append({
        "n": n, "scenario": "build-faulted",
        "rounds": faulted.rounds, "wall_s": faulted_wall,
        "rounds_per_sec": faulted.rounds / faulted_wall,
        "injected_faults": float(sum(faulted.faults.counters.values())),
    })

    # Degraded serving: churn + a band shift, then answer probe queries.
    service, values, _ = _fresh_service(
        n, seed, eps, max_lanes, churn=True
    )
    service.advance_churn(25)
    _shift_band(service, values, RandomSource(seed + 1))
    start = time.perf_counter()
    answers = [service.quantile(phi) for phi in PROBE_PHIS]
    serve_wall = time.perf_counter() - start
    rows.append({
        "n": n, "scenario": "degraded-serving",
        "wall_s": serve_wall,
        "queries_per_sec": len(answers) / max(serve_wall, 1e-12),
        "degraded_rate": float(np.mean([a.degraded for a in answers])),
    })

    # Epoch rebuild under faults: incremental (stale lanes only) vs full.
    service.attach_faults(
        build_injector(("drop", "crash"), intensity, seed + 2)
    )
    start = time.perf_counter()
    report = service.rebuild(incremental=True)
    incr_wall = time.perf_counter() - start
    rows.append({
        "n": n, "scenario": "rebuild-incremental",
        "rounds": report.rounds, "wall_s": incr_wall,
        "rounds_per_sec": report.rounds / max(incr_wall, 1e-12),
        "chunks_ratio": (
            report.chunks_run / report.full_chunks
            if report.full_chunks else 0.0
        ),
        "rebuild_attempts": float(report.attempts),
    })

    full_service, full_values, _ = _fresh_service(
        n, seed, eps, max_lanes, churn=True
    )
    full_service.advance_churn(25)
    _shift_band(full_service, full_values, RandomSource(seed + 1))
    full_service.attach_faults(
        build_injector(("drop", "crash"), intensity, seed + 2)
    )
    start = time.perf_counter()
    full_report = full_service.rebuild(incremental=False)
    full_wall = time.perf_counter() - start
    rows.append({
        "n": n, "scenario": "rebuild-full",
        "rounds": full_report.rounds, "wall_s": full_wall,
        "rounds_per_sec": full_report.rounds / max(full_wall, 1e-12),
        "chunks_ratio": 1.0,
        "rebuild_attempts": float(full_report.attempts),
    })

    # Theorem 1.4 with an injector on top of the Section-5 failure model.
    values = RandomSource(seed).random(n) * 100.0
    start = time.perf_counter()
    robust = robust_approximate_quantile(
        values, phi=0.5, eps=eps, failure_model=0.2, rng=seed,
        faults=build_injector(("drop", "crash"), intensity, seed + 3),
    )
    robust_wall = time.perf_counter() - start
    rows.append({
        "n": n, "scenario": "robust-tournament",
        "rounds": robust.rounds, "wall_s": robust_wall,
        "rounds_per_sec": robust.rounds / max(robust_wall, 1e-12),
        "answered_fraction": robust.answered_fraction,
    })
    return rows, report, full_report


def run_benchmark(sizes, seed: int = 0):
    rows = []
    for n in sizes:
        scenario_rows, _, _ = _scenario_rows(n, seed)
        rows.extend(scenario_rows)
    return rows


def smoke(seed: int = 0):
    """Reduced CI grid with hard assertions on the robustness contracts."""
    n = 512
    rows, report, full_report = _scenario_rows(n, seed, intensity=0.15)

    # Incremental epoch rebuilds must re-run strictly fewer chunks per
    # attempt than the full grid (chunks_run accumulates across retries,
    # so normalize by attempts before comparing).
    assert report.chunks_run / report.attempts < full_report.full_chunks, (
        report.chunks_run, report.attempts, full_report.full_chunks,
    )
    assert (
        full_report.chunks_run
        == full_report.full_chunks * full_report.attempts
    )

    # The service must answer every query under churn + faults — degraded
    # or refined, never an exception, never a silent NaN from the grid.
    service, values, _ = _fresh_service(
        n, seed, eps=0.1, max_lanes=4,
        faults=build_injector(
            ("drop", "duplicate", "delay", "crash", "corrupt"), 0.2, seed
        ),
        churn=True,
    )
    service.advance_churn(30)
    _shift_band(service, values, RandomSource(seed + 1))
    for phi in np.linspace(0.02, 0.98, 25):
        answer = service.quantile(float(phi))
        assert answer.accuracy >= service._query_accuracy - 1e-12
        assert np.isfinite(answer.value), phi
    print(f"smoke: {service.summary()['answers_degraded']} of 25 answers "
          "degraded, all finite")

    # Seeded chaos must replay bit-for-bit: same seeds, fresh construction.
    first, _, _ = _fresh_service(
        n, seed, eps=0.1, max_lanes=4,
        faults=build_injector(("drop", "corrupt"), 0.2, seed + 7),
    )
    second, _, _ = _fresh_service(
        n, seed, eps=0.1, max_lanes=4,
        faults=build_injector(("drop", "corrupt"), 0.2, seed + 7),
    )
    assert np.array_equal(first.grid_answers, second.grid_answers)
    assert first.faults.counters == second.faults.counters
    print("smoke: seeded chaos replay bit-for-bit OK")

    for row in rows:
        print(f"smoke: {row['scenario']:20s} "
              f"{row.get('rounds_per_sec', 0.0):10.1f} rounds/s")
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sizes", type=int, nargs="+", default=[2048])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--json", type=Path, default=None,
        help="write the row trajectory to this JSON file "
             "(default benchmarks/BENCH_robustness.json for full runs)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="reduced CI grid with correctness assertions",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        rows = smoke(seed=args.seed)
    else:
        rows = run_benchmark(args.sizes, seed=args.seed)
        header = f"{'n':>7}  {'scenario':<20}  {'rounds/s':>12}  {'wall':>9}"
        print(header)
        print("-" * len(header))
        for row in rows:
            print(
                f"{row['n']:>7}  {row['scenario']:<20}  "
                f"{row.get('rounds_per_sec', 0.0):>12.1f}  "
                f"{row['wall_s']:>8.3f}s"
            )

    json_path = args.json
    if json_path is None and not args.smoke:
        json_path = Path(__file__).resolve().parent / "BENCH_robustness.json"
    if json_path is not None:
        payload = {
            "benchmark": "robustness",
            "unit": "seconds",
            "smoke": bool(args.smoke),
            "rows": rows,
        }
        json_path.write_text(json.dumps(payload, indent=1) + "\n")
        print(f"wrote {json_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
