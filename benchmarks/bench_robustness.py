"""E4 benchmark — Theorem 1.4: robustness to per-round node failures."""

from conftest import record_rows

from repro.experiments import robustness


def test_robustness_table(benchmark):
    rows = benchmark.pedantic(
        lambda: robustness.run(sizes=(1024,), mus=(0.0, 0.2, 0.5), eps=0.1, trials=2, seed=4),
        rounds=1,
        iterations=1,
    )
    record_rows(
        benchmark,
        rows,
        ("mu", "rounds", "slowdown", "good_fraction", "answered_fraction", "mean_error"),
    )
    clean = rows[0]
    heavy = rows[-1]
    # failures inflate the round count only by a constant factor
    assert heavy["rounds"] <= 12 * clean["rounds"]
    # and nearly every node still learns an eps-approximate answer
    assert all(row["answered_fraction"] > 0.9 for row in rows)
    assert all(row["mean_error"] <= 0.1 + 1e-9 for row in rows)
