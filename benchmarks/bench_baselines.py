"""E7 benchmark — head-to-head comparison of all approximate algorithms."""

from conftest import record_rows

from repro.experiments import baselines_compare


def test_baselines_table(benchmark):
    rows = benchmark.pedantic(
        lambda: baselines_compare.run(n=2048, eps=0.1, phi=0.75, trials=2, seed=7),
        rounds=1,
        iterations=1,
    )
    record_rows(
        benchmark,
        rows,
        ("algorithm", "rounds", "max_message_bits", "mean_error", "success_fraction"),
    )
    by_name = {row["algorithm"]: row for row in rows}
    tournament = by_name["tournament"]
    # the tournament needs far fewer rounds than sampling at the same eps...
    assert by_name["sampling"]["rounds"] > 5 * tournament["rounds"]
    # ...and far smaller messages than doubling at a comparable round count
    assert by_name["doubling"]["max_message_bits"] > 20 * tournament["max_message_bits"]
    assert by_name["compacted-doubling"]["max_message_bits"] < by_name["doubling"]["max_message_bits"]
    assert all(row["mean_error"] <= 0.12 for row in rows)
