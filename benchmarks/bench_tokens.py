"""E9 benchmark — Algorithm 3 Step 7: token split-and-distribute engines.

Times :func:`repro.core.tokens.distribute_tokens` on the loop reference and
the vectorized engine over the same workloads and emits a machine-readable
``BENCH_tokens.json`` (n, engine, wall time, phases/sec, speedup) so the
repo carries a perf trajectory across PRs.  Usable standalone::

    PYTHONPATH=src python benchmarks/bench_tokens.py --sizes 10000 100000

``--smoke`` runs a reduced grid with hard invariant assertions on both
engines (exact multiplicities, ≤ 1 token per node, failure-model merges);
CI runs it on every push so neither engine can silently break.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:  # pragma: no cover - environment dependent
    sys.path.insert(0, str(SRC))

import numpy as np

from repro.core.tokens import distribute_tokens
from repro.utils.rand import RandomSource

DEFAULT_JSON = Path(__file__).resolve().parent / "BENCH_tokens.json"
ENGINES = ("loop", "vectorized")


def _workload(n: int, multiplicity: int, token_load: float, seed: int):
    """Item placement filling ``token_load * n`` unit tokens."""
    items = max(1, int(n * token_load) // multiplicity)
    rng = RandomSource(seed)
    item_nodes = rng.choice(np.arange(n), size=items, replace=False)
    return item_nodes, rng


def _check_invariants(result, items: int, multiplicity: int) -> None:
    owned = result.owners[result.owners >= 0]
    assert owned.size == items * multiplicity, (owned.size, items, multiplicity)
    counts = np.bincount(owned, minlength=items)
    assert np.all(counts == multiplicity), counts


def run_benchmark(
    sizes,
    multiplicity: int = 64,
    token_load: float = 0.5,
    repeats: int = 3,
    mu: float = 0.0,
    seed: int = 0,
):
    """One row per (n, engine); vectorized rows carry the speedup column."""
    rows = []
    for n in sizes:
        item_nodes, rng = _workload(n, multiplicity, token_load, seed)
        wall = {}
        for engine in ENGINES:
            best = float("inf")
            phases = rounds = 0
            # both engines get best-of-`repeats`, so the speedup column
            # compares equal treatment
            for _ in range(repeats):
                start = time.perf_counter()
                result = distribute_tokens(
                    item_nodes,
                    multiplicity=multiplicity,
                    n=n,
                    rng=rng.child(),
                    failure_model=mu if mu > 0 else None,
                    engine=engine,
                )
                elapsed = time.perf_counter() - start
                _check_invariants(result, item_nodes.size, multiplicity)
                if elapsed < best:
                    # keep phases/rounds from the same run that set the time,
                    # so phases_per_sec pairs consistent quantities
                    best = elapsed
                    phases, rounds = result.phases, result.rounds
            wall[engine] = best
            rows.append(
                {
                    "n": n,
                    "engine": engine,
                    "items": int(item_nodes.size),
                    "multiplicity": multiplicity,
                    "tokens": int(item_nodes.size) * multiplicity,
                    "mu": mu,
                    "wall_s": best,
                    "phases": phases,
                    "rounds": rounds,
                    "phases_per_sec": phases / best if best > 0 else float("inf"),
                    "speedup_vs_loop": (
                        wall["loop"] / best if engine == "vectorized" else 1.0
                    ),
                }
            )
    return rows


def write_json(rows, path: Path, smoke: bool) -> None:
    payload = {
        "benchmark": "tokens",
        "unit": "seconds",
        "smoke": smoke,
        "rows": rows,
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {path}")


def smoke(json_path: Path, seed: int = 0) -> int:
    """Reduced CI grid: both engines, invariants on, failures exercised."""
    rows = run_benchmark(
        sizes=(4096,), multiplicity=16, token_load=0.25, repeats=1, seed=seed
    )
    rows += run_benchmark(
        sizes=(2048,), multiplicity=8, token_load=0.2, repeats=1, mu=0.3, seed=seed
    )
    faulty = [r for r in rows if r["mu"] > 0]
    assert faulty, "smoke grid must exercise the failure model"
    for row in rows:
        assert row["phases"] <= 4 * np.log2(row["n"]), row
    write_json(rows, json_path, smoke=True)
    for row in rows:
        print(
            f"smoke: n={row['n']:>6} mu={row['mu']:.1f} {row['engine']:<10} "
            f"{row['wall_s'] * 1e3:8.1f} ms  {row['phases']:>3} phases"
        )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sizes", type=int, nargs="+", default=[10_000, 100_000])
    parser.add_argument("--multiplicity", type=int, default=64)
    parser.add_argument(
        "--token-load", type=float, default=0.5,
        help="fraction of nodes covered by unit tokens (paper regime: < 1)",
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--mu", type=float, default=0.0)
    parser.add_argument(
        "--json", type=Path, default=None,
        help=f"output path (default: {DEFAULT_JSON.name}, or a .smoke.json "
             "sibling under --smoke so the checked-in trajectory survives)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--smoke", action="store_true",
        help="reduced CI grid with invariant assertions on both engines",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        json_path = args.json or DEFAULT_JSON.with_suffix(".smoke.json")
        return smoke(json_path, seed=args.seed)
    if args.json is None:
        args.json = DEFAULT_JSON

    rows = run_benchmark(
        args.sizes,
        multiplicity=args.multiplicity,
        token_load=args.token_load,
        repeats=args.repeats,
        mu=args.mu,
        seed=args.seed,
    )
    write_json(rows, args.json, smoke=False)
    header = f"{'n':>9}  {'engine':<10}  {'wall':>10}  {'phases':>6}  {'speedup':>8}"
    print(header)
    print("-" * len(header))
    for row in rows:
        print(
            f"{row['n']:>9}  {row['engine']:<10}  {row['wall_s']:>9.4f}s  "
            f"{row['phases']:>6}  {row['speedup_vs_loop']:>7.1f}x"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
