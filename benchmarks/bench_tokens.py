"""E9 benchmark — Algorithm 3 Step 7: token split-and-distribute."""

from conftest import record_rows

from repro.experiments import token_distribution


def test_token_distribution_table(benchmark):
    rows = benchmark.pedantic(
        lambda: token_distribution.run(
            sizes=(512, 2048, 4096), mus=(0.0, 0.3), trials=2, seed=9
        ),
        rounds=1,
        iterations=1,
    )
    record_rows(
        benchmark,
        rows,
        ("n", "mu", "phases", "rounds", "max_tokens_per_node", "failed_pushes"),
    )
    # phases stay O(log n) and the per-node token load stays O(1)
    assert all(row["phases"] <= 4 * __import__("math").log2(row["n"]) for row in rows)
    assert all(row["max_tokens_per_node"] <= 16 for row in rows)
    # failures cost extra pushes but the process still completes
    faulty = [row for row in rows if row["mu"] > 0]
    assert all(row["failed_pushes"] > 0 for row in faulty)
