"""Trend check: diff checked-in ``BENCH_*.json`` trajectories across PRs.

Every perf-bearing PR checks in machine-readable benchmark trajectories
(``benchmarks/BENCH_*.json``).  This script compares the current files
against a baseline — by default the previous git commit
(``git show HEAD~1:benchmarks/BENCH_x.json``), or any directory via
``--baseline`` — and exits non-zero when a matching row regressed by more
than ``--threshold`` (default 1.5×).

Rows are matched on their identity keys (everything that is not a metric:
``n``, ``engine``, ``scenario``, ...).  Metrics come in two flavours:

* lower-is-better — ``wall_s``, ``rounds``, ``phases``: regression when
  ``current > threshold * baseline``;
* higher-is-better — ``*_per_sec``, ``speedup*``: regression when
  ``current < baseline / threshold``.

Checked-in trajectories are regenerated on the maintainer's machine each
perf-bearing PR, so counts, ratios (``speedup_vs_loop``) and throughput
rates (``*_per_sec``) are comparable across commits and gate the exit
code by default.  Raw ``wall_s`` seconds duplicate the rate information
and are the noisiest metric, so they gate only with ``--include-wall``.
Files or rows without a baseline counterpart are reported and skipped —
a new benchmark cannot fail the check.

Usage::

    PYTHONPATH=src python benchmarks/bench_trend.py               # vs HEAD~1
    python benchmarks/bench_trend.py --baseline /tmp/old-bench --include-wall
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent

#: Metric key patterns, by direction.
LOWER_IS_BETTER = ("wall_s", "rounds", "phases")
LOWER_IS_BETTER_PREFIXES = ("slowdown",)
HIGHER_IS_BETTER_SUFFIXES = ("_per_sec",)
HIGHER_IS_BETTER_PREFIXES = ("speedup",)
#: Wall-clock metrics are machine-dependent; gated only with --include-wall.
WALL_CLOCK = ("wall_s",)
#: Numeric keys that are neither identity nor gated metrics.
#: ``rounds_per_logn`` duplicates the gated ``rounds`` metric and would
#: otherwise act as an identity key, breaking row matching whenever the
#: round count legitimately moves.
IGNORED = (
    "mass_rel_error",
    "rank_error",
    "max_rank_error",
    "f32_parity",
    "rounds_per_logn",
    # self-rank accuracy columns: seeded error statistics, not perf metrics
    # — and not identity keys, or row matching would break on jitter.
    "mean_error",
    "p95_error",
    "fraction_within_2eps",
    # bench_obs diagnostics: machine-dependent instrumentation counts and
    # timings.  The gated overhead metrics are the slowdown* columns.
    "spans",
    "events",
    "hook_rounds",
    "null_span_ns",
    "projected_overhead_frac",
    # bench_robustness diagnostics: seeded fault/degradation statistics,
    # not perf metrics — and queries_per_sec times a handful of
    # microsecond-scale lookups, far too noisy to gate.
    "degraded_rate",
    "chunks_ratio",
    "rebuild_attempts",
    "injected_faults",
    "answered_fraction",
    "queries_per_sec",
)


def _metric_direction(key: str) -> Optional[str]:
    """"lower"/"higher" for gated metrics, None for identity/ignored keys."""
    if key in IGNORED:
        return None
    if key in LOWER_IS_BETTER or key.startswith(LOWER_IS_BETTER_PREFIXES):
        return "lower"
    if key.endswith(HIGHER_IS_BETTER_SUFFIXES) or key.startswith(
        HIGHER_IS_BETTER_PREFIXES
    ):
        return "higher"
    return None


def _identity(row: Dict) -> Tuple:
    """Hashable identity of a row: every non-metric, non-ignored field."""
    return tuple(
        sorted(
            (key, value)
            for key, value in row.items()
            if _metric_direction(key) is None and key not in IGNORED
        )
    )


def _load_current(directory: Path) -> Dict[str, Dict]:
    return {
        path.name: json.loads(path.read_text())
        for path in sorted(directory.glob("BENCH_*.json"))
    }


def _load_git_baseline(ref: str, names) -> Tuple[Dict[str, Dict], List[str]]:
    """Fetch each benchmark file as it existed at ``ref``; skip absentees."""
    baseline: Dict[str, Dict] = {}
    notes: List[str] = []
    for name in names:
        proc = subprocess.run(
            ["git", "show", f"{ref}:benchmarks/{name}"],
            cwd=REPO_ROOT, capture_output=True, text=True,
        )
        if proc.returncode != 0:
            notes.append(f"{name}: not present at {ref} (new benchmark)")
            continue
        baseline[name] = json.loads(proc.stdout)
    return baseline, notes


def compare(
    baseline: Dict[str, Dict],
    current: Dict[str, Dict],
    threshold: float,
    include_wall: bool,
) -> Tuple[List[str], List[str]]:
    """Return (regressions, notes) comparing matching rows of each file."""
    regressions: List[str] = []
    notes: List[str] = []
    for name, cur in sorted(current.items()):
        base = baseline.get(name)
        if base is None:
            continue
        base_rows = {_identity(row): row for row in base.get("rows", [])}
        matched = 0
        for row in cur.get("rows", []):
            ref = base_rows.get(_identity(row))
            if ref is None:
                continue
            matched += 1
            for key, value in row.items():
                direction = _metric_direction(key)
                if direction is None or key not in ref:
                    continue
                if key in WALL_CLOCK and not include_wall:
                    continue
                old = float(ref[key])
                new = float(value)
                if old <= 0 or new <= 0:
                    continue
                ratio = new / old if direction == "lower" else old / new
                if ratio > threshold:
                    ident = {
                        k: v for k, v in row.items()
                        if _metric_direction(k) is None and k not in IGNORED
                        and not isinstance(v, (list, dict))
                    }
                    regressions.append(
                        f"{name} {ident}: {key} {old:.6g} -> {new:.6g} "
                        f"({ratio:.2f}x worse, threshold {threshold}x)"
                    )
        notes.append(f"{name}: compared {matched} matching row(s)")
    return regressions, notes


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--baseline", type=Path, default=None,
        help="directory holding baseline BENCH_*.json files "
             "(default: read them from git at --baseline-git)",
    )
    parser.add_argument(
        "--baseline-git", default="HEAD~1",
        help="git ref to read baselines from when --baseline is not given",
    )
    parser.add_argument(
        "--current", type=Path, default=BENCH_DIR,
        help="directory holding the current BENCH_*.json files",
    )
    parser.add_argument("--threshold", type=float, default=1.5)
    parser.add_argument(
        "--include-wall", action="store_true",
        help="also gate on machine-dependent wall-clock metrics",
    )
    args = parser.parse_args(argv)

    current = _load_current(args.current)
    if not current:
        print(f"bench-trend: no BENCH_*.json files under {args.current}; nothing to check")
        return 0

    if args.baseline is not None:
        baseline = _load_current(args.baseline)
        notes: List[str] = []
    else:
        baseline, notes = _load_git_baseline(args.baseline_git, current.keys())
        if not baseline and not notes:
            print(
                f"bench-trend: could not read any baseline at "
                f"{args.baseline_git}; skipping (shallow clone?)"
            )
            return 0

    regressions, compare_notes = compare(
        baseline, current, args.threshold, args.include_wall
    )
    for note in notes + compare_notes:
        print(f"bench-trend: {note}")
    if regressions:
        print(f"bench-trend: {len(regressions)} regression(s) > {args.threshold}x:")
        for line in regressions:
            print(f"  REGRESSION {line}")
        return 1
    print("bench-trend: no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
