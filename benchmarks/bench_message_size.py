"""E8 benchmark — Appendix A: per-message bit budgets across algorithms."""

from conftest import record_rows

from repro.experiments import message_size


def test_message_size_table(benchmark):
    rows = benchmark.pedantic(
        lambda: message_size.run(sizes=(512, 2048), eps_values=(0.1, 0.05), seed=8),
        rounds=1,
        iterations=1,
    )
    record_rows(
        benchmark,
        rows,
        ("n", "eps", "tournament_bits", "doubling_bits", "compacted_bits"),
    )
    for row in rows:
        assert row["tournament_bits"] < row["compacted_bits"] < row["doubling_bits"]
    # doubling's message size grows quadratically in 1/eps, the tournament's is flat
    small_eps = [row for row in rows if row["eps"] == 0.05]
    large_eps = [row for row in rows if row["eps"] == 0.1]
    for fine, coarse in zip(small_eps, large_eps):
        assert fine["doubling_bits"] >= 3 * coarse["doubling_bits"]
        assert fine["tournament_bits"] == coarse["tournament_bits"]
