"""Benchmark: live asyncio backend throughput and RPC latency.

Measures rounds/second and RPC round-trip latency quantiles of the same
push-sum workload on both transports of :mod:`repro.net` — the in-process
channel transport and real loopback TCP streams — and reports the
deployment tax relative to the simulated loop engine.  Usable standalone::

    PYTHONPATH=src python benchmarks/bench_net.py --sizes 32 128

Emits a machine-readable trajectory (``--json benchmarks/BENCH_net.json``
by default) that ``bench_trend.py`` diffs across PRs.  ``--smoke`` runs a
reduced grid with hard end-to-end assertions (simulated ≡ deployed
round/message parity on both transports); CI runs it on every push.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:  # pragma: no cover - environment dependent
    sys.path.insert(0, str(SRC))

import numpy as np

from repro.aggregates.push_sum import PushSumProtocol
from repro.gossip.engine import run_protocol_loop
from repro.gossip.metrics import NetworkMetrics
from repro.net import run_protocol_asyncio
from repro.net.transport import ChannelTransport, TcpTransport
from repro.utils.rand import RandomSource


def _run_deployed(transport_name: str, n: int, rounds: int, seed: int):
    values = RandomSource(seed).random(n) * 100.0
    protocol = PushSumProtocol(values, rounds=rounds)
    transport = (
        TcpTransport(n) if transport_name == "tcp" else ChannelTransport(n)
    )
    metrics = NetworkMetrics()
    start = time.perf_counter()
    result = run_protocol_asyncio(
        protocol,
        rng=seed,
        metrics=metrics,
        transport=transport,
        max_rounds=rounds + 1,
    )
    elapsed = time.perf_counter() - start
    latencies = np.asarray(transport.latencies_s, dtype=float)
    return {
        "result": result,
        "metrics": metrics,
        "elapsed": elapsed,
        "latencies": latencies,
        "true_mass": float(values.sum()),
        "protocol": protocol,
    }


def _row(transport_name: str, n: int, rounds: int, seed: int, sim_rps: float):
    run = _run_deployed(transport_name, n, rounds, seed)
    rps = run["result"].rounds / run["elapsed"]
    latencies = run["latencies"]
    return {
        "n": n,
        "transport": transport_name,
        "rounds": run["result"].rounds,
        "wall_s": run["elapsed"],
        "rounds_per_sec": rps,
        "slowdown_vs_simulated": sim_rps / rps,
        "rpc_calls": int(run["result"].extra["rpc_calls"]),
        "rpc_p50_us": float(np.quantile(latencies, 0.5) * 1e6),
        "rpc_p99_us": float(np.quantile(latencies, 0.99) * 1e6),
    }, run


def _simulated_rps(n: int, rounds: int, seed: int) -> float:
    values = RandomSource(seed).random(n) * 100.0
    start = time.perf_counter()
    result = run_protocol_loop(
        PushSumProtocol(values, rounds=rounds), rng=seed, max_rounds=rounds + 1
    )
    return result.rounds / (time.perf_counter() - start)


def run_benchmark(sizes, rounds: int = 30, seed: int = 0):
    rows = []
    for n in sizes:
        sim_rps = _simulated_rps(n, rounds, seed)
        for transport_name in ("channel", "tcp"):
            row, _ = _row(transport_name, n, rounds, seed, sim_rps)
            rows.append(row)
    return rows


def smoke(seed: int = 0):
    """Reduced CI grid with hard simulated ≡ deployed parity assertions."""
    n, rounds = 32, 10
    values = RandomSource(seed).random(n) * 100.0
    sim_metrics = NetworkMetrics()
    sim = run_protocol_loop(
        PushSumProtocol(values, rounds=rounds), rng=seed,
        metrics=sim_metrics, max_rounds=rounds + 1,
    )
    sim_rps = _simulated_rps(n, rounds, seed)
    rows = []
    for transport_name in ("channel", "tcp"):
        row, run = _row(transport_name, n, rounds, seed, sim_rps)
        result, metrics = run["result"], run["metrics"]
        # The equivalence contract, asserted on the bench path too.  Round
        # and message/bit accounting is exact on both transports; outputs
        # are bit-identical on the channel transport, while TCP completion
        # order can reassociate push-sum's float merges by an ulp.
        assert result.rounds == sim.rounds, transport_name
        assert metrics.summary() == sim_metrics.summary(), transport_name
        if transport_name == "channel":
            assert result.outputs == sim.outputs, transport_name
        else:
            np.testing.assert_allclose(
                result.outputs_array, sim.outputs_array, rtol=1e-9
            )
        protocol = run["protocol"]
        true_mass = run["true_mass"]
        assert abs(protocol.total_mass - true_mass) < 1e-9 * true_mass
        rows.append(row)
        print(
            f"smoke: {transport_name:8s} {row['rounds_per_sec']:8.1f} rounds/s"
            f"  p99 rpc {row['rpc_p99_us']:8.0f}us"
        )
    print("smoke: simulated == deployed on both transports OK")
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sizes", type=int, nargs="+", default=[32, 128])
    parser.add_argument("--rounds", type=int, default=30)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--json", type=Path, default=None,
        help="write the row trajectory to this JSON file "
             "(default benchmarks/BENCH_net.json for full runs)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="reduced CI grid with correctness assertions",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        rows = smoke(seed=args.seed)
    else:
        rows = run_benchmark(args.sizes, rounds=args.rounds, seed=args.seed)
        header = (
            f"{'n':>6}  {'transport':<9}  {'rounds/s':>10}  "
            f"{'p99 rpc us':>11}  {'vs sim':>8}"
        )
        print(header)
        print("-" * len(header))
        for row in rows:
            print(
                f"{row['n']:>6}  {row['transport']:<9}  "
                f"{row['rounds_per_sec']:>10.1f}  "
                f"{row['rpc_p99_us']:>11.0f}  "
                f"{row['slowdown_vs_simulated']:>7.1f}x"
            )

    json_path = args.json
    if json_path is None and not args.smoke:
        json_path = Path(__file__).resolve().parent / "BENCH_net.json"
    if json_path is not None:
        payload = {
            "benchmark": "net",
            "unit": "seconds",
            "smoke": bool(args.smoke),
            "rows": rows,
        }
        json_path.write_text(json.dumps(payload, indent=1) + "\n")
        print(f"wrote {json_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
