"""E10 benchmark — ablations of the tournament design choices."""

from conftest import record_rows

from repro.experiments import ablations


def test_ablation_table(benchmark):
    rows = benchmark.pedantic(
        lambda: ablations.run(n=1024, phi=0.25, eps=0.1, trials=2, seed=11),
        rounds=1,
        iterations=1,
    )
    record_rows(benchmark, rows, ("ablation", "setting", "mean_error", "node_success_fraction"))
    by_setting = {(row["ablation"], row["setting"]): row for row in rows}

    # the paper's configuration meets the eps guarantee
    paper = by_setting[("phase-one", "phase I + phase II (paper)")]
    assert paper["mean_error"] <= 0.1 + 1e-9

    # skipping Phase I collapses the answer to the median: error ~ |phi - 1/2|
    ablated = by_setting[("phase-one", "phase II only (ablated)")]
    assert ablated["mean_error"] > 0.15

    # the truncated last iteration is never worse than forcing delta = 1
    truncated = by_setting[("last-iteration-truncation", "delta-truncated (paper)")]
    forced = by_setting[("last-iteration-truncation", "delta=1 (ablated)")]
    assert truncated["mean_error"] <= forced["mean_error"] + 0.05

    # a tiny final vote is noticeably less reliable than K = 15
    votes = {row["setting"]: row for row in rows if row["ablation"] == "final-vote-size"}
    assert votes["K=15"]["node_success_fraction"] >= votes["K=1"]["node_success_fraction"]
