"""E6 benchmark — Lemmas 2.2 / 2.12: schedule lengths and concentration."""

from conftest import record_rows

from repro.experiments import schedule_validation


def test_schedule_table(benchmark):
    rows = benchmark.pedantic(
        lambda: schedule_validation.run(
            sizes=(1024, 4096), phis=(0.25, 0.75), eps_values=(0.1, 0.05), seed=6
        ),
        rounds=1,
        iterations=1,
    )
    record_rows(
        benchmark,
        rows,
        ("n", "phi", "eps", "phase1_iterations", "phase2_iterations", "max_trajectory_deviation"),
    )
    assert all(row["phase1_iterations"] <= row["phase1_bound"] + 1 for row in rows)
    assert all(row["phase2_iterations"] <= row["phase2_bound"] + 1 for row in rows)
    assert all(row["max_trajectory_deviation"] < 0.1 for row in rows)
