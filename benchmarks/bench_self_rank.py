"""E5 benchmark — Corollary 1.5: every node estimates its own quantile."""

from conftest import record_rows

from repro.experiments import self_rank


def test_self_rank_table(benchmark):
    rows = benchmark.pedantic(
        lambda: self_rank.run(
            workloads=("distinct", "zipf", "sensor"), sizes=(1024,), eps_values=(0.1,), seed=5
        ),
        rounds=1,
        iterations=1,
    )
    record_rows(
        benchmark,
        rows,
        ("workload", "eps", "rounds", "mean_error", "p95_error", "fraction_within_2eps"),
    )
    assert all(row["fraction_within_2eps"] > 0.9 for row in rows)
    assert all(row["mean_error"] <= 0.1 for row in rows)
