"""E5 benchmark — Corollary 1.5: the one-pass all-quantiles grid.

Times the whole ``ceil(1/eps) - 1``-target self-rank grid executed three
ways:

* ``sequential``: one single-lane :func:`approximate_quantile` run per
  grid target — the pre-PR-6 execution whose round count carries the
  corollary's ``1/eps`` factor;
* ``fused``: the grid column-stacked into lane-chunked multi-lane
  tournaments (one shared partner matrix per round, per-lane ``(phi, eps)``
  schedules, rounds = max-of-lanes per chunk);
* ``fused-f32``: the same fused pass with float32 value lanes.

Emits ``BENCH_selfrank.json`` (mode, n, eps, grid size, rounds, wall time,
fused-over-sequential speedups in both rounds and wall clock) so the repo
carries the one-pass trajectory across PRs; ``bench_trend.py`` gates the
``rounds`` and ``speedup*`` columns against HEAD~1.  Usable standalone::

    PYTHONPATH=src python benchmarks/bench_self_rank.py --sizes 10000 100000

``--smoke`` runs a reduced grid asserting self-rank accuracy and the fused
round advantage; CI runs it on every push.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:  # pragma: no cover - environment dependent
    sys.path.insert(0, str(SRC))

import numpy as np

from repro.core.all_quantiles import estimate_all_ranks, true_self_quantiles
from repro.utils.rand import RandomSource

DEFAULT_JSON = Path(__file__).resolve().parent / "BENCH_selfrank.json"
DEFAULT_SIZES = (10_000, 100_000)
#: The acceptance grid: eps = 0.05 -> 19 targets, one 19-lane fused chunk.
EPS = 0.05

MODES = ("sequential", "fused", "fused-f32")


def _values(n: int, seed: int) -> np.ndarray:
    return RandomSource(seed).random(n) * 100.0


def _run_mode(values: np.ndarray, mode: str, seed: int):
    kwargs = {"fused": mode != "sequential"}
    if mode == "fused-f32":
        kwargs["dtype"] = "float32"
    start = time.perf_counter()
    result = estimate_all_ranks(values, eps=EPS, rng=seed, **kwargs)
    wall = time.perf_counter() - start
    return result, wall


def run_benchmark(sizes, seed: int = 1):
    """Three rows per n: sequential grid, fused grid, fused float32 grid."""
    rows = []
    for n in sizes:
        values = _values(n, seed)
        truth = true_self_quantiles(values)
        baseline = None
        for mode in MODES:
            result, wall = _run_mode(values, mode, seed + 1)
            errors = np.abs(result.quantile_estimates - truth)
            row = {
                "mode": mode,
                "n": n,
                "eps": EPS,
                "grid": int(result.grid.size),
                "chunks": result.chunks,
                "rounds": result.rounds,
                "wall_s": wall,
                "mean_error": float(errors.mean()),
                "max_rank_error": float(errors.max()),
                "fraction_within_2eps": float(np.mean(errors <= 2 * EPS)),
            }
            if mode == "sequential":
                baseline = row
            else:
                row["speedup_vs_sequential"] = baseline["wall_s"] / wall
                row["speedup_rounds"] = baseline["rounds"] / result.rounds
            rows.append(row)
    return rows


def write_json(rows, path: Path, smoke: bool) -> None:
    payload = {
        "benchmark": "self_rank_all_quantiles",
        "unit": "seconds",
        "smoke": smoke,
        "rows": rows,
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {path}")


def check_rows(rows) -> None:
    """Shared assertions: accuracy within the corollary's bound, fused
    rounds strictly below the sequential sum."""
    by_key = {(row["mode"], row["n"]): row for row in rows}
    for (mode, n), row in by_key.items():
        assert row["fraction_within_2eps"] > 0.9, row
        assert row["mean_error"] <= 2 * EPS, row
        if mode.startswith("fused"):
            sequential = by_key[("sequential", n)]
            # the fused grid *executes* max-of-lanes rounds per chunk:
            # strictly fewer than the sequential sum over grid targets
            assert row["rounds"] < sequential["rounds"], (row, sequential)


def smoke(json_path: Path, seed: int = 1) -> int:
    rows = run_benchmark(sizes=(2048, 8192), seed=seed)
    check_rows(rows)
    write_json(rows, json_path, smoke=True)
    for row in rows:
        print(
            f"smoke: n={row['n']:>6} {row['mode']:<11} "
            f"{row['rounds']:>5} rounds in {row['wall_s']:.3f}s"
        )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sizes", type=int, nargs="+", default=list(DEFAULT_SIZES))
    parser.add_argument(
        "--json", type=Path, default=None,
        help=f"output path (default: {DEFAULT_JSON.name}, or a .smoke.json "
             "sibling under --smoke so the checked-in trajectory survives)",
    )
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--smoke", action="store_true",
        help="reduced CI grid with accuracy and round assertions",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        json_path = args.json or DEFAULT_JSON.with_suffix(".smoke.json")
        return smoke(json_path, seed=args.seed)
    if args.json is None:
        args.json = DEFAULT_JSON

    rows = run_benchmark(args.sizes, seed=args.seed)
    check_rows(rows)
    write_json(rows, args.json, smoke=False)
    header = (
        f"{'n':>9}  {'mode':<11}  {'wall':>9}  {'rounds':>7}  "
        f"{'speedup':>8}  {'rounds x':>8}"
    )
    print(header)
    print("-" * len(header))
    for row in rows:
        speedup = row.get("speedup_vs_sequential")
        rounds_x = row.get("speedup_rounds")
        speedup_text = f"{speedup:>7.2f}x" if speedup else f"{'—':>8}"
        rounds_text = f"{rounds_x:>7.2f}x" if rounds_x else f"{'—':>8}"
        print(
            f"{row['n']:>9}  {row['mode']:<11}  {row['wall_s']:>8.3f}s  "
            f"{row['rounds']:>7}  {speedup_text}  {rounds_text}"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
