"""E3 benchmark — Theorem 1.3: the information-spreading lower bound."""

from conftest import record_rows

from repro.experiments import lower_bound


def test_lower_bound_table(benchmark):
    rows = benchmark.pedantic(
        lambda: lower_bound.run(
            sizes=(1024, 8192, 65536), eps_values=(0.1, 0.02), trials=2, seed=3
        ),
        rounds=1,
        iterations=1,
    )
    record_rows(
        benchmark,
        rows,
        ("n", "eps", "rounds_to_all_informed", "theorem_bound", "ratio"),
    )
    # the measured spreading time never beats the theorem's floor
    assert all(row["rounds_to_all_informed"] >= row["theorem_bound"] - 1 for row in rows)
    # and it grows as eps shrinks
    by_n = {}
    for row in rows:
        by_n.setdefault(row["n"], {})[row["eps"]] = row["rounds_to_all_informed"]
    for n, eps_map in by_n.items():
        assert eps_map[0.02] >= eps_map[0.1]
