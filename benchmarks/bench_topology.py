"""Benchmark: vectorized gossip throughput across topologies.

Measures (a) raw partner-sampling throughput — the new per-round hot path —
for the uniform, neighbor-uniform and round-robin samplers, and (b) full
push-sum rounds/second on the vectorized engine over each topology family.
The neighbor-sampling path is one extra gather per round, so topology
gossip should stay within a small constant factor of uniform gossip.
Usable standalone::

    PYTHONPATH=src python benchmarks/bench_topology.py --sizes 10000 100000

``--smoke`` runs a reduced grid and asserts the end-to-end invariants
(every topology executes on the vectorized engine, partners respect the
graph); CI runs it on every push so the hot path cannot silently break.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:  # pragma: no cover - environment dependent
    sys.path.insert(0, str(SRC))

import numpy as np

from repro.aggregates.push_sum import PushSumProtocol
from repro.gossip.engine import run_protocol_vectorized
from repro.topology import build_topology, resolve_peer_sampler
from repro.utils.rand import RandomSource

TOPOLOGIES = ("complete", "ring", "regular", "erdos-renyi", "small-world")


def _time_sampler(topology, sampling: str, n: int, rounds: int, seed: int) -> float:
    """Partner draws per second for one sampler."""
    sampler = resolve_peer_sampler(topology, sampling=sampling, n=n)
    rng = RandomSource(seed)
    start = time.perf_counter()
    for _ in range(rounds):
        sampler.draw_round(rng)
    elapsed = time.perf_counter() - start
    return rounds / elapsed


def _time_push_sum(topology, n: int, rounds: int, seed: int):
    """(rounds/sec, result, protocol) for vectorized push-sum on a topology."""
    values = RandomSource(seed).random(n) * 100.0
    protocol = PushSumProtocol(values, rounds=rounds)
    start = time.perf_counter()
    result = run_protocol_vectorized(
        protocol, rng=seed, max_rounds=rounds + 1, topology=topology
    )
    elapsed = time.perf_counter() - start
    return result.rounds / elapsed, result, protocol


def run_benchmark(sizes, rounds: int = 50, seed: int = 0, degree: int = 8):
    rows = []
    for n in sizes:
        for name in TOPOLOGIES:
            topology = build_topology(name, n, degree=degree, rng=seed)
            sampling = "uniform"
            sampler_rps = _time_sampler(topology, sampling, n, rounds, seed)
            engine_rps, result, _ = _time_push_sum(topology, n, rounds, seed)
            rows.append(
                {
                    "n": n,
                    "topology": name,
                    "sampler_rounds_per_sec": sampler_rps,
                    "push_sum_rounds_per_sec": engine_rps,
                    "rounds": result.rounds,
                }
            )
    return rows


def smoke(seed: int = 0) -> int:
    """Reduced CI grid with hard assertions on the hot path."""
    n, rounds = 5_000, 20
    baseline = None
    for name in TOPOLOGIES:
        topology = build_topology(name, n, degree=8, rng=seed)
        rps, result, protocol = _time_push_sum(topology, n, rounds, seed)
        assert result.rounds == rounds, (name, result.rounds)
        assert result.completed, name
        # Push-sum conserves total s-mass and total weight exactly (every
        # round only moves halves around); a scrambled scatter or a partner
        # draw writing out of bounds breaks these immediately.
        true_mass = float(RandomSource(seed).random(n).sum() * 100.0)
        assert abs(protocol.total_mass - true_mass) < 1e-6 * true_mass, name
        assert abs(protocol.total_weight - n) < 1e-6 * n, name
        estimates = np.asarray(result.outputs, dtype=float)
        assert np.isfinite(estimates).all(), name
        if name == "complete":
            baseline = rps
        print(f"smoke: {name:12s} {rps:10.1f} rounds/s")
    # round-robin sampling also executes
    topology = build_topology("regular", n, degree=8, rng=seed)
    values = RandomSource(seed).random(n)
    result = run_protocol_vectorized(
        PushSumProtocol(values, rounds=10), rng=seed, max_rounds=11,
        topology=topology, peer_sampling="round-robin",
    )
    assert result.rounds == 10
    print(f"smoke: round-robin on regular OK; complete baseline "
          f"{baseline:.0f} rounds/s")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sizes", type=int, nargs="+", default=[10_000, 100_000])
    parser.add_argument("--rounds", type=int, default=50)
    parser.add_argument("--degree", type=int, default=8)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--smoke", action="store_true",
        help="reduced CI grid with correctness assertions",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        return smoke(seed=args.seed)

    rows = run_benchmark(
        args.sizes, rounds=args.rounds, seed=args.seed, degree=args.degree
    )
    header = (
        f"{'n':>9}  {'topology':<12}  {'sampler draws/s':>16}  "
        f"{'push-sum rds/s':>15}"
    )
    print(header)
    print("-" * len(header))
    for row in rows:
        print(
            f"{row['n']:>9}  {row['topology']:<12}  "
            f"{row['sampler_rounds_per_sec']:>16.1f}  "
            f"{row['push_sum_rounds_per_sec']:>15.1f}"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
