"""Benchmark: loop vs vectorized gossip engine throughput.

Runs push-sum (the hot protocol behind counting and the Kempe baseline)
under both engines at increasing network sizes and reports rounds/second
and the vectorized speedup.  Usable standalone::

    PYTHONPATH=src python benchmarks/bench_engine.py --sizes 1000 10000 100000

The loop engine's cost per round is O(n) Python calls, so its round budget
is scaled down at large n to keep the benchmark short; rounds/sec is the
comparable unit either way.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:  # pragma: no cover - environment dependent
    sys.path.insert(0, str(SRC))

import numpy as np

from repro.aggregates.push_sum import PushSumProtocol
from repro.gossip.engine import run_protocol_loop, run_protocol_vectorized
from repro.utils.rand import RandomSource


def _time_engine(runner, n: int, rounds: int, seed: int) -> float:
    """Rounds per second for one engine at size ``n``."""
    values = RandomSource(seed).random(n) * 100.0
    protocol = PushSumProtocol(values, rounds=rounds)
    start = time.perf_counter()
    result = runner(protocol, rng=seed, max_rounds=rounds + 1)
    elapsed = time.perf_counter() - start
    assert result.rounds == rounds
    return result.rounds / elapsed


def run_benchmark(sizes, seed: int = 0):
    rows = []
    for n in sizes:
        # keep the slow loop engine's wall time bounded at large n
        loop_rounds = max(3, min(30, 300_000 // n))
        vec_rounds = 50
        loop_rps = _time_engine(run_protocol_loop, n, loop_rounds, seed)
        vec_rps = _time_engine(run_protocol_vectorized, n, vec_rounds, seed)
        rows.append(
            {
                "n": n,
                "loop_rounds_per_sec": loop_rps,
                "vectorized_rounds_per_sec": vec_rps,
                "speedup": vec_rps / loop_rps,
            }
        )
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=[1_000, 10_000, 100_000]
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    rows = run_benchmark(args.sizes, seed=args.seed)
    header = f"{'n':>9}  {'loop rds/s':>12}  {'vectorized rds/s':>17}  {'speedup':>8}"
    print(header)
    print("-" * len(header))
    for row in rows:
        print(
            f"{row['n']:>9}  {row['loop_rounds_per_sec']:>12.1f}  "
            f"{row['vectorized_rounds_per_sec']:>17.1f}  "
            f"{row['speedup']:>7.1f}x"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
