"""Benchmark: vectorized gossip throughput under dynamic topologies.

Measures push-sum rounds/second on the vectorized engine when the graph is
a per-round object (:mod:`repro.topology.dynamic`): a static small-world
baseline, churn over that graph (per-round active-subgraph CSR rebuilds),
churn over the complete graph, and newscast-style edge resampling at
refresh periods 1 and 16.  The dynamic overhead is one O(E) CSR rebuild
per changed round, so everything should stay within a small factor of the
static baseline.  Usable standalone::

    PYTHONPATH=src python benchmarks/bench_dynamic.py --sizes 10000 100000

Emits a machine-readable trajectory (``--json benchmarks/BENCH_dynamic.json``
by default) that ``bench_trend.py`` diffs across PRs.  ``--smoke`` runs a
reduced grid with hard end-to-end assertions (mass conservation under
churn, loop/vectorized agreement); CI runs it on every push.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:  # pragma: no cover - environment dependent
    sys.path.insert(0, str(SRC))

import numpy as np

from repro.aggregates.push_sum import PushSumProtocol
from repro.gossip.engine import run_protocol_loop, run_protocol_vectorized
from repro.topology import ChurnProcess, EdgeResamplingProcess, build_topology
from repro.utils.rand import RandomSource


def _scenarios(n: int, degree: int, seed: int):
    """(name, process factory) pairs; factories so every run starts fresh."""
    base = build_topology("small-world", n, degree=degree, rng=seed)
    return [
        ("static-small-world", lambda: None, base),
        (
            "churn-small-world",
            lambda: ChurnProcess(topology=base, churn_rate=0.05, rng=seed),
            None,
        ),
        (
            "churn-complete",
            lambda: ChurnProcess(n=n, churn_rate=0.05, rng=seed),
            None,
        ),
        (
            "resample-every-1",
            lambda: EdgeResamplingProcess(
                n, view_size=degree, resample_every=1, rng=seed
            ),
            None,
        ),
        (
            "resample-every-16",
            lambda: EdgeResamplingProcess(
                n, view_size=degree, resample_every=16, rng=seed
            ),
            None,
        ),
    ]


def _time_scenario(runner, n, rounds, seed, process, topology):
    values = RandomSource(seed).random(n) * 100.0
    protocol = PushSumProtocol(values, rounds=rounds)
    start = time.perf_counter()
    result = runner(
        protocol,
        rng=seed,
        max_rounds=rounds + 1,
        topology=topology,
        topology_process=process,
    )
    elapsed = time.perf_counter() - start
    return result, protocol, elapsed, float(values.sum())


def run_benchmark(sizes, rounds: int = 50, seed: int = 0, degree: int = 8):
    rows = []
    for n in sizes:
        baseline_rps = None
        for name, factory, topology in _scenarios(n, degree, seed):
            result, protocol, elapsed, true_mass = _time_scenario(
                run_protocol_vectorized, n, rounds, seed, factory(), topology
            )
            rps = result.rounds / elapsed
            if baseline_rps is None:
                baseline_rps = rps
            rows.append(
                {
                    "n": n,
                    "scenario": name,
                    "rounds": result.rounds,
                    "wall_s": elapsed,
                    "rounds_per_sec": rps,
                    "slowdown_vs_static": baseline_rps / rps,
                    "mass_rel_error": abs(protocol.total_mass - true_mass)
                    / true_mass,
                }
            )
    return rows


def smoke(seed: int = 0):
    """Reduced CI grid with hard assertions on the dynamic hot path."""
    n, rounds, degree = 4_000, 25, 8
    rows = []
    for name, factory, topology in _scenarios(n, degree, seed):
        result, protocol, elapsed, true_mass = _time_scenario(
            run_protocol_vectorized, n, rounds, seed, factory(), topology
        )
        assert result.rounds == rounds, (name, result.rounds)
        # Dynamic topologies must conserve push-sum mass exactly: departed
        # nodes freeze, they never absorb or lose the aggregate.
        assert abs(protocol.total_mass - true_mass) < 1e-6 * true_mass, name
        assert abs(protocol.total_weight - n) < 1e-6 * n, name
        assert np.isfinite(np.asarray(result.outputs, dtype=float)).all(), name
        rows.append(
            {
                "n": n,
                "scenario": name,
                "rounds": result.rounds,
                "wall_s": elapsed,
                "rounds_per_sec": result.rounds / elapsed,
                "mass_rel_error": abs(protocol.total_mass - true_mass) / true_mass,
            }
        )
        print(f"smoke: {name:20s} {result.rounds / elapsed:10.1f} rounds/s")
    # Loop and vectorized engines must agree bit-for-bit under a process.
    small = 257
    churn = ChurnProcess(n=small, churn_rate=0.2, rng=seed)
    values = RandomSource(seed).random(small)
    loop = run_protocol_loop(
        PushSumProtocol(values, rounds=12), rng=seed, max_rounds=13,
        topology_process=churn,
    )
    vec = run_protocol_vectorized(
        PushSumProtocol(values, rounds=12), rng=seed, max_rounds=13,
        topology_process=churn,
    )
    assert loop.outputs == vec.outputs
    print("smoke: loop == vectorized under churn OK")
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sizes", type=int, nargs="+", default=[10_000, 100_000])
    parser.add_argument("--rounds", type=int, default=50)
    parser.add_argument("--degree", type=int, default=8)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--json", type=Path, default=None,
        help="write the row trajectory to this JSON file "
             "(default benchmarks/BENCH_dynamic.json for full runs)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="reduced CI grid with correctness assertions",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        rows = smoke(seed=args.seed)
    else:
        rows = run_benchmark(
            args.sizes, rounds=args.rounds, seed=args.seed, degree=args.degree
        )
        header = f"{'n':>9}  {'scenario':<20}  {'rounds/s':>12}  {'slowdown':>9}"
        print(header)
        print("-" * len(header))
        for row in rows:
            print(
                f"{row['n']:>9}  {row['scenario']:<20}  "
                f"{row['rounds_per_sec']:>12.1f}  "
                f"{row['slowdown_vs_static']:>8.2f}x"
            )

    json_path = args.json
    if json_path is None and not args.smoke:
        json_path = Path(__file__).resolve().parent / "BENCH_dynamic.json"
    if json_path is not None:
        payload = {
            "benchmark": "dynamic",
            "unit": "seconds",
            "smoke": bool(args.smoke),
            "rows": rows,
        }
        json_path.write_text(json.dumps(payload, indent=1) + "\n")
        print(f"wrote {json_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
