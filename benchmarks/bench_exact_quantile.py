"""E1 benchmark — Theorem 1.1: the fully simulated exact-quantile path.

Times :func:`repro.core.exact_quantile.exact_quantile` with
``fidelity="simulated"`` — every sub-protocol (tournaments, extrema,
counting, token duplication) executed on the vectorized substrates, the
Step-3 sandwich and Step-4 min/max spreadings fused into multi-lane runs —
and emits a machine-readable ``BENCH_exact.json`` (n, fidelity, rounds,
wall time, exactness) so the repo carries a perf trajectory across PRs.
float64 rows keep the historical row schema (so ``bench_trend.py`` keeps
matching them against older commits); float32 rows carry the ``dtype`` and
``f32_parity`` columns of the ``exact-scale`` experiment.  The headline
numbers: the fused float64 path is ≥ 2x the pre-fusion wall clock at
n = 10⁵, and n = 10⁶ completes single-threaded.  Usable standalone::

    PYTHONPATH=src python benchmarks/bench_exact_quantile.py --sizes 10000 100000

``--smoke`` runs a reduced grid asserting exactness end to end; CI runs it
on every push.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:  # pragma: no cover - environment dependent
    sys.path.insert(0, str(SRC))

from repro.experiments.exact_scale import run as run_exact_scale

DEFAULT_JSON = Path(__file__).resolve().parent / "BENCH_exact.json"


def run_benchmark(sizes, phi: float = 0.5, fidelity: str = "simulated", seed: int = 1):
    """Two rows per n (float64 + float32): wall time, rounds, exactness.

    Delegates the measurement to the ``exact-scale`` experiment (one trial
    per n) so the benchmark and the experiment cannot drift apart; this
    script only owns the JSON/assertion layer.  float64 rows are stripped
    to the historical schema so the trend gate keeps matching them against
    pre-dtype commits.
    """
    rows = run_exact_scale(
        sizes=tuple(sizes), phis=(phi,), trials=1, seed=seed, fidelity=fidelity
    )
    legacy_only = ("dtype", "rank_error", "f32_parity")
    return [
        {k: v for k, v in row.items() if k not in legacy_only}
        if row.get("dtype") == "float64" else row
        for row in rows
    ]


def write_json(rows, path: Path, smoke: bool) -> None:
    payload = {
        "benchmark": "exact_quantile",
        "unit": "seconds",
        "smoke": smoke,
        "rows": rows,
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {path}")


def smoke(json_path: Path, seed: int = 1) -> int:
    """Reduced CI grid: the simulated path must stay exact and fast."""
    rows = run_benchmark(sizes=(2048, 8192), seed=seed)
    for row in rows:
        assert row["correct"] == 1, row
        assert row["wall_s"] < 30.0, row
    write_json(rows, json_path, smoke=True)
    for row in rows:
        print(
            f"smoke: n={row['n']:>6} simulated exact in {row['wall_s']:.2f}s "
            f"({row['rounds']:.0f} rounds, correct)"
        )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sizes", type=int, nargs="+", default=[10_000, 100_000])
    parser.add_argument("--phi", type=float, default=0.5)
    parser.add_argument(
        "--fidelity", choices=("simulated", "idealized"), default="simulated"
    )
    parser.add_argument(
        "--json", type=Path, default=None,
        help=f"output path (default: {DEFAULT_JSON.name}, or a .smoke.json "
             "sibling under --smoke so the checked-in trajectory survives)",
    )
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--smoke", action="store_true",
        help="reduced CI grid with exactness assertions",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        json_path = args.json or DEFAULT_JSON.with_suffix(".smoke.json")
        return smoke(json_path, seed=args.seed)
    if args.json is None:
        args.json = DEFAULT_JSON

    rows = run_benchmark(
        args.sizes, phi=args.phi, fidelity=args.fidelity, seed=args.seed
    )
    for row in rows:
        assert row["correct"] == 1, f"exact quantile missed at n={row['n']}"
    write_json(rows, args.json, smoke=False)
    header = (
        f"{'n':>9}  {'fidelity':<10}  {'dtype':<8}  {'wall':>9}  "
        f"{'rounds':>7}  {'correct':>7}"
    )
    print(header)
    print("-" * len(header))
    for row in rows:
        print(
            f"{row['n']:>9}  {row['fidelity']:<10}  "
            f"{row.get('dtype', 'float64'):<8}  {row['wall_s']:>8.2f}s  "
            f"{row['rounds']:>7.0f}  {row['correct']:>7.0f}"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
