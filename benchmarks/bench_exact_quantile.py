"""E1 benchmark — Theorem 1.1: exact quantile rounds, tournament vs Kempe.

Regenerates the EXPERIMENTS.md E1 table (with a reduced sweep) and records
the round counts and the speed-up column in the benchmark report.
"""

from conftest import record_rows

from repro.experiments import exact_rounds


def test_exact_rounds_table(benchmark):
    rows = benchmark.pedantic(
        lambda: exact_rounds.run(sizes=(256, 1024, 4096), phis=(0.5,), trials=2, seed=1),
        rounds=1,
        iterations=1,
    )
    record_rows(
        benchmark,
        rows,
        ("n", "tournament_rounds", "kempe_rounds", "speedup", "tournament_correct"),
    )
    assert all(row["tournament_correct"] == 1.0 for row in rows)
    assert all(row["kempe_correct"] == 1.0 for row in rows)
