"""E2 benchmark — Theorem 1.2 / Algorithm 3 Step 3: the ε/2 sandwich pair.

Times the exact-quantile driver's sandwich workload — the lower and upper
ε/2-approximate quantiles around a target rank — executed two ways:

* ``sequential``: two single-lane :func:`approximate_quantile` runs, the
  pre-fusion execution (the pair used to be *charged* max-of-pair rounds
  but executed back to back);
* ``fused``: one two-lane run on a multi-lane
  :class:`~repro.gossip.network.GossipNetwork` — one partner matrix per
  round shared across lanes, per-lane schedules, rounds = max(pair) by
  construction.  A ``fused-f32`` variant additionally runs the lanes in
  float32 (exact for rank keys below 2²⁴).

Emits ``BENCH_approx.json`` (mode, n, rounds, wall time, speedup of the
fused path over the sequential pair) so the repo carries the sandwich
trajectory across PRs; ``bench_trend.py`` gates the ``rounds`` and
``speedup*`` columns against HEAD~1.  Usable standalone::

    PYTHONPATH=src python benchmarks/bench_approx_quantile.py --sizes 10000 100000

``--smoke`` runs a reduced grid asserting the fused path's rank accuracy
and round advantage; CI runs it on every push.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:  # pragma: no cover - environment dependent
    sys.path.insert(0, str(SRC))

import numpy as np

from repro.core.approx_quantile import approximate_quantile
from repro.utils.stats import rank_error

DEFAULT_JSON = Path(__file__).resolve().parent / "BENCH_approx.json"
DEFAULT_SIZES = (10_000, 100_000, 1_000_000)
#: The exact driver's default per-iteration sandwich: eps/2 accuracy around
#: phi ± eps/2 (see repro.core.exact_quantile.DEFAULT_ITERATION_EPS).
EPS = 0.0625
PHI = 0.5


def _keys(n: int) -> np.ndarray:
    """Rank keys 1..n — the exact driver's item space."""
    return np.arange(1.0, n + 1.0)


def run_benchmark(sizes, seed: int = 1):
    """Three rows per n: sequential pair, fused pair, fused float32 pair."""
    phi_lo = PHI - EPS / 2.0
    phi_hi = PHI + EPS / 2.0
    accuracy = EPS / 2.0
    rows = []
    for n in sizes:
        keys = _keys(n)
        stacked = np.stack([keys, keys], axis=1)

        start = time.perf_counter()
        lo = approximate_quantile(keys, phi=phi_lo, eps=accuracy, rng=seed)
        hi = approximate_quantile(keys, phi=phi_hi, eps=accuracy, rng=seed + 1)
        wall_sequential = time.perf_counter() - start
        sequential_rounds = lo.rounds + hi.rounds

        start = time.perf_counter()
        fused = approximate_quantile(
            stacked, phi=(phi_lo, phi_hi), eps=accuracy, rng=seed + 2
        )
        wall_fused = time.perf_counter() - start

        start = time.perf_counter()
        fused32 = approximate_quantile(
            stacked, phi=(phi_lo, phi_hi), eps=accuracy, rng=seed + 2,
            dtype="float32",
        )
        wall_fused32 = time.perf_counter() - start

        errors = {
            "sequential": max(
                rank_error(keys, lo.estimate, phi_lo),
                rank_error(keys, hi.estimate, phi_hi),
            ),
            "fused": max(
                rank_error(keys, float(fused.estimate[0]), phi_lo),
                rank_error(keys, float(fused.estimate[1]), phi_hi),
            ),
            "fused-f32": max(
                rank_error(keys, float(fused32.estimate[0]), phi_lo),
                rank_error(keys, float(fused32.estimate[1]), phi_hi),
            ),
        }
        rows.append(
            {
                "mode": "sequential", "n": n, "eps": EPS,
                "rounds": sequential_rounds, "wall_s": wall_sequential,
                "max_rank_error": errors["sequential"],
            }
        )
        rows.append(
            {
                "mode": "fused", "n": n, "eps": EPS,
                "rounds": fused.rounds, "wall_s": wall_fused,
                "max_rank_error": errors["fused"],
                "speedup_vs_sequential": wall_sequential / wall_fused,
            }
        )
        rows.append(
            {
                "mode": "fused-f32", "n": n, "eps": EPS,
                "rounds": fused32.rounds, "wall_s": wall_fused32,
                "max_rank_error": errors["fused-f32"],
                "speedup_vs_sequential": wall_sequential / wall_fused32,
            }
        )
    return rows


def write_json(rows, path: Path, smoke: bool) -> None:
    payload = {
        "benchmark": "approx_quantile_sandwich",
        "unit": "seconds",
        "smoke": smoke,
        "rows": rows,
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {path}")


def check_rows(rows) -> None:
    """Shared assertions: accuracy within eps, fused rounds = max-of-pair."""
    by_key = {(row["mode"], row["n"]): row for row in rows}
    for (mode, n), row in by_key.items():
        assert row["max_rank_error"] <= EPS, row
        if mode.startswith("fused"):
            sequential = by_key[("sequential", n)]
            # the fused pair *executes* max-of-pair rounds: strictly fewer
            # than the sequential pair's sum
            assert row["rounds"] < sequential["rounds"], (row, sequential)


def smoke(json_path: Path, seed: int = 1) -> int:
    rows = run_benchmark(sizes=(4096, 16384), seed=seed)
    check_rows(rows)
    write_json(rows, json_path, smoke=True)
    for row in rows:
        print(
            f"smoke: n={row['n']:>6} {row['mode']:<10} "
            f"{row['rounds']:>4} rounds in {row['wall_s']:.3f}s"
        )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sizes", type=int, nargs="+", default=list(DEFAULT_SIZES))
    parser.add_argument(
        "--json", type=Path, default=None,
        help=f"output path (default: {DEFAULT_JSON.name}, or a .smoke.json "
             "sibling under --smoke so the checked-in trajectory survives)",
    )
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--smoke", action="store_true",
        help="reduced CI grid with accuracy and round assertions",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        json_path = args.json or DEFAULT_JSON.with_suffix(".smoke.json")
        return smoke(json_path, seed=args.seed)
    if args.json is None:
        args.json = DEFAULT_JSON

    rows = run_benchmark(args.sizes, seed=args.seed)
    check_rows(rows)
    write_json(rows, args.json, smoke=False)
    header = f"{'n':>9}  {'mode':<11}  {'wall':>9}  {'rounds':>7}  {'speedup':>8}"
    print(header)
    print("-" * len(header))
    for row in rows:
        speedup = row.get("speedup_vs_sequential")
        speedup_text = f"{speedup:>7.2f}x" if speedup else f"{'—':>8}"
        print(
            f"{row['n']:>9}  {row['mode']:<11}  {row['wall_s']:>8.3f}s  "
            f"{row['rounds']:>7}  {speedup_text}"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
