"""E2 benchmark — Theorem 1.2: approximate quantile round scaling and error."""

from conftest import record_rows

from repro.experiments import approx_rounds


def test_approx_rounds_vs_n(benchmark):
    """Rounds should stay nearly flat as n doubles (the log log n term)."""
    rows = benchmark.pedantic(
        lambda: approx_rounds.run(
            sizes=(512, 2048, 8192), eps_values=(0.1,), phis=(0.5,), trials=2, seed=2
        ),
        rounds=1,
        iterations=1,
    )
    record_rows(benchmark, rows, ("n", "eps", "rounds", "max_error", "success_fraction"))
    assert rows[-1]["rounds"] <= rows[0]["rounds"] + 12
    assert all(row["success_fraction"] >= 0.5 for row in rows)


def test_approx_rounds_vs_eps(benchmark):
    """Rounds should grow roughly linearly in log(1/eps)."""
    rows = benchmark.pedantic(
        lambda: approx_rounds.run(
            sizes=(2048,), eps_values=(0.2, 0.1, 0.05, 0.025), phis=(0.5,), trials=2, seed=3
        ),
        rounds=1,
        iterations=1,
    )
    record_rows(benchmark, rows, ("eps", "rounds", "reference", "max_error"))
    assert rows[-1]["rounds"] > rows[0]["rounds"]
    assert rows[-1]["rounds"] < 6 * rows[0]["rounds"]
