#!/usr/bin/env python
"""Every node learns its own percentile (Corollary 1.5).

A fleet of nodes each holding a performance score wants every node to know
which percentile band it falls into (for example to self-select into
remediation).  Running O(1/ε) approximate quantile computations lets every
node bracket its own rank to within ±O(ε) — still in poly(log log n)
rounds overall.

Run with::

    python examples/self_rank_profile.py
"""

from __future__ import annotations

import numpy as np

from repro import estimate_all_ranks
from repro.core.all_quantiles import true_self_quantiles
from repro.datasets import uniform_values


def main() -> None:
    n = 1024
    eps = 0.1
    scores = uniform_values(n, low=0.0, high=100.0, rng=17)

    result = estimate_all_ranks(scores, eps=eps, rng=9)
    truth = true_self_quantiles(scores)
    errors = np.abs(result.quantile_estimates - truth)

    print(f"{n} nodes, {result.grid.size} grid queries, {result.rounds} gossip rounds")
    print(
        f"self-rank error       : mean {errors.mean():.4f}, "
        f"p95 {np.quantile(errors, 0.95):.4f}, max {errors.max():.4f} "
        f"(target ~{1.5 * eps:.2f})"
    )

    # Nodes self-select into the bottom quartile for remediation.
    flagged = result.quantile_estimates <= 0.25
    truly_bottom = truth <= 0.25
    agreement = float(np.mean(flagged == truly_bottom))
    print(
        f"bottom-quartile flags : {int(flagged.sum())} nodes flagged, "
        f"{agreement:.1%} agreement with ground truth"
    )


if __name__ == "__main__":
    main()
