#!/usr/bin/env python
"""Sensor-network monitoring — the paper's motivating application.

A field of thousands of temperature sensors must identify which of them lie
in the hottest and coldest 10% so those regions get special attention
(Section 1 of the paper).  Every sensor only gossips with uniformly random
peers; no coordinator ever sees all readings.

The example computes the 10%- and 90%-quantile thresholds with the
ε-approximate algorithm, lets every sensor classify itself, and checks the
classification against ground truth.

Run with::

    python examples/sensor_network.py
"""

from __future__ import annotations

import numpy as np

from repro import approximate_quantile
from repro.datasets import sensor_temperature_field
from repro.utils.stats import empirical_quantile


def main() -> None:
    n = 4096
    eps = 0.02
    readings = sensor_temperature_field(n, hot_spot_fraction=0.06, rng=11)
    print(f"{n} sensors, temperatures from {readings.min():.1f}C to {readings.max():.1f}C")

    # Each threshold is computed by one gossip computation; every sensor ends
    # up with (approximately) the same threshold value.
    cold = approximate_quantile(readings, phi=0.10, eps=eps, rng=3)
    hot = approximate_quantile(readings, phi=0.90, eps=eps, rng=4)
    total_rounds = cold.rounds + hot.rounds
    print(
        f"thresholds via gossip : cold <= {cold.estimate:.2f}C, hot >= {hot.estimate:.2f}C "
        f"({total_rounds} gossip rounds in total)"
    )

    # Every sensor classifies itself with its *own* local estimate.
    self_cold = readings <= cold.estimates
    self_hot = readings >= hot.estimates

    truly_cold = readings <= empirical_quantile(readings, 0.10)
    truly_hot = readings >= empirical_quantile(readings, 0.90)

    cold_agree = float(np.mean(self_cold == truly_cold))
    hot_agree = float(np.mean(self_hot == truly_hot))
    print(f"self-classification   : cold agreement {cold_agree:.3f}, hot agreement {hot_agree:.3f}")
    print(
        f"flagged sensors       : {int(self_hot.sum())} hot, {int(self_cold.sum())} cold "
        f"(expected ~{int(0.1 * n)} each)"
    )


if __name__ == "__main__":
    main()
