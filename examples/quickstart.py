#!/usr/bin/env python
"""Quickstart: compute exact and approximate quantiles with uniform gossip.

This example builds a network of 4096 nodes, each holding one value, and
uses the public API to

1. compute an ε-approximate φ-quantile (Theorem 1.2),
2. compute the exact φ-quantile (Theorem 1.1),
3. compare the round counts with the Kempe et al. baseline.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import approximate_quantile, exact_quantile
from repro.baselines import kempe_exact_quantile
from repro.datasets import distinct_uniform
from repro.utils.stats import empirical_quantile, rank_error


def main() -> None:
    n = 4096
    phi = 0.9
    eps = 0.05
    values = distinct_uniform(n, rng=42)
    truth = empirical_quantile(values, phi)
    print(f"network of n={n} nodes, target: the {phi}-quantile (true value {truth:.0f})")
    print()

    # --- approximate quantile (Theorem 1.2) ------------------------------------
    approx = approximate_quantile(values, phi=phi, eps=eps, rng=7)
    err = rank_error(values, approx.estimate, phi)
    print(
        f"approximate quantile  : value {approx.estimate:.0f} "
        f"(rank error {err:.4f} <= eps={eps}) in {approx.rounds} gossip rounds"
    )

    # --- exact quantile (Theorem 1.1) -------------------------------------------
    exact = exact_quantile(values, phi=phi, rng=7)
    print(
        f"exact quantile        : value {exact.value:.0f} "
        f"(matches truth: {exact.value == truth}) in {exact.rounds} gossip rounds"
    )

    # --- previous state of the art ----------------------------------------------
    kempe = kempe_exact_quantile(values, phi=phi, rng=7)
    print(
        f"Kempe et al. baseline : value {kempe.value:.0f} "
        f"in {kempe.rounds} gossip rounds "
        f"({kempe.rounds / exact.rounds:.1f}x more than the tournament algorithm)"
    )


if __name__ == "__main__":
    main()
