#!/usr/bin/env python
"""Distributed database percentile monitoring.

A cluster of database shards wants latency percentiles (p50 / p95 / p99) of
the values it stores without funnelling them through a coordinator.  The
example compares three gossip approaches on a heavy-tailed (Zipf-like)
value distribution:

* the exact tournament algorithm (Theorem 1.1) for an auditable p99,
* the ε-approximate tournament algorithm (Theorem 1.2) for cheap dashboards,
* the direct-sampling baseline, to show the 1/ε² round blow-up it needs.

Run with::

    python examples/distributed_database.py
"""

from __future__ import annotations

import numpy as np

from repro import approximate_quantile, exact_quantile
from repro.baselines import sampling_quantile
from repro.datasets import zipf_values
from repro.utils.stats import empirical_quantile, rank_error


def main() -> None:
    n = 2048
    latencies = zipf_values(n, exponent=1.8, rng=23) * 3.0  # milliseconds
    print(f"{n} shards, heavy-tailed latencies (max {latencies.max():.0f} ms)")
    print()

    for label, phi in (("p50", 0.50), ("p95", 0.95), ("p99", 0.99)):
        truth = empirical_quantile(latencies, phi)
        approx = approximate_quantile(latencies, phi=phi, eps=0.02, rng=1)
        print(
            f"{label}: true {truth:8.2f} ms | approximate {approx.estimate:8.2f} ms "
            f"(rank error {rank_error(latencies, approx.estimate, phi):.4f}, "
            f"{approx.rounds} rounds)"
        )

    print()
    phi = 0.99
    exact = exact_quantile(latencies, phi=phi, rng=5)
    print(
        f"exact p99 via gossip  : {exact.value:.2f} ms "
        f"(matches truth: {exact.value == empirical_quantile(latencies, phi)}, "
        f"{exact.rounds} rounds)"
    )

    sampled = sampling_quantile(latencies, phi=phi, eps=0.02, rng=6)
    print(
        f"sampling baseline p99 : {sampled.estimate:.2f} ms "
        f"({sampled.rounds} rounds — the 1/eps^2 penalty)"
    )


if __name__ == "__main__":
    main()
