#!/usr/bin/env python
"""Quantile computation while a third of the nodes keep failing.

Theorem 1.4: the tournament algorithms tolerate every node failing with a
constant probability per round, at the price of a constant-factor slowdown
and a vanishing fraction of nodes that may end up without an answer.  This
example runs the robust median computation with failure probabilities 0.2
and 0.5 and reports accuracy, round overhead and answer coverage.

Run with::

    python examples/robust_monitoring.py
"""

from __future__ import annotations

import numpy as np

from repro import approximate_quantile, robust_approximate_quantile
from repro.datasets import gaussian_values
from repro.utils.stats import rank_error


def main() -> None:
    n = 2048
    phi, eps = 0.5, 0.1
    values = gaussian_values(n, mean=100.0, std=15.0, rng=31)

    baseline = approximate_quantile(values, phi=phi, eps=eps, rng=2)
    print(
        f"failure-free run     : estimate {baseline.estimate:.2f}, "
        f"{baseline.rounds} rounds"
    )

    for mu in (0.2, 0.5):
        robust = robust_approximate_quantile(
            values, phi=phi, eps=eps, failure_model=mu, rng=2
        )
        err = rank_error(values, robust.estimate, phi)
        print(
            f"mu = {mu:.1f} failures    : estimate {robust.estimate:.2f} "
            f"(rank error {err:.4f}), {robust.rounds} rounds "
            f"({robust.rounds / baseline.rounds:.1f}x slowdown), "
            f"{robust.good_fraction:.0%} nodes stayed good, "
            f"{robust.answered_fraction:.0%} learned an answer"
        )


if __name__ == "__main__":
    main()
