"""Setup shim.

The canonical project metadata lives in ``pyproject.toml``.  This file
exists so that ``pip install -e .`` also works on offline environments
whose pip/setuptools combination cannot build editable wheels (legacy
``setup.py develop`` path, no ``wheel`` package required).
"""

from setuptools import setup

setup()
