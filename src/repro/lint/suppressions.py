"""Per-line suppression comments.

The suppression syntax is::

    # repro-lint: disable=<rule>[,<rule>...] -- <non-empty justification>

A suppression written inline applies to findings on its own line; a
suppression written on a comment-only line applies to the next line (for
call sites too long to annotate inline).  The justification after ``--``
is *required*: a suppression without one is not honoured and is itself
flagged by the ``bare-suppression`` meta-rule, so lint debt can never be
hidden silently.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

_SUPPRESSION_RE = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Za-z0-9_\-]+(?:\s*,\s*[A-Za-z0-9_\-]+)*)"
    r"(?:\s*--\s*(.*))?$"
)


@dataclass(frozen=True)
class Suppression:
    """One parsed ``# repro-lint: disable=...`` comment."""

    line: int
    rules: Tuple[str, ...]
    justification: str
    #: Line the suppression applies to: its own for inline comments, the
    #: next one for standalone comment lines.
    applies_to: int
    raw: str

    @property
    def justified(self) -> bool:
        return bool(self.justification.strip())


def extract_comments(source: str) -> Dict[int, str]:
    """Map line number -> comment text for every comment in ``source``.

    Uses :mod:`tokenize` so comments inside strings are not misparsed.
    Returns an empty mapping for files that fail to tokenize (they will
    already carry a syntax-error finding from the parser).
    """
    comments: Dict[int, str] = {}
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                comments[token.start[0]] = token.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return {}
    return comments


def parse_suppression(line: int, comment: str, standalone: bool) -> Optional[Suppression]:
    """Parse one comment into a :class:`Suppression`, or ``None``."""
    match = _SUPPRESSION_RE.search(comment)
    if match is None:
        return None
    rules = tuple(part.strip() for part in match.group(1).split(",") if part.strip())
    justification = (match.group(2) or "").strip()
    return Suppression(
        line=line,
        rules=rules,
        justification=justification,
        applies_to=line + 1 if standalone else line,
        raw=comment.strip(),
    )


def extract_suppressions(source: str, lines: List[str]) -> List[Suppression]:
    """All suppression comments in ``source``, with their target lines."""
    suppressions: List[Suppression] = []
    for line, comment in sorted(extract_comments(source).items()):
        text = lines[line - 1] if 0 < line <= len(lines) else ""
        standalone = text.lstrip().startswith("#")
        parsed = parse_suppression(line, comment, standalone)
        if parsed is not None:
            suppressions.append(parsed)
    return suppressions


__all__ = ["Suppression", "extract_comments", "extract_suppressions", "parse_suppression"]
