"""repro.lint — AST-based determinism & contract linter.

Every replayability guarantee the reproduction advertises (loop ≡
vectorized engine equivalence, sha256 stream pins, bit-for-bit fault
replay) rests on coding conventions: seeded private RNG streams, full
``engine=``/``dtype=``/``metrics=``/``keep_history=`` kwarg threading,
stable sorts, and read-only shared-memory views.  This package enforces
those conventions statically:

* a visitor/rule framework over :mod:`ast` with per-line suppression
  comments (``# repro-lint: disable=<rule> -- <justification>``);
* repo-specific rules: ``rng-discipline``, ``private-stream``,
  ``thread-kwargs``, ``stable-sort``, ``shared-view-write``,
  ``wallclock`` and the ``bare-suppression`` meta-rule;
* text and machine-diffable JSON reporters;
* a CLI (``python -m repro.lint src``) exiting non-zero on findings.

See the README's "Static analysis & invariants" section for the mapping
from each rule to the guarantee it protects.
"""

from __future__ import annotations

from repro.lint.findings import Finding
from repro.lint.registry import RULES, Rule, all_rules, get_rule, known_rule_ids
from repro.lint.reporters import (
    JSON_SCHEMA_VERSION,
    render_json,
    render_text,
    report_dict,
)
from repro.lint.runner import LintResult, iter_python_files, lint_paths, module_name_for
from repro.lint.suppressions import Suppression

__all__ = [
    "Finding",
    "JSON_SCHEMA_VERSION",
    "LintResult",
    "RULES",
    "Rule",
    "Suppression",
    "all_rules",
    "get_rule",
    "iter_python_files",
    "known_rule_ids",
    "lint_paths",
    "module_name_for",
    "render_json",
    "render_text",
    "report_dict",
]
