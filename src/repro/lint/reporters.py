"""Text and JSON reporters for lint results.

The JSON document is versioned and stable so lint debt can be diffed
across commits the same way ``bench_trend.py`` diffs the checked-in
benchmark trajectories.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.lint.runner import LintResult

#: Schema version of the JSON report.  Bump on breaking layout changes.
JSON_SCHEMA_VERSION = 1


def render_text(result: LintResult, show_suppressed: bool = False) -> str:
    """One ``path:line:col: rule: message`` line per finding, plus a summary."""
    lines: List[str] = []
    for finding in result.findings:
        lines.append(
            f"{finding.path}:{finding.line}:{finding.col}: "
            f"{finding.rule}: {finding.message}"
        )
    if show_suppressed:
        for finding in result.suppressed:
            lines.append(
                f"{finding.path}:{finding.line}:{finding.col}: "
                f"{finding.rule}: [suppressed: {finding.justification}] "
                f"{finding.message}"
            )
    total = len(result.findings)
    if total:
        by_rule = ", ".join(
            f"{rule}={count}" for rule, count in sorted(result.by_rule().items())
        )
        lines.append(f"found {total} finding(s) in {result.files_checked} file(s): {by_rule}")
    else:
        lines.append(
            f"clean: {result.files_checked} file(s), "
            f"{len(result.rules_run)} rule(s), "
            f"{len(result.suppressed)} suppressed finding(s)"
        )
    return "\n".join(lines)


def report_dict(result: LintResult) -> Dict[str, Any]:
    """The machine-readable report as a plain dictionary."""
    return {
        "version": JSON_SCHEMA_VERSION,
        "tool": "repro.lint",
        "files_checked": result.files_checked,
        "rules_run": list(result.rules_run),
        "findings": [finding.to_dict() for finding in result.findings],
        "suppressed": [finding.to_dict() for finding in result.suppressed],
        "summary": {
            "total": len(result.findings),
            "suppressed": len(result.suppressed),
            "by_rule": result.by_rule(),
        },
    }


def render_json(result: LintResult) -> str:
    return json.dumps(report_dict(result), indent=2, sort_keys=True)


__all__ = ["JSON_SCHEMA_VERSION", "render_json", "render_text", "report_dict"]
