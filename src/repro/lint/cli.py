"""``python -m repro.lint`` command-line interface.

Exit codes: 0 clean, 1 findings, 2 usage error — so the linter can gate
CI the same way the test suite does.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.lint.registry import all_rules
from repro.lint.reporters import render_json, render_text
from repro.lint.runner import lint_paths


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "AST-based determinism & contract linter for the repro package: "
            "seeded-RNG discipline, private replayable streams, kwarg "
            "threading, stable sorts, read-only shared views and wall-clock "
            "containment."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (typically: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule ids to run exclusively",
    )
    parser.add_argument(
        "--ignore",
        default=None,
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also print findings silenced by justified suppressions",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    return parser


def _split(option: Optional[str]) -> Optional[List[str]]:
    if option is None:
        return None
    parts = [part.strip() for part in option.split(",") if part.strip()]
    return parts or None


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id:<20} {rule.description}")
        return 0

    if not args.paths:
        parser.print_usage(sys.stderr)
        print("error: no paths given (try: python -m repro.lint src)", file=sys.stderr)
        return 2

    try:
        result = lint_paths(
            args.paths, select=_split(args.select), ignore=_split(args.ignore)
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(render_json(result))
    else:
        print(render_text(result, show_suppressed=args.show_suppressed))
    return result.exit_code


__all__ = ["build_parser", "main"]
