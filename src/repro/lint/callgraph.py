"""A lightweight intra-package call-graph index.

The ``thread-kwargs`` rule needs to know, for every call site, which
keyword parameters the callee accepts.  Rather than a full type checker,
this module builds a best-effort symbol table over *all* files handed to
one lint run:

* module-level functions, indexed by ``(module, name)``;
* methods, indexed by ``(module, "Class.method")`` and resolved only for
  ``self.method(...)`` calls inside the same class;
* classes with an ``__init__``, indexed under the class name so that
  constructor calls participate in kwarg-forwarding checks.

Resolution is deliberately conservative: a call whose target cannot be
resolved inside the index is simply skipped, so the rule can only fire on
calls whose callee signature it actually knows.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class FunctionInfo:
    """Signature summary for one indexed function, method or constructor."""

    module: str
    qualname: str
    name: str
    #: Positional-capable parameter names, in order (``self``/``cls`` removed).
    positional: Tuple[str, ...]
    kwonly: Tuple[str, ...]
    has_varargs: bool
    has_varkw: bool
    lineno: int

    @property
    def keyword_capable(self) -> Tuple[str, ...]:
        return self.positional + self.kwonly

    def positional_index(self, param: str) -> Optional[int]:
        try:
            return self.positional.index(param)
        except ValueError:
            return None


def _signature(
    node: ast.AST, module: str, qualname: str, *, is_method: bool
) -> Optional[FunctionInfo]:
    if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return None
    args = node.args
    positional = [a.arg for a in args.posonlyargs] + [a.arg for a in args.args]
    if is_method and positional and positional[0] in ("self", "cls"):
        positional = positional[1:]
    return FunctionInfo(
        module=module,
        qualname=qualname,
        name=node.name,
        positional=tuple(positional),
        kwonly=tuple(a.arg for a in args.kwonlyargs),
        has_varargs=args.vararg is not None,
        has_varkw=args.kwarg is not None,
        lineno=node.lineno,
    )


class PackageIndex:
    """Function/method/constructor signatures across one lint run."""

    def __init__(self) -> None:
        self._functions: Dict[Tuple[str, str], FunctionInfo] = {}
        self._modules: List[str] = []

    @property
    def modules(self) -> List[str]:
        return list(self._modules)

    def add_module(self, module: str, tree: ast.Module) -> None:
        if module in self._modules:
            return
        self._modules.append(module)
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = _signature(node, module, node.name, is_method=False)
                if info is not None:
                    self._functions[(module, node.name)] = info
            elif isinstance(node, ast.ClassDef):
                self._add_class(module, node)

    def _add_class(self, module: str, node: ast.ClassDef) -> None:
        for item in node.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            qualname = f"{node.name}.{item.name}"
            info = _signature(item, module, qualname, is_method=True)
            if info is None:
                continue
            self._functions[(module, qualname)] = info
            if item.name == "__init__":
                # Constructor: callable through the bare class name.
                self._functions[(module, node.name)] = FunctionInfo(
                    module=module,
                    qualname=node.name,
                    name=node.name,
                    positional=info.positional,
                    kwonly=info.kwonly,
                    has_varargs=info.has_varargs,
                    has_varkw=info.has_varkw,
                    lineno=item.lineno,
                )

    def lookup(self, module: str, qualname: str) -> Optional[FunctionInfo]:
        return self._functions.get((module, qualname))

    def has_module(self, module: str) -> bool:
        return module in self._modules


def build_import_map(module: str, tree: ast.Module) -> Dict[str, str]:
    """Map local names to the dotted targets they were imported as.

    ``import a.b as c``        -> ``c: a.b``
    ``import a.b``             -> ``a: a`` (attribute chains resolve onward)
    ``from a.b import f``      -> ``f: a.b.f``
    ``from a.b import f as g`` -> ``g: a.b.f``
    ``from . import x``        -> resolved against ``module``'s package.
    """
    package_parts = module.split(".")[:-1]
    imports: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    imports[alias.asname] = alias.name
                else:
                    head = alias.name.split(".")[0]
                    imports.setdefault(head, head)
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base_parts = package_parts
                if node.level > 1:
                    cut = node.level - 1
                    base_parts = package_parts[:-cut] if cut else package_parts
                base = ".".join(base_parts)
                if node.module:
                    base = f"{base}.{node.module}" if base else node.module
            else:
                base = node.module or ""
            if not base:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                imports[local] = f"{base}.{alias.name}"
    return imports


def resolve_call_target(
    call: ast.Call,
    module: str,
    imports: Dict[str, str],
    index: PackageIndex,
    enclosing_class: Optional[str] = None,
) -> Optional[FunctionInfo]:
    """Resolve a call site to an indexed signature, or ``None``."""
    func = call.func
    if isinstance(func, ast.Name):
        local = imports.get(func.id)
        if local is not None:
            head, _, tail = local.rpartition(".")
            if head and index.has_module(head) and tail:
                return index.lookup(head, tail)
            return None
        return index.lookup(module, func.id)
    if isinstance(func, ast.Attribute):
        if (
            isinstance(func.value, ast.Name)
            and func.value.id == "self"
            and enclosing_class is not None
        ):
            return index.lookup(module, f"{enclosing_class}.{func.attr}")
        dotted = _dotted(func)
        if dotted is None:
            return None
        head = dotted.split(".")[0]
        target = imports.get(head)
        if target is None:
            return None
        dotted = target + dotted[len(head):]
        mod, _, name = dotted.rpartition(".")
        if mod and name and index.has_module(mod):
            return index.lookup(mod, name)
    return None


def _dotted(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def dotted_name(node: ast.AST) -> Optional[str]:
    """Public helper: the full ``a.b.c`` dotted name of an expression."""
    return _dotted(node)


__all__ = [
    "FunctionInfo",
    "PackageIndex",
    "build_import_map",
    "dotted_name",
    "resolve_call_target",
]
