"""Per-module analysis context shared by every rule."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.lint.callgraph import PackageIndex, build_import_map
from repro.lint.suppressions import Suppression, extract_comments, extract_suppressions


@dataclass
class ModuleContext:
    """Everything a rule may need to know about one source file.

    The context carries the parsed tree, raw source, comment/suppression
    tables, the module's import aliases and the run-wide
    :class:`~repro.lint.callgraph.PackageIndex`.
    """

    path: str
    module: str
    tree: ast.Module
    source: str
    lines: List[str] = field(default_factory=list)
    comments: Dict[int, str] = field(default_factory=dict)
    suppressions: List[Suppression] = field(default_factory=list)
    imports: Dict[str, str] = field(default_factory=dict)
    index: PackageIndex = field(default_factory=PackageIndex)

    @classmethod
    def build(
        cls, path: str, module: str, source: str, tree: ast.Module, index: PackageIndex
    ) -> "ModuleContext":
        lines = source.splitlines()
        return cls(
            path=path,
            module=module,
            tree=tree,
            source=source,
            lines=lines,
            comments=extract_comments(source),
            suppressions=extract_suppressions(source, lines),
            imports=build_import_map(module, tree),
            index=index,
        )

    @property
    def numpy_aliases(self) -> Set[str]:
        """Local names bound to the ``numpy`` module (``np`` by convention)."""
        return {
            local
            for local, target in self.imports.items()
            if target == "numpy"
        }

    @property
    def numpy_random_aliases(self) -> Set[str]:
        """Local names bound to the ``numpy.random`` module."""
        return {
            local
            for local, target in self.imports.items()
            if target == "numpy.random"
        }

    def in_package(self, *prefixes: str) -> bool:
        """Whether this module lives under any of the dotted ``prefixes``."""
        for prefix in prefixes:
            if self.module == prefix or self.module.startswith(prefix + "."):
                return True
        return False


__all__ = ["ModuleContext"]
