"""The :class:`Finding` record emitted by every lint rule."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location.

    ``suppressed`` findings were matched by a justified
    ``# repro-lint: disable=<rule> -- <why>`` comment; they are kept (and
    reported under ``--show-suppressed``) so that suppression debt stays
    visible, but they do not affect the exit code.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    suppressed: bool = False
    justification: Optional[str] = None

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "suppressed": self.suppressed,
        }
        if self.justification is not None:
            out["justification"] = self.justification
        return out

    def with_suppression(self, justification: str) -> "Finding":
        return Finding(
            rule=self.rule,
            path=self.path,
            line=self.line,
            col=self.col,
            message=self.message,
            suppressed=True,
            justification=justification,
        )


__all__ = ["Finding"]
