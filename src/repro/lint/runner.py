"""Orchestration: collect files, build the index, run rules, apply suppressions."""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.lint.callgraph import PackageIndex
from repro.lint.context import ModuleContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, all_rules

#: Rule id attached to files that fail to parse.
SYNTAX_ERROR_RULE = "syntax-error"


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    rules_run: List[str] = field(default_factory=list)

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0

    def by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts


def iter_python_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted, de-duplicated .py file list."""
    seen: Dict[str, None] = {}
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames if d not in ("__pycache__", ".git")
                )
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        seen[os.path.join(dirpath, name)] = None
        elif path.endswith(".py"):
            seen[path] = None
    return sorted(seen)


def module_name_for(path: str) -> str:
    """The dotted module name of ``path``, by walking ``__init__.py`` parents.

    Files outside any package resolve to their bare stem, which keeps the
    package-scoped rules (``stable-sort`` and friends) inert on loose
    scripts such as the benchmark drivers.
    """
    abspath = os.path.abspath(path)
    directory, filename = os.path.split(abspath)
    stem = os.path.splitext(filename)[0]
    parts: List[str] = [] if stem == "__init__" else [stem]
    while os.path.isfile(os.path.join(directory, "__init__.py")):
        directory, package = os.path.split(directory)
        parts.insert(0, package)
        if not package:
            break
    return ".".join(parts) if parts else stem


def _select_rules(
    select: Optional[Sequence[str]], ignore: Optional[Sequence[str]]
) -> List[Rule]:
    rules = all_rules()
    if select:
        wanted = set(select)
        unknown = wanted - {rule.id for rule in rules}
        if unknown:
            raise ValueError(f"unknown rule(s): {', '.join(sorted(unknown))}")
        rules = [rule for rule in rules if rule.id in wanted]
    if ignore:
        dropped = set(ignore)
        rules = [rule for rule in rules if rule.id not in dropped]
    return rules


def _parse_files(
    files: Sequence[str],
) -> Tuple[List[Tuple[str, str, str, ast.Module]], List[Finding]]:
    parsed: List[Tuple[str, str, str, ast.Module]] = []
    errors: List[Finding] = []
    for path in files:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
            tree = ast.parse(source, filename=path)
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            line = getattr(exc, "lineno", None) or 1
            errors.append(
                Finding(
                    rule=SYNTAX_ERROR_RULE,
                    path=path,
                    line=int(line),
                    col=0,
                    message=f"could not parse file: {exc}",
                )
            )
            continue
        parsed.append((path, module_name_for(path), source, tree))
    return parsed, errors


def _apply_suppressions(
    ctx: ModuleContext, findings: Iterable[Finding]
) -> Tuple[List[Finding], List[Finding]]:
    by_line: Dict[int, List[int]] = {}
    for position, suppression in enumerate(ctx.suppressions):
        by_line.setdefault(suppression.applies_to, []).append(position)
    active: List[Finding] = []
    suppressed: List[Finding] = []
    for finding in findings:
        matched = None
        if finding.rule != "bare-suppression":
            for position in by_line.get(finding.line, []):
                suppression = ctx.suppressions[position]
                if finding.rule in suppression.rules and suppression.justified:
                    matched = suppression
                    break
        if matched is None:
            active.append(finding)
        else:
            suppressed.append(finding.with_suppression(matched.justification))
    return active, suppressed


def lint_paths(
    paths: Sequence[str],
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> LintResult:
    """Lint every Python file under ``paths`` and return a :class:`LintResult`."""
    files = iter_python_files(paths)
    parsed, errors = _parse_files(files)

    index = PackageIndex()
    for _, module, _, tree in parsed:
        index.add_module(module, tree)

    rules = _select_rules(select, ignore)
    result = LintResult(
        files_checked=len(files), rules_run=[rule.id for rule in rules]
    )
    result.findings.extend(errors)
    for path, module, source, tree in parsed:
        ctx = ModuleContext.build(path, module, source, tree, index)
        raw: List[Finding] = []
        for rule in rules:
            if rule.applies_to(ctx):
                raw.extend(rule.check(ctx))
        active, suppressed = _apply_suppressions(ctx, raw)
        result.findings.extend(active)
        result.suppressed.extend(suppressed)
    result.findings.sort(key=Finding.sort_key)
    result.suppressed.sort(key=Finding.sort_key)
    return result


__all__ = [
    "LintResult",
    "SYNTAX_ERROR_RULE",
    "iter_python_files",
    "lint_paths",
    "module_name_for",
]
