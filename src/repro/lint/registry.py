"""Rule base class and the global rule registry."""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Type, Union

from repro.lint.context import ModuleContext
from repro.lint.findings import Finding


class Rule:
    """Base class for lint rules.

    Subclasses set ``id``/``description`` and implement :meth:`check`.
    :meth:`applies_to` lets a rule scope itself to parts of the tree (the
    ``stable-sort`` rule only patrols ``repro.core``/``repro.gossip``, for
    example); out-of-scope modules are skipped entirely.
    """

    id: str = ""
    description: str = ""

    def applies_to(self, ctx: ModuleContext) -> bool:
        return True

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(
        self, ctx: ModuleContext, node: Union[ast.AST, int], message: str
    ) -> Finding:
        """Build a finding anchored at an AST node (or a bare line number)."""
        if isinstance(node, int):
            line, col = node, 0
        else:
            line = getattr(node, "lineno", 1)
            col = getattr(node, "col_offset", 0)
        return Finding(
            rule=self.id, path=ctx.path, line=line, col=col, message=message
        )


#: All registered rules, by id.  Populated by importing
#: :mod:`repro.lint.rules`, whose submodules self-register at import time.
RULES: Dict[str, Rule] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: instantiate and register a rule by its id."""
    rule = rule_cls()
    if not rule.id:
        raise ValueError(f"rule {rule_cls.__name__} has no id")
    if rule.id in RULES and type(RULES[rule.id]) is not rule_cls:
        raise ValueError(f"duplicate rule id {rule.id!r}")
    RULES[rule.id] = rule
    return rule_cls


def all_rules() -> List[Rule]:
    """Registered rules in stable (id-sorted) order."""
    _ensure_loaded()
    return [RULES[rule_id] for rule_id in sorted(RULES)]


def get_rule(rule_id: str) -> Rule:
    _ensure_loaded()
    return RULES[rule_id]


def known_rule_ids() -> List[str]:
    _ensure_loaded()
    return sorted(RULES)


def _ensure_loaded() -> None:
    # Imported lazily to avoid a registry <-> rules import cycle.
    import repro.lint.rules  # noqa: F401  (import registers the rules)


__all__ = ["RULES", "Rule", "all_rules", "get_rule", "known_rule_ids", "register"]
