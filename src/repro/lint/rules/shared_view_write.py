"""``shared-view-write``: no in-place mutation of read-only shared views.

:func:`repro.experiments.runner.run_trials` publishes value arrays to
worker processes as read-only shared-memory views, and the engines hand
out cached read-only masks and identity arrays.  Writing to such a view
either raises at runtime (``writeable=False``) or — worse, through a
copy that silently re-enables writes — corrupts data shared across
trials.  The convention is machine-checkable: parameters annotated
:data:`repro.utils.views.ReadOnlyArray` are contractually read-only, and
this rule flags every in-place mutation of them: augmented assignment,
slice/element assignment, ``out=`` targets, ``np.<ufunc>.at`` and
mutating ndarray methods.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from repro.lint.context import ModuleContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

#: The annotation (by terminal name) that marks a read-only view parameter.
ANNOTATION_NAME = "ReadOnlyArray"

#: ndarray methods that mutate the receiver in place.
_MUTATING_METHODS = frozenset(
    {"sort", "fill", "put", "resize", "partition", "setflags", "itemset", "byteswap"}
)


def _annotation_matches(annotation: Optional[ast.expr]) -> bool:
    if annotation is None:
        return False
    if isinstance(annotation, ast.Name):
        return annotation.id == ANNOTATION_NAME
    if isinstance(annotation, ast.Attribute):
        return annotation.attr == ANNOTATION_NAME
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        return ANNOTATION_NAME in annotation.value
    if isinstance(annotation, ast.Subscript):
        # Optional[ReadOnlyArray] and friends.
        return any(
            _annotation_matches(child)
            for child in ast.walk(annotation)
            if isinstance(child, (ast.Name, ast.Attribute))
            and child is not annotation
        )
    return False


def _readonly_params(func: ast.AST) -> Set[str]:
    args = func.args  # type: ignore[attr-defined]
    params: Set[str] = set()
    for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
        if _annotation_matches(arg.annotation):
            params.add(arg.arg)
    return params


def _subscript_base(node: ast.expr) -> Optional[str]:
    while isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _walk_shallow(node: ast.AST) -> Iterator[ast.AST]:
    stack: List[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        yield child
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(child))


@register
class SharedViewWriteRule(Rule):
    id = "shared-view-write"
    description = (
        "no in-place writes (augmented/slice assignment, out=, np.<ufunc>.at, "
        "mutating methods) on ReadOnlyArray-annotated parameters"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                params = _readonly_params(node)
                if params:
                    findings.extend(self._check_function(ctx, node, params))
        return iter(findings)

    def _check_function(
        self, ctx: ModuleContext, func: ast.AST, params: Set[str]
    ) -> Iterator[Finding]:
        findings: List[Finding] = []
        name = getattr(func, "name", "<function>")
        for node in _walk_shallow(func):
            if isinstance(node, ast.AugAssign):
                base = (
                    node.target.id
                    if isinstance(node.target, ast.Name)
                    else _subscript_base(node.target)
                )
                if base in params:
                    findings.append(
                        self._mutation(ctx, node, name, base, "augmented assignment")
                    )
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    base = _subscript_base(target)
                    if isinstance(target, ast.Subscript) and base in params:
                        findings.append(
                            self._mutation(
                                ctx, node, name, base, "slice/element assignment"
                            )
                        )
            elif isinstance(node, ast.Call):
                findings.extend(self._check_call(ctx, node, name, params))
        return iter(findings)

    def _check_call(
        self, ctx: ModuleContext, call: ast.Call, func_name: str, params: Set[str]
    ) -> Iterator[Finding]:
        findings: List[Finding] = []
        for keyword in call.keywords:
            if (
                keyword.arg == "out"
                and isinstance(keyword.value, ast.Name)
                and keyword.value.id in params
            ):
                findings.append(
                    self._mutation(
                        ctx, call, func_name, keyword.value.id, "out= target"
                    )
                )
        func = call.func
        if isinstance(func, ast.Attribute):
            # param.sort(...) and friends
            if (
                isinstance(func.value, ast.Name)
                and func.value.id in params
                and func.attr in _MUTATING_METHODS
            ):
                findings.append(
                    self._mutation(
                        ctx,
                        call,
                        func_name,
                        func.value.id,
                        f"mutating method .{func.attr}()",
                    )
                )
            # np.<ufunc>.at(param, ...)
            elif (
                func.attr == "at"
                and call.args
                and isinstance(call.args[0], ast.Name)
                and call.args[0].id in params
            ):
                findings.append(
                    self._mutation(
                        ctx, call, func_name, call.args[0].id, "ufunc .at() scatter"
                    )
                )
        return iter(findings)

    def _mutation(
        self, ctx: ModuleContext, node: ast.AST, func: str, param: str, what: str
    ) -> Finding:
        return self.finding(
            ctx,
            node,
            f"'{func}' mutates read-only view parameter '{param}' via {what}; "
            "ReadOnlyArray parameters are shared across trials/processes — "
            "copy before mutating (arr = arr.copy())",
        )


__all__ = ["ANNOTATION_NAME", "SharedViewWriteRule"]
