"""``wallclock``: wall-clock reads stay inside the observability layer.

``time.time()`` / ``datetime.now()`` in algorithm or driver code makes
results depend on when they ran, which breaks seeded replay and
machine-diffable experiment rows.  Only :mod:`repro.obs` (whose job is
timing) and the ``benchmarks/`` scripts may read the wall clock;
``time.perf_counter`` is always fine (a duration, not a timestamp, and
only ever observed — never fed back into algorithm state).

The event-loop clock (``loop.time()``) gets the same treatment with its
own containment: only :mod:`repro.net.transport` may read it (per-RPC
latency is a transport property).  Protocol, runner or detector code
timing itself off the loop clock would couple seeded behaviour to
scheduling jitter — deadlines belong to ``asyncio.wait_for``, latency
measurement to the transport.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.lint.callgraph import dotted_name
from repro.lint.context import ModuleContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

#: Dotted-name suffixes that read the wall clock.
_WALLCLOCK_SUFFIXES = (
    "time.time",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "date.today",
)


def _matches_suffix(dotted: str) -> bool:
    for suffix in _WALLCLOCK_SUFFIXES:
        if dotted == suffix or dotted.endswith("." + suffix):
            return True
    return False


@register
class WallclockRule(Rule):
    id = "wallclock"
    description = (
        "no time.time()/datetime.now() outside repro.obs and benchmarks/"
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        if ctx.in_package("repro.obs"):
            return False
        path_parts = ctx.path.replace("\\", "/").split("/")
        if "benchmarks" in path_parts:
            return False
        return True

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        findings: List[Finding] = []
        # Names bound directly to wall-clock callables by `from` imports.
        direct = {
            local
            for local, target in ctx.imports.items()
            if target in ("time.time", "datetime.datetime.now")
        }
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom):
                if node.module == "time" and not node.level:
                    for alias in node.names:
                        if alias.name == "time":
                            findings.append(
                                self.finding(
                                    ctx,
                                    node,
                                    "importing time.time outside repro.obs: "
                                    "wall-clock reads break seeded replay "
                                    "(use time.perf_counter for durations)",
                                )
                            )
            elif isinstance(node, ast.Call):
                dotted = dotted_name(node.func)
                if dotted is None:
                    if isinstance(node.func, ast.Name) and node.func.id in direct:
                        findings.append(self._finding_for(ctx, node, node.func.id))
                    continue
                if _matches_suffix(dotted):
                    findings.append(self._finding_for(ctx, node, dotted))
                elif (
                    (dotted == "loop.time" or dotted.endswith("loop.time"))
                    and ctx.module != "repro.net.transport"
                ):
                    findings.append(
                        self.finding(
                            ctx,
                            node,
                            f"{dotted}() reads the event-loop clock outside "
                            "repro.net.transport; RPC latency is measured "
                            "by the transport — use asyncio.wait_for for "
                            "deadlines instead of hand-rolled clock math",
                        )
                    )
        return iter(findings)

    def _finding_for(self, ctx: ModuleContext, node: ast.Call, name: str) -> Finding:
        return self.finding(
            ctx,
            node,
            f"{name}() reads the wall clock outside repro.obs/benchmarks; "
            "timestamps make seeded runs non-replayable (use "
            "time.perf_counter for durations, or route timing through "
            "repro.obs)",
        )


__all__ = ["WallclockRule"]
