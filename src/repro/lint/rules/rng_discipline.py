"""``rng-discipline``: all randomness must be seeded, replayable numpy streams.

Flags, inside the ``repro`` package:

* any import of the stdlib :mod:`random` module — its global state cannot
  be replayed per-subsystem and silently couples callers;
* legacy ``np.random.<dist>`` module-level draws and ``np.random.seed`` —
  they mutate the hidden global ``RandomState`` and break the "one
  private stream per subsystem" replay model;
* ``default_rng()`` with no (or an explicit ``None``) seed — an unseeded
  generator can never reproduce a run.

Seeded construction (``default_rng(seed)``), ``SeedSequence`` and the
generator/bit-generator *types* remain allowed; :class:`repro.utils.rand.
RandomSource` is the blessed entry point.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.lint.callgraph import dotted_name
from repro.lint.context import ModuleContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

#: numpy.random attributes that are fine to reference and call: seeded
#: construction surfaces and generator types, not global-state draws.
ALLOWED_NP_RANDOM = frozenset(
    {
        "default_rng",
        "SeedSequence",
        "Generator",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)


def _is_unseeded(call: ast.Call) -> bool:
    if not call.args and not call.keywords:
        return True
    if (
        len(call.args) == 1
        and not call.keywords
        and isinstance(call.args[0], ast.Constant)
        and call.args[0].value is None
    ):
        return True
    return False


@register
class RngDisciplineRule(Rule):
    id = "rng-discipline"
    description = (
        "no stdlib random, no legacy np.random.<dist>/np.random.seed, "
        "no unseeded default_rng() inside the repro package"
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.in_package("repro")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        findings: List[Finding] = []
        np_random_prefixes = {
            f"{alias}.random" for alias in ctx.numpy_aliases
        } | ctx.numpy_random_aliases
        unseeded_names = {
            local
            for local, target in ctx.imports.items()
            if target == "numpy.random.default_rng"
        }
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        findings.append(
                            self.finding(
                                ctx,
                                node,
                                "stdlib 'random' is banned: its global state "
                                "cannot be replayed; use repro.utils.rand."
                                "RandomSource",
                            )
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random" and not node.level:
                    findings.append(
                        self.finding(
                            ctx,
                            node,
                            "stdlib 'random' is banned: its global state "
                            "cannot be replayed; use repro.utils.rand."
                            "RandomSource",
                        )
                    )
                elif node.module == "numpy.random" and not node.level:
                    for alias in node.names:
                        if alias.name != "*" and alias.name not in ALLOWED_NP_RANDOM:
                            findings.append(
                                self.finding(
                                    ctx,
                                    node,
                                    f"legacy numpy.random.{alias.name} draws "
                                    "from the hidden global RandomState; use "
                                    "a seeded Generator via RandomSource",
                                )
                            )
            elif isinstance(node, ast.Call):
                findings.extend(
                    self._check_call(ctx, node, np_random_prefixes, unseeded_names)
                )
        return iter(findings)

    def _check_call(
        self,
        ctx: ModuleContext,
        call: ast.Call,
        np_random_prefixes: set,
        unseeded_names: set,
    ) -> Iterator[Finding]:
        dotted = dotted_name(call.func)
        if dotted is None:
            if isinstance(call.func, ast.Name) and call.func.id in unseeded_names:
                dotted = "numpy.random.default_rng"
            else:
                return iter(())
        if isinstance(call.func, ast.Name) and call.func.id in unseeded_names:
            if _is_unseeded(call):
                return iter(
                    [
                        self.finding(
                            ctx,
                            call,
                            "default_rng() without an explicit seed or "
                            "SeedSequence cannot reproduce a run",
                        )
                    ]
                )
            return iter(())
        head, _, attr = dotted.rpartition(".")
        if head not in np_random_prefixes:
            return iter(())
        if attr == "default_rng":
            if _is_unseeded(call):
                return iter(
                    [
                        self.finding(
                            ctx,
                            call,
                            "default_rng() without an explicit seed or "
                            "SeedSequence cannot reproduce a run",
                        )
                    ]
                )
            return iter(())
        if attr in ALLOWED_NP_RANDOM:
            return iter(())
        return iter(
            [
                self.finding(
                    ctx,
                    call,
                    f"legacy np.random.{attr}() draws from the hidden global "
                    "RandomState; use a seeded Generator via "
                    "repro.utils.rand.RandomSource",
                )
            ]
        )


__all__ = ["ALLOWED_NP_RANDOM", "RngDisciplineRule"]
