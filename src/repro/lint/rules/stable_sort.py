"""``stable-sort``: sorts on the replay-critical paths must be stable.

``np.argsort``/``np.sort`` default to an unstable introsort whose
permutation of *equal* keys is an implementation detail — on the token
bookkeeping and quantile paths that permutation feeds owner assignment
and tie resolution, so an unstable kind can silently reorder tied values
between numpy versions and break the sha256 stream pins.  Inside
``repro.core`` and ``repro.gossip`` every ``np.sort``/``np.argsort``
call must pass ``kind="stable"`` explicitly.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.lint.callgraph import dotted_name
from repro.lint.context import ModuleContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

_SORT_NAMES = ("sort", "argsort")


@register
class StableSortRule(Rule):
    id = "stable-sort"
    description = (
        'np.sort/np.argsort in repro.core and repro.gossip must pass kind="stable"'
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.in_package("repro.core", "repro.gossip")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        findings: List[Finding] = []
        prefixes = set(ctx.numpy_aliases) | {"numpy"}
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted is None:
                continue
            head, _, attr = dotted.rpartition(".")
            if attr not in _SORT_NAMES or head not in prefixes:
                continue
            kind = next(
                (kw for kw in node.keywords if kw.arg == "kind"), None
            )
            if kind is None:
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        f"np.{attr} without kind=\"stable\": the default "
                        "introsort permutes equal keys unstably, which can "
                        "silently break stream pins on tie-heavy inputs",
                    )
                )
            elif not (
                isinstance(kind.value, ast.Constant) and kind.value.value == "stable"
            ):
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        f"np.{attr} must use kind=\"stable\" on the "
                        "replay-critical paths (repro.core/repro.gossip)",
                    )
                )
        return iter(findings)


__all__ = ["StableSortRule"]
