"""``bare-suppression``: every suppression must carry a justification.

A ``# repro-lint: disable=<rule>`` with no ``-- <why>`` text hides a
finding without recording the reasoning, which is exactly how convention
debt becomes invisible.  Bare suppressions are therefore (a) not
honoured by the runner and (b) flagged by this meta-rule, which also
catches suppressions naming unknown rules (typos that would otherwise
silently suppress nothing).  Findings of this rule cannot themselves be
suppressed.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.lint.context import ModuleContext
from repro.lint.findings import Finding
from repro.lint.registry import RULES, Rule, register


@register
class BareSuppressionRule(Rule):
    id = "bare-suppression"
    description = (
        "# repro-lint: disable=... comments must carry a non-empty "
        "'-- justification' and name known rules"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        findings: List[Finding] = []
        for suppression in ctx.suppressions:
            if not suppression.justified:
                findings.append(
                    self.finding(
                        ctx,
                        suppression.line,
                        "suppression without justification: write "
                        "'# repro-lint: disable=<rule> -- <why this is safe>'",
                    )
                )
            for rule_id in suppression.rules:
                if rule_id not in RULES:
                    findings.append(
                        self.finding(
                            ctx,
                            suppression.line,
                            f"suppression names unknown rule '{rule_id}'",
                        )
                    )
        return iter(findings)


__all__ = ["BareSuppressionRule"]
