"""``no-unawaited-send``: coroutine sends must be awaited (or gathered).

A bare ``rpc.call(...)`` statement in asyncio code creates a coroutine
object and throws it away: nothing is sent, no error surfaces beyond a
"never awaited" warning that CI output swallows, and the protocol silently
loses a message.  Unlike a forgotten return value this is always a bug.

Two patterns are flagged, as *statements* whose value is discarded:

* anywhere in ``repro``: a bare call to a function defined with
  ``async def`` in the same module;
* inside :mod:`repro.net`: a bare method call whose name is one of the
  backend's coroutine send/serve verbs (``call``, ``run_round``) —
  cross-module sends the first pattern cannot see.

Scheduling the coroutine on purpose (``asyncio.create_task``, ``gather``,
``await``) never matches: those consume the coroutine.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set

from repro.lint.context import ModuleContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

#: Coroutine method names on the repro.net surfaces (RpcClient.call,
#: Transport.call, SwimFailureDetector.run_round).
_NET_SEND_METHODS = ("call", "run_round")


def _local_async_defs(tree: ast.Module) -> Set[str]:
    return {
        node.name
        for node in ast.walk(tree)
        if isinstance(node, ast.AsyncFunctionDef)
    }


@register
class NoUnawaitedSendRule(Rule):
    id = "no-unawaited-send"
    description = (
        "coroutine RPC/send calls must be awaited, gathered or scheduled — "
        "a bare call discards the coroutine and sends nothing"
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.in_package("repro")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        async_defs = _local_async_defs(ctx.tree)
        in_net = ctx.in_package("repro.net")
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            # A statement of the form `f(...)` whose result is discarded.
            if not isinstance(node, ast.Expr) or not isinstance(
                node.value, ast.Call
            ):
                continue
            call = node.value
            func = call.func
            if isinstance(func, ast.Name) and func.id in async_defs:
                findings.append(
                    self.finding(
                        ctx,
                        call,
                        f"{func.id}(...) is an async def; calling it without "
                        "await discards the coroutine and nothing runs",
                    )
                )
            elif (
                in_net
                and isinstance(func, ast.Attribute)
                and func.attr in _NET_SEND_METHODS
            ):
                findings.append(
                    self.finding(
                        ctx,
                        call,
                        f".{func.attr}(...) is a coroutine send on the net "
                        "surface; a bare call discards the coroutine — "
                        "await it, gather it, or create_task it",
                    )
                )
        return iter(findings)


__all__ = ["NoUnawaitedSendRule"]
