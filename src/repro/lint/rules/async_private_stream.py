"""``async-private-stream``: no RNG generator shared across asyncio tasks.

A :class:`~repro.utils.rand.RandomSource` (or raw numpy ``Generator``) is
stateful: every draw advances it.  Hand the *same* generator to several
concurrently scheduled tasks and the draw order — and therefore every
seeded result — depends on how the event loop happened to interleave them.
That is precisely the nondeterminism the repository's private-stream
design rule exists to prevent, and it is invisible in single-task tests.

The rule flags fan-outs — ``asyncio.create_task`` / ``ensure_future`` /
``TaskGroup.create_task`` inside a loop, or ``asyncio.gather`` over a
comprehension — whose task arguments reference a shared generator binding
(a name assigned from ``RandomSource(...)`` or ``default_rng(...)``).
The sanctioned pattern is per-task streams derived *before* the fan-out:
``rng.spawn(k)`` / ``rng.child()`` / ``SeedSequence.spawn``, one stream
per task, which keeps each task's draws independent of scheduling.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set

from repro.lint.callgraph import dotted_name
from repro.lint.context import ModuleContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

#: Callables whose result is a shared, stateful generator.
_GENERATOR_FACTORIES = ("RandomSource", "default_rng")

#: Method names that schedule a coroutine as a concurrent task.
_SPAWNERS = ("create_task", "ensure_future")


def _is_generator_factory(call: ast.Call) -> bool:
    dotted = dotted_name(call.func)
    if dotted is None and isinstance(call.func, ast.Name):
        dotted = call.func.id
    if dotted is None:
        return False
    tail = dotted.rsplit(".", 1)[-1]
    return tail in _GENERATOR_FACTORIES


def _shared_generator_names(tree: ast.Module) -> Set[str]:
    """Names bound directly to a generator object (not to a derived child)."""
    shared: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            if _is_generator_factory(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        shared.add(target.id)
    return shared


def _references(node: ast.AST, names: Set[str]) -> bool:
    for inner in ast.walk(node):
        if isinstance(inner, ast.Name) and inner.id in names:
            return True
    return False


def _spawner_calls(node: ast.AST) -> Iterator[ast.Call]:
    for inner in ast.walk(node):
        if not isinstance(inner, ast.Call):
            continue
        func = inner.func
        name = None
        if isinstance(func, ast.Attribute):
            name = func.attr
        elif isinstance(func, ast.Name):
            name = func.id
        if name in _SPAWNERS:
            yield inner


@register
class AsyncPrivateStreamRule(Rule):
    id = "async-private-stream"
    description = (
        "no shared RNG generator passed into concurrently spawned asyncio "
        "tasks; derive per-task streams (spawn/child) before the fan-out"
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.in_package("repro")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        shared = _shared_generator_names(ctx.tree)
        if not shared:
            return iter(())
        findings: List[Finding] = []
        seen: Set[int] = set()
        for node in ast.walk(ctx.tree):
            # Fan-out shape 1: spawning tasks from inside a loop.
            if isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
                for call in _spawner_calls(node):
                    if id(call) in seen:
                        continue
                    if any(_references(arg, shared) for arg in call.args):
                        seen.add(id(call))
                        findings.append(self._finding_for(ctx, call))
            # Fan-out shape 2: gather over a comprehension of coroutines.
            elif isinstance(node, ast.Call):
                dotted = dotted_name(node.func)
                if dotted is None or not dotted.endswith("gather"):
                    continue
                for arg in node.args:
                    target = arg.value if isinstance(arg, ast.Starred) else arg
                    if isinstance(
                        target, (ast.GeneratorExp, ast.ListComp)
                    ) and _references(target.elt, shared):
                        if id(node) not in seen:
                            seen.add(id(node))
                            findings.append(self._finding_for(ctx, node))
        return iter(findings)

    def _finding_for(self, ctx: ModuleContext, node: ast.Call) -> Finding:
        return self.finding(
            ctx,
            node,
            "a shared RNG generator is passed into concurrently spawned "
            "tasks; the draw order then depends on event-loop scheduling "
            "and seeded runs stop replaying — derive one stream per task "
            "with rng.spawn()/rng.child() before the fan-out",
        )


__all__ = ["AsyncPrivateStreamRule"]
