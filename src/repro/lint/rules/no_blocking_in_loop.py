"""``no-blocking-in-loop``: no blocking calls inside ``repro.net`` coroutines.

A synchronous sleep, socket or file operation inside a coroutine freezes
the *entire* event loop: every node task, every RPC deadline timer and the
metrics endpoint stall together.  Worse than slow — it distorts exactly
the timing behaviour (suspicion latency, retry schedules) the net test
suite pins.  Blocking work belongs in ``await``-able form
(``asyncio.sleep``, stream APIs) or behind ``run_in_executor``.

Scoped to :mod:`repro.net`, the only package whose code runs on an event
loop; flagged only *inside* ``async def`` bodies, so module-level setup
and plain helper functions may still open files.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.lint.callgraph import dotted_name
from repro.lint.context import ModuleContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

#: Dotted-name suffixes of blocking calls that stall an event loop.
_BLOCKING_SUFFIXES = (
    "time.sleep",
    "socket.socket",
    "socket.create_connection",
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
    "os.system",
    "urllib.request.urlopen",
    "requests.get",
    "requests.post",
)


def _matches_blocking(dotted: str) -> bool:
    for suffix in _BLOCKING_SUFFIXES:
        if dotted == suffix or dotted.endswith("." + suffix):
            return True
    return False


@register
class NoBlockingInLoopRule(Rule):
    id = "no-blocking-in-loop"
    description = (
        "no time.sleep / sync socket / sync file IO inside repro.net "
        "coroutines; one blocking call stalls every node task on the loop"
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.in_package("repro.net")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.AsyncFunctionDef):
                continue
            for inner in ast.walk(node):
                if not isinstance(inner, ast.Call):
                    continue
                if isinstance(inner.func, ast.Name) and inner.func.id == "open":
                    findings.append(
                        self.finding(
                            ctx,
                            inner,
                            "open() inside a coroutine blocks the event "
                            "loop on disk IO; read the file before the "
                            "async phase or use run_in_executor",
                        )
                    )
                    continue
                dotted = dotted_name(inner.func)
                if dotted is not None and _matches_blocking(dotted):
                    findings.append(
                        self.finding(
                            ctx,
                            inner,
                            f"{dotted}() blocks the event loop inside a "
                            "coroutine — every node task and RPC deadline "
                            "stalls with it; use the asyncio equivalent "
                            "(asyncio.sleep, streams, run_in_executor)",
                        )
                    )
        return iter(findings)


__all__ = ["NoBlockingInLoopRule"]
