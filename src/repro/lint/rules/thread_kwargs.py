"""``thread-kwargs``: contract kwargs must be forwarded down the call chain.

The PR-6 bug class: a driver accepts ``keep_history=`` (or ``engine=``,
``dtype=``, ``metrics=``, ``topology=``, ``rng=``) and calls a helper
that accepts the same kwarg — but forgets to pass it, so the caller's
setting is silently dropped and the callee falls back to its default.
With a defaulted kwarg nothing crashes; the run is just subtly wrong
(history missing, wrong engine, un-threaded metrics).

The rule builds a lightweight intra-package call graph (module-level
functions, same-class ``self.`` methods, and class constructors) and
flags every call site where a tracked kwarg is accepted by both caller
and callee but neither passed by keyword, covered positionally, nor
splatted through ``**kwargs``.

Deliberate non-forwarding (a helper that *must* get a fresh metrics
object, say) is expressed by passing the kwarg explicitly
(``metrics=None``) or by a justified suppression comment.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from repro.lint.callgraph import FunctionInfo, resolve_call_target
from repro.lint.context import ModuleContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

#: The contract kwargs whose silent dropping this rule prevents.
TRACKED_KWARGS = ("engine", "dtype", "metrics", "keep_history", "topology", "rng")


def _function_nodes(
    tree: ast.Module,
) -> Iterator[Tuple[ast.AST, Optional[str]]]:
    """Yield ``(function_node, enclosing_class_name)`` pairs, outermost only."""
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, None
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield item, node.name


def _walk_shallow(node: ast.AST) -> Iterator[ast.AST]:
    """Walk ``node``'s body without entering nested function/class scopes."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        yield child
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(child))


def _tracked_params(node: ast.AST) -> Tuple[str, ...]:
    args = node.args  # type: ignore[attr-defined]
    names = (
        [a.arg for a in args.posonlyargs]
        + [a.arg for a in args.args]
        + [a.arg for a in args.kwonlyargs]
    )
    return tuple(name for name in TRACKED_KWARGS if name in names)


def _call_covers(call: ast.Call, callee: FunctionInfo, param: str) -> bool:
    for keyword in call.keywords:
        if keyword.arg is None or keyword.arg == param:
            # Explicit keyword, or a **kwargs splat that may carry it.
            return True
    if any(isinstance(arg, ast.Starred) for arg in call.args):
        return True  # positional coverage unknowable; assume forwarded
    position = callee.positional_index(param)
    if position is not None and len(call.args) > position:
        return True
    return False


@register
class ThreadKwargsRule(Rule):
    id = "thread-kwargs"
    description = (
        "a function accepting engine/dtype/metrics/keep_history/topology/rng "
        "must forward it to callees that accept the same kwarg"
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.in_package("repro")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        findings: List[Finding] = []
        for func, enclosing_class in _function_nodes(ctx.tree):
            tracked = _tracked_params(func)
            if not tracked:
                continue
            for node in _walk_shallow(func):
                if not isinstance(node, ast.Call):
                    continue
                callee = resolve_call_target(
                    node, ctx.module, ctx.imports, ctx.index, enclosing_class
                )
                if callee is None:
                    continue
                callee_kwargs = set(callee.keyword_capable)
                for param in tracked:
                    if param not in callee_kwargs:
                        continue
                    if not _call_covers(node, callee, param):
                        name = getattr(func, "name", "<function>")
                        findings.append(
                            self.finding(
                                ctx,
                                node,
                                f"'{name}' accepts '{param}' but calls "
                                f"'{callee.qualname}' without forwarding it; "
                                f"pass {param}= explicitly (forward it, or "
                                "state the intentional value) or add a "
                                "justified suppression",
                            )
                        )
        return iter(findings)


__all__ = ["TRACKED_KWARGS", "ThreadKwargsRule"]
