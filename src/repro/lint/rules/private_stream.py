"""``private-stream``: replayable subsystems must own their stream.

:class:`repro.faults.FaultInjector` and the
:class:`repro.topology.dynamic.TopologyProcess` subclasses document a
replay contract: ``begin()`` replays the identical schedule on every
run, which is what keeps loop and vectorized executions bit-identical
and seeded chaos replayable.  That only works if the subsystem derives a
private ``SeedSequence`` at construction time and rebuilds its generator
from it — storing the *caller's* generator (or drawing from it during
``__init__``) entangles the private schedule with the caller's stream
position, so the second run replays a different schedule.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from repro.lint.context import ModuleContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

#: Classes bound by the private-stream contract, by their own name ...
_CONTRACT_CLASS_NAMES = frozenset({"FaultInjector"})
#: ... or by the base class they derive from.
_CONTRACT_BASE_NAMES = frozenset({"TopologyProcess"})

#: Constructor parameters that carry the caller's randomness.
_RNG_PARAM_NAMES = frozenset({"rng", "seed", "generator", "gen"})

#: ``self.<attr>`` names under which storing a raw generator is flagged.
_GENERATOR_ATTRS = frozenset(
    {"rng", "_rng", "gen", "_gen", "generator", "_generator"}
)

#: Draw methods: calling these on the caller's rng inside ``__init__``
#: consumes the caller's stream during construction.
_DRAW_METHODS = frozenset(
    {
        "random",
        "integers",
        "choice",
        "shuffle",
        "permutation",
        "normal",
        "uniform",
        "standard_normal",
        "exponential",
    }
)


def _base_name(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _is_contract_class(node: ast.ClassDef) -> bool:
    if node.name in _CONTRACT_CLASS_NAMES:
        return True
    for base in node.bases:
        if _base_name(base) in _CONTRACT_BASE_NAMES:
            return True
    return False


@register
class PrivateStreamRule(Rule):
    id = "private-stream"
    description = (
        "FaultInjector / TopologyProcess subclasses must spawn their private "
        "stream from a SeedSequence, never store a caller-passed generator"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef) and _is_contract_class(node):
                findings.extend(self._check_class(ctx, node))
        return iter(findings)

    def _check_class(
        self, ctx: ModuleContext, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        init = next(
            (
                item
                for item in cls.body
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                and item.name == "__init__"
            ),
            None,
        )
        if init is None:
            return iter(())
        rng_params: Set[str] = {
            arg.arg
            for arg in list(init.args.posonlyargs)
            + list(init.args.args)
            + list(init.args.kwonlyargs)
            if arg.arg in _RNG_PARAM_NAMES
        }
        if not rng_params:
            return iter(())
        findings: List[Finding] = []
        for node in ast.walk(init):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                value = node.value
                if value is None:
                    continue
                for target in targets:
                    if not (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        continue
                    findings.extend(
                        self._check_store(ctx, cls, node, target.attr, value, rng_params)
                    )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id in rng_params
                    and func.attr in _DRAW_METHODS
                ):
                    findings.append(
                        self.finding(
                            ctx,
                            node,
                            f"'{cls.name}.__init__' draws from the caller's "
                            f"'{func.value.id}' stream; a private-stream "
                            "subsystem must derive a SeedSequence instead so "
                            "begin() replays the identical schedule",
                        )
                    )
        return iter(findings)

    def _check_store(
        self,
        ctx: ModuleContext,
        cls: ast.ClassDef,
        node: ast.AST,
        attr: str,
        value: ast.expr,
        rng_params: Set[str],
    ) -> Iterator[Finding]:
        if (
            isinstance(value, ast.Name)
            and value.id in rng_params
            and attr in _GENERATOR_ATTRS
        ):
            return iter(
                [
                    self.finding(
                        ctx,
                        node,
                        f"'{cls.name}' stores the caller-passed "
                        f"'{value.id}' as self.{attr}: the private replay "
                        "contract requires deriving a SeedSequence and "
                        "rebuilding the generator in begin()",
                    )
                ]
            )
        if (
            isinstance(value, ast.Attribute)
            and value.attr == "generator"
            and isinstance(value.value, ast.Name)
            and value.value.id in rng_params
        ):
            return iter(
                [
                    self.finding(
                        ctx,
                        node,
                        f"'{cls.name}' stores the caller's generator object "
                        f"(self.{attr} = {value.value.id}.generator); derive "
                        "a SeedSequence (e.g. rng.seed_sequence) instead",
                    )
                ]
            )
        return iter(())


__all__ = ["PrivateStreamRule"]
