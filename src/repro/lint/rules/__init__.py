"""Rule modules; importing this package registers every rule.

Each submodule defines one rule class decorated with
:func:`repro.lint.registry.register`, so ``import repro.lint.rules`` is
all the runner needs to populate the registry.
"""

from __future__ import annotations

from repro.lint.rules import (  # noqa: F401  (imports register the rules)
    async_private_stream,
    bare_suppression,
    no_blocking_in_loop,
    no_unawaited_send,
    private_stream,
    rng_discipline,
    shared_view_write,
    stable_sort,
    thread_kwargs,
    wallclock,
)

__all__ = [
    "async_private_stream",
    "bare_suppression",
    "no_blocking_in_loop",
    "no_unawaited_send",
    "private_stream",
    "rng_discipline",
    "shared_view_write",
    "stable_sort",
    "thread_kwargs",
    "wallclock",
]
