"""Topology & peer-sampling subsystem.

Gossip on arbitrary graphs: compact CSR topologies
(:mod:`repro.topology.graphs`), vectorized per-round partner sampling
(:mod:`repro.topology.sampler`) consumed by both execution engines,
dynamic per-round topologies — churn and newscast-style edge resampling
(:mod:`repro.topology.dynamic`) — and structural diagnostics
(:mod:`repro.topology.diagnostics`).  The default configuration
(``topology=None`` — uniform gossip on the complete graph) is
bit-identical to the pre-topology library.
"""

from repro.topology.graphs import (
    TOPOLOGY_CHOICES,
    TOPOLOGY_PARAM_USERS,
    Topology,
    build_topology,
    complete,
    erdos_renyi,
    preferential_attachment,
    random_regular,
    ring,
    torus,
    validate_topology_flags,
    watts_strogatz,
)
from repro.topology.dynamic import (
    ChurnProcess,
    EdgeResamplingProcess,
    RoundState,
    StaticProcess,
    TopologyProcess,
    resolve_topology_process,
)
from repro.topology.sampler import (
    PEER_SAMPLING_CHOICES,
    NeighborSampler,
    PeerSampler,
    RoundRobinSampler,
    UniformSampler,
    draw_uniform_round_partners,
    resolve_peer_sampler,
)
from repro.topology.diagnostics import (
    degree_stats,
    estimate_spectral_gap,
    is_connected,
    summarize,
)

__all__ = [
    "TOPOLOGY_CHOICES",
    "TOPOLOGY_PARAM_USERS",
    "validate_topology_flags",
    "ChurnProcess",
    "EdgeResamplingProcess",
    "RoundState",
    "StaticProcess",
    "TopologyProcess",
    "resolve_topology_process",
    "Topology",
    "build_topology",
    "complete",
    "erdos_renyi",
    "preferential_attachment",
    "random_regular",
    "ring",
    "torus",
    "watts_strogatz",
    "PEER_SAMPLING_CHOICES",
    "NeighborSampler",
    "PeerSampler",
    "RoundRobinSampler",
    "UniformSampler",
    "draw_uniform_round_partners",
    "resolve_peer_sampler",
    "degree_stats",
    "estimate_spectral_gap",
    "is_connected",
    "summarize",
]
