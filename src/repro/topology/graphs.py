"""Graph topologies for gossip, stored in a compact CSR neighbor layout.

The paper analyses uniform gossip on the complete graph; related work moves
the same push/pull dynamics onto *structured* topologies — bounded-degree
expanders, lattices, small worlds — where mixing, and hence convergence,
can change by orders of magnitude.  A :class:`Topology` is an undirected
simple graph over nodes ``0..n-1`` held as two arrays (CSR-style):
``indptr`` of length ``n + 1`` and ``indices`` of length ``2·|E|`` such
that the neighbors of node ``v`` are ``indices[indptr[v]:indptr[v+1]]``,
sorted ascending.  This is the layout the vectorized
:class:`~repro.topology.sampler.NeighborSampler` gathers from, so one
round of partner draws over any topology stays a handful of numpy ops.

The complete graph is deliberately *not* materialised (that would be
``n(n-1)`` arcs); it is represented symbolically and routed to the uniform
sampler, which also keeps the default gossip path bit-identical to the
pre-topology behaviour.

All generators are deterministic under a fixed seed: the same
:class:`~repro.utils.rand.RandomSource` stream always produces the same
graph.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple, Union

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.rand import RandomSource

#: Topology names accepted by :func:`build_topology` (and the CLI).
TOPOLOGY_CHOICES = (
    "complete",
    "ring",
    "torus",
    "regular",
    "erdos-renyi",
    "small-world",
    "pref-attach",
)


@dataclass(frozen=True)
class Topology:
    """An undirected simple graph in CSR form.

    Attributes
    ----------
    name:
        Generator name (one of :data:`TOPOLOGY_CHOICES`).
    n:
        Number of nodes.
    indptr, indices:
        CSR arrays; ``None`` for the symbolic complete graph, whose
        neighbor lists are never materialised.
    params:
        The generator parameters, for reporting.
    """

    name: str
    n: int
    indptr: Optional[np.ndarray]
    indices: Optional[np.ndarray]
    params: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.n < 2:
            raise ConfigurationError("a topology needs at least 2 nodes")
        if (self.indptr is None) != (self.indices is None):
            raise ConfigurationError("indptr and indices must be given together")
        if self.indptr is not None:
            if self.indptr.shape != (self.n + 1,):
                raise ConfigurationError("indptr must have length n + 1")
            if int(self.indptr[0]) != 0 or int(self.indptr[-1]) != self.indices.size:
                raise ConfigurationError("indptr must span the indices array")

    # -- structure ---------------------------------------------------------------
    @property
    def is_complete(self) -> bool:
        """Whether this is the symbolic complete graph (uniform gossip)."""
        return self.indptr is None

    @property
    def degrees(self) -> np.ndarray:
        """Per-node degree array (length ``n``)."""
        if self.is_complete:
            return np.full(self.n, self.n - 1, dtype=np.int64)
        return np.diff(self.indptr)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        if self.is_complete:
            return self.n * (self.n - 1) // 2
        return self.indices.size // 2

    def neighbors(self, node: int) -> np.ndarray:
        """The sorted neighbor list of ``node``."""
        if not 0 <= node < self.n:
            raise ConfigurationError(f"node {node} out of range [0, {self.n})")
        if self.is_complete:
            others = np.arange(self.n, dtype=np.int64)
            return np.delete(others, node)
        return self.indices[self.indptr[node] : self.indptr[node + 1]]

    @property
    def min_degree(self) -> int:
        return int(self.degrees.min())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Topology(name={self.name!r}, n={self.n}, edges={self.num_edges}, "
            f"params={self.params})"
        )


def _csr_from_edges(
    name: str, n: int, u: np.ndarray, v: np.ndarray, params: Dict[str, object]
) -> Topology:
    """Build a :class:`Topology` from undirected edge endpoint arrays.

    Self-loops are dropped and parallel edges are merged, so the result is
    always a simple graph; arcs are stored in both directions with each
    neighbor list sorted ascending.
    """
    u = np.asarray(u, dtype=np.int64)
    v = np.asarray(v, dtype=np.int64)
    keep = u != v
    u, v = u[keep], v[keep]
    src = np.concatenate([u, v])
    dst = np.concatenate([v, u])
    # Deduplicate arcs via the (src, dst) key; unique() also sorts, which
    # yields CSR segments in ascending neighbor order.
    keys = np.unique(src * np.int64(n) + dst)
    src = keys // n
    dst = keys % n
    counts = np.bincount(src, minlength=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return Topology(name=name, n=n, indptr=indptr, indices=dst, params=dict(params))


# -- generators --------------------------------------------------------------------


def complete(n: int) -> Topology:
    """The complete graph, represented symbolically (uniform gossip)."""
    return Topology(name="complete", n=n, indptr=None, indices=None, params={})


def ring(n: int, k: int = 1) -> Topology:
    """A ring lattice: every node linked to its ``k`` nearest on each side."""
    if k < 1:
        raise ConfigurationError("k must be at least 1")
    if 2 * k >= n:
        raise ConfigurationError(f"ring(n={n}, k={k}) needs n > 2k")
    base = np.arange(n, dtype=np.int64)
    u = np.concatenate([base] * k)
    v = np.concatenate([(base + off) % n for off in range(1, k + 1)])
    return _csr_from_edges("ring", n, u, v, {"k": k})


def _torus_shape(n: int) -> Tuple[int, int]:
    """The most square ``rows x cols`` factorisation of ``n`` with rows >= 2."""
    for rows in range(int(math.isqrt(n)), 1, -1):
        if n % rows == 0:
            return rows, n // rows
    raise ConfigurationError(
        f"torus(n={n}): n has no factorisation rows*cols with rows >= 2; "
        "pick a composite n (e.g. a perfect square)"
    )


def torus(n: int, rows: Optional[int] = None) -> Topology:
    """A 2-D torus (wrap-around grid, degree 4 when both sides are >= 3)."""
    if rows is None:
        rows, cols = _torus_shape(n)
    else:
        if rows < 2 or n % rows != 0:
            raise ConfigurationError(f"rows={rows} must divide n={n} and be >= 2")
        cols = n // rows
        if cols < 2:
            raise ConfigurationError("torus needs at least 2 columns")
    cell = np.arange(n, dtype=np.int64)
    r, c = cell // cols, cell % cols
    right = r * cols + (c + 1) % cols
    down = ((r + 1) % rows) * cols + c
    u = np.concatenate([cell, cell])
    v = np.concatenate([right, down])
    return _csr_from_edges("torus", n, u, v, {"rows": rows, "cols": cols})


def random_regular(
    n: int,
    d: int,
    rng: Union[None, int, RandomSource] = None,
    max_restarts: int = 50,
) -> Topology:
    """A random ``d``-regular simple graph via the configuration model.

    Stubs are paired uniformly at random; clashing pairs (self-loops or
    parallel edges) throw their stubs back into the pool and are re-paired
    until the pool drains.  When the endgame gets stuck (the remaining
    stubs cannot form valid edges) the whole pairing restarts — rarely more
    than a handful of times even for dense ``d``.
    """
    if d < 1 or d >= n:
        raise ConfigurationError(f"degree d={d} must satisfy 1 <= d < n")
    if (n * d) % 2 != 0:
        raise ConfigurationError(f"n*d must be even, got n={n}, d={d}")
    source = rng if isinstance(rng, RandomSource) else RandomSource(rng)

    for _ in range(max_restarts):
        pool = np.repeat(np.arange(n, dtype=np.int64), d)
        accepted = np.empty(0, dtype=np.int64)  # sorted arc keys (min*n + max)
        stalls = 0
        while pool.size:
            source.shuffle(pool)
            a, b = pool[0::2], pool[1::2]
            lo, hi = np.minimum(a, b), np.maximum(a, b)
            keys = lo * np.int64(n) + hi
            ok = a != b
            # reject duplicates inside this batch ...
            order = np.argsort(keys, kind="stable")
            sorted_keys = keys[order]
            dup = np.zeros(keys.size, dtype=bool)
            dup[order[1:]] = sorted_keys[1:] == sorted_keys[:-1]
            ok &= ~dup
            # ... and against already-accepted edges
            if accepted.size:
                pos = np.searchsorted(accepted, keys)
                pos = np.minimum(pos, accepted.size - 1)
                ok &= accepted[pos] != keys
            new_keys = keys[ok]
            if new_keys.size:
                accepted = np.union1d(accepted, new_keys)
                stalls = 0
            else:
                stalls += 1
                if stalls >= 10:
                    break  # stuck endgame; restart the pairing
            rejected = ~ok
            pool = np.concatenate([a[rejected], b[rejected]])
        if pool.size == 0:
            u = accepted // n
            v = accepted % n
            return _csr_from_edges("regular", n, u, v, {"d": d})
    raise ConfigurationError(
        f"random_regular(n={n}, d={d}) failed to converge after "
        f"{max_restarts} restarts"
    )


def erdos_renyi(
    n: int,
    p: float,
    rng: Union[None, int, RandomSource] = None,
    min_degree_one: bool = True,
) -> Topology:
    """The Erdős–Rényi random graph ``G(n, p)``.

    The number of edges is drawn from the exact binomial, then that many
    distinct pairs are sampled — equivalent to flipping a coin per pair
    without touching ``O(n²)`` memory, so sparse graphs stay cheap at
    large ``n``.

    Below the ``p = ln n / n`` connectivity threshold ``G(n, p)`` has
    isolated nodes w.h.p., and an isolated node can never gossip.  With
    ``min_degree_one`` (the default) each isolated node is attached to one
    uniformly random other node — i.e. the graph is conditioned on minimum
    degree 1; pass ``False`` for the unconditioned distribution.
    """
    if not 0.0 <= p <= 1.0:
        raise ConfigurationError(f"p must be in [0, 1], got {p}")
    source = rng if isinstance(rng, RandomSource) else RandomSource(rng)
    total_pairs = n * (n - 1) // 2
    m = int(source.generator.binomial(total_pairs, p))
    chosen = np.empty(0, dtype=np.int64)
    while chosen.size < m:
        need = m - chosen.size
        draw = source.integers(0, n, size=(2 * need + 16, 2)).astype(np.int64)
        a, b = draw[:, 0], draw[:, 1]
        keep = a < b
        keys = a[keep] * np.int64(n) + b[keep]
        chosen = np.union1d(chosen, keys)
        if chosen.size > m:
            extra = source.choice(chosen.size, size=m, replace=False)
            chosen = chosen[np.sort(extra)]
    u = chosen // n
    v = chosen % n
    if min_degree_one:
        touched = np.zeros(n, dtype=bool)
        touched[u] = True
        touched[v] = True
        isolated = np.flatnonzero(~touched).astype(np.int64)
        if isolated.size:
            mates = source.integers(0, n, size=isolated.size).astype(np.int64)
            bad = mates == isolated
            while np.any(bad):
                mates[bad] = source.integers(0, n, size=int(bad.sum()))
                bad = mates == isolated
            u = np.concatenate([u, isolated])
            v = np.concatenate([v, mates])
    return _csr_from_edges("erdos-renyi", n, u, v, {"p": p})


def watts_strogatz(
    n: int,
    k: int = 8,
    rewire_p: float = 0.1,
    rng: Union[None, int, RandomSource] = None,
) -> Topology:
    """A Watts–Strogatz small world: ring lattice with random rewiring.

    Starts from :func:`ring` with ``k // 2`` neighbors per side and rewires
    each lattice edge's far endpoint to a uniformly random node with
    probability ``rewire_p``.  Rewired endpoints are redrawn while they
    collide with the edge's own endpoints; the CSR builder merges the rare
    remaining parallel edges.
    """
    if k < 2 or k % 2 != 0:
        raise ConfigurationError(f"k must be a positive even degree, got {k}")
    if k >= n:
        raise ConfigurationError(f"watts_strogatz(n={n}, k={k}) needs k < n")
    if not 0.0 <= rewire_p <= 1.0:
        raise ConfigurationError(f"rewire_p must be in [0, 1], got {rewire_p}")
    source = rng if isinstance(rng, RandomSource) else RandomSource(rng)
    half = k // 2
    base = np.arange(n, dtype=np.int64)
    us, vs = [], []
    for off in range(1, half + 1):
        u = base
        v = (base + off) % n
        rewired = source.random(n) < rewire_p
        target = source.integers(0, n, size=n).astype(np.int64)
        bad = rewired & ((target == u) | (target == v))
        while np.any(bad):
            target[bad] = source.integers(0, n, size=int(bad.sum()))
            bad = rewired & ((target == u) | (target == v))
        us.append(u)
        vs.append(np.where(rewired, target, v))
    return _csr_from_edges(
        "small-world",
        n,
        np.concatenate(us),
        np.concatenate(vs),
        {"k": k, "rewire_p": rewire_p},
    )


def preferential_attachment(
    n: int, m: int = 4, rng: Union[None, int, RandomSource] = None
) -> Topology:
    """A Barabási–Albert preferential-attachment graph.

    Each arriving node attaches ``m`` edges to distinct existing nodes
    chosen proportionally to their current degree (the repeated-endpoints
    trick).  The first ``m + 1`` nodes form a seed star so every node ends
    with degree >= 1.
    """
    if m < 1 or m >= n:
        raise ConfigurationError(f"m must satisfy 1 <= m < n, got m={m}, n={n}")
    source = rng if isinstance(rng, RandomSource) else RandomSource(rng)
    # Seed: star on nodes 0..m (node 0 is the hub).
    seed_u = np.zeros(m, dtype=np.int64)
    seed_v = np.arange(1, m + 1, dtype=np.int64)
    # `repeated` holds every edge endpoint; sampling it uniformly is
    # degree-proportional sampling.
    repeated = np.empty(2 * m + 2 * m * (n - m - 1), dtype=np.int64)
    repeated[0:m] = seed_u
    repeated[m : 2 * m] = seed_v
    filled = 2 * m
    us = [seed_u]
    vs = [seed_v]
    for node in range(m + 1, n):
        targets = np.unique(repeated[:filled][source.integers(0, filled, size=m)])
        while targets.size < m:
            more = repeated[:filled][
                source.integers(0, filled, size=m - targets.size)
            ]
            targets = np.union1d(targets, more)
        u = np.full(m, node, dtype=np.int64)
        us.append(u)
        vs.append(targets)
        repeated[filled : filled + m] = node
        repeated[filled + m : filled + 2 * m] = targets
        filled += 2 * m
    return _csr_from_edges(
        "pref-attach", n, np.concatenate(us), np.concatenate(vs), {"m": m}
    )


#: Which topology families consume each optional hyper-parameter (the
#: vocabulary of :func:`build_topology` / the CLI flags).
TOPOLOGY_PARAM_USERS = {
    "degree": ("ring", "regular", "erdos-renyi", "small-world", "pref-attach"),
    "rewire_p": ("small-world",),
}


def validate_topology_flags(
    topologies: Optional[Sequence[str]],
    degree: Optional[int] = None,
    rewire_p: Optional[float] = None,
    require_topology: bool = False,
) -> None:
    """Reject topology hyper-parameters that would be silently ignored.

    ``build_topology`` tolerantly ignores parameters a family does not use,
    which is right for programmatic sweeps but wrong for the CLI: a user
    passing ``--topology ring --rewire-p 0.2`` deserves an error, not a run
    that quietly dropped the flag.  Raises :class:`ConfigurationError`
    naming the mismatched flag when a given parameter is used by *none* of
    the named topologies, or (with ``require_topology``) when parameters
    are given without any topology at all.
    """
    given = {"--degree": ("degree", degree), "--rewire-p": ("rewire_p", rewire_p)}
    for flag, (param, value) in given.items():
        if value is None:
            continue
        if not topologies:
            if require_topology:
                raise ConfigurationError(
                    f"{flag} was given without --topology; on the complete "
                    "graph it has no effect"
                )
            continue
        users = TOPOLOGY_PARAM_USERS[param]
        if not any(name in users for name in topologies):
            listed = ", ".join(topologies)
            raise ConfigurationError(
                f"{flag} has no effect on topology {listed}; it applies to "
                f"{', '.join(users)}"
            )


def build_topology(
    name: str,
    n: int,
    degree: Optional[int] = None,
    rewire_p: Optional[float] = None,
    p: Optional[float] = None,
    rng: Union[None, int, RandomSource] = None,
) -> Topology:
    """Build a named topology from the uniform parameter vocabulary.

    ``degree`` sets the (target) degree for every family that has one:
    ``ring`` uses ``degree // 2`` neighbors per side, ``regular`` uses it
    directly, ``erdos-renyi`` matches the expected degree (unless ``p`` is
    given explicitly), ``small-world`` uses it as the lattice degree and
    ``pref-attach`` attaches ``degree // 2`` edges per node.  ``complete``
    and ``torus`` have fixed structure and ignore it.
    """
    if name not in TOPOLOGY_CHOICES:
        raise ConfigurationError(
            f"unknown topology {name!r}; choose from {TOPOLOGY_CHOICES}"
        )
    if name == "complete":
        return complete(n)
    if name == "ring":
        return ring(n, k=max(1, (degree or 2) // 2))
    if name == "torus":
        return torus(n)
    if name == "regular":
        return random_regular(n, d=degree if degree is not None else 8, rng=rng)
    if name == "erdos-renyi":
        if p is None:
            p = min(1.0, (degree if degree is not None else 8) / (n - 1))
        return erdos_renyi(n, p=p, rng=rng)
    if name == "small-world":
        return watts_strogatz(
            n,
            k=degree if degree is not None else 8,
            rewire_p=rewire_p if rewire_p is not None else 0.1,
            rng=rng,
        )
    # pref-attach
    return preferential_attachment(
        n, m=max(1, (degree if degree is not None else 8) // 2), rng=rng
    )
