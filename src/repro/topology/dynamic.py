"""Dynamic topologies: the graph as a per-round object.

The paper analyses uniform gossip on a *static* complete graph.  Real
deployments churn — nodes join and leave, and membership services in the
"newscast" style (py-unsserv) re-draw every node's neighbor view every few
rounds.  A :class:`TopologyProcess` makes the graph itself a per-round
object: for every synchronous round it yields a :class:`RoundState` — the
boolean *active-node mask* and a :class:`~repro.topology.sampler.PeerSampler`
whose partner draws only ever target active nodes.

Three concrete processes:

* :class:`StaticProcess` — wraps a fixed topology (or the complete graph).
  Threading it through an engine is bit-identical to passing the topology
  directly, which pins the dynamic plumbing to the static streams.
* :class:`ChurnProcess` — a seeded join/leave schedule with rejoin: each
  round every active node departs with probability ``churn_rate`` and every
  departed node rejoins with probability ``rejoin_rate``.  Departed nodes
  neither act nor receive (the per-round sampler draws only active
  partners), so conserved quantities — push-sum ``(s, w)`` mass, token
  multiplicities via the Section-5 failure-merge machinery — stay frozen on
  the departed node until it rejoins and are never lost.
* :class:`EdgeResamplingProcess` — newscast-style membership: every node
  holds a ``view_size`` neighbor view that is re-drawn every
  ``resample_every`` rounds.  Each resample is one vectorized batched CSR
  rebuild (symmetrized union of the views), so a per-round refresh costs
  ``O(n * view_size)`` array work, not Python loops.

Two design rules keep the engines deterministic and comparable:

1. **Separate random streams.**  A process owns a private stream (fixed at
   construction, replayed identically by every :meth:`TopologyProcess.begin`)
   that drives only the topology evolution.  Partner draws still consume the
   *engine's* stream through the per-round sampler, exactly like the static
   path — so the loop and vectorized engines see identical schedules and
   stay bit-identical to each other under any process.
2. **Active targets only.**  Samplers returned by ``round_state`` never
   select an inactive partner, so departed nodes cannot absorb mass.  A node
   whose neighbors are all departed is excluded from the round's active mask
   (its state freezes for the round) rather than gossiping into the void.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Optional, Union

import numpy as np

from repro.exceptions import ConfigurationError
from repro.topology.graphs import Topology, _csr_from_edges
from repro.topology.sampler import NeighborSampler, PeerSampler, resolve_peer_sampler
from repro.utils.rand import RandomSource, SeedLike, resample_forbidden_targets


@dataclass(frozen=True)
class RoundState:
    """What one synchronous round looks like under a dynamic topology.

    Attributes
    ----------
    active:
        Length-``n`` boolean mask; False means the node is departed (or
        cannot reach any active neighbor) this round.  Inactive nodes
        neither act nor receive; engines fold this mask into the round's
        failure mask, so inactive nodes keep their state frozen.
    sampler:
        Partner sampler for this round.  Draws consume the *engine's*
        random stream and only ever return active targets.
    """

    active: np.ndarray
    sampler: PeerSampler


class _ActiveUniformSampler(PeerSampler):
    """Uniform draw over the currently active node set, excluding self.

    The churn analogue of :class:`~repro.topology.sampler.UniformSampler`:
    partners are uniform over the active ids, and an active node that draws
    itself is re-drawn in masked batches (the same rejection idiom as
    :func:`repro.utils.rand.resample_forbidden_targets`).
    """

    def __init__(self, n: int, active_ids: np.ndarray) -> None:
        super().__init__(n)
        if active_ids.size < 2:
            raise ConfigurationError(
                "active-uniform sampling needs at least 2 active nodes"
            )
        self._ids = active_ids

    def draw_round(self, source: RandomSource) -> np.ndarray:
        m = self._ids.size
        partners = self._ids[source.integers(0, m, size=self.n)]
        own = np.arange(self.n)
        mask = partners == own
        while np.any(mask):
            partners[mask] = self._ids[source.integers(0, m, size=int(mask.sum()))]
            mask = partners == own
        return partners


class _ActiveNeighborSampler(PeerSampler):
    """Uniform draw over each node's *active* neighbors.

    Built from a per-round sub-CSR holding only active→active arcs.  Nodes
    with zero active neighbors get their own index (they are always outside
    the round's active mask, so the entry is never consumed).
    """

    def __init__(self, n: int, indptr: np.ndarray, indices: np.ndarray) -> None:
        super().__init__(n)
        self._starts = indptr[:-1]
        self._indices = indices
        self._degrees = np.diff(indptr)

    def draw_round(self, source: RandomSource) -> np.ndarray:
        u = source.random(self.n)
        safe = np.maximum(self._degrees, 1)
        offsets = np.minimum((u * safe).astype(np.int64), safe - 1)
        slots = np.minimum(self._starts + offsets, max(self._indices.size - 1, 0))
        partners = (
            self._indices[slots]
            if self._indices.size
            else np.zeros(self.n, dtype=np.int64)
        )
        return np.where(self._degrees > 0, partners, np.arange(self.n))


class TopologyProcess(abc.ABC):
    """Per-round supplier of the active-node mask and partner sampler.

    Subclasses evolve internal state from a private random stream fixed at
    construction time.  :meth:`begin` replays that stream from its start, so
    one instance can be run repeatedly (e.g. once on the loop engine and
    once on the vectorized engine) and always yields the same schedule.
    """

    def __init__(self, n: int, rng: SeedLike = None) -> None:
        if n < 2:
            raise ConfigurationError("a topology process needs at least 2 nodes")
        self.n = n
        if isinstance(rng, RandomSource):
            self._seed_seq = rng.seed_sequence
        elif isinstance(rng, np.random.SeedSequence):
            self._seed_seq = rng
        else:
            self._seed_seq = np.random.SeedSequence(rng)
        self._rng: Optional[RandomSource] = None

    @property
    def name(self) -> str:
        return type(self).__name__

    def begin(self) -> None:
        """Reset to round 0, replaying the same schedule as every prior run."""
        self._rng = RandomSource(self._seed_seq)
        self._reset()

    def _reset(self) -> None:
        """Subclass hook: clear per-run state (called by :meth:`begin`)."""

    @abc.abstractmethod
    def round_state(self, round_index: int) -> RoundState:
        """Evolve to round ``round_index`` and return its :class:`RoundState`.

        Engines call this once per round with consecutive indices starting
        at 0, after :meth:`begin`.
        """

    def as_failure_model(self):
        """This process's join/leave schedule viewed as a failure model.

        Lets surfaces that understand failures but not topology processes —
        the token split-and-distribute engines of :mod:`repro.core.tokens` —
        run under churn: a departed node "fails" its round, which triggers
        the existing Section-5 merge machinery (a failed push keeps its
        token / its half-pair), conserving aggregate mass.  Note that under
        this view pushes may still *target* departed nodes (the caller's own
        partner draw is not re-routed); rejoining nodes carry whatever they
        accumulated.  Use ``rejoin_rate > 0`` so tokens parked on a departed
        node can eventually spread.
        """
        from repro.gossip.failures import TopologyProcessFailures

        return TopologyProcessFailures(self)


class StaticProcess(TopologyProcess):
    """A fixed topology wrapped as a (degenerate) dynamic process.

    Every round is all-active with one sampler resolved per run, so driving
    an engine through ``topology_process=StaticProcess(topo)`` is
    bit-identical to passing ``topology=topo`` directly — the sanity anchor
    for the dynamic plumbing (pinned by ``tests/test_topology_dynamic.py``).
    """

    def __init__(
        self,
        topology: Optional[Topology] = None,
        n: Optional[int] = None,
        peer_sampling: str = "uniform",
    ) -> None:
        if topology is None and n is None:
            raise ConfigurationError("StaticProcess needs a topology or n")
        super().__init__(topology.n if topology is not None else n, rng=0)
        self.topology = topology
        self.peer_sampling = peer_sampling
        self._state: Optional[RoundState] = None

    def _reset(self) -> None:
        # A fresh sampler per run, exactly like resolve_peer_sampler in the
        # static engine path (round-robin samplers are stateful).
        sampler = resolve_peer_sampler(
            self.topology, sampling=self.peer_sampling, n=self.n
        )
        self._state = RoundState(np.ones(self.n, dtype=bool), sampler)

    def round_state(self, round_index: int) -> RoundState:
        if self._state is None:
            raise ConfigurationError("call begin() before round_state()")
        return self._state


class ChurnProcess(TopologyProcess):
    """Seeded join/leave schedule with rejoin over a fixed base graph.

    Parameters
    ----------
    n:
        Number of nodes; required when no ``topology`` is given (the base is
        then the complete graph).
    churn_rate:
        Per-round probability that an active node departs.
    rejoin_rate:
        Per-round probability that a departed node rejoins; defaults to
        ``churn_rate`` (which keeps the expected active fraction at 1/2 in
        the churn-heavy limit and near 1 for small rates over short runs).
    topology:
        Optional base graph; partners are drawn uniformly over a node's
        *active* neighbors (per-round sub-CSR rebuild).  ``None`` or the
        symbolic complete graph draw uniformly over all active nodes.
    min_active:
        The schedule never lets the active set drop below this size: a
        proposed step that would is skipped (the mask carries over).
    leave_weights:
        Departure-rate shaping.  ``None`` (default) is uniform churn —
        every active node departs with ``churn_rate`` — and keeps the
        schedule stream byte-identical to the historical behaviour.
        ``"degree"`` makes departures degree-correlated: node ``v`` leaves
        with ``churn_rate * degree(v) / max_degree``, so hubs churn at the
        full rate and leaves proportionally less — the adversarial case
        for gossip, since each departure removes the most connectivity.
        Requires a non-complete base ``topology``.  An explicit length-n
        array of per-node multipliers in ``[0, 1]`` is also accepted.
        Shaping multiplies probabilities only; the *draw* stays one
        uniform per node per round, so every ``leave_weights`` setting
        consumes the private stream identically.
    rng:
        Seed for the private schedule stream (see :class:`TopologyProcess`).

    Mass conservation: a departed node neither acts (engines fold
    ``~active`` into the failure mask) nor receives (samplers only return
    active targets), so per-node conserved quantities freeze in place and
    aggregate totals — push-sum ``s``/``w`` mass, token multiplicities —
    are preserved exactly.  ``active_history`` records the active count of
    every generated round for diagnostics.
    """

    def __init__(
        self,
        n: Optional[int] = None,
        churn_rate: float = 0.05,
        rejoin_rate: Optional[float] = None,
        topology: Optional[Topology] = None,
        min_active: int = 2,
        leave_weights: Union[None, str, np.ndarray] = None,
        rng: SeedLike = None,
    ) -> None:
        if topology is not None:
            if n is not None and n != topology.n:
                raise ConfigurationError(
                    f"topology has {topology.n} nodes but n={n} was given"
                )
            n = topology.n
        if n is None:
            raise ConfigurationError("ChurnProcess needs a topology or n")
        super().__init__(n, rng=rng)
        if not 0.0 <= churn_rate < 1.0:
            raise ConfigurationError(
                f"churn_rate must be in [0, 1), got {churn_rate}"
            )
        if rejoin_rate is None:
            rejoin_rate = churn_rate
        if not 0.0 <= rejoin_rate <= 1.0:
            raise ConfigurationError(
                f"rejoin_rate must be in [0, 1], got {rejoin_rate}"
            )
        if min_active < 2 or min_active > n:
            raise ConfigurationError(
                f"min_active must be in [2, n], got {min_active}"
            )
        self.churn_rate = float(churn_rate)
        self.rejoin_rate = float(rejoin_rate)
        self.min_active = int(min_active)
        self.base = None if topology is None or topology.is_complete else topology
        if self.base is not None and self.base.min_degree < 1:
            raise ConfigurationError(
                "the churn base topology has an isolated node; every node "
                "needs at least one neighbor to gossip"
            )
        if self.base is not None:
            # Arc source ids, precomputed once for the per-round sub-CSR
            # rebuild: arc i runs sources[i] -> base.indices[i].
            self._arc_src = np.repeat(
                np.arange(n, dtype=np.int64), self.base.degrees
            )
        if leave_weights is None:
            self._leave_weights: Optional[np.ndarray] = None
        elif isinstance(leave_weights, str):
            if leave_weights != "degree":
                raise ConfigurationError(
                    f"unknown leave_weights {leave_weights!r}; expected "
                    "'degree', an array, or None"
                )
            if self.base is None:
                raise ConfigurationError(
                    "leave_weights='degree' needs a non-complete base "
                    "topology to read degrees from"
                )
            degrees = self.base.degrees.astype(float)
            self._leave_weights = degrees / float(degrees.max())
        else:
            weights = np.asarray(leave_weights, dtype=float)
            if weights.shape != (n,):
                raise ConfigurationError(
                    f"leave_weights must have shape ({n},), got {weights.shape}"
                )
            if np.any(weights < 0.0) or np.any(weights > 1.0):
                raise ConfigurationError(
                    "leave_weights entries must be in [0, 1]"
                )
            self._leave_weights = weights.copy()
        self.active_history: List[int] = []
        self._active: Optional[np.ndarray] = None
        self._state: Optional[RoundState] = None
        self._mask_round = -1

    @property
    def active(self) -> Optional[np.ndarray]:
        """The current active mask (None before :meth:`begin`)."""
        return self._active

    @property
    def rounds_generated(self) -> int:
        """How many rounds this run has evolved through so far.

        The next ``round_state`` index to use when driving the process
        externally (e.g. :meth:`~repro.core.service.QuantileService.advance_churn`
        stepping churn between builds).
        """
        return len(self.active_history)

    def _reset(self) -> None:
        self._active = np.ones(self.n, dtype=bool)
        self._state = None
        self._mask_round = -1
        self.active_history = []

    def _evolve(self) -> bool:
        """Advance the mask one round; returns True when it changed."""
        u = self._rng.random(self.n)
        if self._leave_weights is None:
            leave_p: Union[float, np.ndarray] = self.churn_rate
        else:
            leave_p = self.churn_rate * self._leave_weights
        proposed = np.where(
            self._active, u >= leave_p, u < self.rejoin_rate
        )
        if int(proposed.sum()) < self.min_active:
            return False  # guard: skip a step that would empty the network
        changed = bool(np.any(proposed != self._active))
        self._active = proposed
        return changed

    def _build_state(self) -> RoundState:
        if self.base is None:
            ids = np.flatnonzero(self._active)
            return RoundState(
                self._active.copy(), _ActiveUniformSampler(self.n, ids)
            )
        # Sub-CSR of active->active arcs; nodes left with no active neighbor
        # are excluded from the round (their state freezes).
        keep = self._active[self._arc_src] & self._active[self.base.indices]
        sub_indices = self.base.indices[keep]
        counts = np.bincount(self._arc_src[keep], minlength=self.n)
        indptr = np.zeros(self.n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        can_gossip = self._active & (counts > 0)
        return RoundState(
            can_gossip, _ActiveNeighborSampler(self.n, indptr, sub_indices)
        )

    def round_state(self, round_index: int) -> RoundState:
        if self._active is None:
            raise ConfigurationError("call begin() before round_state()")
        changed = self._evolve()
        if changed or self._mask_round < 0:
            self._state = self._build_state()
        self._mask_round = round_index
        self.active_history.append(int(self._state.active.sum()))
        return self._state

    def mean_active_fraction(self) -> float:
        """Mean fraction of gossiping nodes over the rounds generated so far."""
        if not self.active_history:
            return 1.0
        return float(np.mean(self.active_history)) / self.n


class EdgeResamplingProcess(TopologyProcess):
    """Newscast-style membership: neighbor views re-drawn periodically.

    Every node holds a view of ``view_size`` uniformly random other nodes
    (drawn with replacement, self excluded).  Every ``resample_every``
    rounds all views are re-drawn at once and the round graph is rebuilt as
    one batched CSR assembly — ``O(n * view_size)`` vectorized work, no
    sorting — after which partner draws are plain
    :class:`~repro.topology.sampler.NeighborSampler` gathers.  All nodes
    stay active; the dynamics change because the edge set keeps mixing,
    which is what makes even tiny views gossip like an expander (the
    newscast observation).

    By default views are *directed* (a node pushes into its own view, as in
    newscast); ``symmetrize=True`` instead builds the undirected union of
    the views via the deduplicating CSR builder — a better-behaved graph
    for spectral diagnostics, at an ``O(E log E)`` sort per rebuild.
    """

    def __init__(
        self,
        n: int,
        view_size: int = 8,
        resample_every: int = 1,
        symmetrize: bool = False,
        rng: SeedLike = None,
    ) -> None:
        super().__init__(n, rng=rng)
        if not 1 <= view_size < n:
            raise ConfigurationError(
                f"view_size must be in [1, n), got {view_size}"
            )
        if resample_every < 1:
            raise ConfigurationError(
                f"resample_every must be >= 1, got {resample_every}"
            )
        self.view_size = int(view_size)
        self.resample_every = int(resample_every)
        self.symmetrize = bool(symmetrize)
        self.resamples = 0
        self._all_active = np.ones(n, dtype=bool)
        self._state: Optional[RoundState] = None
        self._topology: Optional[Topology] = None

    def _reset(self) -> None:
        self._state = None
        self._topology = None
        self.resamples = 0

    @property
    def topology(self) -> Optional[Topology]:
        """The current round graph (None before :meth:`begin`)."""
        return self._topology if self._state is not None else None

    def _resample_views(self) -> None:
        own = np.arange(self.n, dtype=np.int64)[:, None]
        targets = self._rng.integers(0, self.n, size=(self.n, self.view_size))
        resample_forbidden_targets(self._rng, targets, own, self.n)
        params = {
            "view_size": self.view_size,
            "resample_every": self.resample_every,
        }
        if self.symmetrize:
            topology = _csr_from_edges(
                "newscast",
                self.n,
                np.repeat(own.ravel(), self.view_size),
                targets.ravel(),
                params,
            )
        else:
            # Directed views are already a CSR with constant row length:
            # node v's neighbors are exactly its view — no sort, no dedup.
            indptr = np.arange(
                0, (self.n + 1) * self.view_size, self.view_size, dtype=np.int64
            )
            topology = Topology(
                name="newscast",
                n=self.n,
                indptr=indptr,
                indices=np.ascontiguousarray(targets.ravel()),
                params=params,
            )
        self._topology = topology
        self._state = RoundState(self._all_active, NeighborSampler(topology))
        self.resamples += 1

    def round_state(self, round_index: int) -> RoundState:
        if self._rng is None:
            raise ConfigurationError("call begin() before round_state()")
        if self._state is None or round_index % self.resample_every == 0:
            self._resample_views()
        return self._state


def resolve_topology_process(
    process: Optional[TopologyProcess], n: int
) -> Optional[TopologyProcess]:
    """Validate a process against a protocol size and start its run."""
    if process is None:
        return None
    if not isinstance(process, TopologyProcess):
        raise ConfigurationError(
            f"topology_process must be a TopologyProcess, got {process!r}"
        )
    if process.n != n:
        raise ConfigurationError(
            f"topology process has {process.n} nodes but the run has {n}"
        )
    process.begin()
    return process
