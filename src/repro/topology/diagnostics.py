"""Structural diagnostics for topologies: degrees, connectivity, mixing.

Gossip convergence on a topology is governed by its spectral gap — the
paper's complete graph has a constant gap, a ring's gap vanishes as
``1/n²``, and bounded-degree expanders sit in between with a constant gap
at constant degree (the regime of Becchetti et al.).  The helpers here
give experiments those numbers cheaply:

* :func:`degree_stats` — min/mean/max/std of the degree sequence;
* :func:`is_connected` — frontier BFS with numpy gathers, O(E) total;
* :func:`estimate_spectral_gap` — power iteration on the lazy random walk
  ``P = (I + D^{-1} A) / 2``, deflating the stationary distribution, which
  estimates ``1 - lambda_2`` without building any matrix.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

import numpy as np

from repro.exceptions import ConfigurationError
from repro.topology.graphs import Topology
from repro.utils.rand import RandomSource


def degree_stats(topology: Topology) -> Dict[str, float]:
    """Summary statistics of the degree sequence."""
    degrees = topology.degrees
    return {
        "min_degree": float(degrees.min()),
        "max_degree": float(degrees.max()),
        "mean_degree": float(degrees.mean()),
        "std_degree": float(degrees.std()),
    }


def _frontier_neighbors(
    indptr: np.ndarray,
    indices: np.ndarray,
    degrees: np.ndarray,
    frontier: np.ndarray,
) -> np.ndarray:
    """All neighbors of the ``frontier`` nodes, concatenated (one gather)."""
    starts = indptr[frontier]
    counts = degrees[frontier]
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    # positions[j] enumerates 0..counts[i]-1 within each frontier segment
    boundaries = np.cumsum(counts) - counts
    positions = np.arange(total, dtype=np.int64) - np.repeat(boundaries, counts)
    return indices[np.repeat(starts, counts) + positions]


def is_connected(topology: Topology) -> bool:
    """Whether the graph is connected (BFS from node 0)."""
    if topology.is_complete:
        return True
    # Hoisted once: the degrees property allocates an O(n) diff per call,
    # which would make a deep BFS (a ring has ~n/2 levels) quadratic.
    indptr, indices, degrees = topology.indptr, topology.indices, topology.degrees
    visited = np.zeros(topology.n, dtype=bool)
    visited[0] = True
    frontier = np.array([0], dtype=np.int64)
    seen = 1
    while frontier.size:
        neighbors = _frontier_neighbors(indptr, indices, degrees, frontier)
        fresh = np.unique(neighbors[~visited[neighbors]])
        visited[fresh] = True
        seen += fresh.size
        frontier = fresh
    return seen == topology.n


def _analytic_lazy_gap(topology: Topology) -> Optional[float]:
    """Closed-form lazy-walk gap for the families that have one.

    Power iteration needs ``~1/gap`` iterations to resolve a gap, which is
    hopeless for the lattices (ring gap ``~1/n²``, torus ``~1/n``) at the
    sizes the experiments sweep — precisely the families whose circulant /
    product structure gives the second eigenvalue in closed form, so those
    are answered exactly instead.
    """
    n = topology.n
    if topology.is_complete:
        # lambda_2 of the lazy walk is 1/2 - 1/(2(n-1)).
        return float(0.5 + 0.5 / (n - 1))
    if topology.name == "ring":
        # Circulant C_n(1..k): walk eigenvalues (1/k) sum_j cos(2*pi*j*m/n);
        # the second-largest is at m = 1.
        k = int(topology.params["k"])
        lam = np.cos(2.0 * np.pi * np.arange(1, k + 1) / n).sum() / k
        return float((1.0 - lam) / 2.0)
    if topology.name == "torus":
        rows = int(topology.params["rows"])
        cols = int(topology.params["cols"])
        if rows < 3 or cols < 3:
            return None  # edge dedup changes degrees; fall back to iteration
        # Product of two cycles, degree 4: walk eigenvalues
        # (cos(2*pi*a/rows) + cos(2*pi*b/cols)) / 2; second-largest at
        # (a, b) = (0, 1) or (1, 0) on the longer side.
        lam = (1.0 + np.cos(2.0 * np.pi / max(rows, cols))) / 2.0
        return float((1.0 - lam) / 2.0)
    return None


def estimate_spectral_gap(
    topology: Topology,
    iterations: int = 2_000,
    rng: Union[None, int, RandomSource] = None,
    rtol: float = 1e-5,
) -> float:
    """Estimate ``1 - lambda_2`` of the lazy random walk on the topology.

    The complete graph, the ring and the (non-degenerate) torus are
    answered with their closed-form eigenvalues.  Everything else runs
    power iteration on ``P = (I + D^{-1} A) / 2`` applied to a random
    vector deflated against the walk's stationary distribution (which is
    proportional to the degrees), stopping once the Rayleigh quotient
    stabilises to ``rtol``.  The returned gap drives gossip mixing:
    averaging dynamics contract by roughly ``1 - gap`` per round.

    Accuracy caveat: power iteration resolves the gap quickly when it is
    large (the expander families it is used for converge in tens of
    iterations); if the ``iterations`` cap binds first the result is an
    *upper bound* on the true gap.
    """
    if iterations < 1:
        raise ConfigurationError("iterations must be positive")
    analytic = _analytic_lazy_gap(topology)
    if analytic is not None:
        return analytic
    degrees = topology.degrees.astype(float)
    if degrees.min() < 1:
        raise ConfigurationError("spectral gap needs every node to have a neighbor")
    source = rng if isinstance(rng, RandomSource) else RandomSource(rng)
    indptr, indices = topology.indptr, topology.indices

    # Stationary distribution of the walk, normalised in the pi-weighted
    # inner product <x, y>_pi = sum_v pi_v x_v y_v under which P is
    # self-adjoint.
    pi = degrees / degrees.sum()

    def step(x: np.ndarray) -> np.ndarray:
        gathered = x[indices]
        sums = np.add.reduceat(gathered, indptr[:-1])
        return 0.5 * (x + sums / degrees)

    x = source.random(topology.n) - 0.5
    x -= np.dot(pi, x)  # deflate the top eigenvector (the constant)
    lam = 0.0
    stable = 0
    for _ in range(iterations):
        norm = float(np.sqrt(np.dot(pi, x * x)))
        if norm < 1e-300:
            # The deflated component died: the walk has (numerically) no
            # second mode, i.e. maximal gap.
            return 1.0
        x /= norm
        y = step(x)
        y -= np.dot(pi, y)
        previous = lam
        lam = float(np.dot(pi, x * y))
        # The per-iteration drift of the Rayleigh quotient decays by the
        # lambda_3/lambda_2 ratio; requiring several consecutive stable
        # iterations guards against crowded spectra creeping slowly.
        if abs(lam - previous) <= rtol * max(1.0 - lam, 1e-12):
            stable += 1
            if stable >= 5:
                x = y
                break
        else:
            stable = 0
        x = y
    return float(1.0 - lam)


def summarize(topology: Topology, rng: Union[None, int, RandomSource] = None) -> Dict[str, float]:
    """One-call diagnostics bundle used by experiments and benchmarks."""
    stats = degree_stats(topology)
    stats["connected"] = float(is_connected(topology))
    stats["spectral_gap"] = estimate_spectral_gap(topology, rng=rng)
    return stats
