"""Peer sampling: turning a topology into vectorized partner draws.

Both gossip execution surfaces pick, for every node and every synchronous
round, one partner to contact.  A :class:`PeerSampler` encapsulates that
choice so the engines stay topology-agnostic:

* :class:`UniformSampler` — the paper's uniform gossip on the complete
  graph.  Its two draw methods are *verbatim* the pre-topology partner
  code (one for the message-level engine, one for the
  :class:`~repro.gossip.network.GossipNetwork` pull surface), so they
  consume the random stream identically and the default configuration is
  bit-for-bit the old behaviour.
* :class:`NeighborSampler` — uniform over the node's CSR neighbor list:
  one ``random(n)`` draw and one gather per round, any topology.
* :class:`RoundRobinSampler` — a shuffled round-robin over each node's
  neighbors: every neighbor is contacted exactly once per cycle of
  ``deg(v)`` rounds, in an order reshuffled every cycle.  This is the
  classic quasi-random gossip variant with lower partner variance.

Samplers holding per-run state (round-robin positions) are constructed
fresh for every run by :func:`resolve_peer_sampler`, so runs never leak
state into each other.
"""

from __future__ import annotations

import abc
from typing import Optional, Union

import numpy as np

from repro.exceptions import ConfigurationError
from repro.topology.graphs import Topology
from repro.utils.rand import RandomSource, resample_forbidden_targets
from repro.utils.views import readonly

#: Peer-sampling strategies accepted by :func:`resolve_peer_sampler`.
PEER_SAMPLING_CHOICES = ("uniform", "round-robin")


#: Cached identity index arrays (one per n seen), shared read-only by the
#: per-round partner draws so each round skips an O(n) allocation.
_IDENTITY_CACHE: dict = {}


def _identity_indices(n: int) -> np.ndarray:
    cached = _IDENTITY_CACHE.get(n)
    if cached is None:
        cached = readonly(np.arange(n))
        # keep the cache from growing without bound across odd sizes
        if len(_IDENTITY_CACHE) > 64:
            _IDENTITY_CACHE.clear()
        _IDENTITY_CACHE[n] = cached
    return cached


def draw_uniform_round_partners(source: RandomSource, n: int) -> np.ndarray:
    """Each node's uniformly random partner among the *other* nodes.

    An initial uniform draw over all ``n`` nodes followed by re-draws of
    self-contacts (a constant expected number of re-draws).  This is the
    message-level engine's historical partner draw; keeping it byte-for-byte
    preserves the random stream of every seeded pre-topology run.
    """
    partners = source.integers(0, n, size=n)
    return resample_forbidden_targets(source, partners, _identity_indices(n), n)


def _require_gossipable(topology: Topology) -> None:
    """Every node needs at least one neighbor to take part in gossip."""
    if topology.min_degree < 1:
        isolated = int(np.argmin(topology.degrees))
        raise ConfigurationError(
            f"topology {topology.name!r} has an isolated node ({isolated}); "
            "every node needs at least one neighbor to gossip"
        )


class PeerSampler(abc.ABC):
    """Draws each node's partner for one (or ``k``) synchronous rounds."""

    def __init__(self, n: int) -> None:
        if n < 2:
            raise ConfigurationError("a peer sampler needs at least 2 nodes")
        self.n = n

    @abc.abstractmethod
    def draw_round(self, source: RandomSource) -> np.ndarray:
        """Length-``n`` partner array for one round."""

    def draw_block(self, source: RandomSource, k: int) -> np.ndarray:
        """``(n, k)`` partner array for ``k`` consecutive rounds."""
        if k <= 0:
            raise ConfigurationError("k must be positive")
        return np.stack([self.draw_round(source) for _ in range(k)], axis=1)


class UniformSampler(PeerSampler):
    """Uniform gossip on the complete graph (the paper's model).

    ``allow_self`` only affects :meth:`draw_block` (the
    :class:`~repro.gossip.network.GossipNetwork` path, which historically
    exposes the option); the engine path :meth:`draw_round` always excludes
    self-contacts, as it always has.
    """

    def __init__(self, n: int, allow_self: bool = False) -> None:
        super().__init__(n)
        self._allow_self = bool(allow_self)

    def draw_round(self, source: RandomSource) -> np.ndarray:
        return draw_uniform_round_partners(source, self.n)

    def draw_block(self, source: RandomSource, k: int) -> np.ndarray:
        # Verbatim the historical GossipNetwork._sample_partners: one
        # (n, k) block draw, then re-draws of self-contacts.
        partners = source.uniform_partners(self.n, k)
        if not self._allow_self:
            own = np.arange(self.n)[:, None]
            resample_forbidden_targets(source, partners, own, self.n)
        return partners


class NeighborSampler(PeerSampler):
    """Uniform choice over each node's neighbor list, vectorized via CSR."""

    def __init__(self, topology: Topology) -> None:
        if topology.is_complete:
            raise ConfigurationError(
                "use UniformSampler for the complete graph; it avoids "
                "materialising n(n-1) arcs and keeps the historical stream"
            )
        super().__init__(topology.n)
        _require_gossipable(topology)
        self.topology = topology
        self._starts = topology.indptr[:-1]
        self._indices = topology.indices
        self._degrees = topology.degrees

    def draw_round(self, source: RandomSource) -> np.ndarray:
        u = source.random(self.n)
        offsets = np.minimum(
            (u * self._degrees).astype(np.int64), self._degrees - 1
        )
        return self._indices[self._starts + offsets]

    def draw_block(self, source: RandomSource, k: int) -> np.ndarray:
        if k <= 0:
            raise ConfigurationError("k must be positive")
        u = source.random((self.n, k))
        offsets = np.minimum(
            (u * self._degrees[:, None]).astype(np.int64),
            (self._degrees - 1)[:, None],
        )
        return self._indices[self._starts[:, None] + offsets]


class RoundRobinSampler(PeerSampler):
    """Shuffled round-robin over each node's neighbors.

    Every node walks a private random permutation of its neighbor list,
    one neighbor per round; when a node exhausts its list the segment is
    reshuffled and the walk restarts.  Over any window of ``deg(v)``
    consecutive rounds node ``v`` contacts every neighbor exactly once —
    the low-variance "quasi-random" gossip schedule.

    The sampler is stateful (positions and current permutations); use a
    fresh instance per run.
    """

    def __init__(self, topology: Topology) -> None:
        if topology.is_complete:
            raise ConfigurationError(
                "round-robin over the complete graph would materialise "
                "n(n-1) arcs; use a sparse topology"
            )
        super().__init__(topology.n)
        _require_gossipable(topology)
        self.topology = topology
        self._starts = topology.indptr[:-1]
        self._degrees = topology.degrees
        self._segment_ids = np.repeat(
            np.arange(topology.n, dtype=np.int64), self._degrees
        )
        self._order: Optional[np.ndarray] = None
        self._pos = np.zeros(topology.n, dtype=np.int64)

    def _shuffle_segments(self, source: RandomSource, which: np.ndarray) -> None:
        """Reshuffle the neighbor permutation of the nodes in ``which``."""
        arc_mask = which[self._segment_ids]
        keys = source.random(int(arc_mask.sum()))
        segment = self._segment_ids[arc_mask]
        # lexsort is stable and sorts primarily by segment, then by the
        # random keys: an independent uniform permutation per segment.
        order = np.lexsort((keys, segment))
        self._order[arc_mask] = self._order[arc_mask][order]

    def draw_round(self, source: RandomSource) -> np.ndarray:
        if self._order is None:
            self._order = self.topology.indices.copy()
            self._shuffle_segments(source, np.ones(self.n, dtype=bool))
        partners = self._order[self._starts + self._pos]
        self._pos += 1
        wrapped = self._pos >= self._degrees
        if np.any(wrapped):
            self._shuffle_segments(source, wrapped)
            self._pos[wrapped] = 0
        return partners


def resolve_peer_sampler(
    topology: Optional[Topology],
    sampling: str = "uniform",
    n: Optional[int] = None,
    allow_self: bool = False,
) -> PeerSampler:
    """Build the sampler for a run.

    ``topology=None`` and the symbolic complete graph both resolve to
    :class:`UniformSampler` — the historical uniform-gossip stream — so the
    default configuration stays bit-identical to pre-topology behaviour.
    Requesting a non-uniform strategy there is an error rather than a
    silent fallback: round-robin over ``n - 1`` neighbors would need the
    materialised complete graph.
    """
    if sampling not in PEER_SAMPLING_CHOICES:
        raise ConfigurationError(
            f"unknown peer sampling {sampling!r}; choose from "
            f"{PEER_SAMPLING_CHOICES}"
        )
    if topology is not None and n is not None and topology.n != n:
        raise ConfigurationError(
            f"topology has {topology.n} nodes but the protocol has {n}"
        )
    if topology is None or topology.is_complete:
        if sampling != "uniform":
            raise ConfigurationError(
                f"peer sampling {sampling!r} needs a sparse topology; "
                "uniform gossip on the complete graph only supports 'uniform'"
            )
        size = topology.n if topology is not None else n
        if size is None:
            raise ConfigurationError("n is required when no topology is given")
        return UniformSampler(size, allow_self=allow_self)
    if sampling == "round-robin":
        return RoundRobinSampler(topology)
    return NeighborSampler(topology)
