"""Weighted multiset with rank / quantile queries.

A small utility used to reason about compacted buffers and the KLL sketch:
it stores (value, weight) pairs and answers weighted rank and quantile
queries exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Tuple

import numpy as np

from repro.exceptions import ConfigurationError


@dataclass
class WeightedBuffer:
    """A multiset of weighted values supporting rank and quantile queries."""

    entries: List[Tuple[float, float]] = field(default_factory=list)

    @classmethod
    def from_pairs(cls, pairs: Iterable[Tuple[float, float]]) -> "WeightedBuffer":
        buffer = cls()
        for value, weight in pairs:
            buffer.add(float(value), float(weight))
        return buffer

    def add(self, value: float, weight: float = 1.0) -> None:
        if weight <= 0:
            raise ConfigurationError("weight must be positive")
        self.entries.append((float(value), float(weight)))

    def extend(self, other: "WeightedBuffer") -> None:
        self.entries.extend(other.entries)

    @property
    def total_weight(self) -> float:
        return float(sum(weight for _, weight in self.entries))

    def __len__(self) -> int:
        return len(self.entries)

    def rank(self, value: float) -> float:
        """Total weight of entries with value <= ``value``."""
        return float(sum(weight for v, weight in self.entries if v <= value))

    def quantile_of(self, value: float) -> float:
        total = self.total_weight
        if total <= 0:
            raise ConfigurationError("empty buffer has no quantiles")
        return self.rank(value) / total

    def query(self, phi: float) -> float:
        """The smallest value whose weighted rank reaches ``phi`` of the total."""
        if not 0.0 <= phi <= 1.0:
            raise ConfigurationError("phi must be in [0, 1]")
        if not self.entries:
            raise ConfigurationError("empty buffer has no quantiles")
        ordered = sorted(self.entries)
        total = self.total_weight
        target = phi * total
        running = 0.0
        for value, weight in ordered:
            running += weight
            if running >= target:
                return value
        return ordered[-1][0]

    def as_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        if not self.entries:
            return np.empty(0), np.empty(0)
        ordered = sorted(self.entries)
        values = np.array([v for v, _ in ordered], dtype=float)
        weights = np.array([w for _, w in ordered], dtype=float)
        return values, weights
