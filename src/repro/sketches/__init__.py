"""Quantile-sketch substrate used by the Appendix A baselines.

The appendix reduces the message size of the buffer-doubling algorithm by
compacting buffers the way streaming quantile sketches do: sort the buffer
and keep every second element, doubling the weight of the survivors.  This
subpackage implements that compactor, weighted rank queries over compacted
buffers, and a simplified KLL-style mergeable sketch for comparison.
"""

from repro.sketches.compactor import CompactingBuffer, compact
from repro.sketches.weighted_buffer import WeightedBuffer
from repro.sketches.kll import KLLSketch

__all__ = ["CompactingBuffer", "compact", "WeightedBuffer", "KLLSketch"]
