"""The compaction operation of Appendix A.1.

``Compact(Z)`` leaves a buffer unchanged when it fits within the capacity
``k``; otherwise it sorts the elements and keeps those at even positions,
halving the buffer size and doubling the weight of every kept element.
Lemma A.3 bounds the rank error introduced by one compaction by the
pre-compaction weight, and Corollary A.4 bounds the cumulative error of the
doubling algorithm with compaction by ``(n'/2k) log(n'/k)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError


def compact(values: Sequence[float]) -> List[float]:
    """One compaction: sort and keep the elements at even positions (1-based).

    Keeping the even positions of the sorted order changes the rank of any
    query point by at most 1 per compaction (before re-weighting), which is
    the fact Lemma A.3 builds on.
    """
    ordered = sorted(values)
    return ordered[1::2]


@dataclass
class CompactingBuffer:
    """A weighted sample buffer with the Appendix A.1 compaction rule.

    The buffer stores at most ``capacity`` elements, each representing
    ``weight`` original samples.  Merging two buffers of equal weight
    concatenates them and compacts if the result exceeds the capacity,
    doubling the weight — exactly the update rule
    ``S_v <- Compact(S_v ∪ S_t(v))`` of the appendix.
    """

    capacity: int
    weight: int = 1
    items: List[float] = field(default_factory=list)
    compactions: int = 0

    def __post_init__(self) -> None:
        if self.capacity < 2:
            raise ConfigurationError("capacity must be at least 2")
        if self.weight < 1:
            raise ConfigurationError("weight must be at least 1")

    # -- construction -------------------------------------------------------------
    @classmethod
    def from_samples(cls, samples: Iterable[float], capacity: int) -> "CompactingBuffer":
        buffer = cls(capacity=capacity)
        items = list(float(s) for s in samples)
        buffer.items = items
        buffer._compact_if_needed()
        return buffer

    # -- size accounting ----------------------------------------------------------
    def __len__(self) -> int:
        return len(self.items)

    @property
    def represented_samples(self) -> int:
        """Number of original samples this buffer summarises."""
        return self.weight * len(self.items)

    def message_bits(self, bits_per_entry: int = 64) -> int:
        """Bit cost of shipping this buffer in one gossip message."""
        return 16 + bits_per_entry * len(self.items) + 32  # header + items + weight

    # -- the appendix's merge rule --------------------------------------------------
    def merge(self, other: "CompactingBuffer") -> None:
        """``S_v <- Compact(S_v ∪ S_other)`` (Appendix A.1 update rule).

        Both buffers must carry the same weight — the doubling algorithm
        only ever merges buffers from the same round, which have equal
        weight by construction.
        """
        if other.capacity != self.capacity:
            raise ConfigurationError("cannot merge buffers with different capacities")
        if other.weight != self.weight:
            raise ConfigurationError(
                f"cannot merge buffers of different weights "
                f"({self.weight} vs {other.weight})"
            )
        self.items = sorted(self.items + other.items)
        self._compact_if_needed()

    def _compact_if_needed(self) -> None:
        while len(self.items) > self.capacity:
            self.items = compact(self.items)
            self.weight *= 2
            self.compactions += 1

    # -- queries -------------------------------------------------------------------
    def weighted_rank(self, value: float) -> int:
        """Weighted number of represented samples that are <= ``value``."""
        return self.weight * int(np.searchsorted(sorted(self.items), value, side="right"))

    def quantile_of(self, value: float) -> float:
        """Estimated quantile of ``value`` among the represented samples."""
        total = self.represented_samples
        if total == 0:
            raise ConfigurationError("empty buffer has no quantiles")
        return self.weighted_rank(value) / total

    def query(self, phi: float) -> float:
        """Estimated ``phi``-quantile of the represented samples."""
        if not 0.0 <= phi <= 1.0:
            raise ConfigurationError("phi must be in [0, 1]")
        if not self.items:
            raise ConfigurationError("empty buffer has no quantiles")
        ordered = sorted(self.items)
        index = min(len(ordered) - 1, max(0, int(np.ceil(phi * len(ordered))) - 1))
        return ordered[index]


def cumulative_rank_error_bound(total_samples: int, capacity: int) -> float:
    """Corollary A.4: the rank error of the compacted buffer is at most
    ``(n'/2k) log2(n'/k)`` where ``n'`` is the number of represented samples
    and ``k`` the capacity."""
    if total_samples < 1 or capacity < 1:
        raise ConfigurationError("total_samples and capacity must be positive")
    if total_samples <= capacity:
        return 0.0
    ratio = total_samples / capacity
    return (total_samples / (2.0 * capacity)) * float(np.log2(ratio))
