"""A simplified KLL-style mergeable quantile sketch.

The appendix discusses porting state-of-the-art streaming compactor schemes
(Karnin-Lang-Liberty, FOCS 2016) into the gossip setting and concludes that
even a lossless port cannot push the message size below
``o(log n log log n)`` bits.  To make that comparison concrete the library
ships a small, self-contained KLL-style sketch: a stack of compactor levels
with capacities decaying geometrically from the top, supporting stream
updates, merging, and rank / quantile queries.

This is a faithful but simplified implementation (deterministic capacity
schedule, random even/odd selection per compaction); it is used by the
message-size experiment (E8) and as a reference for the compaction error
bounds, not as a baseline for round complexity.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional

import numpy as np

from repro.exceptions import ConfigurationError
from repro.sketches.weighted_buffer import WeightedBuffer
from repro.utils.rand import RandomSource


class KLLSketch:
    """A mergeable quantile sketch with geometrically decaying compactors.

    Parameters
    ----------
    k:
        Capacity of the top (heaviest-weight) compactor.  The total space is
        ``O(k)`` and the rank error is ``O(n / k)`` with high probability.
    c:
        Capacity decay rate per level (the KLL paper uses ~2/3).
    """

    def __init__(self, k: int = 64, c: float = 2.0 / 3.0, rng: Optional[RandomSource] = None) -> None:
        if k < 4:
            raise ConfigurationError("k must be at least 4")
        if not 0.5 < c < 1.0:
            raise ConfigurationError("c must be in (0.5, 1.0)")
        self.k = int(k)
        self.c = float(c)
        self._rng = rng if rng is not None else RandomSource(0)
        self._levels: List[List[float]] = [[]]
        self._count = 0

    # -- capacity schedule ---------------------------------------------------------
    def _capacity(self, level: int) -> int:
        """Capacity of ``level`` counted from the bottom (weight ``2^level``)."""
        height = len(self._levels)
        depth = height - 1 - level
        return max(2, int(math.ceil(self.k * (self.c ** depth))))

    # -- updates --------------------------------------------------------------------
    def update(self, value: float) -> None:
        """Insert one stream item."""
        self._levels[0].append(float(value))
        self._count += 1
        self._compress()

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.update(value)

    def merge(self, other: "KLLSketch") -> None:
        """Merge another sketch into this one (mergeable-summaries property)."""
        if other.k != self.k:
            raise ConfigurationError("cannot merge sketches with different k")
        while len(self._levels) < len(other._levels):
            self._levels.append([])
        for level, items in enumerate(other._levels):
            self._levels[level].extend(items)
        self._count += other._count
        self._compress()

    def _compress(self) -> None:
        level = 0
        while level < len(self._levels):
            if len(self._levels[level]) > self._capacity(level):
                items = sorted(self._levels[level])
                offset = int(self._rng.integers(0, 2))
                survivors = items[offset::2]
                self._levels[level] = []
                if level + 1 >= len(self._levels):
                    self._levels.append([])
                self._levels[level + 1].extend(survivors)
            level += 1

    # -- queries ---------------------------------------------------------------------
    @property
    def count(self) -> int:
        """Number of stream items summarised."""
        return self._count

    @property
    def size(self) -> int:
        """Number of stored items (the sketch's space footprint)."""
        return sum(len(level) for level in self._levels)

    def message_bits(self, bits_per_entry: int = 64) -> int:
        """Bit cost of shipping the sketch in one gossip message."""
        return 16 + bits_per_entry * self.size + 8 * len(self._levels)

    def _as_weighted(self) -> WeightedBuffer:
        buffer = WeightedBuffer()
        for level, items in enumerate(self._levels):
            weight = float(2 ** level)
            for value in items:
                buffer.add(value, weight)
        return buffer

    def rank(self, value: float) -> float:
        """Estimated number of inserted items that are <= ``value``."""
        if self._count == 0:
            raise ConfigurationError("empty sketch has no ranks")
        return self._as_weighted().rank(value)

    def quantile_of(self, value: float) -> float:
        if self._count == 0:
            raise ConfigurationError("empty sketch has no quantiles")
        return self.rank(value) / self._count

    def query(self, phi: float) -> float:
        """Estimated ``phi``-quantile of the inserted items."""
        if not 0.0 <= phi <= 1.0:
            raise ConfigurationError("phi must be in [0, 1]")
        if self._count == 0:
            raise ConfigurationError("empty sketch has no quantiles")
        return self._as_weighted().query(phi)

    def error_bound(self) -> float:
        """A crude high-probability additive rank-error bound, O(count / k)."""
        if self._count == 0:
            return 0.0
        return 3.0 * self._count / float(self.k)
