"""Theoretical reference curves for the experiments.

The experiments report measured round counts next to the asymptotic
formulas the paper proves, evaluated with unit constants.  The comparison
of *shapes* (which curve is flat in n, which grows like log n, log² n, or
1/ε²) is the reproduction target; absolute constants depend on the
simulator and on the generous safety margins baked into the protocols.
"""

from __future__ import annotations

import math

from repro.exceptions import ConfigurationError


def _validate(n: int, eps: float = 0.1) -> None:
    if n < 2:
        raise ConfigurationError("n must be at least 2")
    if not 0.0 < eps < 1.0:
        raise ConfigurationError("eps must be in (0, 1)")


def approx_rounds_reference(n: int, eps: float) -> float:
    """Theorem 1.2 reference: log2 log2 n + log2(1/eps)."""
    _validate(n, eps)
    loglog = math.log2(max(2.0, math.log2(n)))
    return loglog + math.log2(1.0 / eps)


def exact_rounds_reference(n: int) -> float:
    """Theorem 1.1 reference: log2 n."""
    _validate(n)
    return math.log2(n)


def kempe_rounds_reference(n: int) -> float:
    """[KDG03] reference: log2² n."""
    _validate(n)
    return math.log2(n) ** 2


def sampling_rounds_reference(n: int, eps: float) -> float:
    """Sampling baseline reference: log2 n / eps²."""
    _validate(n, eps)
    return math.log2(n) / (eps * eps)


def doubling_rounds_reference(n: int, eps: float) -> float:
    """Doubling baseline reference: log2(log2 n / eps²) rounds."""
    _validate(n, eps)
    return math.log2(max(2.0, math.log2(n) / (eps * eps)))


def lower_bound_reference(n: int, eps: float) -> float:
    """Theorem 1.3 reference: max(½ log2 log2 n, log4(8/eps))."""
    _validate(n, eps)
    return max(
        0.5 * math.log2(max(2.0, math.log2(n))),
        math.log(8.0 / eps) / math.log(4.0),
    )


def robust_slowdown_reference(mu: float) -> float:
    """Section 5 reference: the per-iteration pull blow-up 1/(1-mu)·log(1/(1-mu))."""
    if not 0.0 <= mu < 1.0:
        raise ConfigurationError("mu must be in [0, 1)")
    if mu == 0.0:
        return 1.0
    scale = 1.0 / (1.0 - mu)
    return scale * max(1.0, math.log(scale))
