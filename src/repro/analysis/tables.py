"""Plain-text table rendering for the experiment harness and CLI."""

from __future__ import annotations

import io
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.exceptions import ConfigurationError


def _format_cell(value) -> str:
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e12:
            return str(int(value))
        if abs(value) >= 1000 or (abs(value) < 0.01 and value != 0):
            return f"{value:.3g}"
        return f"{value:.4f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render result rows as an aligned plain-text table."""
    rows = list(rows)
    if not rows:
        raise ConfigurationError("cannot format an empty table")
    if columns is None:
        columns = list(rows[0].keys())
    widths = {col: len(col) for col in columns}
    rendered: List[List[str]] = []
    for row in rows:
        cells = [_format_cell(row.get(col, "")) for col in columns]
        rendered.append(cells)
        for col, cell in zip(columns, cells):
            widths[col] = max(widths[col], len(cell))

    out = io.StringIO()
    if title:
        out.write(title + "\n")
    header = "  ".join(col.ljust(widths[col]) for col in columns)
    out.write(header + "\n")
    out.write("  ".join("-" * widths[col] for col in columns) + "\n")
    for cells in rendered:
        out.write("  ".join(cell.ljust(widths[col]) for col, cell in zip(columns, cells)) + "\n")
    return out.getvalue()


def rows_to_csv(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
) -> str:
    """Render result rows as CSV text."""
    rows = list(rows)
    if not rows:
        raise ConfigurationError("cannot serialise an empty table")
    if columns is None:
        columns = list(rows[0].keys())
    lines = [",".join(columns)]
    for row in rows:
        lines.append(",".join(_format_cell(row.get(col, "")) for col in columns))
    return "\n".join(lines) + "\n"
