"""Analysis helpers: theoretical reference curves, empirical error measurement
and plain-text table rendering for the experiment harness."""

from repro.analysis.theory import (
    approx_rounds_reference,
    exact_rounds_reference,
    kempe_rounds_reference,
    sampling_rounds_reference,
)
from repro.analysis.empirics import (
    TrialSummary,
    measure_approx_trial,
    success_fraction,
    summarize_errors,
)
from repro.analysis.tables import format_table, rows_to_csv

__all__ = [
    "approx_rounds_reference",
    "exact_rounds_reference",
    "kempe_rounds_reference",
    "sampling_rounds_reference",
    "TrialSummary",
    "measure_approx_trial",
    "success_fraction",
    "summarize_errors",
    "format_table",
    "rows_to_csv",
]
