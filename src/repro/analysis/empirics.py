"""Empirical measurement helpers shared by experiments and benchmarks."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Union

import numpy as np

from repro.core.approx_quantile import approximate_quantile
from repro.exceptions import ConfigurationError
from repro.utils.rand import RandomSource
from repro.utils.stats import fraction_within_eps, rank_error


@dataclass
class TrialSummary:
    """Error and round statistics for one algorithm trial."""

    n: int
    phi: float
    eps: float
    rounds: int
    error: float
    node_success_fraction: float
    succeeded: bool


def measure_approx_trial(
    values: Union[np.ndarray, Sequence[float]],
    phi: float,
    eps: float,
    rng: Union[None, int, RandomSource] = None,
    **kwargs,
) -> TrialSummary:
    """Run one approximate-quantile trial and measure its error."""
    array = np.asarray(values, dtype=float)
    result = approximate_quantile(array, phi=phi, eps=eps, rng=rng, **kwargs)
    error = rank_error(array, result.estimate, phi)
    node_success = fraction_within_eps(array, result.estimates, phi, eps)
    return TrialSummary(
        n=array.size,
        phi=phi,
        eps=eps,
        rounds=result.rounds,
        error=error,
        node_success_fraction=node_success,
        succeeded=error <= eps + 1e-12,
    )


def success_fraction(trials: Iterable[TrialSummary]) -> float:
    """Fraction of trials whose representative estimate met the ε guarantee."""
    trials = list(trials)
    if not trials:
        raise ConfigurationError("no trials given")
    return sum(1 for t in trials if t.succeeded) / len(trials)


def summarize_errors(trials: Iterable[TrialSummary]) -> Dict[str, float]:
    """Aggregate error / round statistics over a collection of trials."""
    trials = list(trials)
    if not trials:
        raise ConfigurationError("no trials given")
    errors = np.array([t.error for t in trials], dtype=float)
    rounds = np.array([t.rounds for t in trials], dtype=float)
    node_success = np.array([t.node_success_fraction for t in trials], dtype=float)
    return {
        "trials": float(len(trials)),
        "mean_error": float(errors.mean()),
        "max_error": float(errors.max()),
        "mean_rounds": float(rounds.mean()),
        "max_rounds": float(rounds.max()),
        "mean_node_success": float(node_success.mean()),
        "success_fraction": success_fraction(trials),
    }


def geometric_means(rows: List[Dict[str, float]], key: str) -> float:
    """Geometric mean of a positive column across result rows."""
    values = np.array([row[key] for row in rows], dtype=float)
    if values.size == 0 or np.any(values <= 0):
        raise ConfigurationError("geometric mean needs positive values")
    return float(np.exp(np.mean(np.log(values))))
