"""repro.obs — structured tracing, timing and metrics export.

See :mod:`repro.obs.tracer` for the span/tracer model and
:mod:`repro.obs.exporters` for the JSONL / profile-tree / Prometheus
renderings.  The ambient tracer defaults to the allocation-free
:data:`~repro.obs.tracer.NULL_TRACER`; install a real one with
:func:`~repro.obs.tracer.use_tracer` (or the CLI's ``--trace`` /
``--profile`` / ``--prom`` flags).
"""

from repro.obs.exporters import (
    render_profile,
    render_prometheus,
    write_trace_jsonl,
)
from repro.obs.tracer import (
    NULL_TRACER,
    LatencyHistogram,
    NullTracer,
    RoundSample,
    Span,
    SpanRecord,
    Tracer,
    get_tracer,
    set_tracer,
    use_tracer,
)

__all__ = [
    "LatencyHistogram",
    "NULL_TRACER",
    "NullTracer",
    "RoundSample",
    "Span",
    "SpanRecord",
    "Tracer",
    "get_tracer",
    "render_profile",
    "render_prometheus",
    "set_tracer",
    "use_tracer",
    "write_trace_jsonl",
]
