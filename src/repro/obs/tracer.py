"""Hierarchical tracing and timing for the gossip stack.

A :class:`Tracer` records a tree of *spans* — named, nested timing windows
(``exact_quantile`` → ``sandwich`` → ``two_tournament`` → pull batches)
that capture wall time and, when bound to a
:class:`~repro.gossip.metrics.NetworkMetrics` object, the simulated
rounds, messages, payload bits and query counters that elapsed inside the
window.  Spans *read* the existing counters by snapshotting them at the
span boundaries; they never touch the metrics object, the RNG streams, or
any protocol state, so tracing a seeded run leaves it bit-identical.

The default tracer is :data:`NULL_TRACER`, a no-op whose ``span()`` call
returns one shared singleton span — no allocation, no clock read, no
counter snapshot on the hot path (``benchmarks/bench_obs.py`` guards the
overhead).  Instrumented call sites therefore stay enabled everywhere and
cost nothing until a real tracer is installed::

    from repro.obs import Tracer, use_tracer

    tracer = Tracer()
    with use_tracer(tracer):
        exact_quantile(values, phi=0.5, fidelity="simulated")
    print(render_profile(tracer))

Per-round visibility comes from the engine hooks: both gossip engines
accept ``on_round(record, elapsed)`` callbacks (and fall back to the
active tracer's :meth:`Tracer.on_round`), so convergence traces and
rounds/sec throughput are observable live without paying
``keep_history=True``'s per-round record storage.
"""

from __future__ import annotations

import bisect
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "LatencyHistogram",
    "NullTracer",
    "NULL_TRACER",
    "RoundSample",
    "Span",
    "SpanRecord",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "use_tracer",
]


@dataclass
class SpanRecord:
    """One finished (or still-open) span.

    ``rounds`` / ``messages`` / ``bits`` / ``queries`` / ``query_bits`` /
    ``failed_node_rounds`` are the *deltas* of the bound metrics object
    between span entry and exit (all zero when the span was not bound to a
    metrics object).  Times are seconds relative to the tracer's epoch.
    """

    name: str
    index: int
    parent: Optional[int]
    depth: int
    start_s: float
    wall_s: float = 0.0
    rounds: int = 0
    messages: int = 0
    bits: int = 0
    queries: int = 0
    query_bits: int = 0
    failed_node_rounds: int = 0
    meta: Dict[str, Any] = field(default_factory=dict)
    done: bool = False


@dataclass(frozen=True)
class RoundSample:
    """One engine round as seen by :meth:`Tracer.on_round` (timeline mode)."""

    round_index: int
    label: str
    messages: int
    bits: int
    failed_nodes: int
    elapsed_s: float


class Span:
    """Context manager binding one :class:`SpanRecord` to a tracer.

    Entering snapshots the bound metrics counters; exiting stores the wall
    time and counter deltas.  ``annotate(**fields)`` attaches arbitrary
    metadata (lane counts, iteration numbers, ...) to the record.
    """

    __slots__ = ("_tracer", "_record", "_metrics", "_before", "_t0")

    def __init__(self, tracer: "Tracer", record: SpanRecord, metrics) -> None:
        self._tracer = tracer
        self._record = record
        self._metrics = metrics
        self._before: Optional[Tuple[int, ...]] = None
        self._t0 = 0.0

    @property
    def record(self) -> SpanRecord:
        return self._record

    def annotate(self, **fields) -> "Span":
        self._record.meta.update(fields)
        return self

    def __enter__(self) -> "Span":
        self._t0 = self._tracer._clock()
        if self._metrics is not None:
            self._before = self._metrics.counters()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        record = self._record
        record.wall_s = self._tracer._clock() - self._t0
        if self._before is not None:
            after = self._metrics.counters()
            before = self._before
            (
                record.rounds,
                record.messages,
                record.bits,
                record.queries,
                record.query_bits,
                record.failed_node_rounds,
            ) = (a - b for a, b in zip(after, before))
        record.done = True
        self._tracer._pop(record.index)
        return False


class _NullSpan:
    """The shared do-nothing span handed out by the null tracer."""

    __slots__ = ()

    record = None

    def annotate(self, **fields) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The default tracer: every operation is free and records nothing.

    ``span()`` returns one shared singleton, ``event()`` is a constant
    no-op, and ``on_round`` is ``None`` so the engines skip the per-round
    clock reads entirely.  ``active`` is the cheap guard call sites use
    before building event payloads.
    """

    __slots__ = ()

    active = False
    #: Engines read this attribute once per run; ``None`` disables the
    #: per-round hook (and its two clock reads) completely.
    on_round: Optional[Callable] = None

    def span(self, name: str, metrics=None) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, **fields) -> None:
        return None


NULL_TRACER = NullTracer()


class Tracer:
    """Collects spans, point events, and per-round engine samples.

    Parameters
    ----------
    round_timeline:
        Keep one :class:`RoundSample` per engine round seen by
        :meth:`on_round` (bounded by the caller's run length; the CLI's
        ``--trace`` enables this so the JSONL dump carries a convergence
        trace).  Off by default: the hook then only *aggregates* rounds,
        wall time and per-label totals, which is O(1) memory.
    clock:
        Monotonic clock; injectable for deterministic tests.
    """

    active = True

    def __init__(
        self,
        round_timeline: bool = False,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self._clock = clock
        self.epoch = clock()
        self.spans: List[SpanRecord] = []
        self.events: List[Dict[str, Any]] = []
        self._stack: List[int] = []
        # per-round aggregation (the engine hook)
        self.rounds_observed = 0
        self.round_wall_s = 0.0
        self._round_labels: Dict[str, List[float]] = {}
        self.timeline: Optional[List[RoundSample]] = (
            [] if round_timeline else None
        )

    # -- spans --------------------------------------------------------------------
    def span(self, name: str, metrics=None) -> Span:
        """Open a nested span; use as a context manager.

        ``metrics`` is an optional :class:`NetworkMetrics`-like object
        exposing ``counters()``; its deltas across the span are stored on
        the record.
        """
        parent = self._stack[-1] if self._stack else None
        record = SpanRecord(
            name=name,
            index=len(self.spans),
            parent=parent,
            depth=len(self._stack),
            start_s=self._clock() - self.epoch,
        )
        self.spans.append(record)
        self._stack.append(record.index)
        return Span(self, record, metrics)

    def _pop(self, index: int) -> None:
        # Spans exit LIFO under normal control flow; tolerate a stray exit
        # (e.g. a generator finalized late) rather than corrupting the tree.
        if self._stack and self._stack[-1] == index:
            self._stack.pop()
        elif index in self._stack:  # pragma: no cover - defensive
            self._stack.remove(index)

    # -- point events -------------------------------------------------------------
    def event(self, name: str, **fields) -> None:
        """Record a point-in-time event (e.g. one pull batch)."""
        fields["name"] = name
        fields["t_s"] = self._clock() - self.epoch
        if self._stack:
            fields["span"] = self._stack[-1]
        self.events.append(fields)

    # -- the engine round hook ----------------------------------------------------
    def on_round(self, record, elapsed: float) -> None:
        """Per-round engine hook: aggregate counts, wall time and labels.

        ``record`` is the round's :class:`~repro.gossip.metrics.RoundRecord`
        (read-only here) and ``elapsed`` the wall seconds the engine spent
        executing the round.
        """
        self.rounds_observed += 1
        self.round_wall_s += elapsed
        agg = self._round_labels.get(record.label)
        if agg is None:
            agg = self._round_labels[record.label] = [0, 0.0, 0, 0]
        agg[0] += 1
        agg[1] += elapsed
        agg[2] += record.messages
        agg[3] += record.bits
        if self.timeline is not None:
            self.timeline.append(
                RoundSample(
                    round_index=record.round_index,
                    label=record.label,
                    messages=record.messages,
                    bits=record.bits,
                    failed_nodes=record.failed_nodes,
                    elapsed_s=elapsed,
                )
            )

    @property
    def rounds_per_sec(self) -> float:
        """Observed engine throughput (0.0 before any hooked round ran)."""
        if self.round_wall_s <= 0.0:
            return 0.0
        return self.rounds_observed / self.round_wall_s

    def round_labels(self) -> Dict[str, Dict[str, float]]:
        """Per-label round aggregation from the engine hook."""
        return {
            label: {
                "rounds": int(agg[0]),
                "wall_s": agg[1],
                "messages": int(agg[2]),
                "bits": int(agg[3]),
            }
            for label, agg in self._round_labels.items()
        }

    # -- queries over the span tree -----------------------------------------------
    def find_spans(self, name: str) -> List[SpanRecord]:
        return [span for span in self.spans if span.name == name]

    def children(self, index: Optional[int]) -> Iterator[SpanRecord]:
        for span in self.spans:
            if span.parent == index:
                yield span

    def root_spans(self) -> List[SpanRecord]:
        return [span for span in self.spans if span.parent is None]

    def aggregate(self) -> Dict[str, Dict[str, float]]:
        """Per-name totals over all spans (calls, wall, rounds, bits, ...)."""
        totals: Dict[str, Dict[str, float]] = {}
        for span in self.spans:
            agg = totals.setdefault(
                span.name,
                {
                    "calls": 0,
                    "wall_s": 0.0,
                    "rounds": 0,
                    "messages": 0,
                    "bits": 0,
                    "queries": 0,
                    "query_bits": 0,
                },
            )
            agg["calls"] += 1
            agg["wall_s"] += span.wall_s
            agg["rounds"] += span.rounds
            agg["messages"] += span.messages
            agg["bits"] += span.bits
            agg["queries"] += span.queries
            agg["query_bits"] += span.query_bits
        return totals

    def totals(self) -> Dict[str, float]:
        """Whole-trace counters, summed over *root* spans only.

        Child spans are sub-windows of their parents, so summing every span
        would double-count; root spans are disjoint by construction.
        """
        keys = ("rounds", "messages", "bits", "queries", "query_bits")
        out = {key: 0 for key in keys}
        wall = 0.0
        for span in self.root_spans():
            wall += span.wall_s
            for key in keys:
                out[key] += getattr(span, key)
        out["wall_s"] = wall
        out["spans"] = len(self.spans)
        out["events"] = len(self.events)
        out["hook_rounds"] = self.rounds_observed
        return out


# -- the ambient tracer -------------------------------------------------------

_TRACER = NULL_TRACER


def get_tracer():
    """The ambient tracer (the :data:`NULL_TRACER` no-op by default)."""
    return _TRACER


def set_tracer(tracer) -> Any:
    """Install ``tracer`` globally; returns the previously installed one."""
    global _TRACER
    previous = _TRACER
    _TRACER = tracer if tracer is not None else NULL_TRACER
    return previous


@contextmanager
def use_tracer(tracer):
    """Install ``tracer`` for the duration of a ``with`` block."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


# -- latency histogram --------------------------------------------------------


class LatencyHistogram:
    """A fixed-bucket log₂ latency histogram (Prometheus-compatible).

    Buckets double from 1 µs to ~4 s (23 bounds) plus the implicit
    ``+Inf`` bucket; ``observe`` is one bisect + two adds, cheap enough to
    time every served query.  Counts are *non-cumulative* internally; the
    Prometheus renderer emits the cumulative form the text format requires.
    """

    #: Upper bounds in seconds: 1 µs · 2^i for i in 0..22 (~4.19 s).
    BOUNDS: Tuple[float, ...] = tuple(1e-6 * (2 ** i) for i in range(23))

    __slots__ = ("counts", "overflow", "count", "sum_s", "min_s", "max_s")

    def __init__(self) -> None:
        self.counts = [0] * len(self.BOUNDS)
        self.overflow = 0
        self.count = 0
        self.sum_s = 0.0
        self.min_s = float("inf")
        self.max_s = 0.0

    def observe(self, seconds: float) -> None:
        if seconds < 0.0:
            raise ValueError("latency must be non-negative")
        self.count += 1
        self.sum_s += seconds
        if seconds < self.min_s:
            self.min_s = seconds
        if seconds > self.max_s:
            self.max_s = seconds
        index = bisect.bisect_left(self.BOUNDS, seconds)
        if index >= len(self.BOUNDS):
            self.overflow += 1
        else:
            self.counts[index] += 1

    def quantile(self, q: float) -> float:
        """Approximate latency quantile: the upper bound of the bucket in
        which the ``q``-th observation falls (0.0 when empty)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self.count == 0:
            return 0.0
        target = q * self.count
        seen = 0
        for bound, count in zip(self.BOUNDS, self.counts):
            seen += count
            if seen >= target:
                return bound
        return self.max_s

    def summary(self) -> Dict[str, float]:
        if self.count == 0:
            return {"count": 0, "mean_s": 0.0, "p50_s": 0.0, "p99_s": 0.0,
                    "max_s": 0.0}
        return {
            "count": self.count,
            "mean_s": self.sum_s / self.count,
            "p50_s": self.quantile(0.5),
            "p99_s": self.quantile(0.99),
            "max_s": self.max_s,
        }
