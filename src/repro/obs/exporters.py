"""Exporters for traces and metrics: JSON-lines, profile tree, Prometheus.

Three renderings of one :class:`~repro.obs.tracer.Tracer`:

* :func:`write_trace_jsonl` — a machine-readable span/event/round dump,
  one JSON object per line (the CLI's ``--trace FILE``);
* :func:`render_profile` — a human-readable span tree with wall time,
  rounds, messages and payload bits per span (the CLI's ``--profile``);
* :func:`render_prometheus` — a flat Prometheus-text-format rendering of
  the trace totals, per-span-name aggregates, round-label throughput, any
  :class:`~repro.gossip.metrics.NetworkMetrics` objects, and any
  :class:`~repro.obs.tracer.LatencyHistogram` instances (the CLI's
  ``--prom FILE``).
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Dict, Mapping, Optional, Union

from repro.obs.tracer import LatencyHistogram, Tracer

__all__ = ["render_profile", "render_prometheus", "write_trace_jsonl"]


def _span_line(span) -> Dict:
    payload = asdict(span)
    payload["type"] = "span"
    return payload


def write_trace_jsonl(tracer: Tracer, path: Union[str, Path]) -> int:
    """Dump a tracer as JSON lines; returns the number of lines written.

    The stream carries one ``{"type": "span"}`` object per span (in start
    order, with ``index``/``parent`` encoding the tree), one
    ``{"type": "event"}`` object per point event, one
    ``{"type": "round"}`` object per engine round when the tracer kept a
    round timeline, and a trailing ``{"type": "summary"}`` object with the
    whole-trace totals and per-label round aggregation.
    """
    path = Path(path)
    lines = 0
    with path.open("w", encoding="utf-8") as stream:
        for span in tracer.spans:
            stream.write(json.dumps(_span_line(span), default=str) + "\n")
            lines += 1
        for event in tracer.events:
            payload = dict(event)
            payload["type"] = "event"
            stream.write(json.dumps(payload, default=str) + "\n")
            lines += 1
        if tracer.timeline is not None:
            for sample in tracer.timeline:
                payload = asdict(sample)
                payload["type"] = "round"
                stream.write(json.dumps(payload) + "\n")
                lines += 1
        summary = {
            "type": "summary",
            "totals": tracer.totals(),
            "round_labels": tracer.round_labels(),
            "rounds_per_sec": tracer.rounds_per_sec,
        }
        stream.write(json.dumps(summary) + "\n")
        lines += 1
    return lines


def render_profile(tracer: Tracer, max_depth: Optional[int] = None) -> str:
    """A human-readable profile tree: wall, rounds, messages, bits per span."""
    lines = [
        f"{'span':<44} {'wall':>10}  {'rounds':>7}  {'messages':>9}  "
        f"{'bits':>12}"
    ]
    lines.append("-" * len(lines[0]))

    def emit(parent, prefix: str) -> None:
        for span in tracer.children(parent):
            if max_depth is not None and span.depth > max_depth:
                continue
            label = f"{prefix}{span.name}"
            if span.meta:
                meta = ",".join(f"{k}={v}" for k, v in sorted(span.meta.items()))
                label = f"{label}[{meta}]"
            lines.append(
                f"{label:<44} {span.wall_s * 1e3:>8.2f}ms  {span.rounds:>7}  "
                f"{span.messages:>9}  {span.bits:>12}"
            )
            emit(span.index, prefix + "  ")

    emit(None, "")
    totals = tracer.totals()
    lines.append("-" * len(lines[0]))
    lines.append(
        f"{'total':<44} {totals['wall_s'] * 1e3:>8.2f}ms  "
        f"{totals['rounds']:>7}  {totals['messages']:>9}  {totals['bits']:>12}"
    )
    if tracer.rounds_observed:
        lines.append(
            f"engine rounds observed: {tracer.rounds_observed} "
            f"({tracer.rounds_per_sec:.0f} rounds/sec hooked)"
        )
    if totals["queries"]:
        lines.append(
            f"queries answered: {totals['queries']} "
            f"({totals['query_bits']} bits)"
        )
    return "\n".join(lines)


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"')


def _counter(lines, name: str, help_text: str, value, labels: str = "") -> None:
    lines.append(f"# HELP {name} {help_text}")
    lines.append(f"# TYPE {name} counter")
    lines.append(f"{name}{labels} {value}")


def render_prometheus(
    tracer: Optional[Tracer] = None,
    metrics: Optional[Mapping[str, object]] = None,
    histograms: Optional[Mapping[str, LatencyHistogram]] = None,
    prefix: str = "repro",
    faults: Optional[Mapping[str, object]] = None,
) -> str:
    """Render observability state in the Prometheus text exposition format.

    Parameters
    ----------
    tracer:
        Optional tracer: whole-trace totals become ``<prefix>_*_total``
        counters, per-span-name aggregates become labelled
        ``<prefix>_span_*`` families, and the engine-hook label
        aggregation becomes ``<prefix>_round_*`` families.
    metrics:
        Optional mapping ``{instance_label: NetworkMetrics}``; each is
        rendered through its ``summary()`` as labelled counters.
    histograms:
        Optional mapping ``{name: LatencyHistogram}``; rendered as native
        Prometheus histograms (cumulative ``_bucket`` series, ``_sum``,
        ``_count``).
    faults:
        Optional mapping ``{instance_label: FaultInjector}``; each
        injector's per-kind ``counters`` (drop / duplicate / delay /
        crash / corrupt / restart) become one
        ``<prefix>_faults_total{instance=...,kind=...}`` family.
    """
    lines = []
    if tracer is not None:
        totals = tracer.totals()
        _counter(lines, f"{prefix}_rounds_total",
                 "Simulated gossip rounds inside traced spans.",
                 totals["rounds"])
        _counter(lines, f"{prefix}_messages_total",
                 "Messages inside traced spans.", totals["messages"])
        _counter(lines, f"{prefix}_bits_total",
                 "Payload bits inside traced spans.", totals["bits"])
        _counter(lines, f"{prefix}_queries_total",
                 "Quantile queries answered inside traced spans.",
                 totals["queries"])
        _counter(lines, f"{prefix}_query_bits_total",
                 "Payload bits of answered queries inside traced spans.",
                 totals["query_bits"])
        for family, key, help_text in (
            ("span_wall_seconds", "wall_s", "Wall seconds per span name."),
            ("span_calls", "calls", "Span entries per span name."),
            ("span_rounds", "rounds", "Gossip rounds per span name."),
            ("span_bits", "bits", "Payload bits per span name."),
        ):
            name = f"{prefix}_{family}"
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} counter")
            for span_name, agg in sorted(tracer.aggregate().items()):
                lines.append(
                    f'{name}{{span="{_escape_label(span_name)}"}} {agg[key]}'
                )
        if tracer.rounds_observed:
            name = f"{prefix}_engine_rounds"
            lines.append(f"# HELP {name} Engine rounds observed per label.")
            lines.append(f"# TYPE {name} counter")
            for label, agg in sorted(tracer.round_labels().items()):
                lines.append(
                    f'{name}{{label="{_escape_label(label)}"}} {agg["rounds"]}'
                )
            lines.append(
                f"# HELP {prefix}_engine_rounds_per_sec Hooked engine "
                "round throughput."
            )
            lines.append(f"# TYPE {prefix}_engine_rounds_per_sec gauge")
            lines.append(
                f"{prefix}_engine_rounds_per_sec {tracer.rounds_per_sec:.6g}"
            )
    if metrics:
        for instance, metric in sorted(metrics.items()):
            labels = f'{{instance="{_escape_label(instance)}"}}'
            for key, value in metric.summary().items():
                name = f"{prefix}_metrics_{key}"
                lines.append(f"# TYPE {name} counter")
                lines.append(f"{name}{labels} {value}")
    if faults:
        name = f"{prefix}_faults_total"
        lines.append(
            f"# HELP {name} Injected faults per injector instance and kind."
        )
        lines.append(f"# TYPE {name} counter")
        for instance, injector in sorted(faults.items()):
            for kind, count in sorted(injector.counters.items()):
                lines.append(
                    f'{name}{{instance="{_escape_label(instance)}",'
                    f'kind="{_escape_label(kind)}"}} {count}'
                )
    if histograms:
        for hist_name, hist in sorted(histograms.items()):
            name = f"{prefix}_{hist_name}_seconds"
            lines.append(
                f"# HELP {name} Latency histogram ({hist_name})."
            )
            lines.append(f"# TYPE {name} histogram")
            cumulative = 0
            for bound, count in zip(hist.BOUNDS, hist.counts):
                cumulative += count
                lines.append(f'{name}_bucket{{le="{bound:.6g}"}} {cumulative}')
            lines.append(f'{name}_bucket{{le="+Inf"}} {hist.count}')
            lines.append(f"{name}_sum {hist.sum_s:.9g}")
            lines.append(f"{name}_count {hist.count}")
    return "\n".join(lines) + "\n"
