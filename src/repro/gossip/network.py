"""The vectorised pull surface of the uniform gossip model.

The tournament algorithms of the paper only ever *pull the current value of
a uniformly random node*.  A :class:`GossipNetwork` therefore stores the
current value of every node in a single numpy array and executes one round
(all n nodes pull one random partner) as a single gather.  Round, message
and bit accounting, and the Section-5 failure model, are applied per round.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np

from repro.exceptions import ConfigurationError
from repro.gossip.failures import FailureModel, NoFailures, resolve_failure_model
from repro.gossip.messages import tournament_message_bits
from repro.gossip.metrics import NetworkMetrics
from repro.topology.dynamic import TopologyProcess, resolve_topology_process
from repro.topology.graphs import Topology
from repro.topology.sampler import resolve_peer_sampler
from repro.utils.rand import RandomSource


@dataclass
class PullBatch:
    """Result of ``k`` consecutive pull rounds.

    Attributes
    ----------
    partners:
        ``(n, k)`` integer array: the node contacted by each node in each of
        the ``k`` rounds.
    values:
        ``(n, k)`` float array: the value held by that partner at the start
        of the batch.  (Within one tournament iteration every pull reads the
        partner's value *from the previous iteration*, so reading a snapshot
        is exactly the paper's semantics.)
    ok:
        ``(n, k)`` boolean array: False where the pulling node failed in
        that round and the pull therefore never happened.
    """

    partners: np.ndarray
    values: np.ndarray
    ok: np.ndarray

    @property
    def n(self) -> int:
        return self.partners.shape[0]

    @property
    def k(self) -> int:
        return self.partners.shape[1]


class GossipNetwork:
    """A synchronous uniform gossip network over a shared value array.

    Parameters
    ----------
    values:
        Initial value of every node (length ``n``).
    rng:
        Seed or :class:`RandomSource` for partner selection and failures.
    failure_model:
        ``None`` (no failures), a float ``mu`` or a :class:`FailureModel`.
    allow_self_contact:
        Whether a node may contact itself (probability ``1/n``).  The
        uniform gossip model in the paper contacts a uniformly random
        *other* node; excluding self-contacts is the default.  Allowing them
        changes nothing asymptotically and is occasionally convenient in
        tests.
    metrics:
        Optionally share a :class:`NetworkMetrics` object with an enclosing
        computation (the exact-quantile driver threads one metrics object
        through all of its sub-protocols).
    topology:
        Optional :class:`~repro.topology.graphs.Topology` restricting who
        can be pulled from.  ``None`` (the default) is the paper's uniform
        gossip on the complete graph — bit-identical to the historical
        partner stream.
    peer_sampling:
        Partner strategy on a sparse topology: ``"uniform"`` over neighbors
        or ``"round-robin"`` (shuffled cyclic neighbor schedule).
    topology_process:
        Optional :class:`~repro.topology.dynamic.TopologyProcess` making the
        graph a per-round object (churn, newscast-style edge resampling).
        Mutually exclusive with ``topology``.  With a process attached each
        pull column draws its partners from that round's sampler (active
        targets only) and departed nodes have ``ok = False`` for the round.
    """

    def __init__(
        self,
        values: Union[Sequence[float], np.ndarray],
        rng: Union[None, int, RandomSource] = None,
        failure_model: Union[None, float, FailureModel] = None,
        allow_self_contact: bool = False,
        metrics: Optional[NetworkMetrics] = None,
        keep_history: bool = True,
        topology: Optional[Topology] = None,
        peer_sampling: str = "uniform",
        topology_process: Optional[TopologyProcess] = None,
    ) -> None:
        array = np.asarray(values, dtype=float).copy()
        if array.ndim != 1:
            raise ConfigurationError("values must be one-dimensional")
        if array.size < 2:
            raise ConfigurationError("a gossip network needs at least 2 nodes")
        self._values = array
        self._initial_values = array.copy()
        self._n = array.size
        self._rng = rng if isinstance(rng, RandomSource) else RandomSource(rng)
        self._failures = resolve_failure_model(failure_model)
        self._allow_self = bool(allow_self_contact)
        self._topology = topology
        if topology_process is not None:
            if topology is not None:
                raise ConfigurationError(
                    "pass either topology or topology_process, not both"
                )
            # Mirror the engine path: the process owns partner selection,
            # so overrides that could not take effect are errors rather
            # than silent no-ops.
            if peer_sampling != "uniform":
                raise ConfigurationError(
                    "peer_sampling is owned by the topology process; "
                    "construct the process with the desired strategy instead"
                )
            if self._allow_self:
                raise ConfigurationError(
                    "allow_self_contact has no effect under a topology "
                    "process; its samplers always exclude self-contacts"
                )
        self._process = resolve_topology_process(topology_process, self._n)
        self._sampler = None if self._process is not None else resolve_peer_sampler(
            topology,
            sampling=peer_sampling,
            n=self._n,
            allow_self=self._allow_self,
        )
        self.metrics = metrics if metrics is not None else NetworkMetrics(
            keep_history=keep_history
        )
        self._message_bits = tournament_message_bits(self._n)

    # -- basic properties ---------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of nodes."""
        return self._n

    @property
    def values(self) -> np.ndarray:
        """The current value of every node (live view; treat as read-only)."""
        return self._values

    @property
    def initial_values(self) -> np.ndarray:
        """The values the network was constructed with (copy kept internally)."""
        return self._initial_values

    @property
    def rng(self) -> RandomSource:
        return self._rng

    @property
    def failure_model(self) -> FailureModel:
        return self._failures

    @property
    def rounds(self) -> int:
        """Number of synchronous rounds executed so far."""
        return self.metrics.rounds

    def snapshot(self) -> np.ndarray:
        """A copy of the current values."""
        return self._values.copy()

    def set_values(self, values: Union[Sequence[float], np.ndarray]) -> None:
        """Replace the value of every node (e.g. between algorithm phases)."""
        array = np.asarray(values, dtype=float)
        if array.shape != (self._n,):
            raise ConfigurationError(
                f"expected {self._n} values, got shape {array.shape}"
            )
        self._values = array.copy()

    def reset(self) -> None:
        """Restore the initial values and clear accumulated metrics."""
        self._values = self._initial_values.copy()
        self.metrics = NetworkMetrics(keep_history=self.metrics.keep_history)
        if self._process is not None:
            self._process.begin()

    @property
    def topology(self):
        """The attached topology, or ``None`` for uniform/complete gossip."""
        return self._topology

    @property
    def topology_process(self):
        """The attached topology process, or ``None`` for a static graph."""
        return self._process

    # -- partner selection --------------------------------------------------------
    def _sample_partners(self, k: int) -> np.ndarray:
        # The sampler owns the draw; the default UniformSampler block draw
        # is verbatim the historical code, so seeded runs are unchanged.
        return self._sampler.draw_block(self._rng, k)

    # -- the pull surface ---------------------------------------------------------
    def pull(
        self,
        k: int = 1,
        label: str = "pull",
        payload_bits: Optional[int] = None,
        values: Optional[np.ndarray] = None,
    ) -> PullBatch:
        """Execute ``k`` pull rounds and return the pulled snapshot values.

        Each of the ``k`` columns corresponds to one synchronous round in
        which every node pulls the (start-of-batch) value of one uniformly
        random node.  Nodes that fail in a round (per the failure model)
        have ``ok = False`` for that round and receive no value (NaN).
        """
        if k <= 0:
            raise ConfigurationError("k must be positive")
        source = self._values if values is None else np.asarray(values, dtype=float)
        if source.shape != (self._n,):
            raise ConfigurationError("values override must have length n")
        bits = self._message_bits if payload_bits is None else int(payload_bits)

        if self._process is not None:
            return self._pull_dynamic(k, label, bits, source)
        partners = self._sample_partners(k)
        pulled = source[partners]
        ok = np.ones((self._n, k), dtype=bool)
        for column in range(k):
            record = self.metrics.begin_round(label=label)
            failed = self._failures.failure_mask(self.metrics.rounds - 1, self._n, self._rng)
            ok[:, column] = ~failed
            self.metrics.record_failures(int(failed.sum()), record)
            # one request + one response per successful pull; we charge the
            # response (which carries the value) at the protocol's bit cost.
            successes = int((~failed).sum())
            self.metrics.record_messages(successes, bits, record)
        pulled = np.where(ok, pulled, np.nan)
        return PullBatch(partners=partners, values=pulled, ok=ok)

    def _pull_dynamic(
        self, k: int, label: str, bits: int, source: np.ndarray
    ) -> PullBatch:
        """Pull rounds under a topology process: per-column partner draws.

        Each column asks the process for that round's state first, so the
        partner matrix reflects the evolving graph; departed pullers get
        ``ok = False`` exactly like failed ones.  Values are still read from
        the start-of-batch snapshot (the paper's within-iteration
        semantics).  The process round counter is the network's global
        round count, so interleaved pull batches see one consistent
        schedule.
        """
        partners = np.empty((self._n, k), dtype=np.int64)
        ok = np.ones((self._n, k), dtype=bool)
        for column in range(k):
            record = self.metrics.begin_round(label=label)
            state = self._process.round_state(self.metrics.rounds - 1)
            partners[:, column] = state.sampler.draw_round(self._rng)
            failed = self._failures.failure_mask(
                self.metrics.rounds - 1, self._n, self._rng
            )
            failed = failed | ~state.active
            ok[:, column] = ~failed
            self.metrics.record_failures(int(failed.sum()), record)
            successes = int((~failed).sum())
            self.metrics.record_messages(successes, bits, record)
        pulled = np.where(ok, source[partners], np.nan)
        return PullBatch(partners=partners, values=pulled, ok=ok)

    def pull_values(self, k: int = 1, label: str = "pull") -> np.ndarray:
        """Convenience wrapper returning only the ``(n, k)`` value array.

        Only valid under :class:`NoFailures`; raises otherwise because the
        caller would have no way to see which pulls failed.
        """
        if not isinstance(self._failures, NoFailures):
            raise ConfigurationError(
                "pull_values() hides failures; use pull() with a failure model"
            )
        return self.pull(k=k, label=label).values

    def charge_rounds(self, count: int, label: str = "charged") -> None:
        """Account for ``count`` rounds executed by an external sub-protocol."""
        self.metrics.charge_rounds(count, label=label)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GossipNetwork(n={self._n}, rounds={self.rounds}, "
            f"failures={self._failures!r})"
        )
