"""The vectorised pull surface of the uniform gossip model.

The tournament algorithms of the paper only ever *pull the current value of
a uniformly random node*.  A :class:`GossipNetwork` therefore stores the
current value of every node in a single numpy array and executes one round
(all n nodes pull one random partner) as a single gather.  Round, message
and bit accounting, and the Section-5 failure model, are applied per round
through one batched accounting call.

Multi-lane networks
-------------------
A network may carry ``L`` *lanes*: the value array becomes an ``(n, L)``
column-stacked matrix and every node's message carries its ``L`` working
values.  One partner matrix is drawn per round and shared across lanes —
exactly the paper's Step-3 trick of running the lower and upper ε/2
approximation of Algorithm 3 in the same O(log n)-round window, with one
O(log n)-bit message carrying both working values.  Each round is recorded
once, with the per-lane payload bits folded into the message size.
``L = 1`` (a 1-d value array) is bit-identical to the historical
single-lane partner and value streams.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np

from repro.exceptions import ConfigurationError
from repro.faults.injectors import FaultInjector
from repro.gossip.failures import FailureModel, NoFailures, resolve_failure_model
from repro.gossip.messages import BITS_PER_VALUE, tournament_message_bits
from repro.gossip.metrics import NetworkMetrics
from repro.obs.tracer import get_tracer
from repro.topology.dynamic import TopologyProcess, resolve_topology_process
from repro.topology.graphs import Topology
from repro.topology.sampler import resolve_peer_sampler
from repro.utils.rand import RandomSource

#: Value dtypes a network may run on.  float64 is the default; float32
#: halves the memory traffic of the per-round ``(n, k, L)`` gathers and is
#: exact for integer-valued payloads below 2**24 (e.g. the exact-quantile
#: driver's rank keys).
SUPPORTED_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))


def resolve_value_dtype(dtype) -> np.dtype:
    """Normalize a user-supplied value dtype (``None`` -> float64)."""
    resolved = np.dtype(np.float64 if dtype is None else dtype)
    if resolved not in SUPPORTED_DTYPES:
        raise ConfigurationError(
            f"unsupported value dtype {resolved}; choose float32 or float64"
        )
    return resolved


@dataclass
class PullBatch:
    """Result of ``k`` consecutive pull rounds.

    Attributes
    ----------
    partners:
        ``(n, k)`` integer array: the node contacted by each node in each of
        the ``k`` rounds.  One draw shared by every lane.
    values:
        The value held by that partner at the start of the batch: ``(n, k)``
        for a single-lane network, ``(n, k, L)`` for a multi-lane one.
        (Within one tournament iteration every pull reads the partner's
        value *from the previous iteration*, so reading a snapshot is
        exactly the paper's semantics.)
    ok:
        ``(n, k)`` boolean array: False where the pulling node failed in
        that round and the pull therefore never happened.  Failures are
        per node and round — they apply to every lane of the message.
    """

    partners: np.ndarray
    values: np.ndarray
    ok: np.ndarray

    @property
    def n(self) -> int:
        return self.partners.shape[0]

    @property
    def k(self) -> int:
        return self.partners.shape[1]

    @property
    def lanes(self) -> int:
        return 1 if self.values.ndim == 2 else self.values.shape[2]


class GossipNetwork:
    """A synchronous uniform gossip network over a shared value array.

    Parameters
    ----------
    values:
        Initial value of every node: length ``n`` for a single-lane network
        or an ``(n, L)`` column-stacked matrix for ``L`` lanes sharing one
        partner stream (see the module docstring).
    rng:
        Seed or :class:`RandomSource` for partner selection and failures.
    failure_model:
        ``None`` (no failures), a float ``mu`` or a :class:`FailureModel`.
    allow_self_contact:
        Whether a node may contact itself (probability ``1/n``).  The
        uniform gossip model in the paper contacts a uniformly random
        *other* node; excluding self-contacts is the default.  Allowing them
        changes nothing asymptotically and is occasionally convenient in
        tests.
    metrics:
        Optionally share a :class:`NetworkMetrics` object with an enclosing
        computation (the exact-quantile driver threads one metrics object
        through all of its sub-protocols).
    topology:
        Optional :class:`~repro.topology.graphs.Topology` restricting who
        can be pulled from.  ``None`` (the default) is the paper's uniform
        gossip on the complete graph — bit-identical to the historical
        partner stream.
    peer_sampling:
        Partner strategy on a sparse topology: ``"uniform"`` over neighbors
        or ``"round-robin"`` (shuffled cyclic neighbor schedule).
    topology_process:
        Optional :class:`~repro.topology.dynamic.TopologyProcess` making the
        graph a per-round object (churn, newscast-style edge resampling).
        Mutually exclusive with ``topology``.  With a process attached each
        pull column draws its partners from that round's sampler (active
        targets only) and departed nodes have ``ok = False`` for the round.
    dtype:
        Value dtype: float64 (default) or float32.  The paper's messages
        are O(log n) bits either way; float32 halves the simulator's
        memory traffic on the hot ``(n, k, L)`` gathers.
    faults:
        Optional :class:`~repro.faults.injectors.FaultInjector`.  The pull
        surface applies the full fault vocabulary: crash/drop suppress the
        pull (``ok = False``), duplicates are charged as extra messages,
        delayed pulls are served from a bounded ring of past value
        snapshots (delay is measured in value-update windows, i.e. pull
        batches), corrupted pulls deliver a perturbed payload, and nodes
        restarting from a ``reset_values`` crash lose their working values
        (reset to the initial values at the next batch boundary).  The
        injector draws from its own seeded stream, composes with any
        failure model and topology process (masks OR-ed), and leaves every
        fault-free stream bit-identical when absent.
    """

    def __init__(
        self,
        values: Union[Sequence[float], np.ndarray],
        rng: Union[None, int, RandomSource] = None,
        failure_model: Union[None, float, FailureModel] = None,
        allow_self_contact: bool = False,
        metrics: Optional[NetworkMetrics] = None,
        keep_history: bool = True,
        topology: Optional[Topology] = None,
        peer_sampling: str = "uniform",
        topology_process: Optional[TopologyProcess] = None,
        dtype=None,
        faults: Optional[FaultInjector] = None,
    ) -> None:
        self._dtype = resolve_value_dtype(dtype)
        array = np.asarray(values, dtype=self._dtype).copy()
        if array.ndim not in (1, 2):
            raise ConfigurationError(
                "values must be one-dimensional (single lane) or an "
                "(n, lanes) matrix"
            )
        if array.ndim == 2 and array.shape[1] < 1:
            raise ConfigurationError("a multi-lane network needs at least 1 lane")
        if array.shape[0] < 2:
            raise ConfigurationError("a gossip network needs at least 2 nodes")
        self._values = array
        self._initial_values = array.copy()
        self._n = array.shape[0]
        self._lanes = 1 if array.ndim == 1 else array.shape[1]
        self._rng = rng if isinstance(rng, RandomSource) else RandomSource(rng)
        self._failures = resolve_failure_model(failure_model)
        self._allow_self = bool(allow_self_contact)
        self._topology = topology
        if topology_process is not None:
            if topology is not None:
                raise ConfigurationError(
                    "pass either topology or topology_process, not both"
                )
            # Mirror the engine path: the process owns partner selection,
            # so overrides that could not take effect are errors rather
            # than silent no-ops.
            if peer_sampling != "uniform":
                raise ConfigurationError(
                    "peer_sampling is owned by the topology process; "
                    "construct the process with the desired strategy instead"
                )
            if self._allow_self:
                raise ConfigurationError(
                    "allow_self_contact has no effect under a topology "
                    "process; its samplers always exclude self-contacts"
                )
        if faults is not None and not isinstance(faults, FaultInjector):
            raise ConfigurationError(
                f"faults must be a FaultInjector, got {faults!r}"
            )
        self._faults = faults
        self._delay_history: Optional[deque] = (
            deque(maxlen=faults.max_delay)
            if faults is not None and faults.max_delay > 0
            else None
        )
        self._process = resolve_topology_process(topology_process, self._n)
        self._sampler = None if self._process is not None else resolve_peer_sampler(
            topology,
            sampling=peer_sampling,
            n=self._n,
            allow_self=self._allow_self,
        )
        self.metrics = metrics if metrics is not None else NetworkMetrics(
            keep_history=keep_history
        )
        # One message per pull; a multi-lane message carries one value per
        # lane under the same framing (the paper's shared O(log n)-bit
        # window), so extra lanes add only their payload values.
        self._message_bits = (
            tournament_message_bits(self._n) + (self._lanes - 1) * BITS_PER_VALUE
        )

    # -- basic properties ---------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of nodes."""
        return self._n

    @property
    def lanes(self) -> int:
        """Number of value lanes sharing the partner stream."""
        return self._lanes

    @property
    def dtype(self) -> np.dtype:
        """The dtype of the value array."""
        return self._dtype

    @property
    def values(self) -> np.ndarray:
        """The current value of every node (live view; treat as read-only)."""
        return self._values

    @property
    def initial_values(self) -> np.ndarray:
        """The values the network was constructed with (copy kept internally)."""
        return self._initial_values

    @property
    def rng(self) -> RandomSource:
        return self._rng

    @property
    def failure_model(self) -> FailureModel:
        return self._failures

    @property
    def can_fail(self) -> bool:
        """Whether any pull can come back with ``ok = False``.

        True when a failure model is attached, the topology is a dynamic
        process (departed nodes do not pull), or a fault injector can
        suppress pulls.  Phase drivers use this to skip the per-iteration
        fallback snapshot on the failure-free path.
        """
        return (
            not isinstance(self._failures, NoFailures)
            or self._process is not None
            or self._faults is not None
        )

    @property
    def rounds(self) -> int:
        """Number of synchronous rounds executed so far."""
        return self.metrics.rounds

    def snapshot(self) -> np.ndarray:
        """A copy of the current values."""
        return self._values.copy()

    def set_values(
        self, values: Union[Sequence[float], np.ndarray], copy: bool = True
    ) -> None:
        """Replace the value of every node (e.g. between algorithm phases).

        ``copy=False`` adopts the array without a defensive copy — for
        callers handing over a freshly built array they will not touch
        again (the tournament phases do this every iteration).
        """
        array = np.asarray(values, dtype=self._dtype)
        if array.shape != self._values.shape:
            raise ConfigurationError(
                f"expected values of shape {self._values.shape}, "
                f"got shape {array.shape}"
            )
        self._values = array.copy() if copy else array

    def reset(self) -> None:
        """Restore the initial values and clear accumulated metrics."""
        self._values = self._initial_values.copy()
        self.metrics = NetworkMetrics(keep_history=self.metrics.keep_history)
        if self._process is not None:
            self._process.begin()
        if self._faults is not None:
            self._faults.begin()
        if self._delay_history is not None:
            self._delay_history.clear()

    @property
    def topology(self):
        """The attached topology, or ``None`` for uniform/complete gossip."""
        return self._topology

    @property
    def topology_process(self):
        """The attached topology process, or ``None`` for a static graph."""
        return self._process

    # -- partner selection --------------------------------------------------------
    def _sample_partners(self, k: int) -> np.ndarray:
        # The sampler owns the draw; the default UniformSampler block draw
        # is verbatim the historical code, so seeded runs are unchanged.
        return self._sampler.draw_block(self._rng, k)

    # -- the pull surface ---------------------------------------------------------
    def pull(
        self,
        k: int = 1,
        label: str = "pull",
        payload_bits: Optional[int] = None,
        values: Optional[np.ndarray] = None,
    ) -> PullBatch:
        """Execute ``k`` pull rounds and return the pulled snapshot values.

        Each of the ``k`` columns corresponds to one synchronous round in
        which every node pulls the (start-of-batch) value of one uniformly
        random node — every lane reads from the same partner.  Nodes that
        fail in a round (per the failure model) have ``ok = False`` for
        that round and receive no value (NaN).
        """
        if k <= 0:
            raise ConfigurationError("k must be positive")
        source = self._values if values is None else np.asarray(
            values, dtype=self._dtype
        )
        if source.shape != self._values.shape:
            raise ConfigurationError(
                f"values override must have shape {self._values.shape}"
            )
        bits = self._message_bits if payload_bits is None else int(payload_bits)
        tracer = get_tracer()
        if tracer.active:
            # One event per pull *batch* (k rounds), not per round: the
            # round windows of a tournament become visible in the trace
            # while the inactive-tracer cost stays one attribute check.
            tracer.event(
                "pull",
                label=label,
                k=k,
                lanes=self._lanes,
                bits_each=bits,
                round_start=self.metrics.rounds,
            )

        if self._faults is not None:
            return self._pull_with_faults(k, label, bits, source)
        if self._process is not None:
            return self._pull_dynamic(k, label, bits, source)
        partners = self._sample_partners(k)
        pulled = self._gather(source, partners)
        if isinstance(self._failures, NoFailures):
            # Failure-free fast path: no per-round mask draws, no NaN
            # masking, one batched accounting call for all k rounds, and a
            # zero-allocation broadcast view for the all-True ok mask.
            ok = np.broadcast_to(np.True_, (self._n, k))
            self.metrics.record_rounds_batch(
                k, label=label, messages=self._n, bits_each=bits
            )
            return PullBatch(partners=partners, values=pulled, ok=ok)
        # Failure masks are drawn per round, in round order, so the random
        # stream is unchanged from the historical per-column loop; only the
        # metrics recording is batched.
        base = self.metrics.rounds
        ok = np.empty((self._n, k), dtype=bool)
        for column in range(k):
            failed = self._failures.failure_mask(base + column, self._n, self._rng)
            ok[:, column] = ~failed
        successes = ok.sum(axis=0)
        # one request + one response per successful pull; we charge the
        # response (which carries the values) at the protocol's bit cost.
        self.metrics.record_rounds_batch(
            k,
            label=label,
            messages=successes,
            bits_each=bits,
            failures=self._n - successes,
        )
        pulled = self._mask_failed(pulled, ok)
        return PullBatch(partners=partners, values=pulled, ok=ok)

    def _gather(self, source: np.ndarray, partners: np.ndarray) -> np.ndarray:
        """Gather the pulled values: ``(n, k)`` or ``(n, k, L)``.

        Multi-lane gathers go lane by lane from a contiguous column —
        several 1-d gathers are ~3x faster than one row-wise gather of
        ``(n, L)`` rows.  The lanes-first block is returned as a transposed
        ``(n, k, L)`` view.  ``np.take(mode="clip")`` skips the per-element
        bounds check fancy indexing pays (partners are drawn in ``[0, n)``,
        so clipping never fires) — ~40% faster on latency-bound gathers at
        n = 10⁶.
        """
        if source.ndim == 1:
            return np.take(source, partners, mode="clip")
        block = np.empty(
            (self._lanes,) + partners.shape, dtype=self._dtype
        )
        for lane in range(self._lanes):
            np.take(
                np.ascontiguousarray(source[:, lane]),
                partners,
                out=block[lane],
                mode="clip",
            )
        return block.transpose(1, 2, 0)

    def _mask_failed(self, pulled: np.ndarray, ok: np.ndarray) -> np.ndarray:
        """NaN out the pulls of failed nodes (lane-broadcast for L > 1)."""
        mask = ok if pulled.ndim == 2 else ok[:, :, None]
        return np.where(mask, pulled, np.nan)

    def _pull_dynamic(
        self, k: int, label: str, bits: int, source: np.ndarray
    ) -> PullBatch:
        """Pull rounds under a topology process: per-column partner draws.

        Each column asks the process for that round's state first, so the
        partner matrix reflects the evolving graph; departed pullers get
        ``ok = False`` exactly like failed ones.  Values are still read from
        the start-of-batch snapshot (the paper's within-iteration
        semantics).  The process round counter is the network's global
        round count, so interleaved pull batches see one consistent
        schedule; partner and failure draws stay per round while the
        metrics are recorded in one batch at the end.
        """
        partners = np.empty((self._n, k), dtype=np.int64)
        ok = np.ones((self._n, k), dtype=bool)
        base = self.metrics.rounds
        for column in range(k):
            state = self._process.round_state(base + column)
            partners[:, column] = state.sampler.draw_round(self._rng)
            failed = self._failures.failure_mask(base + column, self._n, self._rng)
            failed = failed | ~state.active
            ok[:, column] = ~failed
        successes = ok.sum(axis=0)
        self.metrics.record_rounds_batch(
            k,
            label=label,
            messages=successes,
            bits_each=bits,
            failures=self._n - successes,
        )
        pulled = self._mask_failed(self._gather(source, partners), ok)
        return PullBatch(partners=partners, values=pulled, ok=ok)

    def _pull_with_faults(
        self, k: int, label: str, bits: int, source: np.ndarray
    ) -> PullBatch:
        """Pull rounds with an attached fault injector.

        Partner and failure-mask draws consume the engine stream exactly
        like the fault-free paths (static block draw or per-round dynamic
        draws); the injector's per-round decision comes from its *private*
        stream and is overlaid on top: crash/drop suppress pulls, failure
        masks and the process's active mask OR in as usual, duplicates are
        charged as extra delivered messages, delayed pulls gather from the
        bounded snapshot ring, and corrupted pulls scale the delivered
        payload.  Nodes restarting from a state-loss crash get their
        working values reset to their initial values (visible from the
        next batch's snapshot on).
        """
        n = self._n
        base = self.metrics.rounds
        ok = np.empty((n, k), dtype=bool)
        if self._process is not None:
            partners = np.empty((n, k), dtype=np.int64)
            for column in range(k):
                state = self._process.round_state(base + column)
                partners[:, column] = state.sampler.draw_round(self._rng)
                failed = self._failures.failure_mask(
                    base + column, n, self._rng
                )
                ok[:, column] = ~(failed | ~state.active)
        else:
            partners = self._sample_partners(k)
            for column in range(k):
                failed = self._failures.failure_mask(
                    base + column, n, self._rng
                )
                ok[:, column] = ~failed

        delays = np.zeros((n, k), dtype=np.int64)
        corruption = np.ones((n, k))
        duplicated = np.zeros((n, k), dtype=bool)
        injected = 0
        reset_nodes = np.zeros(n, dtype=bool)
        for column in range(k):
            round_faults = self._faults.draw(base + column, n)
            ok[:, column] &= ~round_faults.suppressed
            duplicated[:, column] = round_faults.duplicated
            delays[:, column] = round_faults.delay
            corruption[:, column] = round_faults.corruption
            if self._faults.reset_on_restart:
                reset_nodes |= round_faults.restarted
            injected += round_faults.injected

        pulled = self._gather(source, partners)
        if self._delay_history is not None and len(self._delay_history):
            available = len(self._delay_history)
            for d in np.unique(delays[delays > 0]):
                # A delay deeper than the ring serves the oldest snapshot
                # we still hold (the delay bound is honest either way).
                snap = self._delay_history[-int(min(d, available))]
                stale = self._gather(snap, partners)
                mask = delays == d
                if pulled.ndim == 3:
                    mask = mask[:, :, None]
                pulled = np.where(mask, stale, pulled)
        if np.any(corruption != 1.0):
            factor = corruption if pulled.ndim == 2 else corruption[:, :, None]
            pulled = (pulled * factor).astype(self._dtype, copy=False)

        successes = ok.sum(axis=0)
        # Duplicates re-deliver a message that actually arrived: charge one
        # extra message at the same bit cost, same round.
        dup_counts = (duplicated & ok).sum(axis=0)
        self.metrics.record_rounds_batch(
            k,
            label=label,
            messages=successes + dup_counts,
            bits_each=bits,
            failures=n - successes,
        )
        self.metrics.record_faults_injected(injected)

        if self._delay_history is not None:
            # The batch's outgoing snapshot becomes "one window ago".
            self._delay_history.append(source.copy())
        if np.any(reset_nodes):
            # Crash-and-restart state loss, applied at the batch boundary:
            # the restarted node rejoins the protocol with its initial
            # value(s), not the working state it crashed with.
            self._values[reset_nodes] = self._initial_values[reset_nodes]

        pulled = self._mask_failed(pulled, ok)
        return PullBatch(partners=partners, values=pulled, ok=ok)

    @property
    def faults(self) -> Optional[FaultInjector]:
        """The attached fault injector, or ``None``."""
        return self._faults

    def pull_values(self, k: int = 1, label: str = "pull") -> np.ndarray:
        """Convenience wrapper returning only the pulled value array.

        Only valid under :class:`NoFailures`; raises otherwise because the
        caller would have no way to see which pulls failed.
        """
        if not isinstance(self._failures, NoFailures):
            raise ConfigurationError(
                "pull_values() hides failures; use pull() with a failure model"
            )
        return self.pull(k=k, label=label).values

    def charge_rounds(self, count: int, label: str = "charged") -> None:
        """Account for ``count`` rounds executed by an external sub-protocol."""
        self.metrics.charge_rounds(count, label=label)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GossipNetwork(n={self._n}, lanes={self._lanes}, "
            f"rounds={self.rounds}, failures={self._failures!r})"
        )
