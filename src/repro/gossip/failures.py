"""Failure models for the robustness analysis of Section 5.

The paper's model: for every node ``v`` and round ``i`` there is a
pre-determined probability ``p_{v,i} <= mu < 1`` and node ``v`` fails to
perform its operation (push or pull) in round ``i`` independently with that
probability.  A failed node neither pushes nor pulls in that round, but it
can still be the target of other nodes' operations.
"""

from __future__ import annotations

import abc
from typing import Callable, Optional, Sequence, Union

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.rand import RandomSource


class FailureModel(abc.ABC):
    """Decides which nodes fail to act in a given round."""

    #: Upper bound ``mu`` on any per-round failure probability.
    mu: float = 0.0

    @abc.abstractmethod
    def failure_mask(self, round_index: int, n: int, rng: RandomSource) -> np.ndarray:
        """Return a boolean array of length ``n``: True means the node fails."""

    def expected_failures(self, n: int) -> float:
        """Expected number of failed nodes per round (upper bound)."""
        return self.mu * n


class NoFailures(FailureModel):
    """The failure-free model used by Sections 2-4."""

    mu = 0.0

    def failure_mask(self, round_index: int, n: int, rng: RandomSource) -> np.ndarray:
        return np.zeros(n, dtype=bool)

    def __repr__(self) -> str:
        return "NoFailures()"


class UniformFailures(FailureModel):
    """Every node fails with the same probability ``mu`` in every round."""

    def __init__(self, mu: float) -> None:
        if not 0.0 <= mu < 1.0:
            raise ConfigurationError(f"mu must be in [0, 1), got {mu}")
        self.mu = float(mu)

    def failure_mask(self, round_index: int, n: int, rng: RandomSource) -> np.ndarray:
        if self.mu == 0.0:
            return np.zeros(n, dtype=bool)
        return rng.random(n) < self.mu

    def __repr__(self) -> str:
        return f"UniformFailures(mu={self.mu})"


ProbabilitySchedule = Union[
    Sequence[float], np.ndarray, Callable[[int, int], np.ndarray]
]


class PerNodeFailures(FailureModel):
    """Node- and round-dependent failure probabilities ``p_{v,i}``.

    Parameters
    ----------
    probabilities:
        Either a length-``n`` array of per-node probabilities (constant over
        rounds) or a callable ``(round_index, n) -> array`` producing the
        per-round probabilities.  All probabilities must be ``< 1``.
    mu:
        Optional explicit upper bound; inferred from a static array when not
        given.
    """

    def __init__(
        self, probabilities: ProbabilitySchedule, mu: Optional[float] = None
    ) -> None:
        self._callable: Optional[Callable[[int, int], np.ndarray]] = None
        self._static: Optional[np.ndarray] = None
        if callable(probabilities):
            self._callable = probabilities
            if mu is None:
                raise ConfigurationError(
                    "mu must be given explicitly for callable probability schedules"
                )
        else:
            arr = np.asarray(probabilities, dtype=float)
            if arr.ndim != 1:
                raise ConfigurationError("probabilities must be one-dimensional")
            if np.any(arr < 0) or np.any(arr >= 1):
                raise ConfigurationError("probabilities must lie in [0, 1)")
            self._static = arr
            if mu is None:
                mu = float(arr.max(initial=0.0))
        if not 0.0 <= float(mu) < 1.0:
            raise ConfigurationError(f"mu must be in [0, 1), got {mu}")
        self.mu = float(mu)

    def _probabilities(self, round_index: int, n: int) -> np.ndarray:
        if self._callable is not None:
            probs = np.asarray(self._callable(round_index, n), dtype=float)
        else:
            probs = self._static
            if probs.shape[0] != n:
                raise ConfigurationError(
                    f"probability vector has length {probs.shape[0]}, expected {n}"
                )
        if probs.shape != (n,):
            raise ConfigurationError("probability schedule produced wrong shape")
        if np.any(probs < 0) or np.any(probs > self.mu + 1e-12):
            raise ConfigurationError(
                "probability schedule exceeded its declared bound mu"
            )
        return probs

    def failure_mask(self, round_index: int, n: int, rng: RandomSource) -> np.ndarray:
        probs = self._probabilities(round_index, n)
        return rng.random(n) < probs

    def __repr__(self) -> str:
        return f"PerNodeFailures(mu={self.mu})"


def resolve_failure_model(model: Union[None, float, FailureModel]) -> FailureModel:
    """Accept ``None``, a float ``mu`` or a model instance and normalise."""
    if model is None:
        return NoFailures()
    if isinstance(model, FailureModel):
        return model
    if isinstance(model, (int, float)):
        if model == 0:
            return NoFailures()
        return UniformFailures(float(model))
    raise ConfigurationError(f"cannot interpret failure model: {model!r}")
