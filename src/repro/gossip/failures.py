"""Failure models for the robustness analysis of Section 5.

The paper's model: for every node ``v`` and round ``i`` there is a
pre-determined probability ``p_{v,i} <= mu < 1`` and node ``v`` fails to
perform its operation (push or pull) in round ``i`` independently with that
probability.  A failed node neither pushes nor pulls in that round, but it
can still be the target of other nodes' operations.
"""

from __future__ import annotations

import abc
from typing import Callable, Optional, Sequence, Union

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.rand import RandomSource


class FailureModel(abc.ABC):
    """Decides which nodes fail to act in a given round."""

    #: Upper bound ``mu`` on any per-round failure probability.
    mu: float = 0.0

    @abc.abstractmethod
    def failure_mask(self, round_index: int, n: int, rng: RandomSource) -> np.ndarray:
        """Return a boolean array of length ``n``: True means the node fails."""

    def expected_failures(self, n: int) -> float:
        """Expected number of failed nodes per round (upper bound)."""
        return self.mu * n


class NoFailures(FailureModel):
    """The failure-free model used by Sections 2-4."""

    mu = 0.0

    def failure_mask(self, round_index: int, n: int, rng: RandomSource) -> np.ndarray:
        return np.zeros(n, dtype=bool)

    def __repr__(self) -> str:
        return "NoFailures()"


class UniformFailures(FailureModel):
    """Every node fails with the same probability ``mu`` in every round."""

    def __init__(self, mu: float) -> None:
        if not 0.0 <= mu < 1.0:
            raise ConfigurationError(f"mu must be in [0, 1), got {mu}")
        self.mu = float(mu)

    def failure_mask(self, round_index: int, n: int, rng: RandomSource) -> np.ndarray:
        if self.mu == 0.0:
            return np.zeros(n, dtype=bool)
        return rng.random(n) < self.mu

    def __repr__(self) -> str:
        return f"UniformFailures(mu={self.mu})"


ProbabilitySchedule = Union[
    Sequence[float], np.ndarray, Callable[[int, int], np.ndarray]
]


class PerNodeFailures(FailureModel):
    """Node- and round-dependent failure probabilities ``p_{v,i}``.

    Parameters
    ----------
    probabilities:
        Either a length-``n`` array of per-node probabilities (constant over
        rounds) or a callable ``(round_index, n) -> array`` producing the
        per-round probabilities.  All probabilities must be ``< 1``.
    mu:
        Optional explicit upper bound; inferred from a static array when not
        given.
    """

    def __init__(
        self, probabilities: ProbabilitySchedule, mu: Optional[float] = None
    ) -> None:
        self._callable: Optional[Callable[[int, int], np.ndarray]] = None
        self._static: Optional[np.ndarray] = None
        if callable(probabilities):
            self._callable = probabilities
            if mu is None:
                raise ConfigurationError(
                    "mu must be given explicitly for callable probability schedules"
                )
        else:
            arr = np.asarray(probabilities, dtype=float)
            if arr.ndim != 1:
                raise ConfigurationError("probabilities must be one-dimensional")
            if np.any(arr < 0) or np.any(arr >= 1):
                raise ConfigurationError("probabilities must lie in [0, 1)")
            self._static = arr
            if mu is None:
                mu = float(arr.max(initial=0.0))
        if not 0.0 <= float(mu) < 1.0:
            raise ConfigurationError(f"mu must be in [0, 1), got {mu}")
        self.mu = float(mu)

    def _probabilities(self, round_index: int, n: int) -> np.ndarray:
        if self._callable is not None:
            probs = np.asarray(self._callable(round_index, n), dtype=float)
        else:
            probs = self._static
            if probs.shape[0] != n:
                raise ConfigurationError(
                    f"probability vector has length {probs.shape[0]}, expected {n}"
                )
        if probs.shape != (n,):
            raise ConfigurationError("probability schedule produced wrong shape")
        # Validate the [0, 1) range explicitly (no clamping): a schedule
        # producing probs >= 1 is invalid regardless of mu, and must not be
        # reported as a mere mu-bound violation.
        if np.any(probs < 0) or np.any(probs >= 1):
            bad = float(probs[(probs < 0) | (probs >= 1)][0])
            raise ConfigurationError(
                f"probability schedule produced {bad} at round {round_index}; "
                "failure probabilities must lie in [0, 1)"
            )
        if np.any(probs > self.mu + 1e-12):
            raise ConfigurationError(
                "probability schedule exceeded its declared bound mu"
            )
        return probs

    def failure_mask(self, round_index: int, n: int, rng: RandomSource) -> np.ndarray:
        probs = self._probabilities(round_index, n)
        return rng.random(n) < probs

    def __repr__(self) -> str:
        return f"PerNodeFailures(mu={self.mu})"


#: Modes accepted by :class:`TopologyFailures`.
TOPOLOGY_FAILURE_MODES = ("degree", "inverse-degree")


class TopologyFailures(PerNodeFailures):
    """Position-correlated failures: probabilities derived from the graph.

    Bridges the failure and topology subsystems: each node's per-round
    failure probability is a function of its degree (its "position" in the
    graph), scaled so the most failure-prone node fails with probability
    ``mu``.

    Parameters
    ----------
    topology:
        A :class:`~repro.topology.graphs.Topology` (anything exposing a
        ``degrees`` array) or the degree array itself.
    mu:
        The maximum per-node failure probability (must be in ``[0, 1)``).
    mode:
        ``"degree"`` — hubs fail more (``p_v ∝ deg(v)``, the "attack the
        well-connected" scenario); ``"inverse-degree"`` — poorly connected
        nodes fail more (``p_v ∝ 1/deg(v)``, flaky edge devices).
    """

    def __init__(self, topology, mu: float = 0.2, mode: str = "degree") -> None:
        if mode not in TOPOLOGY_FAILURE_MODES:
            raise ConfigurationError(
                f"unknown topology-failure mode {mode!r}; choose from "
                f"{TOPOLOGY_FAILURE_MODES}"
            )
        if not 0.0 <= mu < 1.0:
            raise ConfigurationError(f"mu must be in [0, 1), got {mu}")
        degrees = np.asarray(getattr(topology, "degrees", topology), dtype=float)
        if degrees.ndim != 1 or degrees.size < 2:
            raise ConfigurationError("degrees must be a 1-d array of length >= 2")
        if np.any(degrees < 1):
            raise ConfigurationError(
                "topology failures need every node to have degree >= 1"
            )
        if mode == "degree":
            weights = degrees / degrees.max()
        else:
            weights = degrees.min() / degrees
        super().__init__(mu * weights, mu=mu)
        self.mode = mode

    def __repr__(self) -> str:
        return f"TopologyFailures(mu={self.mu}, mode={self.mode!r})"


class TopologyProcessFailures(FailureModel):
    """A :class:`~repro.topology.dynamic.TopologyProcess` as a failure model.

    Marks every node outside the process's active mask as failed, which lets
    surfaces that understand failures but not topology processes — notably
    the token engines of :mod:`repro.core.tokens`, whose Section-5 merge
    machinery keeps a failed pusher's token in place — run under churn while
    conserving aggregate mass.  The process evolves one round per
    ``failure_mask`` call (callers invoke it exactly once per round with
    increasing indices) and is restarted — replaying the same seeded
    schedule — whenever the round index stops increasing, i.e. when the
    model is reused for a fresh run.

    ``mu`` reports the process's per-round departure rate when it has one.
    """

    def __init__(self, process) -> None:
        self._process = process
        self._rounds_generated = 0
        self._last_round: Optional[int] = None
        self.mu = float(getattr(process, "churn_rate", 0.0))

    def failure_mask(self, round_index: int, n: int, rng: RandomSource) -> np.ndarray:
        if n != self._process.n:
            raise ConfigurationError(
                f"topology process has {self._process.n} nodes, round has {n}"
            )
        if self._last_round is None or round_index <= self._last_round:
            # First use, or a new run restarting its round counter: replay
            # the schedule from round 0 like every other begin().
            self._process.begin()
            self._rounds_generated = 0
        self._last_round = round_index
        state = self._process.round_state(self._rounds_generated)
        self._rounds_generated += 1
        return ~state.active

    def __repr__(self) -> str:
        return f"TopologyProcessFailures({self._process.name})"


class FaultInjectorFailures(FailureModel):
    """A :class:`~repro.faults.injectors.FaultInjector` as a failure model.

    Bridges the rich fault vocabulary onto surfaces that only understand
    Section-5 failure masks: the injector's act-suppression faults (node
    crash-and-restart, message drop) become the round's failure mask.  The
    injector still draws its full per-round decision — the private fault
    stream's layout is consumer-independent, so a chaos schedule replays
    identically whether it runs through this view or through the
    fault-aware pull surface — but message-level kinds (duplication,
    delay, corruption) have no effect here.

    ``mu`` reports the injector's combined crash/drop bound so Section-5
    sizing (robust pull counts) stays honest.
    """

    def __init__(self, injector) -> None:
        self._injector = injector
        self.mu = float(injector.mu_bound())

    @property
    def injector(self):
        return self._injector

    def failure_mask(self, round_index: int, n: int, rng: RandomSource) -> np.ndarray:
        return self._injector.draw(round_index, n).suppressed

    def __repr__(self) -> str:
        return f"FaultInjectorFailures({self._injector!r})"


def resolve_failure_model(model: Union[None, float, FailureModel]) -> FailureModel:
    """Accept ``None``, a float ``mu`` or a model instance and normalise."""
    if model is None:
        return NoFailures()
    if isinstance(model, FailureModel):
        return model
    if isinstance(model, (int, float)):
        if model == 0:
            return NoFailures()
        return UniformFailures(float(model))
    raise ConfigurationError(f"cannot interpret failure model: {model!r}")
