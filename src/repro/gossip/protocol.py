"""Protocol abstraction for the message-level gossip engine.

Protocols that need richer per-node state than a single value (push-sum,
extrema spreading, rumor broadcast) implement :class:`GossipProtocol`.  The
engine (:mod:`repro.gossip.engine`) drives the synchronous rounds, selects
uniform partners, applies the failure model and performs the accounting.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, List, Optional


@dataclass(frozen=True)
class Action:
    """What a node wants to do in one round.

    ``kind`` is ``"push"`` (send ``payload`` to a random node), ``"pull"``
    (request the partner's payload), ``"pushpull"`` (do both with the same
    partner, the classic anti-entropy exchange) or ``"idle"``.
    """

    kind: str
    payload: Any = None

    def __post_init__(self) -> None:
        if self.kind not in ("push", "pull", "pushpull", "idle"):
            raise ValueError(f"unknown action kind: {self.kind!r}")

    @staticmethod
    def push(payload: Any) -> "Action":
        return Action("push", payload)

    @staticmethod
    def pull() -> "Action":
        return Action("pull")

    @staticmethod
    def pushpull(payload: Any) -> "Action":
        return Action("pushpull", payload)

    @staticmethod
    def idle() -> "Action":
        return Action("idle")


class GossipProtocol(abc.ABC):
    """Base class for message-level gossip protocols.

    The engine calls, in order and once per round:

    1. :meth:`act` for every node that did not fail, collecting actions;
    2. delivery: pushes are delivered via :meth:`on_receive`; pulls are
       answered by :meth:`serve_pull` on the contacted node and delivered to
       the puller via :meth:`on_receive`;
    3. :meth:`end_round`.

    The engine stops when :meth:`is_done` returns True or the round budget
    is exhausted.
    """

    #: Human-readable protocol name used for metrics labels.
    name: str = "protocol"

    def __init__(self, n: int) -> None:
        if n < 2:
            raise ValueError("a gossip protocol needs at least 2 nodes")
        self.n = n

    # -- lifecycle ------------------------------------------------------------
    def begin(self) -> None:
        """Called once before the first round."""

    @abc.abstractmethod
    def act(self, node: int, round_index: int) -> Action:
        """Return the action node ``node`` takes this round."""

    def serve_pull(self, node: int, requester: int, round_index: int) -> Any:
        """Payload node ``node`` returns when pulled by ``requester``.

        Default: ``None``.  Protocols that support pulls override this.
        """
        return None

    @abc.abstractmethod
    def on_receive(
        self, node: int, payload: Any, sender: int, kind: str, round_index: int
    ) -> None:
        """Deliver ``payload`` (from a push or a pull response) to ``node``."""

    def on_send_success(self, node: int, round_index: int) -> None:
        """Called after a node's push was delivered (it did not fail)."""

    def end_round(self, round_index: int) -> None:
        """Called after all deliveries of a round."""

    @abc.abstractmethod
    def is_done(self, round_index: int) -> bool:
        """Whether the protocol has terminated after ``round_index`` rounds."""

    @abc.abstractmethod
    def outputs(self) -> List[Any]:
        """Per-node outputs after termination."""

    # -- accounting -----------------------------------------------------------
    def message_bits(self, payload: Any) -> Optional[int]:
        """Bit size of a payload; ``None`` means "use the default estimator"."""
        return None
