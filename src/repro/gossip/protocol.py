"""Protocol abstraction for the message-level gossip engine.

Protocols that need richer per-node state than a single value (push-sum,
extrema spreading, rumor broadcast) implement :class:`GossipProtocol`.  The
engine (:mod:`repro.gossip.engine`) drives the synchronous rounds, selects
uniform partners, applies the failure model and performs the accounting.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, List, Optional

import numpy as np

from repro.utils.views import ReadOnlyArray


@dataclass(frozen=True)
class Action:
    """What a node wants to do in one round.

    ``kind`` is ``"push"`` (send ``payload`` to a random node), ``"pull"``
    (request the partner's payload), ``"pushpull"`` (do both with the same
    partner, the classic anti-entropy exchange) or ``"idle"``.
    """

    kind: str
    payload: Any = None

    def __post_init__(self) -> None:
        if self.kind not in ("push", "pull", "pushpull", "idle"):
            raise ValueError(f"unknown action kind: {self.kind!r}")

    @staticmethod
    def push(payload: Any) -> "Action":
        return Action("push", payload)

    @staticmethod
    def pull() -> "Action":
        return Action("pull")

    @staticmethod
    def pushpull(payload: Any) -> "Action":
        return Action("pushpull", payload)

    @staticmethod
    def idle() -> "Action":
        return Action("idle")


class GossipProtocol(abc.ABC):
    """Base class for message-level gossip protocols.

    The engine calls, in order and once per round:

    1. :meth:`act` for every node that did not fail, collecting actions;
    2. delivery: pushes are delivered via :meth:`on_receive`; pulls are
       answered by :meth:`serve_pull` on the contacted node and delivered to
       the puller via :meth:`on_receive`;
    3. :meth:`end_round`.

    The engine stops when :meth:`is_done` returns True or the round budget
    is exhausted.
    """

    #: Human-readable protocol name used for metrics labels.
    name: str = "protocol"

    def __init__(self, n: int) -> None:
        if n < 2:
            raise ValueError("a gossip protocol needs at least 2 nodes")
        self.n = n

    # -- lifecycle ------------------------------------------------------------
    def begin(self) -> None:
        """Called once before the first round."""

    @abc.abstractmethod
    def act(self, node: int, round_index: int) -> Action:
        """Return the action node ``node`` takes this round."""

    def serve_pull(self, node: int, requester: int, round_index: int) -> Any:
        """Payload node ``node`` returns when pulled by ``requester``.

        Default: ``None``.  Protocols that support pulls override this.
        """
        return None

    @abc.abstractmethod
    def on_receive(
        self, node: int, payload: Any, sender: int, kind: str, round_index: int
    ) -> None:
        """Deliver ``payload`` (from a push or a pull response) to ``node``."""

    def on_send_success(self, node: int, round_index: int) -> None:
        """Called after a node's push was delivered (it did not fail)."""

    def on_send_failure(self, node: int, payload: Any, round_index: int) -> None:
        """A node's push could not be delivered (dead peer, lost frame).

        Only the live backend (:mod:`repro.net`) can observe this — on the
        simulated engines a push either happens or the node sat the round
        out.  The default is the Section-5 "keep your half" rule: the
        undeliverable payload is re-merged into the sender itself, so
        conserved quantities (push-sum mass and weight) survive peers dying
        mid-run and a degraded run still converges to an honest value over
        the surviving nodes.  Idempotent-merge protocols (extrema) are
        unaffected by the self-delivery.  Override to drop the payload (and
        the mass) instead, or to trigger protocol-specific recovery.
        """
        self.on_receive(node, payload, node, "push", round_index)

    def end_round(self, round_index: int) -> None:
        """Called after all deliveries of a round."""

    @abc.abstractmethod
    def is_done(self, round_index: int) -> bool:
        """Whether the protocol has terminated after ``round_index`` rounds."""

    @abc.abstractmethod
    def outputs(self) -> List[Any]:
        """Per-node outputs after termination."""

    # -- accounting -----------------------------------------------------------
    def message_bits(self, payload: Any) -> Optional[int]:
        """Bit size of a payload; ``None`` means "use the default estimator"."""
        return None


#: Per-node kind codes for ``BatchAction(kind="mixed")``.
KIND_IDLE = 0
KIND_PUSH = 1
KIND_PULL = 2
KIND_PUSHPULL = 3


@dataclass(frozen=True)
class BatchAction:
    """What *all alive nodes* do in one vectorized round.

    The vectorized engine (:func:`repro.gossip.engine.run_protocol_vectorized`)
    executes a whole synchronous round as array operations, so instead of one
    :class:`Action` per node a protocol returns a single :class:`BatchAction`
    describing the behaviour of every node that did not fail.

    Attributes
    ----------
    kind:
        ``"push"``, ``"pull"``, ``"pushpull"`` or ``"idle"`` — the same
        vocabulary as :class:`Action`, applied to every alive node — or
        ``"mixed"``, in which case ``kinds`` gives a per-node action kind
        (rumor broadcast, where informed nodes push-pull while uninformed
        nodes only pull, is the canonical mixed protocol).
    kinds:
        For ``"mixed"`` only: a length-``n`` integer array of
        :data:`KIND_IDLE` / :data:`KIND_PUSH` / :data:`KIND_PULL` /
        :data:`KIND_PUSHPULL` codes.  Entries of failed nodes are ignored.
    payload:
        Protocol-specific array data for the alive nodes (e.g. the
        ``(s_half, w_half)`` arrays of push-sum).  The engine never inspects
        it; it is handed back verbatim to :meth:`BatchGossipProtocol.receive_batch`.
    push_bits:
        Accounted size of each pushed message.  Required for ``push`` and
        ``pushpull`` actions.
    pull_bits:
        Accounted size of each pull response.  Required for ``pull`` and
        ``pushpull`` actions.

    For ``"mixed"`` actions message accounting is delegated to the
    protocol: :meth:`BatchGossipProtocol.receive_batch` returns
    ``(count, bits_each)`` groups (per-message bit sizes may depend on the
    partner, e.g. an empty pull response), which the engine records.
    """

    kind: str
    payload: Any = None
    push_bits: Optional[int] = None
    pull_bits: Optional[int] = None
    kinds: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        if self.kind not in ("push", "pull", "pushpull", "idle", "mixed"):
            raise ValueError(f"unknown batch action kind: {self.kind!r}")
        if self.kind in ("push", "pushpull") and self.push_bits is None:
            raise ValueError(f"{self.kind!r} batch actions must declare push_bits")
        if self.kind in ("pull", "pushpull") and self.pull_bits is None:
            raise ValueError(f"{self.kind!r} batch actions must declare pull_bits")
        if self.kind == "mixed" and self.kinds is None:
            raise ValueError("'mixed' batch actions must declare per-node kinds")


class BatchGossipProtocol:
    """Mixin marking a :class:`GossipProtocol` as vectorized-engine capable.

    A batch-capable protocol implements one synchronous round as two array
    operations, mirroring the ``PullBatch`` gather idiom of
    :mod:`repro.gossip.network`:

    1. :meth:`act_batch` applies the act-phase state transition for every
       alive node (e.g. push-sum halves its pairs) and returns a
       :class:`BatchAction` describing what the alive nodes send;
    2. :meth:`receive_batch` applies all deliveries at once — pushes as a
       scatter onto ``partners[alive]``, pull responses as a gather from the
       round-start snapshot.

    Implementations must be *delivery-order independent* so that the
    vectorized round is bit-identical to the sequential loop engine: merge
    operators must be exact and commutative (min/max), or the protocol must
    scatter with :func:`numpy.ufunc.at` which accumulates in index order —
    the same order in which the loop engine delivers.  The equivalence suite
    (``tests/test_engine_equivalence.py``) locks this contract down.
    """

    #: Flipping this to False opts a subclass out of vectorized dispatch.
    supports_batch: bool = True

    def act_batch(self, round_index: int, alive: ReadOnlyArray) -> BatchAction:
        """Vectorized :meth:`GossipProtocol.act` over all alive nodes.

        ``alive`` is a length-``n`` boolean mask (True = the node acts this
        round).  Must perform exactly the state mutation the per-node
        ``act`` calls would, restricted to the alive nodes.  On the
        failure-free fast path the mask is a *cached view shared across
        rounds and runs* (:data:`repro.utils.views.ReadOnlyArray`):
        implementations must never write to it.
        """
        raise NotImplementedError

    def receive_batch(
        self,
        round_index: int,
        alive: ReadOnlyArray,
        partners: np.ndarray,
        action: BatchAction,
    ):
        """Vectorized delivery of one round's messages.

        ``partners`` is the length-``n`` partner array drawn by the engine
        (entries for failed nodes are present but must be ignored).  The
        protocol applies pushes to ``partners[alive]`` and pull responses to
        the alive nodes themselves.

        For uniform-kind actions the return value is ignored (the engine
        accounts ``push_bits`` / ``pull_bits`` itself).  For ``"mixed"``
        actions the method must return an iterable of ``(count, bits_each)``
        message groups covering every message the round delivered; the
        engine records them (zero-count groups are skipped).
        """
        raise NotImplementedError
