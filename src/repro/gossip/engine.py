"""Synchronous round engines for message-level gossip protocols.

Two engines execute the same synchronous-round semantics:

* :func:`run_protocol_loop` — the reference engine: a Python loop over the
  nodes, one :meth:`~repro.gossip.protocol.GossipProtocol.act` /
  ``on_receive`` call per node per round.  Simple, general, slow.
* :func:`run_protocol_vectorized` — executes a whole round as numpy array
  gathers/scatters for protocols implementing
  :class:`~repro.gossip.protocol.BatchGossipProtocol`.  Bit-identical to
  the loop engine (the equivalence suite enforces this) and one to two
  orders of magnitude faster at large ``n``.

:func:`run_protocol` dispatches between them; by default batch-capable
protocols take the vectorized path.  Both engines draw their randomness
(failure masks, then partners) through the same calls in the same order,
so a fixed seed yields the same execution under either engine.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Callable, List, Optional, Tuple, Union

import numpy as np

from repro.exceptions import ConfigurationError, ConvergenceError, ProtocolError
from repro.faults.injectors import FaultInjector
from repro.gossip.failures import FailureModel, NoFailures, resolve_failure_model
from repro.gossip.messages import payload_bits
from repro.gossip.metrics import NetworkMetrics, RoundRecord
from repro.gossip.protocol import Action, BatchAction, BatchGossipProtocol, GossipProtocol
from repro.obs.tracer import get_tracer
from repro.topology.dynamic import TopologyProcess, resolve_topology_process
from repro.topology.graphs import Topology
from repro.utils.views import readonly
from repro.topology.sampler import (
    PeerSampler,
    draw_uniform_round_partners,
    resolve_peer_sampler,
)
from repro.utils.rand import RandomSource

#: Valid values for the ``engine`` argument of :func:`run_protocol`.
#: ``"asyncio"`` is the live-network backend (:mod:`repro.net`): the same
#: protocol objects, each node a task speaking RPC over a real transport.
ENGINE_CHOICES = ("auto", "loop", "vectorized", "asyncio")

_default_engine = "auto"


def set_default_engine(name: str) -> None:
    """Set the engine :func:`run_protocol` uses when none is requested.

    ``"auto"`` (the default) picks the vectorized engine for batch-capable
    protocols and the loop engine otherwise; ``"loop"`` / ``"vectorized"``
    force one path globally (the CLI's ``--engine`` flag sets this).
    """
    global _default_engine
    if name not in ENGINE_CHOICES:
        raise ConfigurationError(
            f"unknown engine {name!r}; choose from {ENGINE_CHOICES}"
        )
    if name == "asyncio":
        raise ConfigurationError(
            "the asyncio engine cannot be the ambient default (it owns an "
            "event loop per run); request it per call with engine='asyncio'"
        )
    _default_engine = name


def get_default_engine() -> str:
    """The engine name used when :func:`run_protocol` gets ``engine=None``."""
    return _default_engine


def supports_batch(protocol: GossipProtocol) -> bool:
    """Whether ``protocol`` can run on the vectorized engine."""
    return isinstance(protocol, BatchGossipProtocol) and bool(
        getattr(protocol, "supports_batch", False)
    )


class EngineResult:
    """Outcome of running a protocol to completion.

    ``outputs`` (the protocol's per-node Python-list output, the historical
    surface) is materialized lazily on first access; numeric wrappers read
    ``outputs_array`` instead, which asks the protocol for its native numpy
    array and never builds the ``O(n)`` list of Python floats — at
    n = 10⁶ that list dominated the cost of a whole substrate run.
    """

    def __init__(
        self,
        metrics: NetworkMetrics,
        rounds: int,
        completed: bool,
        protocol_name: str = "",
        outputs: Optional[List[Any]] = None,
        protocol: Optional[GossipProtocol] = None,
        extra: Optional[dict] = None,
    ) -> None:
        self.metrics = metrics
        self.rounds = rounds
        self.completed = completed
        self.protocol_name = protocol_name
        self.extra = extra if extra is not None else {}
        self._protocol = protocol
        self._outputs = outputs

    @property
    def outputs(self) -> List[Any]:
        if self._outputs is None and self._protocol is not None:
            self._outputs = self._protocol.outputs()
        return self._outputs

    @property
    def outputs_array(self) -> np.ndarray:
        """The outputs as a float array, bypassing the Python list."""
        native = getattr(self._protocol, "outputs_array", None)
        if native is not None:
            return native()
        return np.asarray(self.outputs, dtype=float)


#: Shared read-only boolean masks, one per (n, value) seen: the failure-free
#: fast path hands these out instead of allocating fresh masks every round.
_MASK_CACHE: dict = {}


def _cached_mask(n: int, value: bool) -> np.ndarray:
    key = (n, value)
    mask = _MASK_CACHE.get(key)
    if mask is None:
        mask = readonly(np.full(n, value, dtype=bool))
        if len(_MASK_CACHE) > 128:
            _MASK_CACHE.clear()
        _MASK_CACHE[key] = mask
    return mask


def draw_round_partners(source: RandomSource, n: int) -> np.ndarray:
    """Draw each node's uniformly random partner for one round.

    Partners are uniform among the *other* ``n - 1`` nodes; see
    :func:`repro.topology.sampler.draw_uniform_round_partners`, which this
    re-exports for backward compatibility.  Both engines draw through the
    same sampler, so they consume the random stream identically.
    """
    return draw_uniform_round_partners(source, n)


def _begin_run(
    protocol: GossipProtocol,
    rng: Union[None, int, RandomSource],
    failure_model: Union[None, float, FailureModel],
    metrics: Optional[NetworkMetrics],
    topology: Optional[Topology],
    peer_sampling: str,
    topology_process: Optional[TopologyProcess],
    faults: Optional[FaultInjector] = None,
) -> Tuple[RandomSource, FailureModel, NetworkMetrics, Optional[PeerSampler]]:
    source = rng if isinstance(rng, RandomSource) else RandomSource(rng)
    failures = resolve_failure_model(failure_model)
    stats = metrics if metrics is not None else NetworkMetrics()
    if faults is not None and not isinstance(faults, FaultInjector):
        raise ConfigurationError(
            f"faults must be a FaultInjector, got {faults!r}"
        )
    if topology_process is not None:
        if topology is not None:
            raise ConfigurationError(
                "pass either topology or topology_process, not both"
            )
        if peer_sampling != "uniform":
            raise ConfigurationError(
                "peer_sampling is owned by the topology process; construct "
                "the process with the desired strategy instead"
            )
        resolve_topology_process(topology_process, protocol.n)
        sampler = None
    else:
        sampler = resolve_peer_sampler(topology, sampling=peer_sampling, n=protocol.n)
    protocol.begin()
    return source, failures, stats, sampler


def _finish_run(
    protocol: GossipProtocol,
    stats: NetworkMetrics,
    rounds: int,
    completed: bool,
    max_rounds: int,
    raise_on_budget: bool,
) -> EngineResult:
    if not completed and raise_on_budget:
        raise ConvergenceError(
            f"protocol {protocol.name!r} did not finish within {max_rounds} rounds"
        )
    return EngineResult(
        metrics=stats,
        rounds=rounds,
        completed=completed,
        protocol_name=protocol.name,
        protocol=protocol,
    )


def _begin_round(
    protocol: GossipProtocol,
    round_index: int,
    n: int,
    source: RandomSource,
    failures: FailureModel,
    stats: NetworkMetrics,
    sampler: Optional[PeerSampler],
    process: Optional[TopologyProcess] = None,
    faults: Optional[FaultInjector] = None,
) -> Tuple[RoundRecord, np.ndarray, np.ndarray]:
    """Shared per-round prologue: accounting, failure mask, partner draw.

    Without a topology process this is byte-for-byte the static path.  With
    one, the per-round sampler and active mask come from the process (whose
    evolution runs on its own private stream), departed nodes are folded
    into the failure mask — they neither act nor, because process samplers
    only return active targets, receive — and the partner draw still
    consumes the engine's stream, keeping loop and vectorized runs aligned.

    The three robustness inputs compose by OR: a node is out of a round if
    its Section-5 failure mask fires, *or* the topology process marks it
    departed, *or* an attached fault injector suppresses it (crash/drop).
    Each draws from its own stream — the failure model from the engine's,
    process and injector from their private ones — so composing them never
    shifts the others' draws.  The message-level fault kinds (duplication,
    delay, corruption) have no engine-level meaning; they apply only on
    the :class:`~repro.gossip.network.GossipNetwork` pull surface.
    """
    record = stats.begin_round(label=protocol.name)
    if process is None and faults is None and isinstance(failures, NoFailures):
        # Failure-free fast path: a shared read-only all-False mask, no
        # per-round mask allocation or failure-count scan.
        stats.record_failures(0, record)
        partners = sampler.draw_round(source)
        return record, _cached_mask(n, False), partners
    failed = failures.failure_mask(round_index, n, source)
    if process is not None:
        state = process.round_state(round_index)
        failed = failed | ~state.active
        sampler = state.sampler
    if faults is not None:
        round_faults = faults.draw(round_index, n)
        failed = failed | round_faults.suppressed
        stats.record_faults_injected(round_faults.injected)
    stats.record_failures(int(failed.sum()), record)
    partners = sampler.draw_round(source)
    return record, failed, partners


# Public aliases for the engine-agnostic round scaffolding.  The asyncio
# backend (:mod:`repro.net.runner`) builds its rounds on these, which is how
# its random-stream consumption — failure masks, then partner draws — stays
# bit-identical to the simulated engines and the equivalence pins hold.
begin_run = _begin_run
begin_round = _begin_round
finish_run = _finish_run


def run_protocol_loop(
    protocol: GossipProtocol,
    rng: Union[None, int, RandomSource] = None,
    failure_model: Union[None, float, FailureModel] = None,
    max_rounds: int = 10_000,
    metrics: Optional[NetworkMetrics] = None,
    raise_on_budget: bool = True,
    topology: Optional[Topology] = None,
    peer_sampling: str = "uniform",
    topology_process: Optional[TopologyProcess] = None,
    on_round: Optional[Callable[[RoundRecord, float], None]] = None,
    faults: Optional[FaultInjector] = None,
) -> EngineResult:
    """Run ``protocol`` on the per-node reference engine.

    Parameters
    ----------
    protocol:
        The protocol instance (carries ``n``).
    rng:
        Seed or random source for partner selection and failures.
    failure_model:
        ``None``, a float ``mu`` or a :class:`FailureModel`.
    max_rounds:
        Safety budget; exceeded budgets raise :class:`ConvergenceError`
        (or return ``completed=False`` when ``raise_on_budget`` is False).
    metrics:
        Optionally accumulate into an existing metrics object.
    topology:
        Optional :class:`~repro.topology.graphs.Topology` restricting who
        can contact whom.  ``None`` (the default) is uniform gossip on the
        complete graph, bit-identical to the historical behaviour.
    peer_sampling:
        Partner strategy on a sparse topology: ``"uniform"`` over neighbors
        or ``"round-robin"`` (shuffled cyclic neighbor schedule).
    topology_process:
        Optional :class:`~repro.topology.dynamic.TopologyProcess` making the
        graph a per-round object (churn, edge resampling).  Mutually
        exclusive with ``topology``.  Nodes outside the process's per-round
        active mask neither act nor receive; their state freezes, so
        conserved aggregates (push-sum mass/weight) are preserved.
    on_round:
        Optional per-round observer ``on_round(record, elapsed)`` invoked
        after each executed round with that round's
        :class:`~repro.gossip.metrics.RoundRecord` (read it, don't mutate
        it) and the wall seconds the round took.  Defaults to the ambient
        tracer's hook (``None`` — free — unless a tracer is installed).
        Observation only: the hook runs after all of the round's RNG draws,
        so seeded executions are bit-identical with or without it.
    faults:
        Optional :class:`~repro.faults.FaultInjector`.  Its act-suppression
        kinds (crash-and-restart, message drop) OR into the failure mask;
        failure model, topology process and injector compose freely because
        each draws from its own stream (see :func:`_begin_round`).
    """
    n = protocol.n
    source, failures, stats, sampler = _begin_run(
        protocol, rng, failure_model, metrics, topology, peer_sampling,
        topology_process, faults,
    )
    hook = on_round if on_round is not None else get_tracer().on_round

    round_index = 0
    completed = protocol.is_done(round_index)
    while not completed and round_index < max_rounds:
        if hook is not None:
            round_started = perf_counter()
        record, failed, partners = _begin_round(
            protocol, round_index, n, source, failures, stats, sampler,
            topology_process, faults,
        )

        actions: List[Optional[Action]] = [None] * n
        for node in range(n):
            if failed[node]:
                continue
            action = protocol.act(node, round_index)
            if not isinstance(action, Action):
                raise ProtocolError(
                    f"{protocol.name}: act() must return an Action, got {action!r}"
                )
            actions[node] = action

        # Deliveries.  Pushes and pull-responses both count as one message.
        for node in range(n):
            action = actions[node]
            if action is None or action.kind == "idle":
                continue
            partner = int(partners[node])
            if action.kind in ("push", "pushpull"):
                bits = protocol.message_bits(action.payload)
                if bits is None:
                    bits = payload_bits(action.payload, n=n)
                stats.record_messages(1, int(bits), record)
                protocol.on_receive(partner, action.payload, node, "push", round_index)
                protocol.on_send_success(node, round_index)
            if action.kind in ("pull", "pushpull"):
                response = protocol.serve_pull(partner, node, round_index)
                bits = protocol.message_bits(response)
                if bits is None:
                    bits = payload_bits(response, n=n)
                stats.record_messages(1, int(bits), record)
                protocol.on_receive(node, response, partner, "pull", round_index)

        protocol.end_round(round_index)
        if hook is not None:
            hook(record, perf_counter() - round_started)
        round_index += 1
        completed = protocol.is_done(round_index)

    return _finish_run(protocol, stats, round_index, completed, max_rounds, raise_on_budget)


def run_protocol_vectorized(
    protocol: GossipProtocol,
    rng: Union[None, int, RandomSource] = None,
    failure_model: Union[None, float, FailureModel] = None,
    max_rounds: int = 10_000,
    metrics: Optional[NetworkMetrics] = None,
    raise_on_budget: bool = True,
    topology: Optional[Topology] = None,
    peer_sampling: str = "uniform",
    topology_process: Optional[TopologyProcess] = None,
    on_round: Optional[Callable[[RoundRecord, float], None]] = None,
    faults: Optional[FaultInjector] = None,
) -> EngineResult:
    """Run a batch-capable protocol one whole round per numpy operation.

    Semantically identical to :func:`run_protocol_loop` — same random
    stream, same accounting, bit-identical outputs — but each round costs
    a handful of array operations instead of ``O(n)`` Python calls.
    ``on_round`` observes rounds exactly as on the loop engine (same
    record contents, same invocation count), so hook-driven convergence
    traces are engine-agnostic.  ``failure_model`` / ``topology_process`` /
    ``faults`` compose exactly as on the loop engine (OR of the three
    masks, independent streams), so the equivalence holds under any mix.
    """
    if not supports_batch(protocol):
        raise ProtocolError(
            f"protocol {protocol.name!r} does not implement the batch API; "
            "run it on the loop engine instead"
        )
    n = protocol.n
    source, failures, stats, sampler = _begin_run(
        protocol, rng, failure_model, metrics, topology, peer_sampling,
        topology_process, faults,
    )
    hook = on_round if on_round is not None else get_tracer().on_round

    round_index = 0
    completed = protocol.is_done(round_index)
    while not completed and round_index < max_rounds:
        if hook is not None:
            round_started = perf_counter()
        record, failed, partners = _begin_round(
            protocol, round_index, n, source, failures, stats, sampler,
            topology_process, faults,
        )
        # rounds without failures reuse a shared all-True mask and skip the
        # negation and population-count passes
        alive = _cached_mask(n, True) if record.failed_nodes == 0 else ~failed

        action = protocol.act_batch(round_index, alive)
        if not isinstance(action, BatchAction):
            raise ProtocolError(
                f"{protocol.name}: act_batch() must return a BatchAction, "
                f"got {action!r}"
            )
        active = n - record.failed_nodes
        if action.kind == "mixed" and active > 0:
            if action.kinds is None or action.kinds.shape != (n,):
                raise ProtocolError(
                    f"{protocol.name}: mixed act_batch() must set a length-n "
                    "kinds array"
                )
            # Per-message sizes can depend on the partner (e.g. an empty
            # pull response), so accounting is delegated: receive_batch
            # returns the (count, bits_each) message groups it delivered.
            deliveries = protocol.receive_batch(round_index, alive, partners, action)
            if deliveries is None:
                raise ProtocolError(
                    f"{protocol.name}: mixed receive_batch() must return "
                    "(count, bits) message groups"
                )
            for count, bits in deliveries:
                if count:
                    stats.record_messages(int(count), int(bits), record)
        elif action.kind != "idle" and active > 0:
            if action.kind in ("push", "pushpull"):
                stats.record_messages(active, int(action.push_bits), record)
            if action.kind in ("pull", "pushpull"):
                stats.record_messages(active, int(action.pull_bits), record)
            protocol.receive_batch(round_index, alive, partners, action)

        protocol.end_round(round_index)
        if hook is not None:
            hook(record, perf_counter() - round_started)
        round_index += 1
        completed = protocol.is_done(round_index)

    return _finish_run(protocol, stats, round_index, completed, max_rounds, raise_on_budget)


def run_protocol(
    protocol: GossipProtocol,
    rng: Union[None, int, RandomSource] = None,
    failure_model: Union[None, float, FailureModel] = None,
    max_rounds: int = 10_000,
    metrics: Optional[NetworkMetrics] = None,
    raise_on_budget: bool = True,
    engine: Optional[str] = None,
    topology: Optional[Topology] = None,
    peer_sampling: str = "uniform",
    topology_process: Optional[TopologyProcess] = None,
    on_round: Optional[Callable[[RoundRecord, float], None]] = None,
    faults: Optional[FaultInjector] = None,
) -> EngineResult:
    """Run ``protocol`` until it reports completion.

    Dispatches to :func:`run_protocol_vectorized` when the protocol is
    batch-capable (or ``engine="vectorized"`` is forced) and to
    :func:`run_protocol_loop` otherwise.  ``engine="asyncio"`` runs the
    protocol over a live transport (:func:`repro.net.run_protocol_asyncio`,
    in-process channel by default) — never chosen by ``"auto"``, always an
    explicit opt-in.  ``engine=None`` defers to :func:`get_default_engine`.
    ``topology``/``peer_sampling`` restrict partner choice to a graph
    (``None`` = the complete graph, bit-identical to the historical
    uniform-gossip behaviour).

    Passing ``failure_model`` and ``topology_process`` (and/or ``faults``)
    together is well-defined: a node sits out a round if *any* of them says
    so — the masks are OR-ed, per round, and each source draws from its own
    random stream (failure model: the engine stream; process and injector:
    their own seeded streams), so enabling one never perturbs another's
    schedule.  ``mu``-style guarantees then apply to the union rate.
    """
    choice = engine if engine is not None else _default_engine
    if choice not in ENGINE_CHOICES:
        raise ConfigurationError(
            f"unknown engine {choice!r}; choose from {ENGINE_CHOICES}"
        )
    if choice == "auto":
        choice = "vectorized" if supports_batch(protocol) else "loop"
    if choice == "asyncio":
        # Imported lazily: repro.net imports this module for the round
        # scaffolding, so a top-level import would be a cycle.
        from repro.net.runner import run_protocol_asyncio

        runner: Callable[..., EngineResult] = run_protocol_asyncio
    elif choice == "vectorized":
        runner = run_protocol_vectorized
    else:
        runner = run_protocol_loop
    return runner(
        protocol,
        rng=rng,
        failure_model=failure_model,
        max_rounds=max_rounds,
        metrics=metrics,
        raise_on_budget=raise_on_budget,
        topology=topology,
        peer_sampling=peer_sampling,
        topology_process=topology_process,
        on_round=on_round,
        faults=faults,
    )
