"""Synchronous round loop for message-level gossip protocols."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Union

import numpy as np

from repro.exceptions import ConvergenceError, ProtocolError
from repro.gossip.failures import FailureModel, resolve_failure_model
from repro.gossip.messages import payload_bits
from repro.gossip.metrics import NetworkMetrics
from repro.gossip.protocol import Action, GossipProtocol
from repro.utils.rand import RandomSource


@dataclass
class EngineResult:
    """Outcome of running a protocol to completion."""

    outputs: List[Any]
    metrics: NetworkMetrics
    rounds: int
    completed: bool
    protocol_name: str = ""
    extra: dict = field(default_factory=dict)


def run_protocol(
    protocol: GossipProtocol,
    rng: Union[None, int, RandomSource] = None,
    failure_model: Union[None, float, FailureModel] = None,
    max_rounds: int = 10_000,
    metrics: Optional[NetworkMetrics] = None,
    raise_on_budget: bool = True,
) -> EngineResult:
    """Run ``protocol`` until it reports completion.

    Parameters
    ----------
    protocol:
        The protocol instance (carries ``n``).
    rng:
        Seed or random source for partner selection and failures.
    failure_model:
        ``None``, a float ``mu`` or a :class:`FailureModel`.
    max_rounds:
        Safety budget; exceeded budgets raise :class:`ConvergenceError`
        (or return ``completed=False`` when ``raise_on_budget`` is False).
    metrics:
        Optionally accumulate into an existing metrics object.
    """
    n = protocol.n
    source = rng if isinstance(rng, RandomSource) else RandomSource(rng)
    failures = resolve_failure_model(failure_model)
    stats = metrics if metrics is not None else NetworkMetrics()

    protocol.begin()
    round_index = 0
    completed = False
    while round_index < max_rounds:
        if protocol.is_done(round_index):
            completed = True
            break
        record = stats.begin_round(label=protocol.name)
        failed = failures.failure_mask(round_index, n, source)
        stats.record_failures(int(failed.sum()), record)
        partners = source.integers(0, n, size=n)
        # re-draw self contacts (uniform among *other* nodes)
        own = np.arange(n)
        mask = partners == own
        while np.any(mask):
            partners[mask] = source.integers(0, n, size=int(mask.sum()))
            mask = partners == own

        actions: List[Optional[Action]] = [None] * n
        for node in range(n):
            if failed[node]:
                continue
            action = protocol.act(node, round_index)
            if not isinstance(action, Action):
                raise ProtocolError(
                    f"{protocol.name}: act() must return an Action, got {action!r}"
                )
            actions[node] = action

        # Deliveries.  Pushes and pull-responses both count as one message.
        for node in range(n):
            action = actions[node]
            if action is None or action.kind == "idle":
                continue
            partner = int(partners[node])
            if action.kind in ("push", "pushpull"):
                bits = protocol.message_bits(action.payload)
                if bits is None:
                    bits = payload_bits(action.payload, n=n)
                stats.record_messages(1, int(bits), record)
                protocol.on_receive(partner, action.payload, node, "push", round_index)
                protocol.on_send_success(node, round_index)
            if action.kind in ("pull", "pushpull"):
                response = protocol.serve_pull(partner, node, round_index)
                bits = protocol.message_bits(response)
                if bits is None:
                    bits = payload_bits(response, n=n)
                stats.record_messages(1, int(bits), record)
                protocol.on_receive(node, response, partner, "pull", round_index)

        protocol.end_round(round_index)
        round_index += 1
    else:  # pragma: no cover - loop exhausted without break
        pass

    if not completed:
        if protocol.is_done(round_index):
            completed = True
        elif raise_on_budget:
            raise ConvergenceError(
                f"protocol {protocol.name!r} did not finish within {max_rounds} rounds"
            )

    return EngineResult(
        outputs=protocol.outputs(),
        metrics=stats,
        rounds=round_index,
        completed=completed,
        protocol_name=protocol.name,
    )
