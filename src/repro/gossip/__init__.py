"""Uniform gossip network substrate.

This subpackage implements the communication model the paper analyses:
synchronous rounds in which every node contacts one uniformly random other
node with a push or a pull, messages of O(log n) bits, and (optionally) the
failure model of Section 5 in which node ``v`` fails in round ``i`` with a
pre-determined probability ``p_{v,i} <= mu``.

Two execution surfaces are provided:

* :class:`~repro.gossip.network.GossipNetwork` — a vectorised *pull surface*
  over a shared value array.  The tournament algorithms only ever pull a
  value from a random node, so the whole round can be executed as a numpy
  gather; the network keeps exact round / message / bit accounting.
* :func:`~repro.gossip.engine.run_protocol` — a message-level engine for
  protocols whose state is richer than a single value (push-sum, extrema
  spreading, rumor broadcast, token distribution).  Protocols implementing
  the :class:`~repro.gossip.protocol.BatchGossipProtocol` mixin execute on
  a vectorized engine that runs each round as array gathers/scatters and is
  bit-identical to the per-node reference loop.
"""

from repro.gossip.failures import (
    FailureModel,
    NoFailures,
    PerNodeFailures,
    TopologyFailures,
    TopologyProcessFailures,
    UniformFailures,
)
from repro.gossip.messages import Message, payload_bits
from repro.gossip.metrics import NetworkMetrics, RoundRecord
from repro.gossip.network import GossipNetwork, PullBatch
from repro.gossip.protocol import (
    KIND_IDLE,
    KIND_PULL,
    KIND_PUSH,
    KIND_PUSHPULL,
    Action,
    BatchAction,
    BatchGossipProtocol,
    GossipProtocol,
)
from repro.gossip.engine import (
    ENGINE_CHOICES,
    EngineResult,
    get_default_engine,
    run_protocol,
    run_protocol_loop,
    run_protocol_vectorized,
    set_default_engine,
    supports_batch,
)

__all__ = [
    "FailureModel",
    "NoFailures",
    "UniformFailures",
    "PerNodeFailures",
    "TopologyFailures",
    "TopologyProcessFailures",
    "Message",
    "payload_bits",
    "NetworkMetrics",
    "RoundRecord",
    "GossipNetwork",
    "PullBatch",
    "Action",
    "BatchAction",
    "KIND_IDLE",
    "KIND_PUSH",
    "KIND_PULL",
    "KIND_PUSHPULL",
    "BatchGossipProtocol",
    "GossipProtocol",
    "ENGINE_CHOICES",
    "EngineResult",
    "get_default_engine",
    "run_protocol",
    "run_protocol_loop",
    "run_protocol_vectorized",
    "set_default_engine",
    "supports_batch",
]
