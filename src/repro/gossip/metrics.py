"""Round, message and bit accounting for gossip executions."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, SupportsInt, Tuple, Union, cast

import numpy as np

#: Per-round counts accepted by :meth:`NetworkMetrics.record_rounds_batch`:
#: nothing (zero), one scalar for every round, or a length-``count`` sequence.
CountsLike = Union[None, int, Sequence[int], np.ndarray]


@dataclass
class RoundRecord:
    """Statistics for one synchronous round."""

    round_index: int
    messages: int = 0
    bits: int = 0
    max_message_bits: int = 0
    failed_nodes: int = 0
    label: str = ""

    def merge_message(self, bits: int) -> None:
        self.messages += 1
        self.bits += bits
        if bits > self.max_message_bits:
            self.max_message_bits = bits


@dataclass
class NetworkMetrics:
    """Cumulative statistics for a gossip execution.

    Protocol implementations call :meth:`begin_round` once per synchronous
    round and :meth:`record_messages` for the traffic they generate.  The
    experiment harness reads ``rounds``, ``messages``, ``total_bits`` and
    ``max_message_bits`` and can break them down per labelled phase.
    """

    rounds: int = 0
    messages: int = 0
    total_bits: int = 0
    max_message_bits: int = 0
    failed_node_rounds: int = 0
    queries: int = 0
    query_bits: int = 0
    #: Faults injected by an attached :class:`~repro.faults.FaultInjector`
    #: (all kinds).  Deliberately *not* part of :meth:`summary` — injected
    #: faults are an experiment's independent variable, not a cost; the
    #: per-kind breakdown lives on the injector and the Prometheus export.
    faults_injected: int = 0
    history: List[RoundRecord] = field(default_factory=list)
    keep_history: bool = True
    _current: Optional[RoundRecord] = field(
        default=None, init=False, repr=False, compare=False
    )

    def begin_round(self, label: str = "") -> RoundRecord:
        """Start a new round and return its (mutable) record."""
        record = RoundRecord(round_index=self.rounds, label=label)
        self.rounds += 1
        if self.keep_history:
            self.history.append(record)
        self._current = record
        return record

    def record_messages(
        self, count: int, bits_each: int, record: Optional[RoundRecord] = None
    ) -> None:
        """Record ``count`` messages of ``bits_each`` bits in the current round."""
        if count < 0 or bits_each < 0:
            raise ValueError("counts and bits must be non-negative")
        record = record or getattr(self, "_current", None)
        self.messages += count
        self.total_bits += count * bits_each
        if bits_each > self.max_message_bits:
            self.max_message_bits = bits_each
        if record is not None:
            record.messages += count
            record.bits += count * bits_each
            if bits_each > record.max_message_bits:
                record.max_message_bits = bits_each

    def record_rounds_batch(
        self,
        count: int,
        label: str = "",
        messages: CountsLike = None,
        bits_each: int = 0,
        failures: CountsLike = None,
    ) -> None:
        """Record ``count`` whole rounds in one call.

        Equivalent to ``count`` iterations of :meth:`begin_round` +
        :meth:`record_messages` + :meth:`record_failures`, but the totals
        are accumulated once instead of per round — this is the batched
        accounting behind the :class:`~repro.gossip.network.GossipNetwork`
        pull surface.  ``messages`` / ``failures`` may be ``None`` (zero),
        a scalar applied to every round, or a per-round sequence of length
        ``count``.  History records are still appended individually when
        ``keep_history`` is set, so per-round breakdowns are unchanged.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        if bits_each < 0:
            raise ValueError("counts and bits must be non-negative")
        if count == 0:
            return
        per_round_messages = self._per_round(messages, count, "messages")
        per_round_failures = self._per_round(failures, count, "failures")
        total_messages = int(sum(per_round_messages))
        total_failures = int(sum(per_round_failures))
        base = self.rounds
        self.rounds += count
        self.messages += total_messages
        self.total_bits += total_messages * bits_each
        # begin_round + record_messages per round would have raised the
        # max regardless of the message count; mirror that exactly.
        if bits_each > self.max_message_bits:
            self.max_message_bits = bits_each
        self.failed_node_rounds += total_failures
        offsets = range(count) if self.keep_history else range(count - 1, count)
        record = None
        for offset in offsets:
            record = RoundRecord(
                round_index=base + offset,
                messages=int(per_round_messages[offset]),
                bits=int(per_round_messages[offset]) * bits_each,
                max_message_bits=bits_each,
                failed_nodes=int(per_round_failures[offset]),
                label=label,
            )
            if self.keep_history:
                self.history.append(record)
        self._current = record

    @staticmethod
    def _per_round(counts: CountsLike, rounds: int, what: str) -> List[int]:
        if counts is None:
            return [0] * rounds
        if np.isscalar(counts):
            value = int(cast(SupportsInt, counts))
            if value < 0:
                raise ValueError(f"{what} must be non-negative")
            return [value] * rounds
        values = [int(c) for c in cast(Iterable[int], counts)]
        if len(values) != rounds:
            raise ValueError(f"need one {what} entry per round, got {len(values)}")
        if any(v < 0 for v in values):
            raise ValueError(f"{what} must be non-negative")
        return values

    def record_query(self, bits: int, count: int = 1) -> None:
        """Record ``count`` answered quantile queries of ``bits`` payload each.

        Queries are the serving layer's unit of work: each one ships an
        answer message but consumes *no* gossip round — the whole point of
        the one-pass construction is that round cost is fixed while query
        cost grows only in payload bits.  Totals land in ``messages`` /
        ``total_bits`` so rounds-vs-bandwidth comparisons stay honest, and
        the separate ``queries`` counter keeps them attributable.
        """
        if count < 0 or bits < 0:
            raise ValueError("counts and bits must be non-negative")
        self.queries += count
        self.query_bits += count * bits
        self.messages += count
        self.total_bits += count * bits
        if count and bits > self.max_message_bits:
            self.max_message_bits = bits

    def record_faults_injected(self, count: int) -> None:
        """Record ``count`` injected faults (drop/dup/delay/crash/corrupt)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        self.faults_injected += count

    def record_failures(self, count: int, record: Optional[RoundRecord] = None) -> None:
        if count < 0:
            raise ValueError("count must be non-negative")
        self.failed_node_rounds += count
        record = record or getattr(self, "_current", None)
        if record is not None:
            record.failed_nodes += count

    def charge_rounds(self, count: int, label: str = "charged") -> None:
        """Charge ``count`` rounds without simulating them.

        Used by the *idealized* fidelity level of the exact-quantile
        algorithm for sub-steps whose outcome is computed exactly but whose
        proven round cost still has to appear in the totals.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        for _ in range(count):
            self.begin_round(label=label)

    def merge(self, other: "NetworkMetrics") -> None:
        """Fold another metrics object into this one (rounds are additive)."""
        offset = self.rounds
        self.rounds += other.rounds
        self.messages += other.messages
        self.total_bits += other.total_bits
        self.failed_node_rounds += other.failed_node_rounds
        self.queries += other.queries
        self.query_bits += other.query_bits
        self.faults_injected += other.faults_injected
        if other.max_message_bits > self.max_message_bits:
            self.max_message_bits = other.max_message_bits
        if self.keep_history:
            for record in other.history:
                merged = RoundRecord(
                    round_index=record.round_index + offset,
                    messages=record.messages,
                    bits=record.bits,
                    max_message_bits=record.max_message_bits,
                    failed_nodes=record.failed_nodes,
                    label=record.label,
                )
                self.history.append(merged)

    def rounds_by_label(self) -> Dict[str, int]:
        """Number of rounds spent in each labelled phase."""
        counts: Dict[str, int] = {}
        for record in self.history:
            counts[record.label] = counts.get(record.label, 0) + 1
        return counts

    def counters(self) -> Tuple[int, int, int, int, int, int]:
        """The cumulative counters as one tuple, for span snapshotting.

        :class:`~repro.obs.tracer.Span` snapshots this at its boundaries
        and stores the deltas — observability *reads* the counters; it
        never mutates this object.
        """
        return (
            self.rounds,
            self.messages,
            self.total_bits,
            self.queries,
            self.query_bits,
            self.failed_node_rounds,
        )

    def summary(self) -> Dict[str, float]:
        """A flat dictionary convenient for experiment result rows.

        Includes the serving-layer query counters: rows derived from a
        metrics object that answered queries would otherwise silently drop
        the query cost (``queries`` / ``query_bits`` are also folded into
        ``messages`` / ``total_bits``, so the breakdown keeps the totals
        attributable).
        """
        return {
            "rounds": self.rounds,
            "messages": self.messages,
            "total_bits": self.total_bits,
            "max_message_bits": self.max_message_bits,
            "failed_node_rounds": self.failed_node_rounds,
            "queries": self.queries,
            "query_bits": self.query_bits,
        }


def total_rounds(metrics: Iterable[NetworkMetrics]) -> int:
    """Sum of rounds across several metric objects."""
    return sum(metric.rounds for metric in metrics)
