"""Message representation and payload size accounting.

The paper's standard gossip model allows each message to carry O(log n)
bits.  To compare the tournament algorithms against the doubling and
compaction baselines of Appendix A (whose messages are much larger) we
account for message sizes explicitly.  The helpers here assign a bit cost
to the payloads the library actually sends.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence, Tuple

from repro.utils.mathutils import ceil_log2


# Number of bits we charge for one scalar value.  The paper assumes values
# fit in O(log n) bits; we charge a fixed 64 bits per scalar (an IEEE double)
# which is an upper bound for every workload shipped with the library and
# keeps the accounting independent of n, so cross-n comparisons of message
# *growth* (constant vs. 1/eps^2 vs. buffer-sized) remain meaningful.
BITS_PER_VALUE = 64

#: Bits charged for a floating point weight (push-sum weights, token weights).
BITS_PER_WEIGHT = 64

#: Bits charged for a small control header (message kind, phase number, ...).
BITS_HEADER = 16


def id_bits(n: int) -> int:
    """Bits needed to address one of ``n`` nodes."""
    if n <= 0:
        raise ValueError("n must be positive")
    return max(1, ceil_log2(n))


def payload_bits(payload: Any, n: Optional[int] = None) -> int:
    """Estimate the number of bits needed to encode ``payload``.

    The estimate is intentionally simple and conservative: scalars cost
    :data:`BITS_PER_VALUE`, tuples and lists cost the sum of their parts,
    ``None`` costs nothing beyond the header.  Every message additionally
    pays :data:`BITS_HEADER` for framing and, when ``n`` is given, the
    sender id.
    """
    bits = BITS_HEADER
    if n is not None:
        bits += id_bits(n)
    bits += _payload_body_bits(payload)
    return bits


def _payload_body_bits(payload: Any) -> int:
    if payload is None:
        return 0
    if isinstance(payload, bool):
        return 1
    if isinstance(payload, int):
        return max(1, payload.bit_length())
    if isinstance(payload, float):
        return BITS_PER_VALUE
    if isinstance(payload, (tuple, list)):
        return sum(_payload_body_bits(item) for item in payload)
    if isinstance(payload, dict):
        return sum(
            _payload_body_bits(key) + _payload_body_bits(value)
            for key, value in payload.items()
        )
    if isinstance(payload, str):
        return 8 * len(payload)
    if hasattr(payload, "message_bits"):
        return int(payload.message_bits())
    if hasattr(payload, "__len__"):
        return BITS_PER_VALUE * len(payload)
    return BITS_PER_VALUE


@dataclass(frozen=True)
class Message:
    """One gossip message.

    Attributes
    ----------
    sender, receiver:
        Node indices in ``range(n)``.
    payload:
        Arbitrary protocol payload.
    kind:
        ``"push"`` for messages initiated by the sender, ``"pull"`` for the
        response to a pull request.
    round_index:
        The synchronous round in which the message was delivered.
    bits:
        Accounted size of the message.
    """

    sender: int
    receiver: int
    payload: Any
    kind: str
    round_index: int
    bits: int = field(default=0)

    def __post_init__(self) -> None:
        if self.kind not in ("push", "pull"):
            raise ValueError(f"unknown message kind: {self.kind!r}")
        if self.round_index < 0:
            raise ValueError("round_index must be non-negative")


def buffer_bits(length: int, bits_per_entry: int = BITS_PER_VALUE) -> int:
    """Bit cost of a buffer message with ``length`` entries.

    Used by the doubling / compaction baselines whose messages carry whole
    buffers of sampled values.
    """
    if length < 0:
        raise ValueError("length must be non-negative")
    return BITS_HEADER + length * bits_per_entry


def tournament_message_bits(n: int) -> int:
    """Message size of the tournament algorithms: one value + framing."""
    return payload_bits(0.0, n=n)


def theoretical_message_bits(
    algorithm: str, n: int, eps: float
) -> Tuple[int, str]:
    """Paper-stated asymptotic message sizes, as concrete reference numbers.

    Returns ``(bits, formula)``.  Used by experiment E8 to annotate measured
    sizes with the asymptotic formula they should track.
    """
    if n <= 1:
        raise ValueError("n must be at least 2")
    if not 0 < eps < 1:
        raise ValueError("eps must be in (0, 1)")
    log_n = math.log2(n)
    if algorithm == "tournament":
        return tournament_message_bits(n), "O(log n)"
    if algorithm == "doubling":
        entries = math.ceil(log_n / (eps * eps))
        return buffer_bits(entries), "O(log^2 n / eps^2)"
    if algorithm == "compacted":
        entries = math.ceil((1.0 / eps) * (math.log2(max(2.0, log_n)) + math.log2(1.0 / eps)))
        return buffer_bits(entries), "O((1/eps) log n (log log n + log 1/eps))"
    if algorithm == "sampling":
        return tournament_message_bits(n), "O(log n)"
    raise ValueError(f"unknown algorithm: {algorithm!r}")
