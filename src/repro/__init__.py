"""repro — Optimal Gossip Algorithms for Exact and Approximate Quantile Computations.

A production-quality reproduction of Haeupler, Mohapatra and Su (PODC 2018):
uniform-gossip algorithms that compute an exact φ-quantile in O(log n)
rounds and an ε-approximate φ-quantile in O(log log n + log 1/ε) rounds,
together with the gossip substrate they run on, the baselines they are
compared against, the Section-5 failure-tolerant variants and the
Theorem 1.3 lower-bound harness.

Quick start
-----------
>>> from repro import approximate_quantile, exact_quantile
>>> import numpy as np
>>> values = np.random.default_rng(0).permutation(np.arange(1.0, 2049.0))
>>> approx = approximate_quantile(values, phi=0.9, eps=0.1, rng=0)
>>> exact = exact_quantile(values, phi=0.9, rng=0)
"""

from repro.core import (
    approximate_quantile,
    estimate_all_ranks,
    exact_quantile,
    robust_approximate_quantile,
)
from repro.core.results import ApproxQuantileResult, ExactQuantileResult
from repro.core.robust import RobustQuantileResult
from repro.core.all_quantiles import AllRanksResult, true_self_quantiles
from repro.core.service import QuantileService, QueryAnswer
from repro.gossip import (
    GossipNetwork,
    NetworkMetrics,
    NoFailures,
    PerNodeFailures,
    UniformFailures,
)
from repro.topology import Topology, build_topology
from repro.utils.rand import RandomSource
from repro.utils.stats import (
    empirical_quantile,
    quantile_of_value,
    rank_error,
    within_eps,
)

__version__ = "1.0.0"

__all__ = [
    "approximate_quantile",
    "exact_quantile",
    "estimate_all_ranks",
    "robust_approximate_quantile",
    "ApproxQuantileResult",
    "ExactQuantileResult",
    "RobustQuantileResult",
    "AllRanksResult",
    "true_self_quantiles",
    "QuantileService",
    "QueryAnswer",
    "GossipNetwork",
    "NetworkMetrics",
    "NoFailures",
    "UniformFailures",
    "PerNodeFailures",
    "Topology",
    "build_topology",
    "RandomSource",
    "empirical_quantile",
    "quantile_of_value",
    "rank_error",
    "within_eps",
    "__version__",
]
