"""Shared low-level utilities: seeded randomness, math helpers, statistics."""

from repro.utils.rand import (
    RandomSource,
    draw_targets_excluding,
    resample_forbidden_targets,
    spawn_rngs,
)
from repro.utils.mathutils import (
    ceil_log2,
    ceil_pow2,
    clamp,
    is_power_of_two,
    log_base,
    message_bits_for_value,
)
from repro.utils.stats import (
    empirical_quantile,
    quantile_of_value,
    rank_error,
    rank_of_value,
    value_at_rank,
)

__all__ = [
    "RandomSource",
    "draw_targets_excluding",
    "resample_forbidden_targets",
    "spawn_rngs",
    "ceil_log2",
    "ceil_pow2",
    "clamp",
    "is_power_of_two",
    "log_base",
    "message_bits_for_value",
    "empirical_quantile",
    "quantile_of_value",
    "rank_error",
    "rank_of_value",
    "value_at_rank",
]
