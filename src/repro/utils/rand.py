"""Seeded randomness helpers.

All stochastic components of the library draw their randomness from a
:class:`RandomSource`, a thin wrapper around :class:`numpy.random.Generator`
that supports deterministic child-stream spawning.  Experiments that need
independent repetitions spawn one child per trial so that trials are
reproducible individually and insensitive to the order in which they run.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Union

import numpy as np

SeedLike = Union[int, np.random.SeedSequence, "RandomSource", None]


def resample_forbidden_targets(
    source: "RandomSource",
    targets: np.ndarray,
    forbidden: np.ndarray,
    n: int,
) -> np.ndarray:
    """Re-draw, in place, every entry of ``targets`` equal to ``forbidden``.

    The shared masked-re-draw kernel behind every "uniform partner that is
    not myself" draw in the library: an already-drawn uniform ``targets``
    array is compared against ``forbidden`` (same shape, or broadcastable to
    it) and colliding entries are re-drawn in vectorized batches until none
    remain.  Each pass re-draws only the colliding entries with a single
    ``integers`` call, so the expected number of passes is constant
    (collisions happen with probability ``1/n``).

    This replaces the scalar "re-draw while the target equals the node"
    rejection loops that used to be re-implemented at every call site.
    The draw order — one full-size draw by the caller, then masked
    re-draws — is byte-for-byte the historical partner stream, so seeded
    runs through :func:`repro.topology.sampler.draw_uniform_round_partners`
    and friends are unchanged.
    """
    if n < 2:
        raise ValueError("need at least 2 possible targets to exclude one")
    forbidden = np.asarray(forbidden)
    if targets.shape == forbidden.shape and targets.ndim == 1:
        # Same-shape fast path (the per-round partner draw): track only the
        # colliding *indices* between passes instead of re-comparing the
        # full arrays.  Collisions are visited in index order, exactly like
        # the boolean-mask assignment, so the draws are unchanged.
        bad = np.flatnonzero(targets == forbidden)
        while bad.size:
            targets[bad] = source.integers(0, n, size=bad.size)
            bad = bad[targets[bad] == forbidden[bad]]
        return targets
    mask = targets == forbidden
    while np.any(mask):
        targets[mask] = source.integers(0, n, size=int(mask.sum()))
        mask = targets == forbidden
    return targets


def draw_targets_excluding(
    source: "RandomSource", n: int, forbidden: np.ndarray
) -> np.ndarray:
    """Uniform targets in ``[0, n)``, one per ``forbidden`` entry, avoiding it.

    Vectorized batch draw used by token pushes and partner selection: draws
    ``forbidden.shape`` uniform targets and rejection-resamples collisions
    via :func:`resample_forbidden_targets` (a masked re-draw, not a scalar
    ``while`` loop).
    """
    forbidden = np.asarray(forbidden)
    targets = source.integers(0, n, size=forbidden.shape)
    return resample_forbidden_targets(source, targets, forbidden, n)


class RandomSource:
    """A reproducible source of randomness with cheap child spawning.

    Parameters
    ----------
    seed:
        Any of ``None`` (non-deterministic), an integer, a numpy
        ``SeedSequence`` or another :class:`RandomSource` (in which case a
        child stream of that source is used).
    """

    def __init__(self, seed: SeedLike = None) -> None:
        if isinstance(seed, RandomSource):
            self._seq = seed._seq.spawn(1)[0]
        elif isinstance(seed, np.random.SeedSequence):
            self._seq = seed
        else:
            self._seq = np.random.SeedSequence(seed)
        self._generator = np.random.default_rng(self._seq)

    @property
    def generator(self) -> np.random.Generator:
        """The underlying numpy generator."""
        return self._generator

    @property
    def seed_sequence(self) -> np.random.SeedSequence:
        """The seed sequence this source was built from.

        Re-creating a :class:`RandomSource` from this sequence replays the
        stream from its start — which is how stateful components (e.g.
        :class:`repro.topology.dynamic.TopologyProcess`) reproduce the same
        schedule across repeated runs.
        """
        return self._seq

    def spawn(self, count: int) -> List["RandomSource"]:
        """Return ``count`` independent child sources."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return [RandomSource(seq) for seq in self._seq.spawn(count)]

    def child(self) -> "RandomSource":
        """Return a single independent child source."""
        return self.spawn(1)[0]

    # -- convenience passthroughs -------------------------------------------------
    def integers(self, low: int, high: Optional[int] = None, size=None) -> np.ndarray:
        return self._generator.integers(low, high, size=size)

    def random(self, size=None):
        return self._generator.random(size)

    def choice(self, a, size=None, replace: bool = True, p=None):
        return self._generator.choice(a, size=size, replace=replace, p=p)

    def shuffle(self, x) -> None:
        self._generator.shuffle(x)

    def permutation(self, x) -> np.ndarray:
        return self._generator.permutation(x)

    def uniform_partners(self, n: int, count: int) -> np.ndarray:
        """Sample, for each of ``n`` nodes, ``count`` uniformly random partners.

        Returns an ``(n, count)`` integer array.  Partners are sampled with
        replacement from all ``n`` nodes, matching the uniform gossip model
        in which a node may contact itself with probability ``1/n`` (the
        paper's analysis is unaffected by self-contacts; we keep them for
        fidelity with the uniform model and note the alternative in the
        network simulator, which can exclude them).
        """
        if n <= 0:
            raise ValueError("n must be positive")
        if count < 0:
            raise ValueError("count must be non-negative")
        return self._generator.integers(0, n, size=(n, count))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomSource(entropy={self._seq.entropy})"


def spawn_rngs(seed: SeedLike, count: int) -> List[RandomSource]:
    """Spawn ``count`` independent :class:`RandomSource` objects from ``seed``."""
    return RandomSource(seed).spawn(count)


def iter_trial_rngs(seed: SeedLike, trials: int) -> Iterator[RandomSource]:
    """Yield one independent source per trial, deterministically from ``seed``."""
    for rng in spawn_rngs(seed, trials):
        yield rng


def resolve_seed_sequence(seeds: Sequence[int]) -> RandomSource:
    """Build a :class:`RandomSource` from a sequence of integers.

    Useful when an experiment wants to derive a stream from a tuple of
    identifying parameters such as ``(experiment_id, n, trial)``.
    """
    return RandomSource(np.random.SeedSequence(list(seeds)))
