"""Small mathematical helpers shared across the library."""

from __future__ import annotations

import math


def clamp(value: float, low: float, high: float) -> float:
    """Clamp ``value`` into the closed interval ``[low, high]``."""
    if low > high:
        raise ValueError(f"empty interval: low={low} > high={high}")
    return max(low, min(high, value))


def ceil_log2(value: float) -> int:
    """Return ``ceil(log2(value))`` for positive ``value``; 0 for value <= 1."""
    if value <= 0:
        raise ValueError("value must be positive")
    if value <= 1:
        return 0
    return int(math.ceil(math.log2(value)))


def ceil_pow2(value: float) -> int:
    """Return the smallest power of two that is >= ``value`` (at least 1)."""
    if value <= 1:
        return 1
    return 1 << ceil_log2(value)


def is_power_of_two(value: int) -> bool:
    """Return True iff ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def log_base(value: float, base: float) -> float:
    """Return ``log_base(value)`` with input validation."""
    if value <= 0:
        raise ValueError("value must be positive")
    if base <= 0 or base == 1:
        raise ValueError("base must be positive and different from 1")
    return math.log(value) / math.log(base)


def log_log(value: float) -> float:
    """Return ``log2(log2(value))``, clamped below at 0 (defined for value > 1)."""
    if value <= 1:
        return 0.0
    inner = math.log2(value)
    if inner <= 1:
        return 0.0
    return math.log2(inner)


def message_bits_for_value(n: int, value_bits: int = 0) -> int:
    """Bits needed for one gossip message carrying a node id and one value.

    The paper's standard model allows O(log n)-bit messages.  A message that
    carries a single value of ``value_bits`` bits (defaulting to
    ``ceil(log2(n))``, the paper's assumption that values fit in O(log n)
    bits) plus a constant-size header costs ``value_bits + ceil(log2(n))``
    bits; we return that quantity so protocols can account for their
    communication exactly.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    id_bits = max(1, ceil_log2(n))
    if value_bits <= 0:
        value_bits = id_bits
    return id_bits + value_bits


def harmonic_number(k: int) -> float:
    """Return the k-th harmonic number H_k."""
    if k < 0:
        raise ValueError("k must be non-negative")
    return sum(1.0 / i for i in range(1, k + 1))


def binomial_tail_bound(n: int, p: float, k: int) -> float:
    """Crude union/Chernoff-style upper bound on P[Bin(n, p) >= k].

    Used only for sanity checks in the analysis module, never inside the
    algorithms themselves.
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must be in [0, 1]")
    if k <= 0:
        return 1.0
    if k > n:
        return 0.0
    mean = n * p
    if k <= mean:
        return 1.0
    # multiplicative Chernoff: P[X >= (1+d)mu] <= exp(-d^2 mu / 3) for d <= 1,
    # exp(-d mu / 3) for d > 1.
    if mean == 0:
        return 0.0
    delta = k / mean - 1.0
    if delta <= 1.0:
        return math.exp(-delta * delta * mean / 3.0)
    return math.exp(-delta * mean / 3.0)
