"""Rank and quantile helpers.

The paper works with ranks over the multiset of node values: the
``phi``-quantile is the ``ceil(phi * n)``-th smallest value.  These helpers
centralise that convention so the algorithms, the analysis code and the
tests all agree on the definition.
"""

from __future__ import annotations

import math
from typing import Sequence, Union

import numpy as np

ArrayLike = Union[Sequence[float], np.ndarray]


def _as_array(values: ArrayLike) -> np.ndarray:
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1:
        raise ValueError("values must be one-dimensional")
    if arr.size == 0:
        raise ValueError("values must be non-empty")
    return arr


def target_rank(n: int, phi: float) -> int:
    """The paper's target rank for the exact ``phi``-quantile: ``ceil(phi*n)``.

    Clamped into ``[1, n]`` so that ``phi = 0`` selects the minimum and
    ``phi = 1`` the maximum.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if not 0.0 <= phi <= 1.0:
        raise ValueError("phi must be in [0, 1]")
    return int(min(n, max(1, math.ceil(phi * n))))


def value_at_rank(values: ArrayLike, rank: int) -> float:
    """Return the ``rank``-th smallest value (1-indexed)."""
    arr = _as_array(values)
    if not 1 <= rank <= arr.size:
        raise ValueError(f"rank {rank} out of range 1..{arr.size}")
    return float(np.partition(arr, rank - 1)[rank - 1])


def empirical_quantile(values: ArrayLike, phi: float) -> float:
    """Return the exact ``phi``-quantile of ``values`` (paper convention)."""
    arr = _as_array(values)
    return value_at_rank(arr, target_rank(arr.size, phi))


def rank_of_value(values: ArrayLike, value: float) -> int:
    """Number of elements of ``values`` that are <= ``value``."""
    arr = _as_array(values)
    return int(np.count_nonzero(arr <= value))


def quantile_of_value(values: ArrayLike, value: float) -> float:
    """The quantile (rank divided by n) of ``value`` within ``values``."""
    arr = _as_array(values)
    return rank_of_value(arr, value) / arr.size


def rank_error(values: ArrayLike, estimate: float, phi: float) -> float:
    """Quantile error of ``estimate`` as an approximation of the phi-quantile.

    The estimate occupies the rank band ``[rank_lo, rank_hi]`` in ``values``
    (``rank_lo`` counts strictly smaller elements plus one, ``rank_hi``
    counts elements ``<= estimate``).  The error is the distance, in
    quantile units, from that band to the target rank ``ceil(phi n)``
    (clamped to ``[1, n]``, matching the paper's definition of the exact
    phi-quantile).  An estimate whose band contains the target rank has
    error 0; this is the smallest ``eps`` for which the estimate is an
    ``eps``-approximate phi-quantile.
    """
    arr = _as_array(values)
    if not 0.0 <= phi <= 1.0:
        raise ValueError("phi must be in [0, 1]")
    n = arr.size
    target = target_rank(n, phi)
    rank_hi = int(np.count_nonzero(arr <= estimate))
    rank_lo = int(np.count_nonzero(arr < estimate)) + 1
    if rank_hi < rank_lo:
        # estimate is not an element of values: its band collapses to the
        # insertion point between rank_hi and rank_hi + 1.
        rank_lo = rank_hi = max(1, rank_hi)
    if rank_lo <= target <= rank_hi:
        return 0.0
    return float(min(abs(target - rank_lo), abs(target - rank_hi))) / n


def within_eps(values: ArrayLike, estimate: float, phi: float, eps: float) -> bool:
    """True iff ``estimate`` is an ``eps``-approximate ``phi``-quantile."""
    if eps < 0:
        raise ValueError("eps must be non-negative")
    return rank_error(values, estimate, phi) <= eps + 1e-12


def max_rank_error(values: ArrayLike, estimates: ArrayLike, phi: float) -> float:
    """Maximum rank error over a collection of per-node estimates."""
    est = np.asarray(estimates, dtype=float)
    return max(rank_error(values, float(e), phi) for e in est.ravel())


def fraction_within_eps(
    values: ArrayLike, estimates: ArrayLike, phi: float, eps: float
) -> float:
    """Fraction of per-node estimates that are eps-approximate phi-quantiles."""
    est = np.asarray(estimates, dtype=float).ravel()
    if est.size == 0:
        raise ValueError("estimates must be non-empty")
    good = sum(1 for e in est if within_eps(values, float(e), phi, eps))
    return good / est.size
