"""Read-only array view convention.

Large arrays cross subsystem boundaries as *views* rather than copies:
:func:`repro.experiments.runner.run_trials` publishes value arrays to
pool workers through POSIX shared memory, and the engines hand out
cached failure masks and identity index arrays shared across rounds.
Mutating any of them corrupts state shared across trials or processes.

The convention is made machine-checkable by :mod:`repro.lint`'s
``shared-view-write`` rule: annotate a parameter ``ReadOnlyArray`` and
the linter flags every in-place write to it (augmented assignment,
slice assignment, ``out=`` targets, ``np.<ufunc>.at``, mutating ndarray
methods).  At runtime ``ReadOnlyArray`` is a plain :class:`numpy.ndarray`
alias, so annotations cost nothing; :func:`readonly` additionally sets
``writeable=False`` so accidental writes fail fast.
"""

from __future__ import annotations

import numpy as np

#: Annotation alias marking a parameter as a shared read-only view.
#: Enforced statically by the ``shared-view-write`` lint rule.
ReadOnlyArray = np.ndarray


def readonly(array: np.ndarray) -> np.ndarray:
    """Mark ``array`` itself read-only (in place) and return it.

    Used on freshly allocated cache entries that are about to be shared:
    the returned object *is* the argument with ``writeable=False`` set,
    so later writes raise immediately instead of corrupting shared state.
    """
    array.setflags(write=False)
    return array


def readonly_view(array: np.ndarray) -> np.ndarray:
    """A read-only view of ``array``, leaving the original writeable."""
    view = array.view()
    view.flags.writeable = False
    return view


__all__ = ["ReadOnlyArray", "readonly", "readonly_view"]
