"""Step 7 of Algorithm 3: token split-and-distribute.

Each valued node creates one token ``(item, m_i)`` whose weight ``m_i`` is a
power of two.  The process has two stages, both made of phases that cost
O(1) rounds w.h.p.:

1. **Splitting** — every token of weight > 1 is split into two tokens of
   half the weight; one stays, the other is pushed to a uniformly random
   node.  After ``lg m_i = O(log n)`` phases all tokens have weight 1.
2. **Spreading** — a node holding more than one token keeps one and pushes
   every other token to a uniformly random node, until every node holds at
   most one token.  Because at most ``n^{0.99}`` tokens exist, a pushed
   token fails to land alone with probability ``O(n^{-0.01})`` and
   ``O(log n)`` phases suffice w.h.p.

Under the Section-5 failure model a failed push simply merges the two
halves back (splitting stage) or keeps the token where it is (spreading
stage), costing only a constant-factor slowdown (§5.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.exceptions import ConfigurationError, ConvergenceError
from repro.gossip.failures import FailureModel, resolve_failure_model
from repro.gossip.messages import BITS_HEADER, BITS_PER_VALUE, id_bits
from repro.gossip.metrics import NetworkMetrics
from repro.utils.mathutils import is_power_of_two
from repro.utils.rand import RandomSource


@dataclass
class TokenDistributionResult:
    """Outcome of the split-and-distribute process.

    ``owners`` maps each node to the item id of the token it ends up holding
    (-1 for nodes without a token).  Each item id appears exactly
    ``multiplicity`` times across ``owners``.
    """

    owners: np.ndarray
    multiplicity: int
    phases: int
    rounds: int
    metrics: NetworkMetrics
    max_tokens_per_node: int
    failed_pushes: int = 0

    def copies_of(self, item: int) -> int:
        return int(np.count_nonzero(self.owners == item))


def distribute_tokens(
    item_nodes: Union[Sequence[int], np.ndarray],
    multiplicity: int,
    n: int,
    rng: Union[None, int, RandomSource] = None,
    failure_model: Union[None, float, FailureModel] = None,
    metrics: Optional[NetworkMetrics] = None,
    max_phases: Optional[int] = None,
) -> TokenDistributionResult:
    """Duplicate each item ``multiplicity`` times across distinct nodes.

    Parameters
    ----------
    item_nodes:
        The node index currently holding each item (one entry per item; the
        item's id is its position in this sequence).
    multiplicity:
        The power-of-two number of copies each item must end up with.
    n:
        Total number of nodes.
    """
    item_nodes = np.asarray(item_nodes, dtype=int)
    if item_nodes.ndim != 1 or item_nodes.size == 0:
        raise ConfigurationError("item_nodes must be a non-empty 1-d sequence")
    if np.any(item_nodes < 0) or np.any(item_nodes >= n):
        raise ConfigurationError("item_nodes must be valid node indices")
    if not is_power_of_two(multiplicity):
        raise ConfigurationError("multiplicity must be a power of two")
    total_tokens = item_nodes.size * multiplicity
    if total_tokens > n:
        raise ConfigurationError(
            f"cannot place {total_tokens} unit tokens on {n} nodes"
        )

    source = rng if isinstance(rng, RandomSource) else RandomSource(rng)
    failures = resolve_failure_model(failure_model)
    stats = metrics if metrics is not None else NetworkMetrics(keep_history=False)
    rounds_before = stats.rounds
    if max_phases is None:
        max_phases = int(40 + 30 * np.log2(max(n, 2)))

    message_bits = BITS_HEADER + BITS_PER_VALUE + id_bits(n)

    # tokens[node] is a list of (item, weight) pairs held by that node.
    tokens: List[List[List[int]]] = [[] for _ in range(n)]
    for item, node in enumerate(item_nodes):
        tokens[node].append([item, multiplicity])

    phases = 0
    failed_pushes = 0
    max_tokens_seen = 1

    def run_phase(push_plan: Dict[int, List[List[int]]]) -> int:
        """Execute one phase: each node pushes its planned tokens, one per round.

        Returns the number of rounds the phase costs (the maximum number of
        pushes any single node performs).  A node that fails in a round
        keeps the token it would have pushed.
        """
        nonlocal failed_pushes
        if not push_plan:
            return 0
        rounds_needed = max(len(plan) for plan in push_plan.values())
        for round_slot in range(rounds_needed):
            record = stats.begin_round(label="token-distribution")
            failed = failures.failure_mask(stats.rounds - 1, n, source)
            stats.record_failures(int(failed.sum()), record)
            for node, plan in push_plan.items():
                if round_slot >= len(plan):
                    continue
                token = plan[round_slot]
                if failed[node]:
                    failed_pushes += 1
                    tokens[node].append(token)
                    continue
                target = int(source.integers(0, n))
                while target == node:
                    target = int(source.integers(0, n))
                stats.record_messages(1, message_bits, record)
                tokens[target].append(token)
        return rounds_needed

    # ---- stage 1: split until every token has weight 1 ------------------------
    while True:
        if phases >= max_phases:
            raise ConvergenceError("token splitting did not finish within its budget")
        heavy_exists = any(
            weight > 1 for node_tokens in tokens for _, weight in node_tokens
        )
        if not heavy_exists:
            break
        push_plan: Dict[int, List[List[int]]] = {}
        for node in range(n):
            keep: List[List[int]] = []
            outgoing: List[List[int]] = []
            for item, weight in tokens[node]:
                if weight > 1:
                    half = weight // 2
                    keep.append([item, half])
                    outgoing.append([item, half])
                else:
                    keep.append([item, weight])
            tokens[node] = keep
            if outgoing:
                push_plan[node] = outgoing
        max_tokens_seen = max(
            max_tokens_seen, max(len(t) for t in tokens) if tokens else 0
        )
        run_phase(push_plan)
        phases += 1

    # ---- stage 2: spread until every node holds at most one token -------------
    while True:
        if phases >= max_phases:
            raise ConvergenceError("token spreading did not finish within its budget")
        overloaded = [node for node in range(n) if len(tokens[node]) > 1]
        if not overloaded:
            break
        push_plan = {}
        for node in overloaded:
            extra = tokens[node][1:]
            tokens[node] = tokens[node][:1]
            push_plan[node] = extra
        max_tokens_seen = max(max_tokens_seen, max(len(t) for t in tokens))
        run_phase(push_plan)
        phases += 1

    owners = np.full(n, -1, dtype=int)
    for node in range(n):
        if tokens[node]:
            owners[node] = tokens[node][0][0]

    # Post-condition: every item has exactly `multiplicity` copies.
    counts = np.bincount(owners[owners >= 0], minlength=item_nodes.size)
    if not np.all(counts == multiplicity):
        raise ConvergenceError("token distribution lost or duplicated tokens")

    return TokenDistributionResult(
        owners=owners,
        multiplicity=multiplicity,
        phases=phases,
        rounds=stats.rounds - rounds_before,
        metrics=stats,
        max_tokens_per_node=max_tokens_seen,
        failed_pushes=failed_pushes,
    )
