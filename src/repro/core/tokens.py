"""Step 7 of Algorithm 3: token split-and-distribute.

Each valued node creates one token ``(item, m_i)`` whose weight ``m_i`` is a
power of two.  The process has two stages, both made of phases that cost
O(1) rounds w.h.p.:

1. **Splitting** — every token of weight > 1 is split into two tokens of
   half the weight; one stays, the other is pushed to a uniformly random
   node.  After ``lg m_i = O(log n)`` phases all tokens have weight 1.
2. **Spreading** — a node holding more than one token keeps one and pushes
   every other token to a uniformly random node, until every node holds at
   most one token.  Because at most ``n^{0.99}`` tokens exist, a pushed
   token fails to land alone with probability ``O(n^{-0.01})`` and
   ``O(log n)`` phases suffice w.h.p.

Under the Section-5 failure model a failed push simply merges the two
halves back (splitting stage) or keeps the token where it is (spreading
stage), costing only a constant-factor slowdown (§5.2).

Two engines implement the process, mirroring the gossip engine convention
(:mod:`repro.gossip.engine`):

* :func:`distribute_tokens_loop` — the reference implementation: token
  state as per-node Python lists, one scalar RNG draw per push.  Its random
  stream and outputs are bit-for-bit the historical (pre-vectorization)
  behaviour under a fixed seed.
* :func:`distribute_tokens_vectorized` — token state as flat numpy columns
  ``(item, weight, holder)``; splitting halves weights with array ops, push
  targets are drawn in vectorized batches (self-targets rejection-resampled
  as a masked re-draw via :func:`repro.utils.rand.draw_targets_excluding`),
  per-node token counts come from ``np.bincount`` and failure-model merges
  are boolean-mask updates.  One to two orders of magnitude faster at large
  ``n``.

Both engines execute the same phase/round structure, charge the same
per-message bits, and satisfy the same invariants (weight conservation,
exact multiplicities, ≤ 1 token per node at the end) — the invariant suite
in ``tests/test_core_tokens.py`` runs identically against both.  They are
*not* bit-identical to each other: the vectorized engine draws push targets
in batches (one array draw per round plus masked re-draws) while the loop
engine draws them one scalar at a time, so a fixed seed yields different —
equally valid — ``owners`` placements.  This is the same class of
documented RNG-stream deviation as PR 1's extrema snapshots and PR 2's
broadcast snapshots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.exceptions import ConfigurationError, ConvergenceError
from repro.gossip.engine import get_default_engine
from repro.gossip.failures import FailureModel, resolve_failure_model
from repro.gossip.messages import BITS_HEADER, BITS_PER_VALUE, id_bits
from repro.gossip.metrics import NetworkMetrics
from repro.utils.mathutils import is_power_of_two
from repro.utils.rand import RandomSource, draw_targets_excluding

#: Valid values for the ``engine`` argument of :func:`distribute_tokens`.
TOKEN_ENGINE_CHOICES = ("auto", "loop", "vectorized")


@dataclass
class TokenDistributionResult:
    """Outcome of the split-and-distribute process.

    ``owners`` maps each node to the item id of the token it ends up holding
    (-1 for nodes without a token).  Each item id appears exactly
    ``multiplicity`` times across ``owners``.
    """

    owners: np.ndarray
    multiplicity: int
    phases: int
    rounds: int
    metrics: NetworkMetrics
    max_tokens_per_node: int
    failed_pushes: int = 0
    engine: str = "loop"

    def copies_of(self, item: int) -> int:
        return int(np.count_nonzero(self.owners == item))


def _validate_inputs(
    item_nodes: Union[Sequence[int], np.ndarray], multiplicity: int, n: int
) -> np.ndarray:
    item_nodes = np.asarray(item_nodes, dtype=int)
    if item_nodes.ndim != 1 or item_nodes.size == 0:
        raise ConfigurationError("item_nodes must be a non-empty 1-d sequence")
    if np.any(item_nodes < 0) or np.any(item_nodes >= n):
        raise ConfigurationError("item_nodes must be valid node indices")
    if not is_power_of_two(multiplicity):
        raise ConfigurationError("multiplicity must be a power of two")
    total_tokens = item_nodes.size * multiplicity
    if total_tokens > n:
        raise ConfigurationError(
            f"cannot place {total_tokens} unit tokens on {n} nodes"
        )
    return item_nodes


def _default_max_phases(n: int) -> int:
    return int(40 + 30 * np.log2(max(n, 2)))


def distribute_tokens(
    item_nodes: Union[Sequence[int], np.ndarray],
    multiplicity: int,
    n: int,
    rng: Union[None, int, RandomSource] = None,
    failure_model: Union[None, float, FailureModel] = None,
    metrics: Optional[NetworkMetrics] = None,
    max_phases: Optional[int] = None,
    engine: Optional[str] = None,
) -> TokenDistributionResult:
    """Duplicate each item ``multiplicity`` times across distinct nodes.

    Parameters
    ----------
    item_nodes:
        The node index currently holding each item (one entry per item; the
        item's id is its position in this sequence).
    multiplicity:
        The power-of-two number of copies each item must end up with.
    n:
        Total number of nodes.
    engine:
        ``"loop"`` (the reference implementation, bit-identical to the
        historical behaviour under a fixed seed), ``"vectorized"`` (flat
        array columns, batched RNG draws — a different but equally valid
        random stream) or ``"auto"`` (the vectorized engine).  ``None``
        defers to :func:`repro.gossip.engine.get_default_engine`, so the
        CLI's ``--engine`` flag selects the token engine too.
    """
    choice = engine if engine is not None else get_default_engine()
    if choice not in TOKEN_ENGINE_CHOICES:
        raise ConfigurationError(
            f"unknown token engine {choice!r}; choose from {TOKEN_ENGINE_CHOICES}"
        )
    if choice == "auto":
        choice = "vectorized"
    impl = (
        distribute_tokens_vectorized
        if choice == "vectorized"
        else distribute_tokens_loop
    )
    return impl(
        item_nodes,
        multiplicity=multiplicity,
        n=n,
        rng=rng,
        failure_model=failure_model,
        metrics=metrics,
        max_phases=max_phases,
    )


def distribute_tokens_loop(
    item_nodes: Union[Sequence[int], np.ndarray],
    multiplicity: int,
    n: int,
    rng: Union[None, int, RandomSource] = None,
    failure_model: Union[None, float, FailureModel] = None,
    metrics: Optional[NetworkMetrics] = None,
    max_phases: Optional[int] = None,
) -> TokenDistributionResult:
    """Reference engine: per-node token lists, one scalar RNG draw per push.

    Kept verbatim as the semantic reference for the vectorized engine; its
    outputs under a fixed seed are bit-identical to the pre-vectorization
    implementation.
    """
    item_nodes = _validate_inputs(item_nodes, multiplicity, n)

    source = rng if isinstance(rng, RandomSource) else RandomSource(rng)
    failures = resolve_failure_model(failure_model)
    stats = metrics if metrics is not None else NetworkMetrics(keep_history=False)
    rounds_before = stats.rounds
    if max_phases is None:
        max_phases = _default_max_phases(n)

    message_bits = BITS_HEADER + BITS_PER_VALUE + id_bits(n)

    # tokens[node] is a list of (item, weight) pairs held by that node.
    tokens: List[List[List[int]]] = [[] for _ in range(n)]
    for item, node in enumerate(item_nodes):
        tokens[node].append([item, multiplicity])

    phases = 0
    failed_pushes = 0
    max_tokens_seen = 1

    def run_phase(push_plan: Dict[int, List[List[int]]]) -> int:
        """Execute one phase: each node pushes its planned tokens, one per round.

        Returns the number of rounds the phase costs (the maximum number of
        pushes any single node performs).  A node that fails in a round
        keeps the token it would have pushed.
        """
        nonlocal failed_pushes
        if not push_plan:
            return 0
        rounds_needed = max(len(plan) for plan in push_plan.values())
        for round_slot in range(rounds_needed):
            record = stats.begin_round(label="token-distribution")
            failed = failures.failure_mask(stats.rounds - 1, n, source)
            stats.record_failures(int(failed.sum()), record)
            for node, plan in push_plan.items():
                if round_slot >= len(plan):
                    continue
                token = plan[round_slot]
                if failed[node]:
                    failed_pushes += 1
                    tokens[node].append(token)
                    continue
                target = int(source.integers(0, n))
                while target == node:
                    target = int(source.integers(0, n))
                stats.record_messages(1, message_bits, record)
                tokens[target].append(token)
        return rounds_needed

    # ---- stage 1: split until every token has weight 1 ------------------------
    while True:
        if phases >= max_phases:
            raise ConvergenceError("token splitting did not finish within its budget")
        heavy_exists = any(
            weight > 1 for node_tokens in tokens for _, weight in node_tokens
        )
        if not heavy_exists:
            break
        push_plan: Dict[int, List[List[int]]] = {}
        for node in range(n):
            keep: List[List[int]] = []
            outgoing: List[List[int]] = []
            for item, weight in tokens[node]:
                if weight > 1:
                    half = weight // 2
                    keep.append([item, half])
                    outgoing.append([item, half])
                else:
                    keep.append([item, weight])
            tokens[node] = keep
            if outgoing:
                push_plan[node] = outgoing
        max_tokens_seen = max(
            max_tokens_seen, max(len(t) for t in tokens) if tokens else 0
        )
        run_phase(push_plan)
        phases += 1

    # ---- stage 2: spread until every node holds at most one token -------------
    while True:
        if phases >= max_phases:
            raise ConvergenceError("token spreading did not finish within its budget")
        overloaded = [node for node in range(n) if len(tokens[node]) > 1]
        if not overloaded:
            break
        push_plan = {}
        for node in overloaded:
            extra = tokens[node][1:]
            tokens[node] = tokens[node][:1]
            push_plan[node] = extra
        max_tokens_seen = max(max_tokens_seen, max(len(t) for t in tokens))
        run_phase(push_plan)
        phases += 1

    owners = np.full(n, -1, dtype=int)
    for node in range(n):
        if tokens[node]:
            owners[node] = tokens[node][0][0]

    # Post-condition: every item has exactly `multiplicity` copies.
    counts = np.bincount(owners[owners >= 0], minlength=item_nodes.size)
    if not np.all(counts == multiplicity):
        raise ConvergenceError("token distribution lost or duplicated tokens")

    return TokenDistributionResult(
        owners=owners,
        multiplicity=multiplicity,
        phases=phases,
        rounds=stats.rounds - rounds_before,
        metrics=stats,
        max_tokens_per_node=max_tokens_seen,
        failed_pushes=failed_pushes,
        engine="loop",
    )


def distribute_tokens_vectorized(
    item_nodes: Union[Sequence[int], np.ndarray],
    multiplicity: int,
    n: int,
    rng: Union[None, int, RandomSource] = None,
    failure_model: Union[None, float, FailureModel] = None,
    metrics: Optional[NetworkMetrics] = None,
    max_phases: Optional[int] = None,
) -> TokenDistributionResult:
    """Vectorized engine: flat ``(item, weight, holder)`` token columns.

    Executes the same phase/round structure as the loop engine — one
    failure-mask draw per round, one message per successful push, the same
    phase budget — but every round is a handful of array operations over
    all tokens at once.  Push targets are drawn in vectorized batches with
    self-targets rejection-resampled as a masked re-draw, so the random
    stream (and hence the seeded ``owners`` placement) differs from the
    loop engine while all invariants are preserved.
    """
    item_nodes = _validate_inputs(item_nodes, multiplicity, n)

    source = rng if isinstance(rng, RandomSource) else RandomSource(rng)
    failures = resolve_failure_model(failure_model)
    stats = metrics if metrics is not None else NetworkMetrics(keep_history=False)
    rounds_before = stats.rounds
    if max_phases is None:
        max_phases = _default_max_phases(n)

    message_bits = BITS_HEADER + BITS_PER_VALUE + id_bits(n)

    # Flat token state: one entry per live token.  32-bit columns halve the
    # radix-sort passes of the per-phase stable argsorts (n always fits).
    index_dtype = np.int32 if n <= np.iinfo(np.int32).max else np.int64
    token_item = np.arange(item_nodes.size, dtype=index_dtype)
    token_weight = np.full(item_nodes.size, multiplicity, dtype=np.int64)
    token_holder = item_nodes.astype(index_dtype)

    phases = 0
    failed_pushes = 0
    max_tokens_seen = 1

    def observe_load() -> None:
        nonlocal max_tokens_seen
        counts = np.bincount(token_holder, minlength=n)
        load = int(counts.max())
        if load > max_tokens_seen:
            max_tokens_seen = load

    def run_phase(sorted_index: np.ndarray, sorted_origins: np.ndarray) -> None:
        """Push the given tokens (pre-grouped by origin) from their holders.

        ``sorted_index`` / ``sorted_origins`` must be ordered so that equal
        origins are contiguous (callers already have that grouping from
        their own bookkeeping, so no re-sort happens here).  Each origin
        node pushes one of its planned tokens per round, so the phase costs
        rounds equal to the largest per-node plan — exactly the loop
        engine's schedule.  A failed origin keeps its token that round (the
        Section-5 merge semantics as a no-op holder update).
        """
        nonlocal failed_pushes
        if sorted_index.size == 0:
            return
        # Rank of each pushed token within its origin's queue: positions
        # since the start of the origin's (contiguous) group.
        new_group = np.ones(sorted_origins.size, dtype=bool)
        new_group[1:] = sorted_origins[1:] != sorted_origins[:-1]
        boundaries = np.flatnonzero(new_group)
        group_sizes = np.diff(np.append(boundaries, sorted_origins.size))
        slots = np.arange(sorted_origins.size) - np.repeat(boundaries, group_sizes)
        rounds_needed = int(slots.max()) + 1
        for round_slot in range(rounds_needed):
            record = stats.begin_round(label="token-distribution")
            failed = failures.failure_mask(stats.rounds - 1, n, source)
            stats.record_failures(int(failed.sum()), record)
            in_slot = slots == round_slot
            index = sorted_index[in_slot]
            origin = sorted_origins[in_slot]
            ok = ~failed[origin]
            failed_pushes += int(index.size - int(ok.sum()))
            pushes = int(ok.sum())
            if pushes == 0:
                continue
            targets = draw_targets_excluding(source, n, origin[ok])
            token_holder[index[ok]] = targets
            stats.record_messages(pushes, message_bits, record)

    # ---- stage 1: split until every token has weight 1 ------------------------
    while True:
        if phases >= max_phases:
            raise ConvergenceError("token splitting did not finish within its budget")
        heavy = np.flatnonzero(token_weight > 1)
        if heavy.size == 0:
            break
        observe_load()
        # Halve the kept tokens in place and append the pushed halves.
        token_weight[heavy] >>= 1
        first_new = token_item.size
        token_item = np.concatenate([token_item, token_item[heavy]])
        token_weight = np.concatenate([token_weight, token_weight[heavy]])
        token_holder = np.concatenate([token_holder, token_holder[heavy]])
        push_index = np.arange(first_new, token_item.size, dtype=index_dtype)
        order = np.argsort(token_holder[push_index], kind="stable")
        run_phase(push_index[order], token_holder[push_index][order])
        phases += 1

    # ---- stage 2: spread until every node holds at most one token -------------
    # A node that holds a token at the start of a spreading phase keeps its
    # earliest-arrived one, and keeps it in every later phase too (arrivals
    # append behind it) — so keepers are settled permanently and only the
    # shrinking set of *floating* tokens needs per-phase grouping.
    claimed = np.zeros(n, dtype=bool)
    floating = np.argsort(token_holder, kind="stable")
    while True:
        if phases >= max_phases:
            raise ConvergenceError("token spreading did not finish within its budget")
        # Claim pass: among the floats on each unclaimed node, the first
        # (in stable arrival order) settles as that node's keeper.
        float_holders = token_holder[floating]
        first_of_group = np.ones(floating.size, dtype=bool)
        first_of_group[1:] = float_holders[1:] != float_holders[:-1]
        settles = first_of_group & ~claimed[float_holders]
        claimed[float_holders[settles]] = True
        floating = floating[~settles]
        if floating.size == 0:
            break
        # Per-node load from the sorted float groups (O(floats), no full
        # bincount): floats on the node plus its settled keeper, if any.
        float_holders = token_holder[floating]
        first_of_group = np.ones(floating.size, dtype=bool)
        first_of_group[1:] = float_holders[1:] != float_holders[:-1]
        boundaries = np.flatnonzero(first_of_group)
        sizes = np.diff(np.append(boundaries, floating.size))
        load = int((sizes + claimed[float_holders[boundaries]]).max())
        if load > max_tokens_seen:
            max_tokens_seen = load
        run_phase(floating, float_holders)
        phases += 1
        # Re-group the floats by their (new) holders for the next claim pass.
        float_holders = token_holder[floating]
        floating = floating[np.argsort(float_holders, kind="stable")]

    if np.any(token_weight != 1):  # pragma: no cover - guarded by stage 1
        raise ConvergenceError("token distribution left a token of weight > 1")
    owners = np.full(n, -1, dtype=int)
    owners[token_holder] = token_item

    # Post-condition: every item has exactly `multiplicity` copies.
    counts = np.bincount(owners[owners >= 0], minlength=item_nodes.size)
    if not np.all(counts == multiplicity):
        raise ConvergenceError("token distribution lost or duplicated tokens")

    return TokenDistributionResult(
        owners=owners,
        multiplicity=multiplicity,
        phases=phases,
        rounds=stats.rounds - rounds_before,
        metrics=stats,
        max_tokens_per_node=max_tokens_seen,
        failed_pushes=failed_pushes,
        engine="vectorized",
    )
