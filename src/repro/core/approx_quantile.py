"""Theorem 1.2 / 2.1 — the ε-approximate φ-quantile algorithm.

The algorithm composes the two tournament phases:

* Phase I (Algorithm 1, :mod:`repro.core.two_tournament`) rewrites the value
  of every node so that the quantiles around ``phi`` in the original data
  become the quantiles around the median of the new data.
* Phase II (Algorithm 2, :mod:`repro.core.three_tournament`) approximates
  the median of the new data to within ``eps / 4``, which by Lemma 2.11 is a
  value whose original rank lies in ``[(phi - eps) n, (phi + eps) n]``.

Total round complexity: ``O(log log n + log 1/eps)``, with every message a
single value (O(log n) bits).
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.core.results import ApproxQuantileResult
from repro.core.three_tournament import DEFAULT_FINAL_SAMPLES, run_three_tournament
from repro.core.two_tournament import run_two_tournament
from repro.exceptions import ConfigurationError
from repro.gossip.failures import FailureModel
from repro.gossip.metrics import NetworkMetrics
from repro.gossip.network import GossipNetwork
from repro.utils.rand import RandomSource


def min_supported_eps(n: int) -> float:
    """Smallest ``eps`` for which Theorem 2.1's analysis applies, ~ n^{-0.096}.

    The theorem requires ``eps = Omega(1 / n^{0.096})`` (Lemma 2.16 carries
    an additional poly-log factor).  This helper returns the plain power-law
    term as *guidance*; the implementation does not enforce it because the
    exact-quantile driver deliberately calls the approximate algorithm in
    the regime where it composes with value duplication (Section 3).
    """
    if n < 2:
        raise ConfigurationError("n must be at least 2")
    return float(n) ** (-0.096)


def approximate_quantile(
    values: Union[np.ndarray, list, tuple, None] = None,
    phi: float = 0.5,
    eps: float = 0.1,
    rng: Union[None, int, RandomSource] = None,
    failure_model: Union[None, float, FailureModel] = None,
    final_samples: int = DEFAULT_FINAL_SAMPLES,
    track_bands: bool = False,
    network: Optional[GossipNetwork] = None,
    metrics: Optional[NetworkMetrics] = None,
    topology=None,
    peer_sampling: str = "uniform",
) -> ApproxQuantileResult:
    """Compute an ε-approximate φ-quantile with uniform gossip.

    Parameters
    ----------
    values:
        One value per node.  Alternatively pass an existing ``network``.
    phi:
        Target quantile in ``[0, 1]``.
    eps:
        Approximation parameter in ``(0, 1/2)``: the output's rank is within
        ``[(phi - eps) n, (phi + eps) n]`` w.h.p. (for ``eps`` above roughly
        ``n^{-0.096}``; see :func:`min_supported_eps`).
    rng:
        Seed or :class:`RandomSource`.
    failure_model:
        Optional failure model.  The plain algorithm degrades gracefully
        (failed pulls keep the previous value); the variant with the
        Section-5 guarantees is :func:`repro.core.robust.robust_approximate_quantile`.
    final_samples:
        Size ``K`` of the final vote of Algorithm 2 (odd, O(1)).
    track_bands:
        Record per-iteration band occupancies (slower; used by experiments).
    network / metrics:
        Advanced: run on an existing network (its value array is consumed)
        and/or accumulate rounds into an existing metrics object.
    topology / peer_sampling:
        Optional gossip topology (see :mod:`repro.topology`); pulls are
        then drawn from graph neighbors instead of uniformly.  The paper's
        guarantees assume the complete graph — on sparse topologies the
        achieved rank error degrades with the spectral gap, which is
        exactly what ``experiments/topology_sweep.py`` measures.  Only
        valid when the network is constructed here (pass a configured
        ``network`` otherwise).

    Returns
    -------
    ApproxQuantileResult
        Per-node outputs, the representative estimate, and round accounting.
    """
    if not 0.0 <= phi <= 1.0:
        raise ConfigurationError(f"phi must be in [0, 1], got {phi}")
    if not 0.0 < eps < 0.5:
        raise ConfigurationError(f"eps must be in (0, 0.5), got {eps}")

    if network is None:
        if values is None:
            raise ConfigurationError("either values or network must be given")
        network = GossipNetwork(
            values,
            rng=rng,
            failure_model=failure_model,
            metrics=metrics,
            keep_history=False,
            topology=topology,
            peer_sampling=peer_sampling,
        )
    elif values is not None:
        raise ConfigurationError("pass either values or network, not both")
    elif topology is not None or peer_sampling != "uniform":
        raise ConfigurationError(
            "pass topology/peer_sampling to the GossipNetwork constructor "
            "when supplying an existing network"
        )

    rounds_before = network.metrics.rounds

    phase1 = run_two_tournament(network, phi=phi, eps=eps, track_band=track_bands)
    phase2 = run_three_tournament(
        network,
        eps=eps / 4.0,
        final_samples=final_samples,
        track_band=track_bands,
    )

    estimates = phase2.final_values
    finite = estimates[np.isfinite(estimates)]
    estimate = float(np.median(finite)) if finite.size else float("nan")
    rounds = network.metrics.rounds - rounds_before

    return ApproxQuantileResult(
        phi=phi,
        eps=eps,
        n=network.n,
        estimates=estimates,
        estimate=estimate,
        rounds=rounds,
        metrics=network.metrics,
        phase1=phase1,
        phase2=phase2,
    )
