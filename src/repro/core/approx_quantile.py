"""Theorem 1.2 / 2.1 — the ε-approximate φ-quantile algorithm.

The algorithm composes the two tournament phases:

* Phase I (Algorithm 1, :mod:`repro.core.two_tournament`) rewrites the value
  of every node so that the quantiles around ``phi`` in the original data
  become the quantiles around the median of the new data.
* Phase II (Algorithm 2, :mod:`repro.core.three_tournament`) approximates
  the median of the new data to within ``eps / 4``, which by Lemma 2.11 is a
  value whose original rank lies in ``[(phi - eps) n, (phi + eps) n]``.

Total round complexity: ``O(log log n + log 1/eps)``, with every message a
single value (O(log n) bits).

Multi-lane runs: ``phi`` (and ``eps``) may be per-lane sequences on an
``(n, L)`` value matrix — every lane computes its own quantile on one
shared partner stream, each message carrying the ``L`` working values.
This is how the exact-quantile driver executes the paper's Step-3 sandwich:
both ε/2 approximations fused into a single two-lane run whose round count
is max-of-lanes by construction.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.core.results import ApproxQuantileResult
from repro.core.three_tournament import DEFAULT_FINAL_SAMPLES, run_three_tournament
from repro.core.two_tournament import per_lane, run_two_tournament
from repro.exceptions import ConfigurationError
from repro.gossip.failures import FailureModel
from repro.gossip.metrics import NetworkMetrics
from repro.gossip.network import GossipNetwork
from repro.obs.tracer import get_tracer
from repro.utils.rand import RandomSource


def min_supported_eps(n: int) -> float:
    """Smallest ``eps`` for which Theorem 2.1's analysis applies, ~ n^{-0.096}.

    The theorem requires ``eps = Omega(1 / n^{0.096})`` (Lemma 2.16 carries
    an additional poly-log factor).  This helper returns the plain power-law
    term as *guidance*; the implementation does not enforce it because the
    exact-quantile driver deliberately calls the approximate algorithm in
    the regime where it composes with value duplication (Section 3).
    """
    if n < 2:
        raise ConfigurationError("n must be at least 2")
    return float(n) ** (-0.096)


def approximate_quantile(
    values: Union[np.ndarray, list, tuple, None] = None,
    phi: Union[float, Sequence[float]] = 0.5,
    eps: Union[float, Sequence[float]] = 0.1,
    rng: Union[None, int, RandomSource] = None,
    failure_model: Union[None, float, FailureModel] = None,
    final_samples: int = DEFAULT_FINAL_SAMPLES,
    track_bands: bool = False,
    network: Optional[GossipNetwork] = None,
    metrics: Optional[NetworkMetrics] = None,
    topology=None,
    peer_sampling: str = "uniform",
    dtype=None,
    keep_history: bool = False,
) -> ApproxQuantileResult:
    """Compute an ε-approximate φ-quantile with uniform gossip.

    Parameters
    ----------
    values:
        One value per node, or an ``(n, L)`` matrix for a fused multi-lane
        run.  Alternatively pass an existing ``network``.
    phi:
        Target quantile in ``[0, 1]`` — one per lane for multi-lane runs.
    eps:
        Approximation parameter in ``(0, 1/2)`` (scalar or per lane): the
        output's rank is within ``[(phi - eps) n, (phi + eps) n]`` w.h.p.
        (for ``eps`` above roughly ``n^{-0.096}``; see
        :func:`min_supported_eps`).
    rng:
        Seed or :class:`RandomSource`.
    failure_model:
        Optional failure model.  The plain algorithm degrades gracefully
        (failed pulls keep the previous value); the variant with the
        Section-5 guarantees is :func:`repro.core.robust.robust_approximate_quantile`.
    final_samples:
        Size ``K`` of the final vote of Algorithm 2 (odd, O(1)).
    track_bands:
        Record per-iteration band occupancies (slower; single-lane runs
        only, used by experiments).
    network / metrics:
        Advanced: run on an existing network (its value array is consumed)
        and/or accumulate rounds into an existing metrics object.
    topology / peer_sampling:
        Optional gossip topology (see :mod:`repro.topology`); pulls are
        then drawn from graph neighbors instead of uniformly.  The paper's
        guarantees assume the complete graph — on sparse topologies the
        achieved rank error degrades with the spectral gap, which is
        exactly what ``experiments/topology_sweep.py`` measures.  Only
        valid when the network is constructed here (pass a configured
        ``network`` otherwise).
    dtype:
        Value dtype for the constructed network (float64 default, float32
        opt-in); ignored when an existing ``network`` is passed.
    keep_history:
        Keep per-round records on the constructed network's metrics object
        (previously hardcoded off, which silently discarded round
        attribution whenever no explicit ``metrics`` was supplied).  Only
        valid when the network is constructed here.

    Returns
    -------
    ApproxQuantileResult
        Per-node outputs, the representative estimate, and round
        accounting.  Multi-lane runs return ``(n, L)`` estimates and one
        representative estimate per lane.
    """
    if network is None:
        if values is None:
            raise ConfigurationError("either values or network must be given")
        network = GossipNetwork(
            values,
            rng=rng,
            failure_model=failure_model,
            metrics=metrics,
            keep_history=keep_history,
            topology=topology,
            peer_sampling=peer_sampling,
            dtype=dtype,
        )
    elif values is not None:
        raise ConfigurationError("pass either values or network, not both")
    elif keep_history:
        raise ConfigurationError(
            "keep_history applies to the constructed network; configure the "
            "supplied network (or its metrics object) instead"
        )
    elif topology is not None or peer_sampling != "uniform":
        raise ConfigurationError(
            "pass topology/peer_sampling to the GossipNetwork constructor "
            "when supplying an existing network"
        )
    elif dtype is not None:
        raise ConfigurationError(
            "pass dtype to the GossipNetwork constructor when supplying "
            "an existing network"
        )

    lanes = network.lanes
    phis = per_lane(phi, lanes, "phi")
    epss = per_lane(eps, lanes, "eps")
    for lane_phi in phis:
        if not 0.0 <= lane_phi <= 1.0:
            raise ConfigurationError(f"phi must be in [0, 1], got {lane_phi}")
    for lane_eps in epss:
        if not 0.0 < lane_eps < 0.5:
            raise ConfigurationError(f"eps must be in (0, 0.5), got {lane_eps}")

    rounds_before = network.metrics.rounds

    with get_tracer().span("approx_quantile", network.metrics) as span:
        span.annotate(n=network.n, lanes=lanes)
        phase1 = run_two_tournament(
            network, phi=phis, eps=epss, track_band=track_bands
        )
        phase2 = run_three_tournament(
            network,
            eps=[lane_eps / 4.0 for lane_eps in epss],
            final_samples=final_samples,
            track_band=track_bands,
        )

    estimates = phase2.final_values
    rounds = network.metrics.rounds - rounds_before

    return ApproxQuantileResult(
        phi=phi if np.isscalar(phi) else tuple(phis),
        eps=eps if np.isscalar(eps) else tuple(epss),
        n=network.n,
        estimates=estimates,
        rounds=rounds,
        metrics=network.metrics,
        phase1=phase1,
        phase2=phase2,
    )
