"""Algorithm 1 — 2-TOURNAMENT: shift the target quantile band to the median.

Every iteration each node pulls the values of two uniformly random nodes and
adopts the *minimum* of the two (when the heavy side lies above the band;
the symmetric case adopts the maximum).  This squares the fraction of nodes
holding above-band values each iteration.  In the final iteration the
tournament is only performed with probability ``delta`` so that the
above-band mass lands at ``T = 1/2 - eps`` instead of overshooting, which
places the entire band ``[phi - eps, phi + eps]`` onto the quantiles around
the median (Lemma 2.11).

The phase is *lane-wise*: on a multi-lane network (see
:class:`~repro.gossip.network.GossipNetwork`) each lane runs its own
``(phi, eps)`` schedule on the shared partner stream.  Lane schedules may
differ in length; a lane whose schedule is exhausted idles (keeps its
values) while the longer lanes finish, so the fused phase executes
``max``-of-lanes rounds — the paper's Step-3 accounting, by construction.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple, Union

import numpy as np

from repro.core.results import PhaseIterationStats, TournamentPhaseResult
from repro.core.schedules import TwoTournamentSchedule, two_tournament_schedule
from repro.exceptions import ConfigurationError
from repro.gossip.network import GossipNetwork
from repro.obs.tracer import get_tracer
from repro.utils.stats import empirical_quantile


def band_thresholds(
    initial_values: np.ndarray, phi: float, eps: float
) -> Tuple[float, float]:
    """Values bounding the target band ``[phi - eps, phi + eps]`` of the inputs."""
    lo_q = max(0.0, phi - eps)
    hi_q = min(1.0, phi + eps)
    lo_value = empirical_quantile(initial_values, lo_q)
    hi_value = empirical_quantile(initial_values, hi_q)
    return lo_value, hi_value


def measure_band(
    values: np.ndarray, lo_value: float, hi_value: float
) -> Tuple[float, float, float]:
    """Fractions of ``values`` below, inside, and above ``[lo_value, hi_value]``."""
    n = values.size
    low = float(np.count_nonzero(values < lo_value)) / n
    high = float(np.count_nonzero(values > hi_value)) / n
    return low, 1.0 - low - high, high


def per_lane(value, lanes: int, what: str) -> List:
    """Normalize a scalar-or-sequence phase parameter to one entry per lane."""
    if np.isscalar(value):
        return [value] * lanes
    values = list(value)
    if len(values) != lanes:
        raise ConfigurationError(
            f"need one {what} per lane ({lanes}), got {len(values)}"
        )
    return values


def _lane_view(array: np.ndarray, single: bool) -> np.ndarray:
    """View a value array as lanes-last.

    ``single`` says whether the owning network stores 1-d (lane-less)
    values; its arrays gain a trailing lane axis, while the arrays of a
    true multi-lane network (including ``(n, 1)``) pass through untouched.
    """
    return array[..., None] if single else array


def normalize_schedules(schedule, lanes: int, schedule_class, build) -> List:
    """One schedule per lane from a None / single / sequence argument.

    Shared by both tournament phases: ``None`` builds per-lane schedules
    via ``build(lane)``, a bare ``schedule_class`` instance is accepted for
    single-lane networks only, and a sequence must provide exactly one
    schedule per lane.
    """
    if schedule is None:
        return [build(lane) for lane in range(lanes)]
    if isinstance(schedule, schedule_class):
        if lanes != 1:
            raise ConfigurationError(
                "a multi-lane phase needs one schedule per lane"
            )
        return [schedule]
    schedules = list(schedule)
    if len(schedules) != lanes:
        raise ConfigurationError(
            f"need one schedule per lane ({lanes}), got {len(schedules)}"
        )
    return schedules


def run_two_tournament(
    network: GossipNetwork,
    phi: Union[float, Sequence[float]],
    eps: Union[float, Sequence[float]],
    schedule: Union[
        None, TwoTournamentSchedule, Sequence[TwoTournamentSchedule]
    ] = None,
    track_band: bool = True,
) -> TournamentPhaseResult:
    """Run Algorithm 1 on ``network`` (in place) and return phase statistics.

    The network's value array is overwritten with the post-phase values.
    Nodes whose pull failed in a round (only possible when the network has a
    failure model attached) keep their previous value for that iteration;
    the failure-aware variant with the Section-5 guarantees lives in
    :mod:`repro.core.robust`.

    On a multi-lane network ``phi`` / ``eps`` (or ``schedule``) may be
    per-lane sequences; band tracking is a single-lane instrument and must
    be disabled for fused runs.
    """
    lanes = network.lanes
    phis = per_lane(phi, lanes, "phi")
    epss = per_lane(eps, lanes, "eps")
    schedules = normalize_schedules(
        schedule,
        lanes,
        TwoTournamentSchedule,
        lambda lane: two_tournament_schedule(phis[lane], epss[lane]),
    )

    if track_band:
        if lanes != 1:
            raise ConfigurationError(
                "track_band is a single-lane instrument; run fused lanes "
                "with track_band=False"
            )
        initial = network.snapshot()
        lo_value, hi_value = band_thresholds(initial, phis[0], epss[0])

    stats: List[PhaseIterationStats] = []
    can_fail = network.can_fail
    single = network.values.ndim == 1
    num_iterations = max((s.num_iterations for s in schedules), default=0)
    # The span reads wall time and metric counters only; the random stream
    # is identical with or without a tracer installed.
    with get_tracer().span("two_tournament", network.metrics) as phase_span:
        phase_span.annotate(lanes=lanes, iterations=num_iterations)
        for step in range(num_iterations):
            # The fallback value for failed pulls is the pre-iteration
            # value; on the failure-free path every pull succeeds and the
            # snapshot copy is skipped entirely.
            current = network.snapshot() if can_fail else None
            batch = network.pull(2, label="2-tournament")
            vals = _lane_view(batch.values, single)         # (n, 2, L)
            live = _lane_view(network.values, single)       # (n, L)
            new_values = np.empty_like(live)
            for lane, lane_schedule in enumerate(schedules):
                if step >= lane_schedule.num_iterations:
                    new_values[:, lane] = live[:, lane]      # lane idles
                    continue
                iteration = lane_schedule.iterations[step]
                first = vals[:, 0, lane]
                second = vals[:, 1, lane]
                if can_fail:
                    fallback = _lane_view(current, single)[:, lane]
                    first = np.where(batch.ok[:, 0], first, fallback)
                    second = np.where(batch.ok[:, 1], second, fallback)
                if lane_schedule.direction == "min":
                    winners = np.minimum(first, second)
                else:
                    winners = np.maximum(first, second)

                if iteration.delta >= 1.0:
                    new_values[:, lane] = winners
                else:
                    coin = network.rng.random(network.n)
                    do_tournament = coin < iteration.delta
                    # With probability 1 - delta the node copies a single
                    # random value instead (Algorithm 1, lines 9-11); we
                    # reuse the first pull for that copy, exactly one
                    # sampled value.
                    new_values[:, lane] = np.where(
                        do_tournament, winners, first
                    )

            updated = new_values[:, 0] if single else new_values
            network.set_values(updated, copy=False)
            if track_band:
                low, band, high = measure_band(updated, lo_value, hi_value)
                iteration = schedules[0].iterations[step]
                stats.append(
                    PhaseIterationStats(
                        iteration=iteration.index,
                        predicted=iteration.h_after
                        if iteration.delta >= 1.0
                        else schedules[0].threshold,
                        high_fraction=high,
                        low_fraction=low,
                        band_fraction=band,
                    )
                )

    return TournamentPhaseResult(
        final_values=network.snapshot(),
        iterations=num_iterations,
        rounds=2 * num_iterations,
        stats=stats,
    )
