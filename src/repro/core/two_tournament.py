"""Algorithm 1 — 2-TOURNAMENT: shift the target quantile band to the median.

Every iteration each node pulls the values of two uniformly random nodes and
adopts the *minimum* of the two (when the heavy side lies above the band;
the symmetric case adopts the maximum).  This squares the fraction of nodes
holding above-band values each iteration.  In the final iteration the
tournament is only performed with probability ``delta`` so that the
above-band mass lands at ``T = 1/2 - eps`` instead of overshooting, which
places the entire band ``[phi - eps, phi + eps]`` onto the quantiles around
the median (Lemma 2.11).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.results import PhaseIterationStats, TournamentPhaseResult
from repro.core.schedules import TwoTournamentSchedule, two_tournament_schedule
from repro.gossip.network import GossipNetwork
from repro.utils.stats import empirical_quantile


def band_thresholds(
    initial_values: np.ndarray, phi: float, eps: float
) -> Tuple[float, float]:
    """Values bounding the target band ``[phi - eps, phi + eps]`` of the inputs."""
    lo_q = max(0.0, phi - eps)
    hi_q = min(1.0, phi + eps)
    lo_value = empirical_quantile(initial_values, lo_q)
    hi_value = empirical_quantile(initial_values, hi_q)
    return lo_value, hi_value


def measure_band(
    values: np.ndarray, lo_value: float, hi_value: float
) -> Tuple[float, float, float]:
    """Fractions of ``values`` below, inside, and above ``[lo_value, hi_value]``."""
    n = values.size
    low = float(np.count_nonzero(values < lo_value)) / n
    high = float(np.count_nonzero(values > hi_value)) / n
    return low, 1.0 - low - high, high


def run_two_tournament(
    network: GossipNetwork,
    phi: float,
    eps: float,
    schedule: Optional[TwoTournamentSchedule] = None,
    track_band: bool = True,
) -> TournamentPhaseResult:
    """Run Algorithm 1 on ``network`` (in place) and return phase statistics.

    The network's value array is overwritten with the post-phase values.
    Nodes whose pull failed in a round (only possible when the network has a
    failure model attached) keep their previous value for that iteration;
    the failure-aware variant with the Section-5 guarantees lives in
    :mod:`repro.core.robust`.
    """
    if schedule is None:
        schedule = two_tournament_schedule(phi, eps)

    initial = network.snapshot()
    if track_band:
        lo_value, hi_value = band_thresholds(initial, phi, eps)

    stats = []
    take_min = schedule.direction == "min"
    for iteration in schedule.iterations:
        current = network.snapshot()
        batch = network.pull(2, label="2-tournament")
        first = np.where(batch.ok[:, 0], batch.values[:, 0], current)
        second = np.where(batch.ok[:, 1], batch.values[:, 1], current)
        if take_min:
            winners = np.minimum(first, second)
        else:
            winners = np.maximum(first, second)

        if iteration.delta >= 1.0:
            new_values = winners
        else:
            coin = network.rng.random(network.n)
            do_tournament = coin < iteration.delta
            # With probability 1 - delta the node copies a single random
            # value instead (Algorithm 1, lines 9-11); we reuse the first
            # pull for that copy, exactly one sampled value.
            new_values = np.where(do_tournament, winners, first)

        network.set_values(new_values)
        if track_band:
            low, band, high = measure_band(new_values, lo_value, hi_value)
            heavy = high if take_min else low
            stats.append(
                PhaseIterationStats(
                    iteration=iteration.index,
                    predicted=iteration.h_after
                    if iteration.delta >= 1.0
                    else schedule.threshold,
                    high_fraction=high,
                    low_fraction=low,
                    band_fraction=band,
                )
            )

    return TournamentPhaseResult(
        final_values=network.snapshot(),
        iterations=schedule.num_iterations,
        rounds=schedule.rounds,
        stats=stats,
    )
