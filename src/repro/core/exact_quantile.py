"""Theorem 1.1 / Algorithm 3 — exact φ-quantile computation in O(log n) rounds.

The algorithm bootstraps the ε-approximate quantile algorithm: every
iteration it sandwiches the target rank between two approximate quantiles,
discards every value outside the sandwich, and duplicates the surviving
values so that the next iteration operates at a finer rank resolution.
Once the duplicated copies of the answer fill the entire ε-window below the
target rank, a final approximate query that aims *strictly below* the
target rank is guaranteed to return the answer.

Per iteration the steps (and the substrates they run on) are:

1. two ε/2-approximate quantile computations around the current target rank
   (Theorem 2.1 — :mod:`repro.core.approx_quantile`);
2. spreading the global ``min``/``max`` of the per-node approximations
   (rumor spreading — :mod:`repro.aggregates.extrema`);
3. counting the rank ``R`` of ``min`` (push-sum — :mod:`repro.aggregates.counting`);
4. discarding values outside ``[min, max]`` and duplicating the survivors
   ``m_i`` times each (token split-and-distribute — :mod:`repro.core.tokens`);
5. updating the target rank to ``m_i (k - R + 1)``.

Implementation notes (documented deviations, see DESIGN.md §4):

* **Item space.**  The paper assumes all values are initially distinct and
  treats duplicated copies as items ordered just below their original.  We
  make that explicit: the driver relabels values to their ranks ("keys")
  and runs all gossip dynamics on keys, keeping a key→value table so the
  final key can be translated back.  The Step-6 restriction is applied to
  *values* exactly as in the paper: every copy of a surviving value
  survives.
* **Per-iteration ε.**  The paper sets ε = n^{-0.05}/2, which only bites for
  astronomically large n; at simulation scale any constant ε works and only
  changes the (logarithmic) number of iterations, so the driver defaults to
  ε = 1/16 and exposes the knob.
* **Termination.**  The paper runs a fixed 25 iterations, enough for the
  cumulative multiplicity to reach n.  The driver instead stops as soon as
  the cumulative multiplicity covers the final query window (2 ε n), which
  is the property the correctness argument actually uses, and also stops
  early when a single candidate value remains.
* **Retry safeguard.**  The paper's analysis is "with high probability"; at
  simulation scale an approximation can occasionally miss the target rank.
  The sandwich test ``min ≤ answer-rank ≤ max`` uses only quantities every
  node knows (k, min, max and gossip counting), so the driver re-runs an
  iteration whose sandwich missed and records the number of retries.
* **Fidelity levels.**  ``fidelity="simulated"`` drives steps 2-4 through the
  actual gossip substrates; ``fidelity="idealized"`` computes their outcomes
  directly and charges their proven O(log n) round cost, which lets the
  benchmark harness sweep larger n.  The approximate-quantile computations
  (the paper's contribution) are always simulated.
* **Fused sandwich pair.**  The paper's Step 3 computes the lower and upper
  ε/2-approximate quantiles in the same O(log n)-round window — one
  O(log n)-bit message carries both working values.  The driver *executes*
  the pair that way (it used to run them sequentially and merely charge
  max-of-pair rounds): both approximations run as the two lanes of one
  multi-lane :class:`~repro.gossip.network.GossipNetwork`, sharing every
  partner draw, so rounds = max(pair) by construction and each round's
  message traffic lands in its own round record.  Step 4's min/max
  spreadings are fused the same way
  (:class:`~repro.aggregates.extrema.ExtremaPairProtocol`: one rumor
  stream, messages carry both working values), and the idealized fidelity
  charges the one shared window.  Seeded simulated runs therefore consume
  a different random stream than the pre-fusion sequential pairs (same
  documented-deviation class as the engine-stream changes below) and
  strictly fewer rounds; the returned quantile is unchanged.
* **Fast simulated path.**  Every simulated substrate is vectorized: the
  tournaments run on the batched :class:`~repro.gossip.network.GossipNetwork`
  pull surface, extrema/counting on the vectorized gossip engine, and token
  duplication on the vectorized engine of :mod:`repro.core.tokens` (selected
  through the global engine default, so ``--engine loop`` restores the
  scalar reference path).  The vectorized token engine draws its push
  targets in batches, a different random stream from the loop engine, so
  seeded simulated runs differ from (pre-PR-3) loop-engine runs in their
  token placements and round counts while all invariants and the returned
  quantile are unchanged.  ``dtype="float32"`` runs the gossip key arrays
  in single precision — keys are ranks ≤ n, exactly representable in
  float32 below 2²⁴, so the computed quantile is identical while the hot
  ``(n, k, L)`` pull gathers move half the memory.  Simulated exact
  queries complete in seconds at n = 10⁵ and run single-threaded at
  n = 10⁶ (see ``benchmarks/bench_exact_quantile.py`` and the
  ``exact-scale`` experiment preset).
"""

from __future__ import annotations

import math
from typing import Optional, Union

import numpy as np

from repro.aggregates.counting import count_leq
from repro.aggregates.extrema import spread_extrema, spread_extrema_pair
from repro.core.approx_quantile import approximate_quantile
from repro.core.results import ExactIterationStats, ExactQuantileResult
from repro.core.tokens import distribute_tokens
from repro.exceptions import ConfigurationError, ConvergenceError
from repro.gossip.failures import FailureModel, resolve_failure_model
from repro.gossip.metrics import NetworkMetrics
from repro.gossip.network import GossipNetwork, resolve_value_dtype
from repro.obs.tracer import get_tracer
from repro.utils.mathutils import ceil_pow2
from repro.utils.rand import RandomSource
from repro.utils.stats import target_rank

#: Default per-iteration approximation parameter (see module docstring).
DEFAULT_ITERATION_EPS = 0.0625


def _distinct_sorted(values: np.ndarray) -> int:
    """Number of distinct entries of an ascending-sorted array.

    ``key_values`` is sorted by construction, so counting the strict steps
    replaces the per-iteration ``np.unique`` re-sort of up to n entries.
    """
    if values.size == 0:
        return 0
    return 1 + int(np.count_nonzero(np.diff(values)))


def _charged_extrema_rounds(n: int) -> int:
    """Round cost charged for one min/max spreading in idealized fidelity."""
    return int(math.ceil(2 * math.log2(n))) + 8


def _charged_counting_rounds(n: int) -> int:
    """Round cost charged for one push-sum counting in idealized fidelity."""
    return int(math.ceil(4 * math.log2(n))) + 12


def _charged_token_rounds(n: int, multiplicity: int) -> int:
    """Round cost charged for one token distribution in idealized fidelity."""
    return (
        int(math.ceil(math.log2(max(multiplicity, 2))))
        + int(math.ceil(math.log2(n)))
        + 8
    )


def exact_quantile(
    values: Union[np.ndarray, list, tuple],
    phi: float,
    rng: Union[None, int, RandomSource] = None,
    fidelity: str = "idealized",
    eps_iteration: float = DEFAULT_ITERATION_EPS,
    failure_model: Union[None, float, FailureModel] = None,
    max_iterations: int = 80,
    max_retries: int = 16,
    final_samples: int = 15,
    dtype=None,
    topology=None,
    peer_sampling: str = "uniform",
) -> ExactQuantileResult:
    """Compute the exact φ-quantile (the ``ceil(phi n)``-th smallest value).

    Parameters
    ----------
    values:
        One value per node.
    phi:
        Target quantile in ``[0, 1]``.
    fidelity:
        ``"idealized"`` (default) or ``"simulated"`` — see the module
        docstring.
    eps_iteration:
        Approximation parameter used by the per-iteration sandwich.
    failure_model:
        Optional Section-5 failure model (applied to every simulated
        substrate).
    max_iterations / max_retries:
        Safety budgets; exceeding them raises :class:`ConvergenceError`.
    dtype:
        Dtype of the gossip key arrays: float64 (default) or float32.
        Keys are ranks ≤ n, exactly representable in float32 for
        n < 2²⁴, so the answer is unchanged; the key→value table and the
        returned quantile stay full precision.
    topology / peer_sampling:
        Optional gossip topology for the *approximate* stages (the
        sandwich tournaments of Step 3 and the final query), which
        dominate the round count.  The auxiliary aggregates — extrema
        spreading, push-sum counting, token duplication — still run on
        the complete graph (idealized fidelity charges their proven
        complete-graph round costs; restricting them is an open item on
        the roadmap).  ``None`` (default) is the paper's complete-graph
        model.

    Returns
    -------
    ExactQuantileResult
        The exact quantile value, total gossip rounds, and per-iteration
        bookkeeping.
    """
    tracer = get_tracer()
    if not tracer.active:
        return _exact_quantile_impl(
            values, phi, rng=rng, fidelity=fidelity,
            eps_iteration=eps_iteration, failure_model=failure_model,
            max_iterations=max_iterations, max_retries=max_retries,
            final_samples=final_samples, dtype=dtype,
            topology=topology, peer_sampling=peer_sampling,
        )
    # Bind the root span to the driver's (fresh) metrics object so the
    # span's counter deltas are the whole run's totals; the step spans
    # inside the impl nest under this one.
    metrics = NetworkMetrics(keep_history=False)
    with tracer.span("exact_quantile", metrics) as root:
        root.annotate(phi=phi, fidelity=fidelity)
        result = _exact_quantile_impl(
            values, phi, rng=rng, fidelity=fidelity,
            eps_iteration=eps_iteration, failure_model=failure_model,
            max_iterations=max_iterations, max_retries=max_retries,
            final_samples=final_samples, dtype=dtype,
            topology=topology, peer_sampling=peer_sampling,
            _metrics=metrics,
        )
        root.annotate(
            n=result.n,
            iterations=result.iterations,
            retries=result.retries,
        )
    return result


def _exact_quantile_impl(
    values: Union[np.ndarray, list, tuple],
    phi: float,
    rng: Union[None, int, RandomSource] = None,
    fidelity: str = "idealized",
    eps_iteration: float = DEFAULT_ITERATION_EPS,
    failure_model: Union[None, float, FailureModel] = None,
    max_iterations: int = 80,
    max_retries: int = 16,
    final_samples: int = 15,
    dtype=None,
    topology=None,
    peer_sampling: str = "uniform",
    _metrics: Optional[NetworkMetrics] = None,
) -> ExactQuantileResult:
    """The driver body behind :func:`exact_quantile` (same contract)."""
    if fidelity not in ("idealized", "simulated"):
        raise ConfigurationError("fidelity must be 'idealized' or 'simulated'")
    if not 0.0 <= phi <= 1.0:
        raise ConfigurationError(f"phi must be in [0, 1], got {phi}")
    if not 0.0 < eps_iteration < 0.5:
        raise ConfigurationError("eps_iteration must be in (0, 0.5)")
    key_dtype = resolve_value_dtype(dtype)

    array = np.asarray(values, dtype=float)
    if array.ndim != 1 or array.size < 4:
        raise ConfigurationError("values must be a 1-d array with at least 4 entries")
    n = array.size
    if key_dtype == np.dtype(np.float32) and n >= 2 ** 24:
        raise ConfigurationError(
            "float32 keys are exact only below 2**24 ranks; use float64 "
            f"for n = {n}"
        )
    if topology is not None and topology.n != n:
        raise ConfigurationError(
            f"topology has {topology.n} nodes but values has {n}"
        )
    simulate = fidelity == "simulated"
    source = rng if isinstance(rng, RandomSource) else RandomSource(rng)
    failures = resolve_failure_model(failure_model)
    metrics = _metrics if _metrics is not None else NetworkMetrics(
        keep_history=False
    )
    tracer = get_tracer()

    # --- item (key) space setup -------------------------------------------------
    order = np.argsort(array, kind="stable")
    key_values = array[order].copy()          # key j (1-indexed) -> original value
    node_keys = np.empty(n, dtype=key_dtype)
    node_keys[order] = np.arange(1, n + 1, dtype=key_dtype)

    k = target_rank(n, phi)
    true_value = float(key_values[k - 1])     # used only for retry bookkeeping
    cumulative_multiplicity = 1
    eps = float(eps_iteration)
    history = []
    retries = 0
    iteration = 0

    def run_approx(target_phi: float, accuracy: float) -> np.ndarray:
        """One approximate quantile computation over the current keys."""
        working = GossipNetwork(
            node_keys,
            rng=source.child(),
            failure_model=failures,
            metrics=metrics,
            keep_history=False,
            dtype=key_dtype,
            topology=topology,
            peer_sampling=peer_sampling,
        )
        result = approximate_quantile(
            network=working,
            phi=target_phi,
            eps=accuracy,
            final_samples=final_samples,
        )
        return result.estimates

    def run_approx_pair(phi_a: float, phi_b: float, accuracy: float):
        """Step 3: both approximate quantiles, executed fused.

        The paper's Step 3 computes the lower and upper approximation in
        the same O(log n)-round window — one O(log n)-bit message carries
        both working values.  The pair runs as the two lanes of one
        multi-lane network: one partner matrix per round shared across
        lanes, per-lane tournament schedules with short lanes idling, so
        rounds = max(pair) by construction and every round's messages are
        recorded in that round (no out-of-round traffic merge).
        """
        working = GossipNetwork(
            np.stack([node_keys, node_keys], axis=1),
            rng=source.child(),
            failure_model=failures,
            metrics=metrics,
            keep_history=False,
            dtype=key_dtype,
            topology=topology,
            peer_sampling=peer_sampling,
        )
        result = approximate_quantile(
            network=working,
            phi=(phi_a, phi_b),
            eps=accuracy,
            final_samples=final_samples,
        )
        return result.estimates[:, 0], result.estimates[:, 1]

    # The final query aims eps*n/2 ranks below k with accuracy eps/3, so the
    # answer copies must cover (5/6) eps n ranks below k; stop once the
    # cumulative multiplicity comfortably exceeds that window.
    def duplication_target() -> int:
        return int(math.ceil(2.0 * eps * n)) + 1

    while iteration < max_iterations:
        live = key_values.size
        distinct = _distinct_sorted(key_values)
        if distinct <= 1 or cumulative_multiplicity >= duplication_target():
            break
        iteration += 1

        # Step 3: sandwich the target rank between two approximate quantiles.
        # A side whose target quantile falls off the end of the distribution
        # imposes no restriction (equivalently: that bound is the global
        # min / max, which every node can learn by extrema spreading).
        phi_lo = k / n - eps / 2.0
        phi_hi = k / n + eps / 2.0
        lo_bounded = phi_lo > 1.0 / n
        hi_bounded = phi_hi < 1.0
        with tracer.span("sandwich", metrics) as span:
            span.annotate(iteration=iteration, eps=eps,
                          fused=lo_bounded and hi_bounded)
            if lo_bounded and hi_bounded:
                est_lo, est_hi = run_approx_pair(
                    max(1.0 / n, phi_lo), min(1.0, phi_hi), eps / 2.0
                )
            else:
                est_lo = (
                    run_approx(max(1.0 / n, phi_lo), eps / 2.0)
                    if lo_bounded else None
                )
                est_hi = (
                    run_approx(min(1.0, phi_hi), eps / 2.0)
                    if hi_bounded else None
                )

        # Step 4: every node learns the min / max of the approximations.
        # Like the Step-3 sandwich, the two spreadings share one O(log n)
        # window (a message carries both working values): a two-sided
        # sandwich runs the fused pair protocol, a one-sided one a single
        # spreading, and the idealized fidelity charges one window.
        min_key: float = 1.0
        max_key: float = float("inf")
        with tracer.span("extrema", metrics) as span:
            span.annotate(iteration=iteration)
            if simulate:
                if lo_bounded and hi_bounded:
                    # repro-lint: disable=thread-kwargs -- documented deviation: the auxiliary extrema spreading runs on the complete graph (see the topology note in exact_quantile's docstring; restricting it is a roadmap item).
                    pair = spread_extrema_pair(
                        est_lo, est_hi, rng=source.child(),
                        failure_model=failures, metrics=metrics,
                    )
                    min_key = float(np.min(pair.lo_values))
                    max_key = float(np.max(pair.hi_values))
                elif lo_bounded:
                    # repro-lint: disable=thread-kwargs -- documented deviation: auxiliary extrema spreading stays on the complete graph (see exact_quantile docstring).
                    lo_spread = spread_extrema(
                        est_lo, mode="min", rng=source.child(),
                        failure_model=failures, metrics=metrics,
                    )
                    min_key = float(np.min(lo_spread.values))
                elif hi_bounded:
                    # repro-lint: disable=thread-kwargs -- documented deviation: auxiliary extrema spreading stays on the complete graph (see exact_quantile docstring).
                    hi_spread = spread_extrema(
                        est_hi, mode="max", rng=source.child(),
                        failure_model=failures, metrics=metrics,
                    )
                    max_key = float(np.max(hi_spread.values))
            else:
                if lo_bounded:
                    finite_lo = est_lo[np.isfinite(est_lo)]
                    min_key = (
                        float(np.min(finite_lo)) if finite_lo.size else 1.0
                    )
                if hi_bounded:
                    max_key = float(np.max(est_hi))
                metrics.charge_rounds(
                    _charged_extrema_rounds(n), label="extrema"
                )

        # Translate the sandwich keys to *values* and keep every copy of a
        # surviving value (Step 6 restricts by value, so copies of the same
        # value live or die together).
        if lo_bounded:
            min_rank = int(round(min_key)) if np.isfinite(min_key) else 1
            min_rank = min(max(min_rank, 1), live)
            min_value = float(key_values[min_rank - 1])
            below_min = int(np.searchsorted(key_values, min_value, side="left"))
        else:
            below_min = 0
        if hi_bounded and np.isfinite(max_key):
            max_rank = min(max(int(round(max_key)), 1), live)
            max_value = float(key_values[max_rank - 1])
            upto_max = int(np.searchsorted(key_values, max_value, side="right"))
        else:
            upto_max = live

        # Sandwich check: the answer key k must survive the restriction.
        if not (below_min < k <= upto_max):
            retries += 1
            if retries > max_retries:
                raise ConvergenceError(
                    "exact quantile: approximation sandwich missed the target "
                    f"rank {retries} times (n={n}, phi={phi})"
                )
            iteration -= 1
            continue

        # Step 5: rank of the minimum.  Keys are exactly {1..live}, so the
        # count is determined by the sandwich; in simulated fidelity we also
        # run the push-sum counting substrate to pay its rounds.
        with tracer.span("counting", metrics) as span:
            span.annotate(iteration=iteration)
            if simulate:
                # repro-lint: disable=thread-kwargs -- documented deviation: the push-sum counting substrate runs on the complete graph (see the topology note in exact_quantile's docstring).
                count_leq(node_keys, threshold=min_key, rng=source.child(),
                          failure_model=failures, metrics=metrics)
            else:
                metrics.charge_rounds(
                    _charged_counting_rounds(n), label="counting"
                )

        valued_count = upto_max - below_min
        if valued_count <= 0:
            raise ConvergenceError("exact quantile: empty value sandwich")

        # Step 7: duplicate the survivors m_i times each.
        target_tokens = max(2.0, (n ** 0.99) / 2.0)
        multiplicity = ceil_pow2(target_tokens / valued_count)
        while multiplicity > 1 and multiplicity * valued_count > n:
            multiplicity //= 2

        if multiplicity == 1 and valued_count == live:
            # No value was excluded and no duplication is possible: the
            # sandwich is wider than the remaining data.  Sharpen eps so the
            # next iteration makes progress (small-n safeguard; cannot occur
            # in the paper's asymptotic regime).
            eps = max(eps / 2.0, 2.0 / n)
            iteration -= 1
            continue

        new_live = multiplicity * valued_count
        new_key_values = np.repeat(key_values[below_min:upto_max], multiplicity)

        with tracer.span("tokens", metrics) as span:
            span.annotate(iteration=iteration, multiplicity=multiplicity,
                          survivors=valued_count)
            if simulate:
                # Keys are exactly {1..live}, each held by one node: an
                # inverse permutation maps the surviving key block to its
                # holders.
                finite = np.isfinite(node_keys)
                key_holder = np.empty(live, dtype=np.int64)
                key_holder[node_keys[finite].astype(np.int64) - 1] = (
                    np.flatnonzero(finite)
                )
                item_nodes = key_holder[below_min:upto_max]
                distribution = distribute_tokens(
                    item_nodes,
                    multiplicity=multiplicity,
                    n=n,
                    rng=source.child(),
                    failure_model=failures,
                    metrics=metrics,
                )
                # Item j owns the key block (j*multiplicity,
                # (j+1)*multiplicity]; hand block members to the owner nodes
                # in arbitrary order (here: ascending node order within each
                # item, matching the historical per-node loop bit for bit).
                node_keys = np.full(n, np.inf, dtype=key_dtype)
                owners = distribution.owners
                nodes = np.flatnonzero(owners >= 0)
                items_held = owners[nodes]
                order = np.argsort(items_held, kind="stable")
                node_keys[nodes[order]] = (
                    items_held[order].astype(np.int64) * multiplicity
                    + np.arange(nodes.size, dtype=np.int64) % multiplicity
                    + 1
                )
            else:
                node_keys = np.full(n, np.inf, dtype=key_dtype)
                node_keys[:new_live] = np.arange(
                    1, new_live + 1, dtype=key_dtype
                )
                metrics.charge_rounds(
                    _charged_token_rounds(n, multiplicity), label="tokens"
                )

        key_values = new_key_values
        k = multiplicity * (k - below_min)
        cumulative_multiplicity *= multiplicity
        history.append(
            ExactIterationStats(
                iteration=iteration,
                eps=eps,
                valued_nodes=valued_count,
                multiplicity=multiplicity,
                cumulative_multiplicity=cumulative_multiplicity,
                target_rank=k,
                distinct_candidates=_distinct_sorted(key_values),
                rounds_so_far=metrics.rounds,
            )
        )

    if (
        iteration >= max_iterations
        and _distinct_sorted(key_values) > 1
        and cumulative_multiplicity < duplication_target()
    ):
        raise ConvergenceError(
            f"exact quantile did not converge within {max_iterations} iterations"
        )

    # Final step (Algorithm 3, line 10): an approximate query aimed strictly
    # below k lands inside the answer's block of duplicated copies, then the
    # key translates back to a value.  Retry on the (rare, small-n) event
    # that the approximation lands outside the block; fall back to the
    # invariant value after `max_retries` attempts.
    answer = float("nan")
    live = key_values.size
    single_candidate = _distinct_sorted(key_values) == 1
    with tracer.span("final_query", metrics) as span:
        for _attempt in range(max_retries + 1):
            phi_final = max(1.0 / n, k / n - eps / 2.0)
            estimates = run_approx(phi_final, eps / 3.0)
            finite = estimates[np.isfinite(estimates)]
            if finite.size == 0:
                retries += 1
                continue
            key_estimate = int(round(float(np.median(finite))))
            key_estimate = min(max(key_estimate, 1), live)
            candidate = float(key_values[key_estimate - 1])
            if candidate == true_value or single_candidate:
                answer = candidate
                break
            retries += 1
        else:  # pragma: no cover - exercised only under extreme randomness
            answer = true_value
        span.annotate(attempts=_attempt + 1)

    if math.isnan(answer):
        answer = true_value

    return ExactQuantileResult(
        phi=phi,
        n=n,
        target_rank=target_rank(n, phi),
        value=answer,
        rounds=metrics.rounds,
        iterations=len(history),
        metrics=metrics,
        fidelity=fidelity,
        history=history,
        retries=retries,
    )
