"""Algorithm 2 — 3-TOURNAMENT: approximate the median.

Every iteration each node pulls the values of three uniformly random nodes
and adopts the *median* of the three.  The fraction of nodes holding values
outside the band ``[1/2 - eps, 1/2 + eps]`` follows ``l_{i+1} = 3 l_i^2 -
2 l_i^3``: it shrinks geometrically for the first O(log 1/eps) iterations
and doubly exponentially afterwards, reaching ``O(n^{-1/3})`` after
``O(log 1/eps + log log n)`` iterations.  A final vote — sample ``K = O(1)``
nodes and output the median of the sample — then lands inside the band with
high probability (Lemma 2.17).

Like Algorithm 1 the phase is lane-wise: on a multi-lane network each lane
runs its own ``eps`` schedule on the shared partner stream (short lanes
idle, rounds = max over lanes) and the final vote is one shared
``K``-round pull whose per-lane sample medians become the per-lane outputs.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple, Union

import numpy as np

from repro.core.results import PhaseIterationStats, TournamentPhaseResult
from repro.core.schedules import ThreeTournamentSchedule, three_tournament_schedule
from repro.core.two_tournament import _lane_view, normalize_schedules, per_lane
from repro.exceptions import ConfigurationError
from repro.gossip.network import GossipNetwork
from repro.obs.tracer import get_tracer
from repro.utils.stats import empirical_quantile

#: Default size of the final vote.  The paper only requires K = O(1); an odd
#: constant around 15 makes the failure probability (4e / n^{2/3})^{K/2}
#: negligible for every network size the library simulates.
DEFAULT_FINAL_SAMPLES = 15


def median_band_thresholds(values: np.ndarray, eps: float) -> Tuple[float, float]:
    """Values bounding the band ``[1/2 - eps, 1/2 + eps]`` of ``values``."""
    lo_value = empirical_quantile(values, max(0.0, 0.5 - eps))
    hi_value = empirical_quantile(values, min(1.0, 0.5 + eps))
    return lo_value, hi_value


def _median_of_three(
    first: np.ndarray, second: np.ndarray, third: np.ndarray
) -> np.ndarray:
    """Element-wise median of three arrays without sorting.

    ``max(min(a, b), min(max(a, b), c))`` selects exactly the element a
    3-sort would put in the middle — five element-wise passes instead of a
    per-row sort, and bit-identical output values.
    """
    lo = np.minimum(first, second)
    hi = np.maximum(first, second)
    return np.maximum(lo, np.minimum(hi, third))


def run_three_tournament(
    network: GossipNetwork,
    eps: Union[float, Sequence[float]],
    schedule: Union[
        None, ThreeTournamentSchedule, Sequence[ThreeTournamentSchedule]
    ] = None,
    final_samples: int = DEFAULT_FINAL_SAMPLES,
    track_band: bool = True,
) -> TournamentPhaseResult:
    """Run Algorithm 2 on ``network`` (in place).

    Returns a :class:`TournamentPhaseResult` whose ``final_values`` are the
    per-node *outputs* of the algorithm: the median of ``final_samples``
    uniformly sampled values after the tournament iterations (per lane on a
    multi-lane network).  The band statistics track the fraction of nodes
    outside the ``[1/2 - eps, 1/2 + eps]`` band of the phase's *input*
    values after every iteration (single-lane runs only).
    """
    if final_samples < 1 or final_samples % 2 == 0:
        raise ConfigurationError("final_samples must be a positive odd integer")
    lanes = network.lanes
    epss = per_lane(eps, lanes, "eps")
    schedules = normalize_schedules(
        schedule,
        lanes,
        ThreeTournamentSchedule,
        lambda lane: three_tournament_schedule(epss[lane], network.n),
    )

    if track_band:
        if lanes != 1:
            raise ConfigurationError(
                "track_band is a single-lane instrument; run fused lanes "
                "with track_band=False"
            )
        initial = network.snapshot()
        lo_value, hi_value = median_band_thresholds(initial, epss[0])

    stats: List[PhaseIterationStats] = []
    can_fail = network.can_fail
    single = network.values.ndim == 1
    num_iterations = max((s.num_iterations for s in schedules), default=0)
    # The span covers the tournament iterations *and* the final vote — the
    # algorithm's whole round budget.  Observation only: wall time and
    # counter snapshots, never the RNG.
    with get_tracer().span("three_tournament", network.metrics) as phase_span:
        phase_span.annotate(
            lanes=lanes,
            iterations=num_iterations,
            final_samples=final_samples,
        )
        for step in range(num_iterations):
            current = network.snapshot() if can_fail else None
            batch = network.pull(3, label="3-tournament")
            vals = batch.values
            if can_fail:
                mask = batch.ok if single else batch.ok[:, :, None]
                fallback = current[:, None] if single else current[:, None, :]
                vals = np.where(mask, vals, fallback)
            vals = _lane_view(vals, single)                 # (n, 3, L)
            live = _lane_view(network.values, single)       # (n, L)
            medians = _median_of_three(vals[:, 0], vals[:, 1], vals[:, 2])
            new_values = np.empty_like(live)
            for lane, lane_schedule in enumerate(schedules):
                if step >= lane_schedule.num_iterations:
                    new_values[:, lane] = live[:, lane]      # lane idles
                else:
                    new_values[:, lane] = medians[:, lane]
            updated = new_values[:, 0] if single else new_values
            network.set_values(updated, copy=False)
            if track_band:
                n = network.n
                iteration = schedules[0].iterations[step]
                low = float(np.count_nonzero(updated < lo_value)) / n
                high = float(np.count_nonzero(updated > hi_value)) / n
                stats.append(
                    PhaseIterationStats(
                        iteration=iteration.index,
                        predicted=iteration.l_after,
                        high_fraction=high,
                        low_fraction=low,
                        band_fraction=1.0 - low - high,
                    )
                )

        # Final vote: every node samples `final_samples` values and outputs
        # the median of its sample (Algorithm 2, line 8) — one shared pull
        # batch, per-lane medians.
        current = network.snapshot() if can_fail else None
        batch = network.pull(final_samples, label="3-tournament-vote")
        vals = batch.values
        if can_fail:
            mask = batch.ok if single else batch.ok[:, :, None]
            fallback = current[:, None] if single else current[:, None, :]
            vals = np.where(mask, vals, fallback)
        # partition places the middle order statistic exactly where a full
        # sort would; the selected values are identical.  Multi-lane votes
        # partition lane by lane so each pass runs over a contiguous (n, K)
        # block.
        mid = final_samples // 2
        if vals.ndim == 2:
            outputs = np.partition(vals, mid, axis=1)[:, mid]
        else:
            outputs = np.empty((vals.shape[0], vals.shape[2]), dtype=vals.dtype)
            for lane in range(vals.shape[2]):
                outputs[:, lane] = np.partition(
                    vals[:, :, lane], mid, axis=1
                )[:, mid]

    return TournamentPhaseResult(
        final_values=outputs,
        iterations=num_iterations,
        rounds=3 * num_iterations + final_samples,
        stats=stats,
    )
