"""Algorithm 2 — 3-TOURNAMENT: approximate the median.

Every iteration each node pulls the values of three uniformly random nodes
and adopts the *median* of the three.  The fraction of nodes holding values
outside the band ``[1/2 - eps, 1/2 + eps]`` follows ``l_{i+1} = 3 l_i^2 -
2 l_i^3``: it shrinks geometrically for the first O(log 1/eps) iterations
and doubly exponentially afterwards, reaching ``O(n^{-1/3})`` after
``O(log 1/eps + log log n)`` iterations.  A final vote — sample ``K = O(1)``
nodes and output the median of the sample — then lands inside the band with
high probability (Lemma 2.17).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.results import PhaseIterationStats, TournamentPhaseResult
from repro.core.schedules import ThreeTournamentSchedule, three_tournament_schedule
from repro.exceptions import ConfigurationError
from repro.gossip.network import GossipNetwork
from repro.utils.stats import empirical_quantile

#: Default size of the final vote.  The paper only requires K = O(1); an odd
#: constant around 15 makes the failure probability (4e / n^{2/3})^{K/2}
#: negligible for every network size the library simulates.
DEFAULT_FINAL_SAMPLES = 15


def median_band_thresholds(values: np.ndarray, eps: float) -> Tuple[float, float]:
    """Values bounding the band ``[1/2 - eps, 1/2 + eps]`` of ``values``."""
    lo_value = empirical_quantile(values, max(0.0, 0.5 - eps))
    hi_value = empirical_quantile(values, min(1.0, 0.5 + eps))
    return lo_value, hi_value


def run_three_tournament(
    network: GossipNetwork,
    eps: float,
    schedule: Optional[ThreeTournamentSchedule] = None,
    final_samples: int = DEFAULT_FINAL_SAMPLES,
    track_band: bool = True,
) -> TournamentPhaseResult:
    """Run Algorithm 2 on ``network`` (in place).

    Returns a :class:`TournamentPhaseResult` whose ``final_values`` are the
    per-node *outputs* of the algorithm: the median of ``final_samples``
    uniformly sampled values after the tournament iterations.  The band
    statistics track the fraction of nodes outside the ``[1/2 - eps,
    1/2 + eps]`` band of the phase's *input* values after every iteration.
    """
    if final_samples < 1 or final_samples % 2 == 0:
        raise ConfigurationError("final_samples must be a positive odd integer")
    if schedule is None:
        schedule = three_tournament_schedule(eps, network.n)

    initial = network.snapshot()
    if track_band:
        lo_value, hi_value = median_band_thresholds(initial, eps)

    stats = []
    for iteration in schedule.iterations:
        current = network.snapshot()
        batch = network.pull(3, label="3-tournament")
        pulled = np.where(batch.ok, batch.values, current[:, None])
        medians = np.sort(pulled, axis=1)[:, 1]
        network.set_values(medians)
        if track_band:
            n = network.n
            low = float(np.count_nonzero(medians < lo_value)) / n
            high = float(np.count_nonzero(medians > hi_value)) / n
            stats.append(
                PhaseIterationStats(
                    iteration=iteration.index,
                    predicted=iteration.l_after,
                    high_fraction=high,
                    low_fraction=low,
                    band_fraction=1.0 - low - high,
                )
            )

    # Final vote: every node samples `final_samples` values and outputs the
    # median of its sample (Algorithm 2, line 8).
    current = network.snapshot()
    batch = network.pull(final_samples, label="3-tournament-vote")
    pulled = np.where(batch.ok, batch.values, current[:, None])
    outputs = np.sort(pulled, axis=1)[:, final_samples // 2]

    return TournamentPhaseResult(
        final_values=outputs,
        iterations=schedule.num_iterations,
        rounds=schedule.rounds + final_samples,
        stats=stats,
    )
