"""The paper's core contribution: tournament-based gossip quantile algorithms.

Public entry points
-------------------
* :func:`~repro.core.approx_quantile.approximate_quantile` — Theorem 1.2/2.1:
  ε-approximate φ-quantile in O(log log n + log 1/ε) rounds.
* :func:`~repro.core.exact_quantile.exact_quantile` — Theorem 1.1: the exact
  φ-quantile in O(log n) rounds.
* :func:`~repro.core.all_quantiles.estimate_all_ranks` — Corollary 1.5: every
  node learns its own quantile up to ±ε (one fused multi-lane pass).
* :class:`~repro.core.service.QuantileService` — the serving layer: one
  gossip pass, arbitrarily many concurrent quantile queries.
* :func:`~repro.core.robust.robust_approximate_quantile` — Theorem 1.4:
  the failure-tolerant variant of the approximate algorithm.
"""

from repro.core.schedules import (
    TwoTournamentSchedule,
    ThreeTournamentSchedule,
    two_tournament_schedule,
    three_tournament_schedule,
    two_tournament_iteration_bound,
    three_tournament_iteration_bound,
)
from repro.core.results import (
    ApproxQuantileResult,
    ExactQuantileResult,
    PhaseIterationStats,
    TournamentPhaseResult,
)
from repro.core.two_tournament import run_two_tournament
from repro.core.three_tournament import run_three_tournament
from repro.core.approx_quantile import approximate_quantile, min_supported_eps
from repro.core.exact_quantile import exact_quantile
from repro.core.all_quantiles import (
    DEFAULT_MAX_LANES,
    AllRanksResult,
    estimate_all_ranks,
    true_self_quantiles,
)
from repro.core.service import QuantileService, QueryAnswer
from repro.core.tokens import TokenDistributionResult, distribute_tokens
from repro.core.robust import RobustQuantileResult, robust_approximate_quantile

__all__ = [
    "TwoTournamentSchedule",
    "ThreeTournamentSchedule",
    "two_tournament_schedule",
    "three_tournament_schedule",
    "two_tournament_iteration_bound",
    "three_tournament_iteration_bound",
    "ApproxQuantileResult",
    "ExactQuantileResult",
    "PhaseIterationStats",
    "TournamentPhaseResult",
    "run_two_tournament",
    "run_three_tournament",
    "approximate_quantile",
    "min_supported_eps",
    "exact_quantile",
    "AllRanksResult",
    "DEFAULT_MAX_LANES",
    "estimate_all_ranks",
    "true_self_quantiles",
    "QuantileService",
    "QueryAnswer",
    "TokenDistributionResult",
    "distribute_tokens",
    "RobustQuantileResult",
    "robust_approximate_quantile",
]
