"""The quantile-serving layer: one gossip pass, arbitrarily many queries.

Corollary 1.5's fused grid (:func:`~repro.core.all_quantiles.estimate_all_ranks`)
computes an ε-spaced ladder of quantile estimates in max-of-lanes rounds.
A :class:`QuantileService` performs that pass once and then answers any
number of concurrent φ-quantile (and rank-of-value) queries from the grid
bracket — cost grows with *rounds* only at build time; serving a query is
a single answer message whose payload bits are accounted per query through
:meth:`~repro.gossip.metrics.NetworkMetrics.record_query`.  This is the
"millions of users" shape: 10⁶ queries against one pass cost the same
gossip rounds as one query.

Ad-hoc φ targets finer than the ε-grid can optionally be served from the
in-repo mergeable KLL sketch (:mod:`repro.sketches.kll`): pass
``sketch_k`` and queries whose grid bracket is coarser than the sketch's
rank-error bound are answered from the sketch instead (the
composable-aggregation style of the histogrammar line of work).  Building
the sketch is a per-item stream fold — opt-in, priced at its
``message_bits()`` once, and independent of the gossip round count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from time import perf_counter
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.core.all_quantiles import (
    DEFAULT_MAX_LANES,
    AllRanksResult,
    estimate_all_ranks,
    estimate_grid_subset,
)
from repro.exceptions import ConfigurationError
from repro.faults.injectors import FaultInjector
from repro.gossip.failures import FailureModel
from repro.gossip.messages import BITS_HEADER, BITS_PER_VALUE
from repro.gossip.metrics import NetworkMetrics
from repro.obs.tracer import LatencyHistogram, get_tracer
from repro.sketches.kll import KLLSketch
from repro.topology.dynamic import ChurnProcess
from repro.topology.graphs import Topology
from repro.utils.rand import RandomSource

#: Payload bits of one answered query: the value plus framing.
ANSWER_BITS = BITS_HEADER + BITS_PER_VALUE


@dataclass(frozen=True)
class QueryAnswer:
    """One answered φ-quantile query.

    Attributes
    ----------
    phi:
        The requested quantile.
    value:
        The served estimate.
    source:
        ``"grid"`` (nearest fused grid lane) or ``"sketch"`` (KLL refinement
        for φ finer than the grid).
    accuracy:
        Additive rank-accuracy bound of the answer: grid distance plus the
        per-lane query accuracy for grid answers, the sketch's rank-error
        bound for sketch answers.
    grid_index:
        Index of the serving grid lane (grid answers only).
    """

    phi: float
    value: float
    source: str
    accuracy: float
    grid_index: Optional[int] = None
    #: True when the answer comes from an estimate that has gone stale
    #: under churn / value updates: the reported ``accuracy`` is widened by
    #: the estimated rank drift, so a degraded answer is never reported
    #: tighter than the fault-free bound — degraded, but honest.
    degraded: bool = False
    #: The service epoch that produced the serving estimate.
    epoch: int = 0


@dataclass(frozen=True)
class RebuildReport:
    """Outcome of one :meth:`QuantileService.rebuild` call.

    Attributes
    ----------
    epoch:
        The epoch in force *after* the rebuild (unchanged if the rebuild
        could not validate and the service stayed degraded).
    mode:
        ``"incremental"`` (stale lanes only) or ``"full"``.
    lanes_rebuilt:
        Number of grid lanes whose answers were refreshed.
    chunks_run:
        Lane chunks (tournament runs) this rebuild executed — on an
        incremental rebuild strictly fewer than ``full_chunks`` whenever
        any lane was still fresh.
    full_chunks:
        Lane chunks a full rebuild would have run.
    attempts:
        Gossip attempts used (> 1 when injected faults broke validation and
        the rebuild retried after backoff).
    backoff_rounds:
        Rounds charged while backing off between failed attempts.
    rounds:
        Gossip rounds the rebuild consumed (including backoff).
    validated:
        Whether every rebuilt lane passed the rank self-check; ``False``
        means some lanes kept their stale answers and the service remains
        degraded for them.
    """

    epoch: int
    mode: str
    lanes_rebuilt: int
    chunks_run: int
    full_chunks: int
    attempts: int
    backoff_rounds: int
    rounds: int
    validated: bool


class QuantileService:
    """Serve arbitrary quantile queries from a single fused gossip pass.

    Parameters
    ----------
    values:
        One value per node.
    eps:
        Grid spacing of the underlying all-quantiles pass: answers from the
        grid carry at most ``eps / 2 + query_accuracy`` rank error inside
        the grid's coverage.
    fused / max_lanes / topology / peer_sampling / dtype / engine /
    failure_model / query_accuracy / final_samples / keep_history:
        Forwarded to :func:`~repro.core.all_quantiles.estimate_all_ranks`.
    sketch_k:
        Optional KLL compactor capacity.  When given, a mergeable sketch of
        the value stream is folded at build time and queries whose grid
        bracket is coarser than the sketch's rank-error bound (~``3 / k``)
        are answered from it.
    faults:
        Optional :class:`~repro.faults.FaultInjector` attached to the build
        pass *and* every rebuild — the chaos-testing hook.  Rebuilds whose
        answers fail the rank self-check under injected faults retry with
        exponential backoff (see ``max_rebuild_retries`` /
        ``rebuild_backoff``).
    churn_process:
        Optional :class:`~repro.topology.dynamic.ChurnProcess` modelling
        node departures after the build.  :meth:`advance_churn` steps it;
        departed values then no longer back the served estimates, which the
        per-lane drift model turns into widened (degraded) answers and,
        past ``rebuild_threshold``, epoch rebuilds.
    staleness_threshold:
        Per-lane rank drift above which a lane's answers are served as
        degraded (default ``eps / 2``).
    rebuild_threshold:
        Max-lane drift above which :meth:`maybe_rebuild` triggers an
        incremental rebuild (default ``eps``).
    max_rebuild_retries:
        Gossip attempts per rebuild before giving up and staying degraded.
    rebuild_backoff:
        Rounds charged after a failed rebuild attempt; doubles per retry.
    auto_rebuild:
        When True, :meth:`advance_churn` / :meth:`update_value` call
        :meth:`maybe_rebuild` themselves — the self-healing mode the CLI's
        ``serve --rebuild auto`` exposes.  Off by default so queries never
        surprise the caller with gossip rounds.
    """

    def __init__(
        self,
        values: Union[np.ndarray, list, tuple],
        eps: float = 0.1,
        rng: Union[None, int, RandomSource] = None,
        failure_model: Union[None, float, FailureModel] = None,
        query_accuracy: Optional[float] = None,
        final_samples: int = 15,
        fused: bool = True,
        max_lanes: int = DEFAULT_MAX_LANES,
        topology: Optional[Topology] = None,
        peer_sampling: str = "uniform",
        dtype=None,
        engine: Optional[str] = None,
        keep_history: bool = False,
        sketch_k: Optional[int] = None,
        faults: Optional[FaultInjector] = None,
        churn_process: Optional[ChurnProcess] = None,
        staleness_threshold: Optional[float] = None,
        rebuild_threshold: Optional[float] = None,
        max_rebuild_retries: int = 3,
        rebuild_backoff: int = 8,
        auto_rebuild: bool = False,
    ) -> None:
        source = rng if isinstance(rng, RandomSource) else RandomSource(rng)
        self._source = source
        self._array = np.asarray(values, dtype=float)
        if churn_process is not None:
            if not isinstance(churn_process, ChurnProcess):
                raise ConfigurationError(
                    f"churn_process must be a ChurnProcess, got {churn_process!r}"
                )
            if churn_process.n != self._array.size:
                raise ConfigurationError(
                    f"churn process has {churn_process.n} nodes but values "
                    f"has {self._array.size}"
                )
            if churn_process.active is None:
                churn_process.begin()
        if max_rebuild_retries < 1:
            raise ConfigurationError("max_rebuild_retries must be at least 1")
        if rebuild_backoff < 0:
            raise ConfigurationError("rebuild_backoff must be non-negative")
        build_metrics = NetworkMetrics(keep_history=keep_history)
        with get_tracer().span("service_build", build_metrics) as span:
            span.annotate(n=int(self._array.size), eps=float(eps))
            # repro-lint: disable=thread-kwargs -- keep_history is threaded via build_metrics (constructed with it above); estimate_all_ranks documents that an explicit metrics= object's keep_history wins.
            self._result = estimate_all_ranks(
                self._array,
                eps=eps,
                rng=source.child(),
                failure_model=failure_model,
                query_accuracy=query_accuracy,
                final_samples=final_samples,
                fused=fused,
                max_lanes=max_lanes,
                topology=topology,
                peer_sampling=peer_sampling,
                dtype=dtype,
                engine=engine,
                metrics=build_metrics,
                faults=faults,
            )
        self._eps = float(eps)
        self._query_accuracy = (
            eps / 2.0 if query_accuracy is None else float(query_accuracy)
        )
        self._failure_model = failure_model
        self._final_samples = int(final_samples)
        self._max_lanes = int(max_lanes)
        self._dtype = dtype
        self._faults = faults
        self._churn = churn_process
        self._staleness_threshold = (
            self._eps / 2.0 if staleness_threshold is None
            else float(staleness_threshold)
        )
        self._rebuild_threshold = (
            self._eps if rebuild_threshold is None else float(rebuild_threshold)
        )
        self._max_rebuild_retries = int(max_rebuild_retries)
        self._rebuild_backoff = int(rebuild_backoff)
        self._auto_rebuild = bool(auto_rebuild)
        # One representative served value per grid lane: the median of the
        # per-node lane outputs (all nodes agree up to the ε guarantee, so
        # the median is a w.h.p.-correct network-level answer).
        grid_values = self._result.grid_values
        answers = np.empty(grid_values.shape[0], dtype=float)
        for row in range(grid_values.shape[0]):
            lane = grid_values[row]
            finite = lane[np.isfinite(lane)]
            answers[row] = float(np.median(finite)) if finite.size else float("nan")
        self._grid_answers = answers

        self._sketch: Optional[KLLSketch] = None
        self._sketch_k = sketch_k
        if sketch_k is not None:
            with get_tracer().span("sketch_build") as span:
                span.annotate(k=int(sketch_k), items=int(self._array.size))
                sketch = KLLSketch(k=sketch_k, rng=source.child())
                sketch.extend(float(value) for value in self._array)
                self._sketch = sketch

        self.query_metrics = NetworkMetrics(keep_history=False)
        #: Serving-side latency histogram: one observation per answered
        #: query (quantile / rank_of), wall seconds.
        self.query_latency = LatencyHistogram()
        #: Answer-source counters: how many queries each backing store served.
        self.answers_grid = 0
        self.answers_sketch = 0
        #: How many served answers carried ``degraded=True``.
        self.answers_degraded = 0
        #: Completed epoch rebuilds.
        self.rebuilds = 0

        # -- epoch baseline -------------------------------------------------
        self.epoch = 0
        #: Grid lanes whose last rebuild failed validation (kept degraded).
        self._suspect_lanes: set = set()
        #: Values updated since the epoch baseline (for the sketch fold).
        self._pending_updates: List[float] = []
        #: Cumulative departures folded into the sketch staleness bound.
        self._sketch_departed = 0
        self._drift_cache: Optional[np.ndarray] = None
        self._commit_epoch(advance=False)

    # -- build-time facts ---------------------------------------------------------
    @property
    def n(self) -> int:
        return self._array.size

    @property
    def eps(self) -> float:
        return self._eps

    @property
    def grid(self) -> np.ndarray:
        """The served grid of quantile targets."""
        return self._result.grid

    @property
    def grid_answers(self) -> np.ndarray:
        """The representative served value per grid target."""
        return self._grid_answers

    @property
    def rounds(self) -> int:
        """Gossip rounds of the build pass — fixed, query-count independent."""
        return self._result.rounds

    @property
    def gossip_metrics(self) -> NetworkMetrics:
        """Round/message/bit accounting of the build pass."""
        return self._result.metrics

    @property
    def result(self) -> AllRanksResult:
        """The underlying all-quantiles pass result."""
        return self._result

    @property
    def sketch(self) -> Optional[KLLSketch]:
        return self._sketch

    @property
    def queries_answered(self) -> int:
        return self.query_metrics.queries

    def sketch_accuracy(self) -> Optional[float]:
        """The sketch's additive rank-error bound as a fraction, if attached.

        Widened by the fraction of epoch departures: a KLL sketch supports
        no deletions, so every value that has since left the network stays
        folded in and can misplace ranks by up to ``1/count`` each.
        """
        if self._sketch is None or self._sketch.count == 0:
            return None
        base = self._sketch.error_bound() / float(self._sketch.count)
        return base + self._sketch_staleness()

    def _sketch_staleness(self) -> float:
        if self._sketch is None or self._sketch.count == 0:
            return 0.0
        return self._sketch_departed / float(self._sketch.count)

    # -- the staleness / epoch lifecycle -----------------------------------------
    @property
    def churn_process(self) -> Optional[ChurnProcess]:
        return self._churn

    @property
    def faults(self) -> Optional[FaultInjector]:
        return self._faults

    def attach_faults(self, faults: Optional[FaultInjector]) -> None:
        """Attach (or replace, or with ``None`` detach) the fault injector.

        Subsequent rebuild gossip runs under the new injector; the build
        already happened, so this is the chaos-starts-mid-life knob — e.g.
        build clean, then measure how epoch rebuilds behave under injected
        faults.  Round indices keep increasing through the service metrics,
        so a schedule wrapping the new injector's specs sees the service's
        true round clock, not zero.
        """
        if faults is not None and not isinstance(faults, FaultInjector):
            raise ConfigurationError(
                f"faults must be a FaultInjector, got {faults!r}"
            )
        self._faults = faults

    def _active_mask(self) -> np.ndarray:
        if self._churn is not None and self._churn.active is not None:
            return self._churn.active
        return np.ones(self._array.size, dtype=bool)

    def _commit_epoch(self, advance: bool = True) -> None:
        """Snapshot the current population as the fresh-epoch baseline."""
        active = self._active_mask()
        if advance:
            # Departures relative to the *previous* baseline go stale in
            # the sketch forever (no deletions); fold updates as a delta
            # sketch merged across the epoch boundary.
            self._sketch_departed += int(
                np.count_nonzero(self._epoch_active & ~active)
            )
            if self._sketch is not None and self._pending_updates:
                delta = KLLSketch(k=self._sketch_k, rng=self._source.child())
                delta.extend(self._pending_updates)
                self._sketch.merge(delta)
            self.epoch += 1
        self._epoch_active = active.copy()
        self._epoch_sorted = np.sort(self._array[active], kind="stable")
        self._pending_updates = []
        self._suspect_lanes.clear()
        self._drift_cache = None

    def advance_churn(self, rounds: int = 1) -> Optional[RebuildReport]:
        """Step the attached churn process ``rounds`` rounds forward.

        Departed nodes' values stop backing the served estimates, which
        shows up as per-lane rank drift (→ degraded answers) and, with
        ``auto_rebuild``, as an automatic :meth:`maybe_rebuild`.
        """
        if self._churn is None:
            raise ConfigurationError(
                "no churn process attached; construct the service with "
                "churn_process="
            )
        if rounds < 0:
            raise ConfigurationError("rounds must be non-negative")
        start = self._churn.rounds_generated
        for offset in range(rounds):
            self._churn.round_state(start + offset)
        self._drift_cache = None
        if self._auto_rebuild:
            return self.maybe_rebuild()
        return None

    def update_value(self, index: int, value: float) -> Optional[RebuildReport]:
        """Replace one node's value (a stream update at that node).

        The grid answers are *not* recomputed — the drift model prices the
        divergence and the epoch machinery decides when a rebuild pays.
        """
        if not 0 <= int(index) < self._array.size:
            raise ConfigurationError(
                f"index must be in [0, {self._array.size}), got {index}"
            )
        self._array[int(index)] = float(value)
        self._pending_updates.append(float(value))
        self._drift_cache = None
        if self._auto_rebuild:
            return self.maybe_rebuild()
        return None

    def lane_drift(self) -> np.ndarray:
        """Estimated rank drift of each grid lane since its epoch baseline.

        For lane ``j`` serving value ``v_j``: the absolute change in the
        fraction of *currently active* values below ``v_j`` versus the
        fraction at the epoch snapshot — how far the answer's rank has
        moved under departures and value updates.  Lanes whose answers are
        non-finite (a faulted build) or failed their last rebuild
        validation report infinite drift.
        """
        if self._drift_cache is not None:
            return self._drift_cache
        answers = self._grid_answers
        active = self._active_mask()
        now = np.sort(self._array[active], kind="stable")
        below_now = np.searchsorted(now, answers, side="left") / max(now.size, 1)
        below_epoch = np.searchsorted(
            self._epoch_sorted, answers, side="left"
        ) / max(self._epoch_sorted.size, 1)
        drift = np.abs(below_now - below_epoch)
        drift[~np.isfinite(answers)] = np.inf
        for lane in self._suspect_lanes:
            drift[lane] = np.inf
        self._drift_cache = drift
        return drift

    def stale_lanes(self) -> np.ndarray:
        """Indices of grid lanes whose drift exceeds the staleness threshold."""
        return np.flatnonzero(self.lane_drift() > self._staleness_threshold)

    @property
    def degraded(self) -> bool:
        """Whether any part of the serving state is currently stale."""
        if self._grid_answers.size and self.stale_lanes().size:
            return True
        return self._sketch_staleness() > self._staleness_threshold

    def maybe_rebuild(self) -> Optional[RebuildReport]:
        """Rebuild incrementally iff drift crossed the rebuild threshold."""
        drift = self.lane_drift()
        finite = drift[np.isfinite(drift)]
        worst = float(finite.max()) if finite.size else 0.0
        if np.any(np.isinf(drift)) or worst > self._rebuild_threshold:
            return self.rebuild(incremental=True)
        return None

    def rebuild(self, incremental: bool = True) -> RebuildReport:
        """Re-estimate stale grid lanes (or the full grid) as a new epoch.

        Incremental mode re-runs only the lane chunks whose brackets moved
        — strictly fewer tournament runs than a full build whenever any
        lane is still fresh.  Each attempt's answers must pass a rank
        self-check against the current active values; attempts broken by
        injected faults are retried after charging exponential-backoff
        rounds, and after ``max_rebuild_retries`` failures the old answers
        stay in place (degraded, but the service keeps answering).
        """
        grid = self._result.grid
        metrics = self.gossip_metrics
        full_chunks = (
            int(math.ceil(grid.size / self._max_lanes)) if grid.size else 0
        )
        if incremental:
            lanes = self.stale_lanes()
            mode = "incremental"
        else:
            lanes = np.arange(grid.size)
            mode = "full"
        if lanes.size == 0:
            # Nothing stale: refresh the baseline (a free epoch commit).
            self._commit_epoch()
            self.rebuilds += 1
            return RebuildReport(
                epoch=self.epoch, mode=mode, lanes_rebuilt=0, chunks_run=0,
                full_chunks=full_chunks, attempts=0, backoff_rounds=0,
                rounds=0, validated=True,
            )

        active = self._active_mask()
        array = self._array[active]
        targets = grid[lanes]
        sorted_now = np.sort(array, kind="stable")
        rounds_before = metrics.rounds
        chunks_run = 0
        backoff_rounds = 0
        attempts = 0
        answers = None
        valid = None
        tracer = get_tracer()
        while attempts < self._max_rebuild_retries:
            attempts += 1
            with tracer.span("service_rebuild", metrics) as span:
                span.annotate(
                    epoch=self.epoch, mode=mode, lanes=int(lanes.size),
                    attempt=attempts,
                )
                grid_values, windows = estimate_grid_subset(
                    array, targets, self._query_accuracy,
                    self._final_samples, self._source.child(),
                    self._failure_model, metrics, self._max_lanes,
                    dtype=self._dtype, faults=self._faults,
                )
            chunks_run += len(windows)
            answers = self._lane_answers(grid_values)
            valid = self._validate_answers(sorted_now, targets, answers)
            if bool(valid.all()):
                break
            if attempts < self._max_rebuild_retries:
                # Exponential backoff, charged as real rounds: the round
                # index advances deterministically past e.g. a Burst fault
                # window, so the retry meets a different fault schedule.
                wait = self._rebuild_backoff * (2 ** (attempts - 1))
                metrics.charge_rounds(wait, label="rebuild_backoff")
                backoff_rounds += wait

        self._grid_answers[lanes[valid]] = answers[valid]
        validated = bool(valid.all())
        if validated:
            self._commit_epoch()
        else:
            # Partial: refreshed lanes serve the new answers, failed lanes
            # stay pinned stale so the degradation remains visible.
            self._suspect_lanes.update(int(lane) for lane in lanes[~valid])
            self._drift_cache = None
        self.rebuilds += 1
        return RebuildReport(
            epoch=self.epoch, mode=mode, lanes_rebuilt=int(valid.sum()),
            chunks_run=chunks_run, full_chunks=full_chunks,
            attempts=attempts, backoff_rounds=backoff_rounds,
            rounds=metrics.rounds - rounds_before, validated=validated,
        )

    @staticmethod
    def _lane_answers(grid_values: np.ndarray) -> np.ndarray:
        """Median-of-nodes representative answer per lane (NaN when empty)."""
        answers = np.empty(grid_values.shape[0], dtype=float)
        for row in range(grid_values.shape[0]):
            lane = grid_values[row]
            finite = lane[np.isfinite(lane)]
            answers[row] = float(np.median(finite)) if finite.size else float("nan")
        return answers

    def _validate_answers(
        self, sorted_now: np.ndarray, targets: np.ndarray, answers: np.ndarray
    ) -> np.ndarray:
        """Rank self-check: does each answer sit near its target quantile?

        Tolerance ``eps + query_accuracy``: a clean tournament is accurate
        to ``query_accuracy`` w.h.p., so honest answers pass with slack
        while fault-corrupted or starved lanes (NaN / displaced values)
        fail and trigger the retry path.
        """
        n = max(sorted_now.size, 1)
        left = np.searchsorted(sorted_now, answers, side="left")
        right = np.searchsorted(sorted_now, answers, side="right")
        rank = (left + right) / (2.0 * n)
        tolerance = self._eps + self._query_accuracy
        with np.errstate(invalid="ignore"):
            ok = np.abs(rank - targets) <= tolerance
        return ok & np.isfinite(answers)

    # -- the serving surface ------------------------------------------------------
    def quantile(self, phi: float, prefer: str = "auto") -> QueryAnswer:
        """Answer one φ-quantile query (no gossip; one accounted message).

        ``prefer`` selects the backing store: ``"grid"`` forces the fused
        grid bracket, ``"sketch"`` forces the KLL sketch (error if none is
        attached), ``"auto"`` (default) serves from whichever carries the
        tighter rank-accuracy bound for this φ.
        """
        started = perf_counter()
        if not 0.0 <= phi <= 1.0:
            raise ConfigurationError("phi must be in [0, 1]")
        if prefer not in ("auto", "grid", "sketch"):
            raise ConfigurationError(
                f"unknown answer source {prefer!r}; choose auto, grid or sketch"
            )
        if prefer == "sketch" and self._sketch is None:
            raise ConfigurationError(
                "no sketch attached; construct the service with sketch_k"
            )
        grid_answer = self._grid_bracket(phi)
        sketch_bound = self.sketch_accuracy()
        use_sketch = prefer == "sketch" or (
            prefer == "auto"
            and sketch_bound is not None
            and (grid_answer is None or sketch_bound < grid_answer.accuracy)
        )
        if use_sketch:
            answer = QueryAnswer(
                phi=float(phi),
                value=float(self._sketch.query(phi)),
                source="sketch",
                accuracy=float(sketch_bound),
                degraded=self._sketch_staleness() > self._staleness_threshold,
                epoch=self.epoch,
            )
        elif grid_answer is not None:
            answer = grid_answer
        else:
            raise ConfigurationError(
                "the grid is empty and no sketch is attached; nothing can "
                "serve this query"
            )
        self.query_metrics.record_query(ANSWER_BITS)
        if answer.source == "sketch":
            self.answers_sketch += 1
        else:
            self.answers_grid += 1
        if answer.degraded:
            self.answers_degraded += 1
        self.query_latency.observe(perf_counter() - started)
        return answer

    def batch_quantiles(
        self, phis: Sequence[float], prefer: str = "auto"
    ) -> List[QueryAnswer]:
        """Answer many concurrent φ queries — zero additional gossip rounds."""
        return [self.quantile(phi, prefer=prefer) for phi in phis]

    def rank_of(self, value: float) -> QueryAnswer:
        """Estimate the quantile (rank / n) of an arbitrary value.

        Uses the Corollary-1.5 bracket: the midpoint implied by how many
        grid answers lie below ``value``, accurate to ``eps`` plus the
        per-lane query accuracy.
        """
        started = perf_counter()
        below = int(np.count_nonzero(self._grid_answers < float(value)))
        estimate = float(np.clip((below + 0.5) * self._eps, 0.0, 1.0))
        accuracy = self._eps + self._query_accuracy
        # Rank-of uses the whole ladder, so the *worst* lane drift widens
        # the bound (capped at 1: a rank error can't exceed the unit range).
        drift = self.lane_drift()
        worst = float(min(np.max(drift, initial=0.0), 1.0))
        stale = worst > self._staleness_threshold
        if stale:
            accuracy += worst
        answer = QueryAnswer(
            phi=estimate,
            value=float(value),
            source="grid",
            accuracy=accuracy,
            degraded=stale,
            epoch=self.epoch,
        )
        self.query_metrics.record_query(ANSWER_BITS)
        self.answers_grid += 1
        if answer.degraded:
            self.answers_degraded += 1
        self.query_latency.observe(perf_counter() - started)
        return answer

    def self_quantiles(self) -> np.ndarray:
        """Every node's own-rank estimate from the build pass (no message)."""
        return self._result.quantile_estimates

    def _grid_bracket(self, phi: float) -> Optional[QueryAnswer]:
        grid = self._result.grid
        if grid.size == 0:
            return None
        index = int(np.argmin(np.abs(grid - phi)))
        distance = float(abs(grid[index] - phi))
        accuracy = distance + self._query_accuracy
        # A stale lane answers with its bound widened by the estimated rank
        # drift (capped at 1), never tighter than the fault-free bound —
        # and the auto source selection then naturally prefers a fresher
        # sketch over a drifted grid lane.
        lane_drift = float(min(self.lane_drift()[index], 1.0))
        stale = lane_drift > self._staleness_threshold
        if stale:
            accuracy += lane_drift
        return QueryAnswer(
            phi=float(phi),
            value=float(self._grid_answers[index]),
            source="grid",
            accuracy=accuracy,
            grid_index=index,
            degraded=stale,
            epoch=self.epoch,
        )

    def summary(self) -> dict:
        """Flat build/serve accounting, convenient for the CLI and tests."""
        return {
            "n": self.n,
            "eps": self._eps,
            "grid_targets": int(self._result.grid.size),
            "chunks": self._result.chunks,
            "fused": self._result.fused,
            "rounds": self.rounds,
            "gossip_bits": self.gossip_metrics.total_bits,
            "queries_answered": self.queries_answered,
            "query_bits": self.query_metrics.total_bits,
            "sketch_items": self._sketch.size if self._sketch else 0,
            "answers_grid": self.answers_grid,
            "answers_sketch": self.answers_sketch,
            "epoch": self.epoch,
            "rebuilds": self.rebuilds,
            "answers_degraded": self.answers_degraded,
            "stale_lanes": int(self.stale_lanes().size),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QuantileService(n={self.n}, eps={self._eps}, "
            f"grid={self._result.grid.size}, rounds={self.rounds}, "
            f"queries={self.queries_answered})"
        )
