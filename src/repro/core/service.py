"""The quantile-serving layer: one gossip pass, arbitrarily many queries.

Corollary 1.5's fused grid (:func:`~repro.core.all_quantiles.estimate_all_ranks`)
computes an ε-spaced ladder of quantile estimates in max-of-lanes rounds.
A :class:`QuantileService` performs that pass once and then answers any
number of concurrent φ-quantile (and rank-of-value) queries from the grid
bracket — cost grows with *rounds* only at build time; serving a query is
a single answer message whose payload bits are accounted per query through
:meth:`~repro.gossip.metrics.NetworkMetrics.record_query`.  This is the
"millions of users" shape: 10⁶ queries against one pass cost the same
gossip rounds as one query.

Ad-hoc φ targets finer than the ε-grid can optionally be served from the
in-repo mergeable KLL sketch (:mod:`repro.sketches.kll`): pass
``sketch_k`` and queries whose grid bracket is coarser than the sketch's
rank-error bound are answered from the sketch instead (the
composable-aggregation style of the histogrammar line of work).  Building
the sketch is a per-item stream fold — opt-in, priced at its
``message_bits()`` once, and independent of the gossip round count.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.core.all_quantiles import (
    DEFAULT_MAX_LANES,
    AllRanksResult,
    estimate_all_ranks,
)
from repro.exceptions import ConfigurationError
from repro.gossip.failures import FailureModel
from repro.gossip.messages import BITS_HEADER, BITS_PER_VALUE
from repro.gossip.metrics import NetworkMetrics
from repro.obs.tracer import LatencyHistogram, get_tracer
from repro.sketches.kll import KLLSketch
from repro.topology.graphs import Topology
from repro.utils.rand import RandomSource

#: Payload bits of one answered query: the value plus framing.
ANSWER_BITS = BITS_HEADER + BITS_PER_VALUE


@dataclass(frozen=True)
class QueryAnswer:
    """One answered φ-quantile query.

    Attributes
    ----------
    phi:
        The requested quantile.
    value:
        The served estimate.
    source:
        ``"grid"`` (nearest fused grid lane) or ``"sketch"`` (KLL refinement
        for φ finer than the grid).
    accuracy:
        Additive rank-accuracy bound of the answer: grid distance plus the
        per-lane query accuracy for grid answers, the sketch's rank-error
        bound for sketch answers.
    grid_index:
        Index of the serving grid lane (grid answers only).
    """

    phi: float
    value: float
    source: str
    accuracy: float
    grid_index: Optional[int] = None


class QuantileService:
    """Serve arbitrary quantile queries from a single fused gossip pass.

    Parameters
    ----------
    values:
        One value per node.
    eps:
        Grid spacing of the underlying all-quantiles pass: answers from the
        grid carry at most ``eps / 2 + query_accuracy`` rank error inside
        the grid's coverage.
    fused / max_lanes / topology / peer_sampling / dtype / engine /
    failure_model / query_accuracy / final_samples / keep_history:
        Forwarded to :func:`~repro.core.all_quantiles.estimate_all_ranks`.
    sketch_k:
        Optional KLL compactor capacity.  When given, a mergeable sketch of
        the value stream is folded at build time and queries whose grid
        bracket is coarser than the sketch's rank-error bound (~``3 / k``)
        are answered from it.
    """

    def __init__(
        self,
        values: Union[np.ndarray, list, tuple],
        eps: float = 0.1,
        rng: Union[None, int, RandomSource] = None,
        failure_model: Union[None, float, FailureModel] = None,
        query_accuracy: Optional[float] = None,
        final_samples: int = 15,
        fused: bool = True,
        max_lanes: int = DEFAULT_MAX_LANES,
        topology: Optional[Topology] = None,
        peer_sampling: str = "uniform",
        dtype=None,
        engine: Optional[str] = None,
        keep_history: bool = False,
        sketch_k: Optional[int] = None,
    ) -> None:
        source = rng if isinstance(rng, RandomSource) else RandomSource(rng)
        self._array = np.asarray(values, dtype=float)
        build_metrics = NetworkMetrics(keep_history=keep_history)
        with get_tracer().span("service_build", build_metrics) as span:
            span.annotate(n=int(self._array.size), eps=float(eps))
            self._result = estimate_all_ranks(
                self._array,
                eps=eps,
                rng=source.child(),
                failure_model=failure_model,
                query_accuracy=query_accuracy,
                final_samples=final_samples,
                fused=fused,
                max_lanes=max_lanes,
                topology=topology,
                peer_sampling=peer_sampling,
                dtype=dtype,
                engine=engine,
                metrics=build_metrics,
            )
        self._eps = float(eps)
        self._query_accuracy = (
            eps / 2.0 if query_accuracy is None else float(query_accuracy)
        )
        # One representative served value per grid lane: the median of the
        # per-node lane outputs (all nodes agree up to the ε guarantee, so
        # the median is a w.h.p.-correct network-level answer).
        grid_values = self._result.grid_values
        answers = np.empty(grid_values.shape[0], dtype=float)
        for row in range(grid_values.shape[0]):
            lane = grid_values[row]
            finite = lane[np.isfinite(lane)]
            answers[row] = float(np.median(finite)) if finite.size else float("nan")
        self._grid_answers = answers

        self._sketch: Optional[KLLSketch] = None
        if sketch_k is not None:
            with get_tracer().span("sketch_build") as span:
                span.annotate(k=int(sketch_k), items=int(self._array.size))
                sketch = KLLSketch(k=sketch_k, rng=source.child())
                sketch.extend(float(value) for value in self._array)
                self._sketch = sketch

        self.query_metrics = NetworkMetrics(keep_history=False)
        #: Serving-side latency histogram: one observation per answered
        #: query (quantile / rank_of), wall seconds.
        self.query_latency = LatencyHistogram()
        #: Answer-source counters: how many queries each backing store served.
        self.answers_grid = 0
        self.answers_sketch = 0

    # -- build-time facts ---------------------------------------------------------
    @property
    def n(self) -> int:
        return self._array.size

    @property
    def eps(self) -> float:
        return self._eps

    @property
    def grid(self) -> np.ndarray:
        """The served grid of quantile targets."""
        return self._result.grid

    @property
    def grid_answers(self) -> np.ndarray:
        """The representative served value per grid target."""
        return self._grid_answers

    @property
    def rounds(self) -> int:
        """Gossip rounds of the build pass — fixed, query-count independent."""
        return self._result.rounds

    @property
    def gossip_metrics(self) -> NetworkMetrics:
        """Round/message/bit accounting of the build pass."""
        return self._result.metrics

    @property
    def result(self) -> AllRanksResult:
        """The underlying all-quantiles pass result."""
        return self._result

    @property
    def sketch(self) -> Optional[KLLSketch]:
        return self._sketch

    @property
    def queries_answered(self) -> int:
        return self.query_metrics.queries

    def sketch_accuracy(self) -> Optional[float]:
        """The sketch's additive rank-error bound as a fraction, if attached."""
        if self._sketch is None or self._sketch.count == 0:
            return None
        return self._sketch.error_bound() / float(self._sketch.count)

    # -- the serving surface ------------------------------------------------------
    def quantile(self, phi: float, prefer: str = "auto") -> QueryAnswer:
        """Answer one φ-quantile query (no gossip; one accounted message).

        ``prefer`` selects the backing store: ``"grid"`` forces the fused
        grid bracket, ``"sketch"`` forces the KLL sketch (error if none is
        attached), ``"auto"`` (default) serves from whichever carries the
        tighter rank-accuracy bound for this φ.
        """
        started = perf_counter()
        if not 0.0 <= phi <= 1.0:
            raise ConfigurationError("phi must be in [0, 1]")
        if prefer not in ("auto", "grid", "sketch"):
            raise ConfigurationError(
                f"unknown answer source {prefer!r}; choose auto, grid or sketch"
            )
        if prefer == "sketch" and self._sketch is None:
            raise ConfigurationError(
                "no sketch attached; construct the service with sketch_k"
            )
        grid_answer = self._grid_bracket(phi)
        sketch_bound = self.sketch_accuracy()
        use_sketch = prefer == "sketch" or (
            prefer == "auto"
            and sketch_bound is not None
            and (grid_answer is None or sketch_bound < grid_answer.accuracy)
        )
        if use_sketch:
            answer = QueryAnswer(
                phi=float(phi),
                value=float(self._sketch.query(phi)),
                source="sketch",
                accuracy=float(sketch_bound),
            )
        elif grid_answer is not None:
            answer = grid_answer
        else:
            raise ConfigurationError(
                "the grid is empty and no sketch is attached; nothing can "
                "serve this query"
            )
        self.query_metrics.record_query(ANSWER_BITS)
        if answer.source == "sketch":
            self.answers_sketch += 1
        else:
            self.answers_grid += 1
        self.query_latency.observe(perf_counter() - started)
        return answer

    def batch_quantiles(
        self, phis: Sequence[float], prefer: str = "auto"
    ) -> List[QueryAnswer]:
        """Answer many concurrent φ queries — zero additional gossip rounds."""
        return [self.quantile(phi, prefer=prefer) for phi in phis]

    def rank_of(self, value: float) -> QueryAnswer:
        """Estimate the quantile (rank / n) of an arbitrary value.

        Uses the Corollary-1.5 bracket: the midpoint implied by how many
        grid answers lie below ``value``, accurate to ``eps`` plus the
        per-lane query accuracy.
        """
        started = perf_counter()
        below = int(np.count_nonzero(self._grid_answers < float(value)))
        estimate = float(np.clip((below + 0.5) * self._eps, 0.0, 1.0))
        answer = QueryAnswer(
            phi=estimate,
            value=float(value),
            source="grid",
            accuracy=self._eps + self._query_accuracy,
        )
        self.query_metrics.record_query(ANSWER_BITS)
        self.answers_grid += 1
        self.query_latency.observe(perf_counter() - started)
        return answer

    def self_quantiles(self) -> np.ndarray:
        """Every node's own-rank estimate from the build pass (no message)."""
        return self._result.quantile_estimates

    def _grid_bracket(self, phi: float) -> Optional[QueryAnswer]:
        grid = self._result.grid
        if grid.size == 0:
            return None
        index = int(np.argmin(np.abs(grid - phi)))
        distance = float(abs(grid[index] - phi))
        return QueryAnswer(
            phi=float(phi),
            value=float(self._grid_answers[index]),
            source="grid",
            accuracy=distance + self._query_accuracy,
            grid_index=index,
        )

    def summary(self) -> dict:
        """Flat build/serve accounting, convenient for the CLI and tests."""
        return {
            "n": self.n,
            "eps": self._eps,
            "grid_targets": int(self._result.grid.size),
            "chunks": self._result.chunks,
            "fused": self._result.fused,
            "rounds": self.rounds,
            "gossip_bits": self.gossip_metrics.total_bits,
            "queries_answered": self.queries_answered,
            "query_bits": self.query_metrics.total_bits,
            "sketch_items": self._sketch.size if self._sketch else 0,
            "answers_grid": self.answers_grid,
            "answers_sketch": self.answers_sketch,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QuantileService(n={self.n}, eps={self._eps}, "
            f"grid={self._result.grid.size}, rounds={self.rounds}, "
            f"queries={self.queries_answered})"
        )
