"""Deterministic iteration schedules of the two tournament phases.

Both tournament algorithms are driven by a deterministic schedule that every
node can compute locally from ``n``, ``phi`` and ``eps``:

* Algorithm 1 (2-TOURNAMENT) tracks ``h_i`` — the expected fraction of nodes
  holding values above the target band — with ``h_{i+1} = h_i^2``, and stops
  once ``h_i`` drops below ``T = 1/2 - eps``.  The last iteration is
  truncated: the tournament is only performed with probability ``delta``.
  Lemma 2.2 bounds the number of iterations by ``log_{7/4}(4/eps) + 2``.

* Algorithm 2 (3-TOURNAMENT) tracks ``l_i`` (and symmetrically ``h_i``) — the
  fraction of nodes outside the median band — with
  ``l_{i+1} = 3 l_i^2 - 2 l_i^3``, stopping once ``l_i <= T = n^{-1/3}``.
  Lemma 2.12 bounds the iterations by ``log_{11/8}(1/(4 eps)) + log_2 log_4 n``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List

from repro.exceptions import ConfigurationError
from repro.utils.mathutils import clamp, log_base


@dataclass(frozen=True)
class TwoTournamentIteration:
    """One iteration of Algorithm 1: target mass before/after and ``delta``."""

    index: int
    h_before: float
    h_after: float
    delta: float


@dataclass(frozen=True)
class TwoTournamentSchedule:
    """The full schedule of Algorithm 1 for a given ``(phi, eps)``.

    Attributes
    ----------
    direction:
        ``"min"`` when the heavy side is above the band (``phi <= 1/2``
        roughly): each node keeps the *minimum* of two sampled values, which
        squares the fraction of above-band nodes.  ``"max"`` is the
        symmetric case.
    h0:
        Initial mass of the heavy side.
    threshold:
        The stopping threshold ``T = 1/2 - eps``.
    iterations:
        Per-iteration records (``delta < 1`` only in the final iteration).
    """

    phi: float
    eps: float
    direction: str
    h0: float
    threshold: float
    iterations: List[TwoTournamentIteration] = field(default_factory=list)

    @property
    def num_iterations(self) -> int:
        return len(self.iterations)

    @property
    def rounds(self) -> int:
        """Gossip rounds consumed: two pulls per iteration."""
        return 2 * self.num_iterations


@dataclass(frozen=True)
class ThreeTournamentIteration:
    """One iteration of Algorithm 2: out-of-band masses before/after."""

    index: int
    l_before: float
    l_after: float


@dataclass(frozen=True)
class ThreeTournamentSchedule:
    """The full schedule of Algorithm 2 for a given ``(eps, n)``."""

    eps: float
    n: int
    l0: float
    threshold: float
    iterations: List[ThreeTournamentIteration] = field(default_factory=list)

    @property
    def num_iterations(self) -> int:
        return len(self.iterations)

    @property
    def rounds(self) -> int:
        """Gossip rounds consumed: three pulls per iteration."""
        return 3 * self.num_iterations


def _validate_phi_eps(phi: float, eps: float) -> None:
    if not 0.0 <= phi <= 1.0:
        raise ConfigurationError(f"phi must be in [0, 1], got {phi}")
    if not 0.0 < eps < 0.5:
        raise ConfigurationError(f"eps must be in (0, 0.5), got {eps}")


def two_tournament_schedule(phi: float, eps: float) -> TwoTournamentSchedule:
    """Compute the Algorithm 1 schedule for the ``eps``-approximate ``phi``-quantile.

    Following Section 2.1: with ``h0 = 1 - (phi + eps)`` and
    ``l0 = phi - eps``, the heavy side is the larger of the two; the
    tournament repeatedly squares its mass until it falls below
    ``T = 1/2 - eps``.  When the heavy side is already below ``T`` the
    schedule is empty and Phase I is skipped.
    """
    _validate_phi_eps(phi, eps)
    h0 = clamp(1.0 - (phi + eps), 0.0, 1.0)
    l0 = clamp(phi - eps, 0.0, 1.0)
    threshold = 0.5 - eps
    if h0 >= l0:
        direction, mass = "min", h0
    else:
        direction, mass = "max", l0

    iterations: List[TwoTournamentIteration] = []
    bound = two_tournament_iteration_bound(eps) + 8  # generous safety margin
    index = 0
    while mass > threshold:
        if index >= bound:
            raise ConfigurationError(
                "two-tournament schedule exceeded its iteration bound; "
                f"phi={phi}, eps={eps}"
            )
        nxt = mass * mass
        if mass - nxt <= 0:
            delta = 1.0
        else:
            delta = min(1.0, (mass - threshold) / (mass - nxt))
        iterations.append(
            TwoTournamentIteration(index=index, h_before=mass, h_after=nxt, delta=delta)
        )
        mass = nxt
        index += 1
    return TwoTournamentSchedule(
        phi=phi,
        eps=eps,
        direction=direction,
        h0=h0 if direction == "min" else l0,
        threshold=threshold,
        iterations=iterations,
    )


def two_tournament_iteration_bound(eps: float) -> int:
    """Lemma 2.2: the number of Algorithm 1 iterations is <= log_{7/4}(4/eps) + 2."""
    if not 0.0 < eps < 0.5:
        raise ConfigurationError(f"eps must be in (0, 0.5), got {eps}")
    return int(math.ceil(log_base(4.0 / eps, 7.0 / 4.0))) + 2


def three_tournament_schedule(eps: float, n: int) -> ThreeTournamentSchedule:
    """Compute the Algorithm 2 schedule for the ``eps``-approximate median.

    ``l0 = h0 = 1/2 - eps`` and ``l_{i+1} = 3 l_i^2 - 2 l_i^3`` until
    ``l_i <= T = n^{-1/3}``.
    """
    if n < 2:
        raise ConfigurationError("n must be at least 2")
    if not 0.0 < eps < 0.5:
        raise ConfigurationError(f"eps must be in (0, 0.5), got {eps}")
    l0 = 0.5 - eps
    threshold = n ** (-1.0 / 3.0)
    iterations: List[ThreeTournamentIteration] = []
    bound = three_tournament_iteration_bound(eps, n) + 12  # safety margin
    mass = l0
    index = 0
    while mass > threshold:
        if index >= bound:
            raise ConfigurationError(
                "three-tournament schedule exceeded its iteration bound; "
                f"eps={eps}, n={n}"
            )
        nxt = 3.0 * mass * mass - 2.0 * mass ** 3
        iterations.append(
            ThreeTournamentIteration(index=index, l_before=mass, l_after=nxt)
        )
        mass = nxt
        index += 1
    return ThreeTournamentSchedule(
        eps=eps, n=n, l0=l0, threshold=threshold, iterations=iterations
    )


def three_tournament_iteration_bound(eps: float, n: int) -> int:
    """Lemma 2.12: iterations <= log_{11/8}(1/(4 eps)) + log_2 log_4 n."""
    if n < 2:
        raise ConfigurationError("n must be at least 2")
    if not 0.0 < eps < 0.5:
        raise ConfigurationError(f"eps must be in (0, 0.5), got {eps}")
    first = max(0.0, log_base(1.0 / (4.0 * eps), 11.0 / 8.0))
    log4n = math.log(n) / math.log(4.0)
    second = max(0.0, math.log2(max(log4n, 1.0)))
    return int(math.ceil(first + second)) + 1


def approx_round_bound(eps: float, n: int, k_samples: int = 0) -> int:
    """Total round bound of the two-phase approximate algorithm.

    Two rounds per Phase-I iteration, three per Phase-II iteration, plus the
    final ``K`` sampling rounds.  Used by the analysis/experiment modules as
    the theoretical reference curve O(log log n + log 1/eps).
    """
    phase1 = 2 * two_tournament_iteration_bound(eps)
    phase2 = 3 * three_tournament_iteration_bound(eps / 4.0, n)
    return phase1 + phase2 + k_samples
