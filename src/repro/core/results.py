"""Result dataclasses returned by the core quantile algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

import numpy as np

from repro.gossip.metrics import NetworkMetrics


@dataclass
class PhaseIterationStats:
    """Measured band occupancies after one tournament iteration.

    ``predicted`` is the schedule's deterministic prediction (``h_i`` or
    ``l_i``); ``high_fraction`` / ``low_fraction`` / ``band_fraction`` are
    the empirically measured fractions of nodes whose current value lies
    above, below, or inside the target quantile band of the *initial*
    values.  The concentration lemmas (2.5, 2.10, 2.15) predict that the
    measured fractions track the schedule closely.
    """

    iteration: int
    predicted: float
    high_fraction: float
    low_fraction: float
    band_fraction: float


@dataclass
class TournamentPhaseResult:
    """Outcome of running one tournament phase on a network."""

    final_values: np.ndarray
    iterations: int
    rounds: int
    stats: List[PhaseIterationStats] = field(default_factory=list)


class ApproxQuantileResult:
    """Outcome of the ε-approximate φ-quantile computation (Theorem 1.2).

    Attributes
    ----------
    estimates:
        The value output by every node — ``(n,)``, or ``(n, L)`` for a
        fused multi-lane run.
    estimate:
        A representative output (the median of the per-node outputs; one
        per lane on multi-lane runs); all nodes agree up to the ε
        guarantee.  Computed lazily — the exact-quantile driver consumes
        only ``estimates`` and skips the O(n log n) medians.
    rounds:
        Total synchronous gossip rounds executed.
    phase1, phase2:
        Per-phase details (band trajectories), useful for the experiments.
    """

    def __init__(
        self,
        phi: float,
        eps: float,
        n: int,
        estimates: np.ndarray,
        rounds: int,
        metrics: NetworkMetrics,
        estimate: Union[None, float, np.ndarray] = None,
        phase1: Optional[TournamentPhaseResult] = None,
        phase2: Optional[TournamentPhaseResult] = None,
    ) -> None:
        self.phi = phi
        self.eps = eps
        self.n = n
        self.estimates = estimates
        self.rounds = rounds
        self.metrics = metrics
        self._estimate = estimate
        self.phase1 = phase1
        self.phase2 = phase2

    @property
    def estimate(self) -> Union[float, np.ndarray]:
        if self._estimate is None:
            self._estimate = self._median_of_lanes(self.estimates)
        return self._estimate

    @staticmethod
    def _median_of_lanes(estimates: np.ndarray) -> Union[float, np.ndarray]:
        if estimates.ndim == 1:
            finite = estimates[np.isfinite(estimates)]
            return float(np.median(finite)) if finite.size else float("nan")
        return np.array(
            [
                ApproxQuantileResult._median_of_lanes(lane)
                for lane in estimates.T
            ]
        )

    def summary(self) -> Dict[str, Union[float, np.ndarray]]:
        return {
            "phi": self.phi,
            "eps": self.eps,
            "n": self.n,
            "estimate": self.estimate,
            "rounds": self.rounds,
        }


@dataclass
class ExactIterationStats:
    """Per-iteration bookkeeping of Algorithm 3."""

    iteration: int
    eps: float
    valued_nodes: int
    multiplicity: int
    cumulative_multiplicity: int
    target_rank: int
    distinct_candidates: int
    rounds_so_far: int


@dataclass
class ExactQuantileResult:
    """Outcome of the exact φ-quantile computation (Theorem 1.1)."""

    phi: float
    n: int
    target_rank: int
    value: float
    rounds: int
    iterations: int
    metrics: NetworkMetrics
    fidelity: str
    history: List[ExactIterationStats] = field(default_factory=list)
    retries: int = 0

    def summary(self) -> Dict[str, float]:
        return {
            "phi": self.phi,
            "n": self.n,
            "target_rank": self.target_rank,
            "value": self.value,
            "rounds": self.rounds,
            "iterations": self.iterations,
            "retries": self.retries,
        }
