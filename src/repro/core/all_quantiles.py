"""Corollary 1.5 — every node estimates its own quantile (rank) up to ±ε.

Running the ε-approximate quantile algorithm for the grid of targets
``phi = eps, 2 eps, 3 eps, ...`` lets every node bracket its own value
between two returned grid quantiles and hence estimate its own rank up to
an additive O(ε), in ``(1/eps) * O(log log n + log 1/eps)`` rounds overall.

One-pass execution
------------------
The grid is embarrassingly fusable: all ``L = ceil(1/eps) - 1`` targets are
queries over the *same* value multiset, so they column-stack into a single
multi-lane :class:`~repro.gossip.network.GossipNetwork` whose lanes run
their per-target ``(phi, eps)`` schedules on one shared partner stream —
exactly the machinery the exact-quantile driver uses for its ε/2 sandwich
pair, applied to the whole grid.  A fused run executes max-of-lanes rounds
instead of the sequential sum, collapsing the corollary's ``1/eps`` factor
out of the round count (each message now carries the lanes' working
values, which the payload-bit accounting charges honestly).  Lanes are
chunked (``max_lanes``) so the per-round ``(n, k, L)`` gather blocks stay
memory-bounded at large ``n``; the default keeps a 3-pull round under
~0.75 KiB per node in float64.

The sequential path (``fused=False``) is retained as the reference
implementation; its seeded single-lane streams are pinned bit-for-bit in
``tests/test_engine_equivalence.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.approx_quantile import approximate_quantile
from repro.exceptions import ConfigurationError
from repro.faults.injectors import FaultInjector
from repro.gossip.engine import ENGINE_CHOICES, get_default_engine, set_default_engine
from repro.gossip.failures import FailureModel
from repro.gossip.metrics import NetworkMetrics
from repro.gossip.network import GossipNetwork, resolve_value_dtype
from repro.obs.tracer import get_tracer
from repro.topology.graphs import Topology
from repro.utils.rand import RandomSource

#: Default lane-chunk width of the fused path.  A 3-pull tournament round
#: gathers ``(n, 3, L)`` values; at L = 32 lanes of float64 that is 768
#: bytes per node per round — a full 10⁶-node grid pass stays under ~1 GiB
#: of transient gather blocks instead of the unchunked grid's L ≈ 1/eps
#: lanes blowing up memory at fine eps.
DEFAULT_MAX_LANES = 32


@dataclass
class AllRanksResult:
    """Per-node self-rank estimates.

    Attributes
    ----------
    quantile_estimates:
        ``(n,)`` array: each node's estimate of its own quantile in [0, 1].
    grid:
        The grid of target quantiles that was queried.
    grid_values:
        Per-node value estimates for each grid point, shape ``(len(grid), n)``.
    rounds:
        Gossip rounds executed by this computation (max-of-lanes per chunk
        on the fused path, sum over grid queries on the sequential path).
    round_windows:
        One ``[start, stop)`` round window per tournament run — per lane
        chunk when fused, per grid query when sequential — in the indices
        of ``metrics`` (absolute, so attribution survives a caller-supplied
        metrics object that already carries rounds).
    fused:
        Whether the grid executed as chunked multi-lane tournaments.
    chunks:
        Number of tournament runs executed (``len(round_windows)``).
    """

    quantile_estimates: np.ndarray
    grid: np.ndarray
    grid_values: np.ndarray
    rounds: int
    metrics: NetworkMetrics
    eps: float
    round_windows: List[Tuple[int, int]] = field(default_factory=list)
    fused: bool = False
    chunks: int = 0

    @property
    def n(self) -> int:
        return self.quantile_estimates.size


def rank_grid(eps: float) -> np.ndarray:
    """The Corollary-1.5 target grid ``eps, 2 eps, ...`` (strictly below 1)."""
    grid_points = int(math.ceil(1.0 / eps)) - 1
    grid = np.array([(j + 1) * eps for j in range(grid_points)], dtype=float)
    return grid[grid < 1.0]


def _self_rank_from_grid(
    array: np.ndarray, grid_values: np.ndarray, eps: float
) -> np.ndarray:
    """Midpoint-of-bracket rank estimates from per-node grid estimates.

    Each node counts how many of *its own* grid estimates lie below its
    value; the midpoint of the implied bracket is its rank estimate.
    """
    below = np.zeros(array.size, dtype=float)
    for row in range(grid_values.shape[0]):
        below += (grid_values[row] < array).astype(float)
    return np.clip((below + 0.5) * eps, 0.0, 1.0)


def estimate_all_ranks(
    values: Union[np.ndarray, list, tuple],
    eps: float,
    rng: Union[None, int, RandomSource] = None,
    failure_model: Union[None, float, FailureModel] = None,
    query_accuracy: Optional[float] = None,
    final_samples: int = 15,
    fused: bool = True,
    max_lanes: int = DEFAULT_MAX_LANES,
    topology: Optional[Topology] = None,
    peer_sampling: str = "uniform",
    dtype=None,
    engine: Optional[str] = None,
    keep_history: bool = False,
    metrics: Optional[NetworkMetrics] = None,
    faults: Optional[FaultInjector] = None,
) -> AllRanksResult:
    """Let every node estimate the quantile of its own value up to ~±1.5 eps.

    Parameters
    ----------
    values:
        One value per node.
    eps:
        Grid spacing: ``ceil(1/eps) - 1`` grid targets are queried.  The
        combined self-rank error is at most ``eps + query_accuracy`` (plus
        the w.h.p. failure probability).
    query_accuracy:
        Accuracy of each individual grid query; defaults to ``eps / 2``.
    fused:
        ``True`` (default) column-stacks the grid into multi-lane
        tournaments — ``ceil(grid / max_lanes)`` runs, each executing
        max-of-lanes rounds.  ``False`` runs the grid as sequential
        single-lane queries (the pre-fusion reference; bit-identical
        streams are pinned in the equivalence suite).
    max_lanes:
        Lane-chunk width of the fused path (see :data:`DEFAULT_MAX_LANES`).
        ``max_lanes=1`` reproduces the sequential estimates exactly under
        the same seed (one chunk per grid point, same child streams).
    topology / peer_sampling:
        Optional gossip topology, forwarded to every underlying network
        (the complete graph when omitted — the paper's model).
    dtype:
        Value dtype for the gossip networks (float64 default, float32
        opt-in), forwarded like the other drivers' ``dtype=``.
    engine:
        Optional engine override (``"auto"``/``"loop"``/``"vectorized"``)
        applied as the global engine default for the duration of the call —
        the convention every other driver follows.  The tournament pull
        surface itself is engine-agnostic (one vectorized gather per
        round); the override exists for parity and for engine-consulting
        sub-protocols layered on top.
    keep_history / metrics:
        ``keep_history=True`` keeps per-round records on the internal
        metrics object; alternatively pass an existing ``metrics`` to
        accumulate into (its ``keep_history`` wins).  ``rounds`` and
        ``round_windows`` report only this computation's rounds either way.
    faults:
        Optional :class:`~repro.faults.FaultInjector` attached to every
        underlying network.  The injector's private stream is shared across
        chunks (round indices keep increasing through the shared metrics
        object), so a seeded chaos schedule spans the whole grid pass and
        replays bit-for-bit.
    """
    if not 0.0 < eps < 0.5:
        raise ConfigurationError("eps must be in (0, 0.5)")
    array = np.asarray(values, dtype=float)
    if array.ndim != 1 or array.size < 4:
        raise ConfigurationError("values must be a 1-d array with at least 4 entries")
    if query_accuracy is None:
        query_accuracy = eps / 2.0
    if not 0.0 < query_accuracy < 0.5:
        raise ConfigurationError("query_accuracy must be in (0, 0.5)")
    if max_lanes < 1:
        raise ConfigurationError("max_lanes must be at least 1")
    if engine is not None and engine not in ENGINE_CHOICES:
        raise ConfigurationError(
            f"unknown engine {engine!r}; choose from {ENGINE_CHOICES}"
        )
    resolve_value_dtype(dtype)  # reject unsupported dtypes before any work
    n = array.size
    if topology is not None and topology.n != n:
        raise ConfigurationError(
            f"topology has {topology.n} nodes but values has {n}"
        )

    source = rng if isinstance(rng, RandomSource) else RandomSource(rng)
    if metrics is None:
        metrics = NetworkMetrics(keep_history=keep_history)
    rounds_before = metrics.rounds
    grid = rank_grid(eps)

    previous_engine = get_default_engine()
    if engine is not None:
        set_default_engine(engine)
    try:
        with get_tracer().span("all_ranks", metrics) as span:
            span.annotate(n=n, eps=eps, grid=int(grid.size), fused=fused)
            if fused:
                grid_values, windows = estimate_grid_subset(
                    array, grid, query_accuracy, final_samples, source,
                    failure_model, metrics, max_lanes, topology,
                    peer_sampling, dtype, faults,
                )
            else:
                grid_values, windows = _run_sequential(
                    array, grid, query_accuracy, final_samples, source,
                    failure_model, metrics, topology, peer_sampling, dtype,
                    faults,
                )
    finally:
        if engine is not None:
            set_default_engine(previous_engine)

    quantile_estimates = _self_rank_from_grid(array, grid_values, eps)
    return AllRanksResult(
        quantile_estimates=quantile_estimates,
        grid=grid,
        grid_values=grid_values,
        rounds=metrics.rounds - rounds_before,
        metrics=metrics,
        eps=eps,
        round_windows=windows,
        fused=fused,
        chunks=len(windows),
    )


def estimate_grid_subset(
    array, targets, query_accuracy, final_samples, source, failure_model,
    metrics, max_lanes, topology=None, peer_sampling="uniform", dtype=None,
    faults: Optional[FaultInjector] = None,
) -> Tuple[np.ndarray, List[Tuple[int, int]]]:
    """Chunked multi-lane execution: one tournament per ``max_lanes`` targets.

    The fused engine behind :func:`estimate_all_ranks`, exposed so callers
    that already know *which* grid targets need (re)estimating — notably
    the :class:`~repro.core.service.QuantileService` incremental epoch
    rebuild, which re-runs only the lanes whose brackets drifted — can run
    exactly those lanes without paying for the full grid.  ``targets`` may
    be any subset of the grid (or arbitrary quantiles); one ``(len(targets),
    n)`` estimate matrix plus the per-chunk round windows come back.

    Each chunk draws a fresh ``source.child()`` stream and runs under a
    ``grid_chunk`` tracer span — the same layout as the full pass, so a
    subset run over the full grid is bit-identical to
    ``estimate_all_ranks(fused=True)`` under the same seed.
    """
    targets = np.asarray(targets, dtype=float)
    n = array.size
    per_grid: List[np.ndarray] = []
    windows: List[Tuple[int, int]] = []
    tracer = get_tracer()
    for start in range(0, targets.size, max_lanes):
        chunk = targets[start:start + max_lanes]
        lanes = chunk.size
        # Every lane starts from the same value multiset; the network copies
        # the broadcast view into its own (n, lanes) matrix.
        stacked = np.broadcast_to(array[:, None], (n, lanes))
        network = GossipNetwork(
            stacked,
            rng=source.child(),
            failure_model=failure_model,
            metrics=metrics,
            topology=topology,
            peer_sampling=peer_sampling,
            dtype=dtype,
            faults=faults,
        )
        window_start = metrics.rounds
        with tracer.span("grid_chunk", metrics) as span:
            span.annotate(start=start, lanes=lanes)
            # repro-lint: disable=thread-kwargs -- dtype/metrics/topology are threaded through the pre-built multi-lane network above; alongside network= a topology is rejected and dtype/metrics are carried by the network.
            result = approximate_quantile(
                network=network,
                phi=[float(phi) for phi in chunk],
                eps=query_accuracy,
                final_samples=final_samples,
            )
        windows.append((window_start, metrics.rounds))
        per_grid.append(np.asarray(result.estimates).T)  # (lanes, n)
    grid_values = (
        np.vstack(per_grid) if per_grid else np.empty((0, n), dtype=float)
    )
    return grid_values, windows


def _run_sequential(
    array, grid, query_accuracy, final_samples, source, failure_model,
    metrics, topology, peer_sampling, dtype, faults=None,
) -> Tuple[np.ndarray, List[Tuple[int, int]]]:
    """The pre-fusion reference: one single-lane tournament per grid target.

    With default topology/dtype this consumes exactly the historical child
    streams, so seeded runs stay bit-identical to the PR-5 tree (pinned).
    """
    n = array.size
    per_grid: List[np.ndarray] = []
    windows: List[Tuple[int, int]] = []
    for phi in grid:
        network = GossipNetwork(
            array,
            rng=source.child(),
            failure_model=failure_model,
            metrics=metrics,
            topology=topology,
            peer_sampling=peer_sampling,
            dtype=dtype,
            faults=faults,
        )
        window_start = metrics.rounds
        # repro-lint: disable=thread-kwargs -- dtype/metrics/topology are threaded through the pre-built single-lane network above (the historical child-stream layout, pinned by sha256); alongside network= a topology is rejected.
        result = approximate_quantile(
            network=network,
            phi=float(phi),
            eps=query_accuracy,
            final_samples=final_samples,
        )
        windows.append((window_start, metrics.rounds))
        per_grid.append(result.estimates)
    grid_values = (
        np.vstack(per_grid) if per_grid else np.empty((0, n), dtype=float)
    )
    return grid_values, windows


def true_self_quantiles(values: Union[np.ndarray, list, tuple]) -> np.ndarray:
    """The exact quantile of every node's own value (for error measurement).

    Ties get the *average* (mid) rank of their group: gossip hands equal
    values equal grid estimates, so giving duplicates distinct index-ordered
    ranks (the pre-PR-6 behaviour) charged the estimator up to
    ``(multiplicity - 1) / n`` of phantom error on duplicate-heavy
    workloads — half the heaviest Zipf bucket, regardless of eps.
    """
    array = np.asarray(values, dtype=float)
    if array.ndim != 1 or array.size == 0:
        raise ConfigurationError("values must be a non-empty 1-d array")
    n = array.size
    order = np.argsort(array, kind="stable")
    ordered = array[order]
    is_group_start = np.empty(n, dtype=bool)
    is_group_start[0] = True
    np.not_equal(ordered[1:], ordered[:-1], out=is_group_start[1:])
    group_start = np.flatnonzero(is_group_start)
    group_stop = np.append(group_start[1:], n)
    # ranks within a tie group spanning sorted positions [start, stop) are
    # start+1 .. stop; their average is (start + 1 + stop) / 2.
    midranks = (group_start + 1 + group_stop) / 2.0
    ranks = np.empty(n, dtype=float)
    ranks[order] = np.repeat(midranks, group_stop - group_start)
    return ranks / n
