"""Corollary 1.5 — every node estimates its own quantile (rank) up to ±ε.

Running the ε-approximate quantile algorithm for the grid of targets
``phi = eps, 2 eps, 3 eps, ...`` lets every node bracket its own value
between two returned grid quantiles and hence estimate its own rank up to
an additive O(ε), in ``(1/eps) * O(log log n + log 1/eps)`` rounds overall.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Union

import numpy as np

from repro.core.approx_quantile import approximate_quantile
from repro.exceptions import ConfigurationError
from repro.gossip.failures import FailureModel
from repro.gossip.metrics import NetworkMetrics
from repro.gossip.network import GossipNetwork
from repro.utils.rand import RandomSource


@dataclass
class AllRanksResult:
    """Per-node self-rank estimates.

    Attributes
    ----------
    quantile_estimates:
        ``(n,)`` array: each node's estimate of its own quantile in [0, 1].
    grid:
        The grid of target quantiles that was queried.
    grid_values:
        Per-node value estimates for each grid point, shape ``(len(grid), n)``.
    rounds:
        Total gossip rounds across all grid queries.
    """

    quantile_estimates: np.ndarray
    grid: np.ndarray
    grid_values: np.ndarray
    rounds: int
    metrics: NetworkMetrics
    eps: float

    @property
    def n(self) -> int:
        return self.quantile_estimates.size


def estimate_all_ranks(
    values: Union[np.ndarray, list, tuple],
    eps: float,
    rng: Union[None, int, RandomSource] = None,
    failure_model: Union[None, float, FailureModel] = None,
    query_accuracy: Optional[float] = None,
    final_samples: int = 15,
) -> AllRanksResult:
    """Let every node estimate the quantile of its own value up to ~±1.5 eps.

    Parameters
    ----------
    values:
        One value per node.
    eps:
        Grid spacing: ``ceil(1/eps) - 1`` approximate quantile computations
        are performed.  The combined self-rank error is at most
        ``eps + query_accuracy`` (plus the w.h.p. failure probability).
    query_accuracy:
        Accuracy of each individual grid query; defaults to ``eps / 2``.
    """
    if not 0.0 < eps < 0.5:
        raise ConfigurationError("eps must be in (0, 0.5)")
    array = np.asarray(values, dtype=float)
    if array.ndim != 1 or array.size < 4:
        raise ConfigurationError("values must be a 1-d array with at least 4 entries")
    if query_accuracy is None:
        query_accuracy = eps / 2.0
    if not 0.0 < query_accuracy < 0.5:
        raise ConfigurationError("query_accuracy must be in (0, 0.5)")

    n = array.size
    source = rng if isinstance(rng, RandomSource) else RandomSource(rng)
    metrics = NetworkMetrics(keep_history=False)

    grid_points = int(math.ceil(1.0 / eps)) - 1
    grid = np.array([(j + 1) * eps for j in range(grid_points)], dtype=float)
    grid = grid[grid < 1.0]

    per_grid_estimates: List[np.ndarray] = []
    for phi in grid:
        network = GossipNetwork(
            array,
            rng=source.child(),
            failure_model=failure_model,
            metrics=metrics,
            keep_history=False,
        )
        result = approximate_quantile(
            network=network,
            phi=float(phi),
            eps=query_accuracy,
            final_samples=final_samples,
        )
        per_grid_estimates.append(result.estimates)

    grid_values = (
        np.vstack(per_grid_estimates)
        if per_grid_estimates
        else np.empty((0, n), dtype=float)
    )

    # Each node counts how many of *its own* grid estimates lie below its
    # value; the midpoint of the implied bracket is its rank estimate.
    below = np.zeros(n, dtype=float)
    for row in range(grid_values.shape[0]):
        below += (grid_values[row] < array).astype(float)
    quantile_estimates = np.clip((below + 0.5) * eps, 0.0, 1.0)

    return AllRanksResult(
        quantile_estimates=quantile_estimates,
        grid=grid,
        grid_values=grid_values,
        rounds=metrics.rounds,
        metrics=metrics,
        eps=eps,
    )


def true_self_quantiles(values: Union[np.ndarray, list, tuple]) -> np.ndarray:
    """The exact quantile of every node's own value (for error measurement)."""
    array = np.asarray(values, dtype=float)
    if array.ndim != 1 or array.size == 0:
        raise ConfigurationError("values must be a non-empty 1-d array")
    n = array.size
    order = np.argsort(array, kind="stable")
    ranks = np.empty(n, dtype=float)
    ranks[order] = np.arange(1, n + 1, dtype=float)
    return ranks / n
