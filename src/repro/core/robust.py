"""Section 5 — failure-tolerant tournament algorithms (Theorem 1.4).

Under the failure model of Section 5 (node ``v`` fails in round ``i`` with
probability ``p_{v,i} <= mu``), the tournament algorithms are made robust by
pulling ``Theta(1/(1-mu) * log(1/(1-mu)))`` partners per iteration instead
of two or three.  A pull is *good* if the pulling node did not fail and the
contacted node was good at the end of the previous iteration; a node stays
good as long as it collects enough good pulls, and only good pulls feed the
tournament.  Lemma 5.2 shows a constant fraction of nodes stays good
throughout, so all concentration arguments carry over with ``n`` replaced by
the good-node count.

After the final vote, ``t`` extra spreading rounds let all but an expected
``n / 2^t`` nodes adopt an answer from a node that already has one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.core.schedules import three_tournament_schedule, two_tournament_schedule
from repro.exceptions import ConfigurationError
from repro.faults.injectors import FaultInjector
from repro.gossip.failures import FailureModel, resolve_failure_model
from repro.gossip.metrics import NetworkMetrics
from repro.gossip.network import GossipNetwork
from repro.utils.rand import RandomSource


def default_pulls_per_iteration(mu: float) -> int:
    """The paper's Θ(1/(1-µ) · log(1/(1-µ))) pull count (Lemma 5.2), >= 4."""
    if not 0.0 <= mu < 1.0:
        raise ConfigurationError("mu must be in [0, 1)")
    if mu == 0.0:
        return 4
    scale = 1.0 / (1.0 - mu)
    return max(4, int(math.ceil(4.0 * scale * math.log(4.0 * scale))) + 1)


@dataclass
class RobustQuantileResult:
    """Outcome of the robust ε-approximate φ-quantile computation."""

    phi: float
    eps: float
    n: int
    estimates: np.ndarray          # NaN for nodes that never learned an answer
    estimate: float
    rounds: int
    metrics: NetworkMetrics
    good_fraction: float
    answered_fraction: float
    pulls_per_iteration: int

    def summary(self) -> dict:
        return {
            "phi": self.phi,
            "eps": self.eps,
            "n": self.n,
            "rounds": self.rounds,
            "good_fraction": self.good_fraction,
            "answered_fraction": self.answered_fraction,
        }


def robust_approximate_quantile(
    values: Union[np.ndarray, list, tuple],
    phi: float,
    eps: float,
    failure_model: Union[float, FailureModel],
    rng: Union[None, int, RandomSource] = None,
    pulls_per_iteration: Optional[int] = None,
    final_samples: int = 15,
    extra_spread_rounds: int = 12,
    dtype=None,
    faults: Optional[FaultInjector] = None,
) -> RobustQuantileResult:
    """Theorem 1.4: ε-approximate φ-quantile despite per-round node failures.

    Parameters
    ----------
    failure_model:
        Either a float ``mu`` (uniform per-round failure probability) or a
        :class:`FailureModel`.
    pulls_per_iteration:
        Number of partners pulled per tournament iteration; defaults to the
        paper's Θ(1/(1-µ) log 1/(1-µ)).
    extra_spread_rounds:
        The parameter ``t`` of Theorem 1.4: after the computation, ``t``
        extra rounds in which answer-less nodes pull answers, leaving all
        but ~``n/2^t`` nodes with a correct output.
    dtype:
        Value dtype of the underlying gossip network (float64 default,
        float32 opt-in); the returned estimates stay float64.
    faults:
        Optional :class:`~repro.faults.FaultInjector` layered on top of the
        Section-5 failure model — the Theorem-1.4 machinery was designed
        for exactly this abuse: ``pulls_per_iteration`` sizing uses the
        *combined* suppression bound (``failure_model`` mu unioned with the
        injector's crash/drop bound) so good-pull counting stays honest
        under injected chaos.
    """
    if not 0.0 <= phi <= 1.0:
        raise ConfigurationError("phi must be in [0, 1]")
    if not 0.0 < eps < 0.5:
        raise ConfigurationError("eps must be in (0, 0.5)")
    model = resolve_failure_model(failure_model)
    if pulls_per_iteration is None:
        # Size pulls for the union suppression rate: a pull can be lost to
        # the failure model OR to an injected crash/drop, independently.
        mu = model.mu
        if faults is not None:
            mu = min(1.0 - (1.0 - mu) * (1.0 - faults.mu_bound()), 0.999)
        pulls_per_iteration = default_pulls_per_iteration(mu)
    if pulls_per_iteration < 3:
        raise ConfigurationError("pulls_per_iteration must be at least 3")
    if final_samples < 1 or final_samples % 2 == 0:
        raise ConfigurationError("final_samples must be a positive odd integer")

    array = np.asarray(values, dtype=float)
    if array.ndim != 1 or array.size < 4:
        raise ConfigurationError("values must be a 1-d array with at least 4 entries")
    n = array.size
    network = GossipNetwork(
        array,
        rng=rng,
        failure_model=model,
        keep_history=False,
        dtype=dtype,
        faults=faults,
    )
    good = np.ones(n, dtype=bool)
    k_pulls = int(pulls_per_iteration)

    def good_pull_mask(batch) -> np.ndarray:
        """Which pulls are good: the puller acted and the partner was good."""
        return batch.ok & good[batch.partners]

    def first_good(batch, goodmask, count: int):
        """Indices (per node) of the first ``count`` good pulls, or None."""
        chosen = np.full((n, count), -1, dtype=int)
        enough = np.zeros(n, dtype=bool)
        for node in range(n):
            cols = np.nonzero(goodmask[node])[0]
            if cols.size >= count:
                chosen[node] = cols[:count]
                enough[node] = True
        return chosen, enough

    # ---- Phase I: robust 2-TOURNAMENT -----------------------------------------
    schedule1 = two_tournament_schedule(phi, eps)
    take_min = schedule1.direction == "min"
    for iteration in schedule1.iterations:
        current = network.snapshot()
        batch = network.pull(k_pulls, label="robust-2-tournament")
        goodmask = good_pull_mask(batch)
        chosen, enough = first_good(batch, goodmask, 2)
        new_good = good & enough
        new_values = current.copy()
        idx = np.nonzero(new_good)[0]
        if idx.size:
            first = batch.values[idx, chosen[idx, 0]]
            second = batch.values[idx, chosen[idx, 1]]
            winners = np.minimum(first, second) if take_min else np.maximum(first, second)
            if iteration.delta >= 1.0:
                new_values[idx] = winners
            else:
                coin = network.rng.random(idx.size)
                new_values[idx] = np.where(coin < iteration.delta, winners, first)
        good = new_good
        network.set_values(new_values)

    # ---- Phase II: robust 3-TOURNAMENT ----------------------------------------
    schedule2 = three_tournament_schedule(eps / 4.0, n)
    for _iteration in schedule2.iterations:
        current = network.snapshot()
        batch = network.pull(k_pulls, label="robust-3-tournament")
        goodmask = good_pull_mask(batch)
        chosen, enough = first_good(batch, goodmask, 3)
        new_good = good & enough
        new_values = current.copy()
        idx = np.nonzero(new_good)[0]
        if idx.size:
            picked = np.stack(
                [batch.values[idx, chosen[idx, j]] for j in range(3)], axis=1
            )
            new_values[idx] = np.sort(picked, axis=1, kind="stable")[:, 1]
        good = new_good
        network.set_values(new_values)

    # ---- Final vote ------------------------------------------------------------
    vote_pulls = max(k_pulls, int(math.ceil(final_samples / max(1e-9, 1.0 - model.mu))) + 2)
    current = network.snapshot()
    batch = network.pull(vote_pulls, label="robust-vote")
    goodmask = good_pull_mask(batch)
    chosen, enough = first_good(batch, goodmask, final_samples)
    estimates = np.full(n, np.nan)
    idx = np.nonzero(good & enough)[0]
    if idx.size:
        picked = np.stack(
            [batch.values[idx, chosen[idx, j]] for j in range(final_samples)], axis=1
        )
        estimates[idx] = np.sort(picked, axis=1, kind="stable")[:, final_samples // 2]

    # ---- Extra spreading rounds (the "+t" of Theorem 1.4) ----------------------
    for _ in range(int(extra_spread_rounds)):
        have = np.isfinite(estimates)
        if np.all(have):
            break
        batch = network.pull(1, label="robust-spread", values=estimates)
        pulled = batch.values[:, 0]
        adopt = (~have) & batch.ok[:, 0] & np.isfinite(pulled)
        estimates[adopt] = pulled[adopt]

    finite = estimates[np.isfinite(estimates)]
    estimate = float(np.median(finite)) if finite.size else float("nan")
    return RobustQuantileResult(
        phi=phi,
        eps=eps,
        n=n,
        estimates=estimates,
        estimate=estimate,
        rounds=network.metrics.rounds,
        metrics=network.metrics,
        good_fraction=float(np.mean(good)),
        answered_fraction=float(np.mean(np.isfinite(estimates))),
        pulls_per_iteration=k_pulls,
    )
