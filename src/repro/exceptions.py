"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without also swallowing programming
errors such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """Raised when an algorithm or simulator is configured inconsistently.

    Examples include a quantile outside ``[0, 1]``, a negative node count,
    or an approximation parameter that the algorithm cannot honour.
    """


class ProtocolError(ReproError):
    """Raised when a gossip protocol violates the simulator's contract.

    The engine raises this when a protocol sends messages outside its
    declared budget, addresses a node that does not exist, or reports an
    inconsistent termination state.
    """


class ConvergenceError(ReproError):
    """Raised when an iterative algorithm fails to converge within its budget.

    The exact quantile algorithm and the token distribution process both
    have high-probability round bounds; if a run exceeds a generous multiple
    of that bound the library raises this error rather than looping forever.
    """


class MessageSizeExceeded(ProtocolError):
    """Raised when a protocol exceeds the per-message bit budget it declared."""

    def __init__(self, used_bits: int, budget_bits: int) -> None:
        super().__init__(
            f"message of {used_bits} bits exceeds the declared budget of "
            f"{budget_bits} bits"
        )
        self.used_bits = used_bits
        self.budget_bits = budget_bits
