"""Named workload registry used by the experiment runner and the CLI."""

from __future__ import annotations

from typing import Callable, Dict, Union

import numpy as np

from repro.datasets.generators import (
    adversarial_shifted,
    distinct_uniform,
    gaussian_values,
    sensor_temperature_field,
    uniform_values,
    zipf_values,
)
from repro.exceptions import ConfigurationError
from repro.utils.rand import RandomSource

WorkloadFactory = Callable[..., np.ndarray]

WORKLOADS: Dict[str, WorkloadFactory] = {
    "distinct": distinct_uniform,
    "uniform": uniform_values,
    "gaussian": gaussian_values,
    "zipf": zipf_values,
    "adversarial": adversarial_shifted,
    "sensor": sensor_temperature_field,
}


def make_workload(
    name: str,
    n: int,
    rng: Union[None, int, RandomSource] = None,
    **kwargs,
) -> np.ndarray:
    """Instantiate a named workload.

    Parameters
    ----------
    name:
        One of ``distinct``, ``uniform``, ``gaussian``, ``zipf``,
        ``adversarial``, ``sensor``.
    n:
        Number of nodes / values.
    kwargs:
        Extra parameters forwarded to the generator (e.g. ``eps`` and
        ``scenario`` for the adversarial workload).
    """
    try:
        factory = WORKLOADS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown workload {name!r}; available: {sorted(WORKLOADS)}"
        ) from None
    return factory(n, rng=rng, **kwargs)
