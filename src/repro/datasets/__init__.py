"""Workload generators for experiments, examples and tests."""

from repro.datasets.generators import (
    adversarial_shifted,
    distinct_uniform,
    gaussian_values,
    sensor_temperature_field,
    uniform_values,
    zipf_values,
)
from repro.datasets.workloads import WORKLOADS, make_workload

__all__ = [
    "adversarial_shifted",
    "distinct_uniform",
    "gaussian_values",
    "sensor_temperature_field",
    "uniform_values",
    "zipf_values",
    "WORKLOADS",
    "make_workload",
]
