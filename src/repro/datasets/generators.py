"""Value generators.

The paper assumes every node holds one O(log n)-bit value and (w.l.o.g.)
that all values are distinct.  These generators produce the workloads used
in the experiments: distinct permutations (the clean theoretical setting),
continuous distributions (uniform, Gaussian, heavy-tailed Zipf), the
adversarial two-scenario values of the lower bound, and the
sensor-temperature field the introduction motivates.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.rand import RandomSource


def _rng(rng: Union[None, int, RandomSource]) -> RandomSource:
    return rng if isinstance(rng, RandomSource) else RandomSource(rng)


def _check_n(n: int) -> None:
    if n < 2:
        raise ConfigurationError("n must be at least 2")


def distinct_uniform(n: int, rng: Union[None, int, RandomSource] = None) -> np.ndarray:
    """A uniformly random permutation of {1, ..., n} (all values distinct)."""
    _check_n(n)
    return _rng(rng).permutation(np.arange(1, n + 1, dtype=float))


def uniform_values(
    n: int,
    low: float = 0.0,
    high: float = 1.0,
    rng: Union[None, int, RandomSource] = None,
) -> np.ndarray:
    """Independent uniform values in ``[low, high)``."""
    _check_n(n)
    if high <= low:
        raise ConfigurationError("high must exceed low")
    source = _rng(rng)
    return low + (high - low) * source.random(n)


def gaussian_values(
    n: int,
    mean: float = 0.0,
    std: float = 1.0,
    rng: Union[None, int, RandomSource] = None,
) -> np.ndarray:
    """Independent Gaussian values."""
    _check_n(n)
    if std <= 0:
        raise ConfigurationError("std must be positive")
    source = _rng(rng)
    return mean + std * source.generator.standard_normal(n)


def zipf_values(
    n: int,
    exponent: float = 1.5,
    rng: Union[None, int, RandomSource] = None,
) -> np.ndarray:
    """Heavy-tailed values (Zipf/Pareto-like), stressing skewed quantiles."""
    _check_n(n)
    if exponent <= 1.0:
        raise ConfigurationError("exponent must exceed 1")
    source = _rng(rng)
    uniforms = np.clip(source.random(n), 1e-12, 1.0)
    return (1.0 / uniforms) ** (1.0 / (exponent - 1.0))


def adversarial_shifted(
    n: int,
    eps: float,
    scenario: str = "a",
    rng: Union[None, int, RandomSource] = None,
) -> np.ndarray:
    """The Theorem 1.3 adversarial values: {1..n} or the εn-shifted copy."""
    _check_n(n)
    if not 0.0 < eps < 0.5:
        raise ConfigurationError("eps must be in (0, 0.5)")
    if scenario not in ("a", "b"):
        raise ConfigurationError("scenario must be 'a' or 'b'")
    base = _rng(rng).permutation(np.arange(1, n + 1, dtype=float))
    if scenario == "a":
        return base
    return base + int(np.floor(2 * eps * n))


def sensor_temperature_field(
    n: int,
    base_temperature: float = 21.0,
    gradient: float = 6.0,
    noise_std: float = 0.8,
    hot_spot_fraction: float = 0.05,
    hot_spot_excess: float = 15.0,
    rng: Union[None, int, RandomSource] = None,
) -> np.ndarray:
    """The introduction's motivating workload: a temperature sensor field.

    Sensors are placed on a line across the monitored object; the
    temperature has a smooth spatial gradient, Gaussian measurement noise
    and a small cluster of overheating sensors (the "top 10% needs special
    attention" scenario of the paper's introduction).
    """
    _check_n(n)
    if not 0.0 <= hot_spot_fraction < 1.0:
        raise ConfigurationError("hot_spot_fraction must be in [0, 1)")
    source = _rng(rng)
    positions = np.linspace(0.0, 1.0, n)
    temperatures = (
        base_temperature
        + gradient * np.sin(np.pi * positions)
        + noise_std * source.generator.standard_normal(n)
    )
    hot = int(round(hot_spot_fraction * n))
    if hot > 0:
        hot_idx = source.choice(np.arange(n), size=hot, replace=False)
        temperatures[hot_idx] += hot_spot_excess * (0.5 + source.random(hot))
    return temperatures
