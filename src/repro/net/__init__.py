"""Real-network asyncio backend: the same protocols, live transports.

The simulated engines (:mod:`repro.gossip.engine`) execute synchronous
gossip rounds as function calls.  This package executes the *same*
:class:`~repro.gossip.protocol.GossipProtocol` implementations — push-sum,
counting, extrema — over real message passing: every node is an asyncio
task speaking push / pull / push-pull RPC through a
:class:`~repro.net.transport.Transport` (in-process channels for fast
tests, loopback TCP streams by default for deployment realism).

The protocol/transport split is the architectural contract: protocols
never see the transport, transports never see protocol state, and the
round scaffolding (partner draws, failure masks, message accounting) is
shared with the simulated engines — which is what makes the simulated ≡
deployed equivalence suite possible (``tests/test_net_equivalence.py``
pins round counts and :class:`~repro.gossip.metrics.NetworkMetrics`
message/bit totals of ``engine="asyncio"`` runs against the loop and
vectorized engines).

The robustness layer ships as first-class subsystems:

* :mod:`repro.net.rpc` — per-RPC deadlines and jittered exponential
  backoff whose retry schedules derive from a private seed, so they
  replay exactly regardless of task interleaving;
* :mod:`repro.net.failure_detector` — SWIM-style suspicion (direct ping →
  indirect ping-req through k proxies → suspect → confirm), piggybacked
  on gossip pushes;
* :mod:`repro.net.membership` — newscast membership views reusing
  :class:`~repro.topology.dynamic.EdgeResamplingProcess` semantics, with
  live exclusion of confirmed-dead peers;
* :mod:`repro.net.quantile` — a live quantile query that completes with
  honestly widened bounds when peers die mid-run (the PR-8 degraded
  answer contract).
"""

from repro.net.failure_detector import SwimFailureDetector
from repro.net.membership import NewscastMembership
from repro.net.metrics_http import MetricsServer, fetch_metrics
from repro.net.quantile import (
    NetQuantileAnswer,
    anet_approximate_quantile,
    net_approximate_quantile,
)
from repro.net.rpc import RetryPolicy, RpcClient, RpcError, RpcTimeout
from repro.net.runner import arun_protocol, run_protocol_asyncio
from repro.net.transport import (
    ChannelTransport,
    PeerUnreachable,
    TcpTransport,
    Transport,
)

__all__ = [
    "ChannelTransport",
    "MetricsServer",
    "NetQuantileAnswer",
    "NewscastMembership",
    "PeerUnreachable",
    "RetryPolicy",
    "RpcClient",
    "RpcError",
    "RpcTimeout",
    "SwimFailureDetector",
    "TcpTransport",
    "Transport",
    "anet_approximate_quantile",
    "arun_protocol",
    "fetch_metrics",
    "net_approximate_quantile",
    "run_protocol_asyncio",
]
