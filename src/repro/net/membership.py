"""Newscast membership for the live backend, with dead-peer exclusion.

:class:`~repro.topology.dynamic.EdgeResamplingProcess` already *is* the
newscast peer-sampling service — periodically re-drawn bounded views that
gossip like an expander.  The live backend needs one more thing from a
membership service: stop handing out peers the failure detector has
confirmed dead.  :class:`NewscastMembership` adds exactly that: an
exclusion set fed by :class:`~repro.net.failure_detector.SwimFailureDetector`
confirmations (or by the runner's transport-crash bookkeeping), honoured
at the next view resample.

With no exclusions the process delegates to the parent resample verbatim,
so its random stream — and therefore every simulated-vs-deployed
equivalence pin that runs under a newscast process — is bit-identical to
:class:`EdgeResamplingProcess`.
"""

from __future__ import annotations

from typing import Iterable, Set

import numpy as np

from repro.exceptions import ConfigurationError
from repro.topology.dynamic import EdgeResamplingProcess, RoundState
from repro.topology.graphs import Topology
from repro.topology.sampler import NeighborSampler
from repro.utils.rand import SeedLike


class NewscastMembership(EdgeResamplingProcess):
    """Edge-resampling membership whose views avoid excluded (dead) peers."""

    def __init__(
        self,
        n: int,
        view_size: int = 8,
        resample_every: int = 1,
        symmetrize: bool = False,
        rng: SeedLike = None,
    ) -> None:
        super().__init__(
            n,
            view_size=view_size,
            resample_every=resample_every,
            symmetrize=symmetrize,
            rng=rng,
        )
        self._excluded: Set[int] = set()

    @property
    def excluded(self) -> Set[int]:
        """Peers currently withheld from fresh views (a copy)."""
        return set(self._excluded)

    def exclude(self, nodes: Iterable[int]) -> None:
        """Withhold ``nodes`` from all views drawn at the next resample."""
        for node in nodes:
            node = int(node)
            if not 0 <= node < self.n:
                raise ConfigurationError(
                    f"node {node} out of range [0, {self.n})"
                )
            self._excluded.add(node)
        if len(self._excluded) >= self.n - 1:
            raise ConfigurationError(
                "membership needs at least 2 live peers to draw views"
            )
        # Invalidate the cached round state so the next round_state() call
        # resamples with the new exclusion set instead of serving stale
        # views that still point at dead peers.
        self._state = None

    def readmit(self, nodes: Iterable[int]) -> None:
        """Allow previously excluded ``nodes`` back into fresh views."""
        for node in nodes:
            self._excluded.discard(int(node))

    def _resample_views(self) -> None:
        if not self._excluded:
            # Zero-exclusion runs keep the parent's stream bit-identical.
            super()._resample_views()
            return
        live = np.array(
            sorted(set(range(self.n)) - self._excluded), dtype=np.int64
        )
        own = np.arange(self.n, dtype=np.int64)[:, None]
        # Draw view slots as indices into the live id set, then reject
        # self-loops the same masked-batch way as the parent resample.
        slots = self._rng.integers(0, live.size, size=(self.n, self.view_size))
        targets = live[slots]
        mask = targets == own
        while np.any(mask):
            redraw = self._rng.integers(0, live.size, size=int(mask.sum()))
            targets[mask] = live[redraw]
            mask = targets == own
        indptr = np.arange(
            0, (self.n + 1) * self.view_size, self.view_size, dtype=np.int64
        )
        topology = Topology(
            name="newscast-live",
            n=self.n,
            indptr=indptr,
            indices=np.ascontiguousarray(targets.ravel()),
            params={
                "view_size": self.view_size,
                "resample_every": self.resample_every,
                "excluded": len(self._excluded),
            },
        )
        # Excluded peers neither appear in views nor act: fold them out of
        # the round's active mask so their state freezes, exactly like a
        # churn departure.
        active = np.ones(self.n, dtype=bool)
        active[list(self._excluded)] = False
        self._topology = topology
        self._state = RoundState(active, NeighborSampler(topology))
        self.resamples += 1
