"""SWIM-style failure suspicion for the asyncio backend.

The SWIM loop (Das, Gupta, Motivala 2002), mapped onto the synchronous
round structure so its behaviour is deterministic and testable in rounds
rather than wall time:

1. every round, every live node **direct-pings** one peer from its own
   seeded probe schedule;
2. on deadline/refusal it asks ``k`` proxy peers to **indirect ping-req**
   the target on its behalf;
3. if neither path answers, the target becomes **suspected** (with the
   round index recorded — time-to-suspicion is measured in rounds);
4. a target that stays unreachable for ``confirm_after_rounds``
   consecutive rounds is **confirmed** dead; any successful contact in the
   meantime clears the suspicion (a recovered false positive, counted).

Suspicions piggyback on gossip pushes (the runner attaches
:meth:`digest` to every push frame and feeds received digests back through
:meth:`merge_digest`), so dissemination rides the existing message flow —
no extra message class — exactly as in SWIM.

Determinism: probe targets and proxy choices come from a private
:class:`~repro.utils.rand.RandomSource` fixed at construction, so a seeded
chaos run replays the same probe schedule; ping RPCs go through the
shared :class:`~repro.net.rpc.RpcClient` but are *not* charged to the
run's :class:`~repro.gossip.metrics.NetworkMetrics` — detector traffic is
control-plane overhead, kept out of the simulated ≡ deployed accounting
pins and reported separately via :meth:`stats`.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.net.rpc import RpcClient, RpcError
from repro.utils.rand import RandomSource, SeedLike


@dataclass
class SuspicionState:
    """Book-keeping for one suspected peer."""

    since_round: int
    last_bad_round: int
    confirmed_round: Optional[int] = None
    via_gossip: bool = False


@dataclass
class DetectorStats:
    """Aggregate detector counters for one run."""

    direct_pings: int = 0
    indirect_pings: int = 0
    suspicions: int = 0
    confirmations: int = 0
    false_positives_cleared: int = 0
    gossip_disseminations: int = 0
    events: List[Tuple[str, int, int]] = field(default_factory=list)


class SwimFailureDetector:
    """Round-driven SWIM suspicion over an :class:`RpcClient`."""

    def __init__(
        self,
        n: int,
        rng: SeedLike = None,
        k_indirect: int = 2,
        ping_timeout_s: float = 0.05,
        confirm_after_rounds: int = 2,
    ) -> None:
        if n < 2:
            raise ConfigurationError("the detector needs at least 2 nodes")
        if k_indirect < 0 or k_indirect > n - 2:
            raise ConfigurationError(
                f"k_indirect must be in [0, n-2], got {k_indirect}"
            )
        if ping_timeout_s <= 0:
            raise ConfigurationError("ping_timeout_s must be positive")
        if confirm_after_rounds < 1:
            raise ConfigurationError("confirm_after_rounds must be >= 1")
        self.n = n
        self.k_indirect = int(k_indirect)
        self.ping_timeout_s = float(ping_timeout_s)
        self.confirm_after_rounds = int(confirm_after_rounds)
        if isinstance(rng, RandomSource):
            self._seed_seq = rng.seed_sequence
        elif isinstance(rng, np.random.SeedSequence):
            self._seed_seq = rng
        else:
            self._seed_seq = np.random.SeedSequence(rng)
        self._rng: Optional[RandomSource] = None
        self._probe_order: Optional[np.ndarray] = None
        self.suspects: Dict[int, SuspicionState] = {}
        self.stats = DetectorStats()
        self._rpc: Optional[RpcClient] = None
        self.begin()

    # -- lifecycle ---------------------------------------------------------
    def begin(self) -> None:
        """Reset to round 0, replaying the identical probe schedule."""
        self._rng = RandomSource(self._seed_seq)
        # Per-node probe permutation over the other n-1 peers: node v probes
        # probe_order[v][r mod (n-1)] in round r — SWIM's round-robin probe
        # with a seeded, per-node shuffle.
        order = np.empty((self.n, self.n - 1), dtype=np.int64)
        for node in range(self.n):
            others = np.concatenate(
                [np.arange(node), np.arange(node + 1, self.n)]
            )
            order[node] = self._rng.permutation(others)
        self._probe_order = order
        self.suspects = {}
        self.stats = DetectorStats()

    def attach(self, rpc: RpcClient) -> None:
        """Bind the detector to a run's RPC client (the runner calls this)."""
        self._rpc = rpc

    # -- queries -----------------------------------------------------------
    @property
    def suspected(self) -> Set[int]:
        return set(self.suspects)

    @property
    def confirmed(self) -> Set[int]:
        return {
            node
            for node, state in self.suspects.items()
            if state.confirmed_round is not None
        }

    def suspicion_round(self, node: int) -> Optional[int]:
        state = self.suspects.get(node)
        return None if state is None else state.since_round

    def confirmation_round(self, node: int) -> Optional[int]:
        state = self.suspects.get(node)
        return None if state is None else state.confirmed_round

    # -- piggyback ---------------------------------------------------------
    def digest(self) -> List[int]:
        """Suspected node ids to piggyback on outgoing gossip pushes."""
        return sorted(self.suspects)

    def merge_digest(self, suspected: Iterable[int], round_index: int) -> None:
        """Fold a piggybacked digest from a received push into local state."""
        for node in suspected:
            node = int(node)
            if 0 <= node < self.n and node not in self.suspects:
                self.suspects[node] = SuspicionState(
                    since_round=round_index,
                    last_bad_round=round_index,
                    via_gossip=True,
                )
                self.stats.suspicions += 1
                self.stats.gossip_disseminations += 1
                self.stats.events.append(("suspect-gossip", node, round_index))

    # -- the SWIM round ----------------------------------------------------
    async def run_round(self, round_index: int, probers: Iterable[int]) -> None:
        """One SWIM protocol period: every prober probes one peer.

        ``probers`` is the set of locally-live nodes this round (the runner
        passes the nodes whose transport endpoint is up); dead nodes do not
        probe, exactly as their real tasks would not.
        """
        if self._rpc is None:
            raise ConfigurationError("attach() an RpcClient before run_round()")
        # Proxy draws consume the private stream in node order — one draw
        # per prober per round regardless of ping outcomes, so the schedule
        # replays identically whatever the network does.
        probers = sorted(int(p) for p in probers)
        proxy_draws: Dict[int, np.ndarray] = {}
        for prober in probers:
            proxy_draws[prober] = self._rng.integers(
                0, self.n, size=max(self.k_indirect * 2, 1)
            )
        await asyncio.gather(
            *(
                self._probe(prober, round_index, proxy_draws[prober])
                for prober in probers
            )
        )
        self._advance_confirmations(round_index)

    async def _probe(
        self, prober: int, round_index: int, proxy_draws: np.ndarray
    ) -> None:
        target = int(self._probe_order[prober][round_index % (self.n - 1)])
        ok = await self._direct_ping(prober, target)
        if not ok and self.k_indirect > 0:
            ok = await self._indirect_ping(prober, target, proxy_draws)
        if ok:
            self._mark_alive(target, round_index)
        else:
            self._mark_suspected(target, round_index)

    async def _direct_ping(self, prober: int, target: int) -> bool:
        self.stats.direct_pings += 1
        try:
            await self._rpc.call(
                prober,
                target,
                {"kind": "ping", "src": prober},
                timeout_s=self.ping_timeout_s,
                attempts=1,
            )
            return True
        except RpcError:
            return False

    async def _indirect_ping(
        self, prober: int, target: int, proxy_draws: np.ndarray
    ) -> bool:
        proxies: List[int] = []
        for candidate in proxy_draws:
            candidate = int(candidate)
            if candidate not in (prober, target) and candidate not in proxies:
                proxies.append(candidate)
            if len(proxies) == self.k_indirect:
                break
        if not proxies:
            return False
        self.stats.indirect_pings += len(proxies)
        results = await asyncio.gather(
            *(
                self._ping_req(prober, proxy, target)
                for proxy in proxies
            )
        )
        return any(results)

    async def _ping_req(self, prober: int, proxy: int, target: int) -> bool:
        try:
            reply = await self._rpc.call(
                prober,
                proxy,
                {
                    "kind": "ping-req",
                    "src": prober,
                    "target": target,
                    "timeout_s": self.ping_timeout_s,
                },
                timeout_s=3.0 * self.ping_timeout_s,
                attempts=1,
            )
            return bool(reply.get("ok"))
        except RpcError:
            return False

    # -- state transitions -------------------------------------------------
    def _mark_alive(self, node: int, round_index: int) -> None:
        state = self.suspects.get(node)
        if state is not None and state.confirmed_round is None:
            del self.suspects[node]
            self.stats.false_positives_cleared += 1
            self.stats.events.append(("clear", node, round_index))

    def _mark_suspected(self, node: int, round_index: int) -> None:
        state = self.suspects.get(node)
        if state is None:
            self.suspects[node] = SuspicionState(
                since_round=round_index, last_bad_round=round_index
            )
            self.stats.suspicions += 1
            self.stats.events.append(("suspect", node, round_index))
        else:
            state.last_bad_round = round_index

    def _advance_confirmations(self, round_index: int) -> None:
        for node, state in self.suspects.items():
            if state.confirmed_round is None and (
                round_index - state.since_round + 1 >= self.confirm_after_rounds
            ):
                state.confirmed_round = round_index
                self.stats.confirmations += 1
                self.stats.events.append(("confirm", node, round_index))
