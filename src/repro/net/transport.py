"""Transports: how one node's frame reaches another node.

Two implementations behind one asyncio interface:

* :class:`ChannelTransport` — in-process: a call awaits the destination's
  registered handler directly.  No serialization, no sockets; the fast
  path for tests and for the equivalence suite, where only the *message
  pattern* matters.
* :class:`TcpTransport` — loopback TCP: every node runs a real
  ``asyncio.start_server`` stream server on ``127.0.0.1`` and calls are
  length-prefixed pickled frames over pooled connections.  The deployment-
  realistic path (serialization boundaries, kernel buffers, connection
  refusal on dead peers).

Both support killing a node — ``mode="refuse"`` fails callers immediately
(the TCP analogue: connection refused), ``mode="silent"`` swallows the
frame so the caller's deadline expires (a hung process) — which is how
:mod:`repro.net.runner` reinterprets ``CrashRestart`` faults as transport
faults.

This module is the *only* place in the repository allowed to read the
event-loop clock (``loop.time()``): per-RPC latencies are a transport
property, measured here and exposed via :attr:`Transport.latencies_s` so
benchmarks can report p99 RPC latency without protocol or runner code
ever touching a clock.  The ``wallclock`` lint rule enforces exactly this
containment.
"""

from __future__ import annotations

import asyncio
import pickle
import struct
from typing import Any, Awaitable, Callable, Dict, List, Optional, Set, Tuple

from repro.exceptions import ReproError

#: A registered per-node frame handler: ``handler(dst, frame) -> reply``.
Handler = Callable[[int, Dict[str, Any]], Awaitable[Dict[str, Any]]]


class PeerUnreachable(ReproError):
    """The destination node is down and refusing frames (fail-fast path)."""


class Transport:
    """Base class: node registry, kill/revive state, latency recording."""

    def __init__(self, n: int) -> None:
        if n < 2:
            raise ValueError("a transport needs at least 2 nodes")
        self.n = n
        self._handlers: Dict[int, Handler] = {}
        self._down: Set[int] = set()
        self._silent: Set[int] = set()
        #: Completed-call round-trip latencies in seconds (loop clock).
        self.latencies_s: List[float] = []
        self.calls = 0
        self.refused = 0

    # -- lifecycle ---------------------------------------------------------
    def register(self, node: int, handler: Handler) -> None:
        """Install ``node``'s frame handler (idempotent re-registration)."""
        self._check_node(node)
        self._handlers[node] = handler

    async def start(self) -> None:
        """Bring the transport up (listeners, ports).  Idempotent."""

    async def stop(self) -> None:
        """Tear the transport down and release resources."""

    # -- fault surface -----------------------------------------------------
    def kill(self, node: int, mode: str = "refuse") -> None:
        """Take ``node`` off the network.

        ``"refuse"`` makes calls to it raise :class:`PeerUnreachable`
        immediately — a crashed process whose port is closed.  ``"silent"``
        accepts the frame and never answers — a hung process; callers only
        notice through their RPC deadline, which is what the SWIM
        suspicion-latency tests exercise.
        """
        self._check_node(node)
        if mode not in ("refuse", "silent"):
            raise ValueError(f"unknown kill mode {mode!r}")
        self._down.add(node)
        if mode == "silent":
            self._silent.add(node)
        else:
            self._silent.discard(node)

    def revive(self, node: int) -> None:
        self._check_node(node)
        self._down.discard(node)
        self._silent.discard(node)

    def is_down(self, node: int) -> bool:
        return node in self._down

    @property
    def down(self) -> Set[int]:
        """The currently killed nodes (a copy)."""
        return set(self._down)

    # -- calls -------------------------------------------------------------
    async def call(self, src: int, dst: int, frame: Dict[str, Any]) -> Dict[str, Any]:
        """Deliver ``frame`` to ``dst`` and await its reply."""
        self._check_node(src)
        self._check_node(dst)
        loop = asyncio.get_running_loop()
        started = loop.time()
        self.calls += 1
        if dst in self._down:
            if dst in self._silent:
                # A hung peer: park forever; the caller's deadline fires.
                await asyncio.Event().wait()
            self.refused += 1
            raise PeerUnreachable(f"node {dst} is down")
        reply = await self._deliver(src, dst, frame)
        self.latencies_s.append(loop.time() - started)
        return reply

    async def _deliver(self, src: int, dst: int, frame: Dict[str, Any]) -> Dict[str, Any]:
        raise NotImplementedError

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.n:
            raise ValueError(f"node {node} out of range [0, {self.n})")

    def _handler_for(self, dst: int) -> Handler:
        handler = self._handlers.get(dst)
        if handler is None:
            raise PeerUnreachable(f"node {dst} has no registered handler")
        return handler


class ChannelTransport(Transport):
    """In-process transport: a call awaits the peer's handler directly.

    One cooperative yield per call keeps scheduling fair (a node cannot
    starve the loop by serving a burst of frames synchronously), but there
    is no serialization — payloads cross by reference, exactly like the
    simulated engines.  Handlers run inside the caller's await, so per-call
    work is serialized by the event loop and protocol state needs no locks.
    """

    async def _deliver(self, src: int, dst: int, frame: Dict[str, Any]) -> Dict[str, Any]:
        await asyncio.sleep(0)
        return await self._handler_for(dst)(dst, frame)


class TcpTransport(Transport):
    """Loopback TCP transport: one stream server per node, pooled clients.

    Frames are pickled dicts behind a 4-byte big-endian length prefix.
    Each (src, dst) pair keeps one pooled connection guarded by a lock —
    requests on a pair are serialized, pairs proceed concurrently — which
    matches the one-outstanding-call-per-partner pattern of synchronous
    gossip rounds while exercising real sockets end to end.
    """

    _LEN = struct.Struct("!I")

    def __init__(self, n: int, host: str = "127.0.0.1") -> None:
        super().__init__(n)
        self.host = host
        self._servers: Dict[int, asyncio.AbstractServer] = {}
        self._ports: Dict[int, int] = {}
        self._pool: Dict[
            Tuple[int, int],
            Tuple[asyncio.StreamReader, asyncio.StreamWriter],
        ] = {}
        self._locks: Dict[Tuple[int, int], asyncio.Lock] = {}
        self._conn_tasks: Set["asyncio.Task[None]"] = set()
        self._started = False

    async def start(self) -> None:
        if self._started:
            return
        for node in range(self.n):
            server = await asyncio.start_server(
                self._serve_connection(node), host=self.host, port=0
            )
            self._servers[node] = server
            self._ports[node] = server.sockets[0].getsockname()[1]
        self._started = True

    def port_of(self, node: int) -> int:
        self._check_node(node)
        return self._ports[node]

    def _serve_connection(
        self, node: int
    ) -> Callable[[asyncio.StreamReader, asyncio.StreamWriter], Awaitable[None]]:
        async def serve(
            reader: asyncio.StreamReader, writer: asyncio.StreamWriter
        ) -> None:
            task = asyncio.current_task()
            if task is not None:
                self._conn_tasks.add(task)
            try:
                while True:
                    frame = await self._read_frame(reader)
                    if frame is None:
                        break
                    if node in self._down:
                        # refuse: drop the connection; silent: swallow.
                        if node in self._silent:
                            continue
                        break
                    reply = await self._handler_for(node)(node, frame)
                    await self._write_frame(writer, reply)
            except (ConnectionError, asyncio.IncompleteReadError):
                pass
            except asyncio.CancelledError:
                # stop() retires handlers by cancellation; ending the task
                # *cancelled* would make the stream machinery re-raise from
                # its done-callback at loop teardown, so finish cleanly.
                pass
            finally:
                if task is not None:
                    self._conn_tasks.discard(task)
                writer.close()

        return serve

    async def _read_frame(
        self, reader: asyncio.StreamReader
    ) -> Optional[Dict[str, Any]]:
        try:
            header = await reader.readexactly(self._LEN.size)
        except (asyncio.IncompleteReadError, ConnectionError):
            return None
        (length,) = self._LEN.unpack(header)
        body = await reader.readexactly(length)
        return pickle.loads(body)

    async def _write_frame(
        self, writer: asyncio.StreamWriter, frame: Dict[str, Any]
    ) -> None:
        body = pickle.dumps(frame, protocol=pickle.HIGHEST_PROTOCOL)
        writer.write(self._LEN.pack(len(body)) + body)
        await writer.drain()

    async def _connection(
        self, src: int, dst: int
    ) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        key = (src, dst)
        pooled = self._pool.get(key)
        if pooled is not None and not pooled[1].is_closing():
            return pooled
        reader, writer = await asyncio.open_connection(self.host, self._ports[dst])
        self._pool[key] = (reader, writer)
        return reader, writer

    async def _deliver(self, src: int, dst: int, frame: Dict[str, Any]) -> Dict[str, Any]:
        if not self._started:
            raise ReproError("TcpTransport.call before start()")
        key = (src, dst)
        lock = self._locks.setdefault(key, asyncio.Lock())
        async with lock:
            try:
                reader, writer = await self._connection(src, dst)
                await self._write_frame(writer, frame)
                reply = await self._read_frame(reader)
            except (ConnectionError, OSError) as exc:
                self._pool.pop(key, None)
                self.refused += 1
                raise PeerUnreachable(f"node {dst} is unreachable: {exc}") from exc
        if reply is None:
            # The server closed on us: a killed ("refuse") peer dropped the
            # connection after reading the frame.
            self._pool.pop(key, None)
            self.refused += 1
            raise PeerUnreachable(f"node {dst} closed the connection")
        return reply

    def kill(self, node: int, mode: str = "refuse") -> None:
        super().kill(node, mode=mode)
        if mode == "refuse":
            # Drop the peer's pooled inbound connections so the very next
            # frame fails fast instead of waiting on a half-open stream.
            for key in [k for k in self._pool if k[1] == node]:
                self._pool.pop(key)[1].close()

    async def stop(self) -> None:
        for _, writer in self._pool.values():
            writer.close()
        self._pool.clear()
        for server in self._servers.values():
            server.close()
        # Retire the per-connection handler tasks ourselves: left to the
        # event loop's shutdown they would die *cancelled* mid-read, and
        # Python 3.11's stream done-callback re-raises that as loud
        # "Exception in callback" noise.
        if self._conn_tasks:
            tasks = tuple(self._conn_tasks)
            await asyncio.wait(tasks, timeout=0.2)
            for task in tasks:
                task.cancel()
            await asyncio.gather(*tasks, return_exceptions=True)
            self._conn_tasks.clear()
        for server in self._servers.values():
            await server.wait_closed()
        self._servers.clear()
        self._started = False


def resolve_transport(transport: Optional[object], n: int) -> Tuple[Transport, bool]:
    """Normalize a transport argument; returns ``(transport, owned)``.

    ``None`` builds a fresh :class:`ChannelTransport` owned by the run
    (started and stopped around it); the strings ``"channel"`` / ``"tcp"``
    build the named transport; an existing :class:`Transport` instance is
    used as-is and *not* stopped by the run, so sessions can keep kill
    state (dead peers stay dead) across several protocol runs.
    """
    if transport is None or transport == "channel":
        return ChannelTransport(n), True
    if transport == "tcp":
        return TcpTransport(n), True
    if isinstance(transport, Transport):
        if transport.n != n:
            raise ValueError(
                f"transport has {transport.n} nodes but the run has {n}"
            )
        return transport, False
    raise ValueError(f"unknown transport {transport!r}")
