"""RPC with per-call deadlines and seeded, replayable backoff retries.

Every call gets a deadline (``asyncio.wait_for``) and up to ``attempts``
tries separated by jittered exponential backoff.  The jitter is the part
that usually ruins determinism — most stacks draw it from a shared
process-global RNG, so the schedule depends on which task happened to draw
first.  Here every delay is derived *statelessly* from
``SeedSequence([entropy, node, seq, attempt])``: the node id, the node's
own call sequence number and the attempt index fully determine the delay,
so retry schedules replay exactly no matter how the event loop interleaves
tasks (``tests/test_net_chaos.py`` pins the schedule values).
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.exceptions import ReproError
from repro.net.transport import PeerUnreachable, Transport


class RpcError(ReproError):
    """An RPC failed after exhausting its deadline/retry budget."""


class RpcTimeout(RpcError):
    """The final attempt of an RPC exceeded its deadline."""


class RetryPolicy:
    """Deadline + jittered exponential backoff, derived from a private seed.

    Parameters
    ----------
    timeout_s:
        Per-attempt deadline in seconds.
    attempts:
        Total tries (1 = no retry).
    backoff_base_s:
        Delay before the first retry; doubles (``backoff_factor``) per
        further retry.
    backoff_factor:
        Exponential growth factor of the backoff.
    jitter:
        Fraction of the backoff added as jitter: the delay is
        ``base * factor**attempt * (1 + jitter * u)`` with ``u ∈ [0, 1)``
        drawn statelessly from the policy's entropy and the call identity.
    entropy:
        Private seed of the jitter stream.  Two policies with the same
        entropy produce identical schedules — the replay contract.
    """

    def __init__(
        self,
        timeout_s: float = 0.25,
        attempts: int = 3,
        backoff_base_s: float = 0.01,
        backoff_factor: float = 2.0,
        jitter: float = 0.5,
        entropy: int = 0,
    ) -> None:
        if timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        if attempts < 1:
            raise ValueError("attempts must be >= 1")
        if backoff_base_s < 0 or backoff_factor < 1.0 or not 0.0 <= jitter <= 1.0:
            raise ValueError("invalid backoff parameters")
        self.timeout_s = float(timeout_s)
        self.attempts = int(attempts)
        self.backoff_base_s = float(backoff_base_s)
        self.backoff_factor = float(backoff_factor)
        self.jitter = float(jitter)
        self.entropy = int(entropy)

    def backoff_s(self, node: int, seq: int, attempt: int) -> float:
        """Backoff before retry ``attempt`` (0-based) of call ``seq`` by ``node``.

        Stateless: the same (entropy, node, seq, attempt) always yields the
        same delay, independent of draw order across tasks.
        """
        base = self.backoff_base_s * self.backoff_factor**attempt
        if self.jitter == 0.0 or base == 0.0:
            return base
        seq_seed = np.random.SeedSequence(
            [self.entropy, int(node), int(seq), int(attempt)]
        )
        u = float(np.random.default_rng(seq_seed).random())
        return base * (1.0 + self.jitter * u)

    def schedule(self, node: int, seq: int) -> Tuple[float, ...]:
        """The full backoff schedule one call would follow if every attempt
        failed — ``attempts - 1`` delays, for replay pinning."""
        return tuple(
            self.backoff_s(node, seq, attempt)
            for attempt in range(self.attempts - 1)
        )


class RpcClient:
    """Retrying caller over a :class:`~repro.net.transport.Transport`.

    Each source node gets its own monotonically increasing call sequence
    number; one task per node means the (node, seq) pair is deterministic,
    which is what anchors the replayable backoff schedule.
    """

    def __init__(self, transport: Transport, policy: Optional[RetryPolicy] = None) -> None:
        self.transport = transport
        self.policy = policy if policy is not None else RetryPolicy()
        self.calls = 0
        self.retries = 0
        self.failures = 0
        self._seq: Dict[int, int] = {}

    def _next_seq(self, node: int) -> int:
        seq = self._seq.get(node, 0)
        self._seq[node] = seq + 1
        return seq

    async def call(
        self,
        src: int,
        dst: int,
        frame: Dict[str, Any],
        timeout_s: Optional[float] = None,
        attempts: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Call ``dst`` with retries; raises :class:`RpcError` on exhaustion."""
        policy = self.policy
        deadline = timeout_s if timeout_s is not None else policy.timeout_s
        tries = attempts if attempts is not None else policy.attempts
        seq = self._next_seq(src)
        self.calls += 1
        last: Optional[BaseException] = None
        for attempt in range(tries):
            if attempt:
                self.retries += 1
                await asyncio.sleep(policy.backoff_s(src, seq, attempt - 1))
            try:
                return await asyncio.wait_for(
                    self.transport.call(src, dst, frame), deadline
                )
            except PeerUnreachable as exc:
                last = exc
            except asyncio.TimeoutError as exc:
                last = exc
        self.failures += 1
        if isinstance(last, asyncio.TimeoutError):
            raise RpcTimeout(
                f"rpc {frame.get('kind', '?')} {src}->{dst} timed out after "
                f"{tries} attempt(s) of {deadline}s"
            ) from last
        raise RpcError(
            f"rpc {frame.get('kind', '?')} {src}->{dst} failed after "
            f"{tries} attempt(s): {last}"
        ) from last
