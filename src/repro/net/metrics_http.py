"""A live ``/metrics`` endpoint for the asyncio backend.

A deliberately tiny HTTP/1.0 server: ``GET /metrics`` renders whatever the
caller's ``render`` callable returns *at scrape time* — typically
:func:`repro.obs.exporters.render_prometheus` closed over the live run's
tracer, :class:`~repro.gossip.metrics.NetworkMetrics` and fault injector —
in the Prometheus text exposition format.  Anything else is a 404.

It runs on the same event loop as the gossip round tasks, so scrapes
interleave with live rounds (the smoke test scrapes mid-run) without
threads or locks: the render callable executes between round awaits and
sees a consistent counter snapshot.
"""

from __future__ import annotations

import asyncio
from typing import Callable, Optional


class MetricsServer:
    """Serve ``render()`` as ``GET /metrics`` on a loopback port."""

    def __init__(
        self,
        render: Callable[[], str],
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._render = render
        self.host = host
        self._requested_port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self.port: Optional[int] = None
        self.scrapes = 0

    async def start(self) -> None:
        if self._server is not None:
            return
        self._server = await asyncio.start_server(
            self._handle, host=self.host, port=self._requested_port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        self._server = None

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request_line = await reader.readline()
            # Drain headers until the blank line; we only route on the
            # request line.
            while True:
                line = await reader.readline()
                if line in (b"", b"\r\n", b"\n"):
                    break
            parts = request_line.decode("latin-1", "replace").split()
            if len(parts) >= 2 and parts[0] == "GET" and (
                parts[1] == "/metrics" or parts[1] == "/metrics/"
            ):
                body = self._render().encode("utf-8")
                self.scrapes += 1
                head = (
                    "HTTP/1.0 200 OK\r\n"
                    "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
                    f"Content-Length: {len(body)}\r\n\r\n"
                )
                writer.write(head.encode("latin-1") + body)
            else:
                writer.write(
                    b"HTTP/1.0 404 Not Found\r\nContent-Length: 0\r\n\r\n"
                )
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()


async def fetch_metrics(
    host: str, port: int, path: str = "/metrics", timeout_s: float = 5.0
) -> str:
    """Scrape an HTTP endpoint and return its body (the test/CLI probe)."""

    async def _fetch() -> str:
        reader, writer = await asyncio.open_connection(host, port)
        try:
            writer.write(
                f"GET {path} HTTP/1.0\r\nHost: {host}\r\n\r\n".encode("latin-1")
            )
            await writer.drain()
            raw = await reader.read()
        finally:
            writer.close()
        head, _, body = raw.partition(b"\r\n\r\n")
        status = head.split(b"\r\n", 1)[0].decode("latin-1", "replace")
        if " 200 " not in status + " ":
            raise ConnectionError(f"scrape failed: {status}")
        return body.decode("utf-8", "replace")

    return await asyncio.wait_for(_fetch(), timeout_s)
