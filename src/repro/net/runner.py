"""The asyncio round engine: simulated semantics over a real transport.

:func:`run_protocol_asyncio` is the third engine behind
:func:`repro.gossip.engine.run_protocol` (``engine="asyncio"``).  It runs
the *same* :class:`~repro.gossip.protocol.GossipProtocol` implementations,
unmodified, with every node's round executed by its own asyncio task
speaking push / pull / push-pull RPC through a
:class:`~repro.net.transport.Transport`.

Equivalence with the simulated engines is by construction, not by luck:

* the round prologue — metrics record, failure mask, partner draw — is the
  engines' shared :func:`~repro.gossip.engine.begin_round`, so the engine
  random stream is consumed identically and round counts match;
* message/bit accounting applies the loop engine's exact formulas (one
  message per push and per pull *response*, ``protocol.message_bits`` with
  the ``payload_bits`` fallback), so ``NetworkMetrics`` totals match;
* rounds are synchronous: all acts happen before any delivery (a barrier,
  as in the simulated engines), then delivery tasks run concurrently.
  Concurrent delivery is why the backend requires the delivery-order
  independence contract that :class:`~repro.gossip.protocol.
  BatchGossipProtocol` marks — the same contract the vectorized engine
  already relies on.

Faults (``faults=``) are reinterpreted at the transport level: ``crash``
kills the node's endpoint for its downtime (callers get connection
refused), ``drop`` loses the frame in flight, ``delay`` holds the write,
``corrupt`` scales the payload in flight, ``duplicate`` delivers (and
charges) the frame twice.  The injector's private stream is consumed one
draw per round exactly as on the simulated engines, so a seeded chaos
schedule replays bit-for-bit across all three engines.  Two documented
deviations from the simulated fault semantics: a dropped frame here is
*sent and lost* (the sender still acted) rather than act-suppressed, and
a crash-restart does not reset values (state restoration is a storage
concern the live backend does not model).

When a push cannot be delivered — dead peer, exhausted retries — the
engine invokes the protocol's graceful-degradation hook
:meth:`~repro.gossip.protocol.GossipProtocol.on_send_failure`, whose
default re-merges the undeliverable payload into the sender (the
Section-5 "keep your half" rule), so conserved aggregates (push-sum mass)
survive peers dying mid-run and an in-flight quantile query can complete
with honestly widened bounds (:mod:`repro.net.quantile`).
"""

from __future__ import annotations

import asyncio
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Union

import numpy as np

from repro.exceptions import ConfigurationError, ConvergenceError, ProtocolError
from repro.faults.injectors import FaultInjector, RoundFaults
from repro.gossip.engine import (
    begin_round,
    begin_run,
    finish_run,
    supports_batch,
    EngineResult,
)
from repro.gossip.failures import FailureModel
from repro.gossip.messages import payload_bits
from repro.gossip.metrics import NetworkMetrics, RoundRecord
from repro.gossip.protocol import Action, GossipProtocol
from repro.net.failure_detector import SwimFailureDetector
from repro.net.rpc import RetryPolicy, RpcClient, RpcError
from repro.net.transport import Transport, resolve_transport
from repro.obs.tracer import get_tracer
from repro.topology.dynamic import TopologyProcess
from repro.topology.graphs import Topology
from repro.utils.rand import RandomSource


def _scale_payload(payload: Any, factor: float) -> Any:
    """Scale every numeric lane of a payload (in-flight corruption)."""
    if payload is None:
        return None
    if isinstance(payload, (tuple, list)):
        scaled = [_scale_payload(item, factor) for item in payload]
        return tuple(scaled) if isinstance(payload, tuple) else scaled
    return type(payload)(float(payload) * factor)


def _message_bits(protocol: GossipProtocol, payload: Any, n: int) -> int:
    bits = protocol.message_bits(payload)
    if bits is None:
        bits = payload_bits(payload, n=n)
    return int(bits)


class _NodeHost:
    """Per-run server side: answers push / pull / ping / ping-req frames.

    One instance serves every node (the handler receives the destination
    id), mirroring how the simulated engines hold all node state in one
    protocol object; the per-node identity lives in the frames.
    """

    def __init__(
        self,
        protocol: GossipProtocol,
        detector: Optional[SwimFailureDetector],
    ) -> None:
        self.protocol = protocol
        self.detector = detector
        self.rpc: Optional[RpcClient] = None

    async def handle(self, dst: int, frame: Dict[str, Any]) -> Dict[str, Any]:
        kind = frame.get("kind")
        if kind == "push":
            suspected = frame.get("sus")
            if suspected and self.detector is not None:
                self.detector.merge_digest(suspected, int(frame["round"]))
            self.protocol.on_receive(
                dst, frame["payload"], int(frame["src"]), "push", int(frame["round"])
            )
            return {"ok": True}
        if kind == "pull":
            payload = self.protocol.serve_pull(
                dst, int(frame["src"]), int(frame["round"])
            )
            return {"payload": payload}
        if kind == "ping":
            return {"ok": True}
        if kind == "ping-req":
            # Indirect probe: ping the target on the requester's behalf.
            if self.rpc is None:
                return {"ok": False}
            try:
                await self.rpc.call(
                    dst,
                    int(frame["target"]),
                    {"kind": "ping", "src": dst},
                    timeout_s=float(frame.get("timeout_s", 0.05)),
                    attempts=1,
                )
                return {"ok": True}
            except RpcError:
                return {"ok": False}
        raise ProtocolError(f"unknown frame kind {kind!r}")


async def arun_protocol(
    protocol: GossipProtocol,
    rng: Union[None, int, RandomSource] = None,
    failure_model: Union[None, float, FailureModel] = None,
    max_rounds: int = 10_000,
    metrics: Optional[NetworkMetrics] = None,
    raise_on_budget: bool = True,
    topology: Optional[Topology] = None,
    peer_sampling: str = "uniform",
    topology_process: Optional[TopologyProcess] = None,
    on_round: Optional[Callable[[RoundRecord, float], None]] = None,
    faults: Optional[FaultInjector] = None,
    transport: Union[None, str, Transport] = None,
    retry: Optional[RetryPolicy] = None,
    detector: Optional[SwimFailureDetector] = None,
    delay_unit_s: float = 0.005,
) -> EngineResult:
    """Async body of :func:`run_protocol_asyncio` (compose with servers)."""
    if not supports_batch(protocol):
        raise ProtocolError(
            f"protocol {protocol.name!r} does not declare the delivery-order "
            "independence contract (BatchGossipProtocol) the asyncio engine "
            "requires; run it on the loop engine instead"
        )
    n = protocol.n
    live_transport, owned = resolve_transport(transport, n)
    rpc = RpcClient(live_transport, retry)
    host = _NodeHost(protocol, detector)
    host.rpc = rpc
    for node in range(n):
        live_transport.register(node, host.handle)
    await live_transport.start()
    if detector is not None:
        detector.attach(rpc)

    source, failures, stats, sampler = begin_run(
        protocol, rng, failure_model, metrics, topology, peer_sampling,
        topology_process, None,
    )
    hook = on_round if on_round is not None else get_tracer().on_round
    lost_pushes = 0
    fault_killed: set = set()

    async def deliver_node_round(
        node: int,
        action: Action,
        partner: int,
        round_index: int,
        rf: Optional[RoundFaults],
        suspicion: Optional[List[int]],
    ) -> int:
        lost = 0
        if action.kind in ("push", "pushpull"):
            payload = action.payload
            if rf is not None and rf.corruption[node] != 1.0:
                payload = _scale_payload(payload, float(rf.corruption[node]))
            bits = _message_bits(protocol, action.payload, n)
            frame = {
                "kind": "push",
                "src": node,
                "round": round_index,
                "payload": payload,
            }
            if suspicion:
                frame["sus"] = suspicion
            if rf is not None and rf.delay[node] > 0:
                # A held write: the frame leaves late but within the round
                # barrier, so synchronous semantics survive bounded delays.
                await asyncio.sleep(delay_unit_s * int(rf.delay[node]))
            if rf is not None and rf.dropped[node]:
                # Lost datagram: sent, never delivered.
                lost += 1
                protocol.on_send_failure(node, action.payload, round_index)
            else:
                try:
                    await rpc.call(node, partner, frame)
                    stats.record_messages(1, bits, record)
                    protocol.on_send_success(node, round_index)
                    if rf is not None and rf.duplicated[node]:
                        await rpc.call(node, partner, frame)
                        stats.record_messages(1, bits, record)
                except RpcError:
                    lost += 1
                    protocol.on_send_failure(node, action.payload, round_index)
        if action.kind in ("pull", "pushpull"):
            try:
                reply = await rpc.call(
                    node,
                    partner,
                    {"kind": "pull", "src": node, "round": round_index},
                )
            except RpcError:
                # The pull went unanswered: the node keeps its prior value,
                # exactly what a failed pull means on the simulated engines.
                lost += 1
            else:
                response = reply["payload"]
                bits = _message_bits(protocol, response, n)
                stats.record_messages(1, bits, record)
                protocol.on_receive(node, response, partner, "pull", round_index)
        return lost

    try:
        round_index = 0
        completed = protocol.is_done(round_index)
        while not completed and round_index < max_rounds:
            if hook is not None:
                round_started = perf_counter()
            rf: Optional[RoundFaults] = None
            if faults is not None:
                rf = faults.draw(round_index, n)
                stats.record_faults_injected(rf.injected)
                for node in np.flatnonzero(rf.crashed):
                    node = int(node)
                    if not live_transport.is_down(node):
                        live_transport.kill(node, mode="refuse")
                        fault_killed.add(node)
                for node in np.flatnonzero(rf.restarted):
                    node = int(node)
                    if node in fault_killed:
                        live_transport.revive(node)
                        fault_killed.discard(node)

            record, failed, partners = begin_round(
                protocol, round_index, n, source, failures, stats, sampler,
                topology_process, None,
            )
            down = live_transport.down
            if down:
                extra_failed = sum(
                    1 for node in down if not failed[node]
                )
                if extra_failed:
                    stats.record_failures(extra_failed, record)

            # Act barrier: every live node's act-phase state transition
            # happens before any delivery, as in the simulated engines.
            actions: List[Optional[Action]] = [None] * n
            for node in range(n):
                if failed[node] or node in down:
                    continue
                action = protocol.act(node, round_index)
                if not isinstance(action, Action):
                    raise ProtocolError(
                        f"{protocol.name}: act() must return an Action, "
                        f"got {action!r}"
                    )
                actions[node] = action

            suspicion = detector.digest() if detector is not None else None
            deliveries = [
                deliver_node_round(
                    node, actions[node], int(partners[node]), round_index,
                    rf, suspicion,
                )
                for node in range(n)
                if actions[node] is not None and actions[node].kind != "idle"
            ]
            if deliveries:
                lost_pushes += sum(await asyncio.gather(*deliveries))

            if detector is not None:
                probers = [
                    node for node in range(n)
                    if not live_transport.is_down(node)
                ]
                await detector.run_round(round_index, probers)

            protocol.end_round(round_index)
            if hook is not None:
                hook(record, perf_counter() - round_started)
            round_index += 1
            completed = protocol.is_done(round_index)
    finally:
        if owned:
            await live_transport.stop()

    result = finish_run(
        protocol, stats, round_index, completed, max_rounds, raise_on_budget
    )
    result.extra["transport"] = type(live_transport).__name__
    result.extra["lost_messages"] = lost_pushes
    result.extra["rpc_calls"] = rpc.calls
    result.extra["rpc_retries"] = rpc.retries
    result.extra["rpc_failures"] = rpc.failures
    result.extra["crashed_nodes"] = sorted(live_transport.down)
    if detector is not None:
        result.extra["suspected"] = sorted(detector.suspected)
        result.extra["confirmed_dead"] = sorted(detector.confirmed)
    return result


def run_protocol_asyncio(
    protocol: GossipProtocol,
    rng: Union[None, int, RandomSource] = None,
    failure_model: Union[None, float, FailureModel] = None,
    max_rounds: int = 10_000,
    metrics: Optional[NetworkMetrics] = None,
    raise_on_budget: bool = True,
    topology: Optional[Topology] = None,
    peer_sampling: str = "uniform",
    topology_process: Optional[TopologyProcess] = None,
    on_round: Optional[Callable[[RoundRecord, float], None]] = None,
    faults: Optional[FaultInjector] = None,
    transport: Union[None, str, Transport] = None,
    retry: Optional[RetryPolicy] = None,
    detector: Optional[SwimFailureDetector] = None,
    delay_unit_s: float = 0.005,
    run_timeout_s: float = 120.0,
) -> EngineResult:
    """Run ``protocol`` over a live transport; the ``engine="asyncio"`` path.

    Accepts every :func:`~repro.gossip.engine.run_protocol_loop` parameter
    plus the net-specific knobs: ``transport`` (``None``/"channel" for the
    in-process transport, ``"tcp"`` for loopback TCP, or a reusable
    :class:`~repro.net.transport.Transport` instance whose kill state
    persists across runs), ``retry`` (the
    :class:`~repro.net.rpc.RetryPolicy`), ``detector`` (a
    :class:`~repro.net.failure_detector.SwimFailureDetector` run
    per-round), ``delay_unit_s`` (seconds per fault delay window) and
    ``run_timeout_s`` — a hard wall-clock ceiling on the whole run, so a
    wedged network can never hang a caller (or CI) indefinitely.
    """
    if run_timeout_s <= 0:
        raise ConfigurationError("run_timeout_s must be positive")
    try:
        asyncio.get_running_loop()
    except RuntimeError:
        pass
    else:
        raise ConfigurationError(
            "run_protocol_asyncio() cannot be called from a running event "
            "loop; await arun_protocol(...) instead"
        )
    try:
        return asyncio.run(
            asyncio.wait_for(
                arun_protocol(
                    protocol,
                    rng=rng,
                    failure_model=failure_model,
                    max_rounds=max_rounds,
                    metrics=metrics,
                    raise_on_budget=raise_on_budget,
                    topology=topology,
                    peer_sampling=peer_sampling,
                    topology_process=topology_process,
                    on_round=on_round,
                    faults=faults,
                    transport=transport,
                    retry=retry,
                    detector=detector,
                    delay_unit_s=delay_unit_s,
                ),
                run_timeout_s,
            )
        )
    except asyncio.TimeoutError as exc:
        raise ConvergenceError(
            f"asyncio run of {protocol.name!r} exceeded its hard "
            f"{run_timeout_s}s wall-clock ceiling"
        ) from exc
