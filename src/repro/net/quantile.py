"""Quantile queries over the live backend, with graceful degradation.

:func:`net_approximate_quantile` answers an ε-approximate φ-quantile query
entirely over a live :class:`~repro.net.transport.Transport`, composing two
gossip primitives the simulated engines already ship:

1. one fused :class:`~repro.aggregates.extrema.ExtremaPairProtocol` run
   brackets the live value range ``[lo, hi]``;
2. bisection by counting: each step runs
   :class:`~repro.aggregates.push_sum.PushSumProtocol` over the indicator
   vector ``values <= mid`` and narrows the bracket until the rank
   uncertainty is within ``eps`` of the target rank — Step 5 of
   Algorithm 3's counting trick, aimed at a quantile instead of a rank.

The point of the module is the PR-8 degradation contract under churn:
when peers die mid-query (transport kills from a chaos injector, or a
pre-wounded transport session), the query *completes* instead of raising.
Push-sum mass parked on dead peers stays frozen (the engine's
``on_send_failure`` self-merge keeps the live pool conserved), counts are
taken over the surviving pool, and the answer's ``accuracy`` is widened by
``crashed / n`` — each dead peer can displace the target rank by at most
one — with ``degraded=True``.  Honest bounds, never silently tight ones.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro.aggregates.extrema import ExtremaPairProtocol
from repro.aggregates.push_sum import PushSumProtocol, default_push_sum_rounds
from repro.exceptions import ConfigurationError
from repro.faults.injectors import FaultInjector
from repro.gossip.metrics import NetworkMetrics
from repro.net.failure_detector import SwimFailureDetector
from repro.net.rpc import RetryPolicy
from repro.net.runner import arun_protocol
from repro.net.transport import Transport, resolve_transport
from repro.utils.rand import RandomSource, SeedLike


@dataclass
class NetQuantileAnswer:
    """A live-network quantile answer with honest degradation accounting.

    ``accuracy`` is the additive rank-accuracy bound as a fraction of the
    *initial* population: ``eps`` when nothing went wrong, widened by
    ``len(crashed) / n`` when peers died — a dead peer's frozen value can
    displace the live target rank by at most one position.
    """

    phi: float
    eps: float
    n: int
    n_live: int
    value: float
    accuracy: float
    degraded: bool
    rounds: int
    bisection_steps: int
    crashed: Tuple[int, ...]
    rank_bracket: Tuple[float, float]
    metrics: NetworkMetrics = field(repr=False)


async def anet_approximate_quantile(
    values: Union[Sequence[float], np.ndarray],
    phi: float = 0.5,
    eps: float = 0.1,
    rng: SeedLike = None,
    transport: Union[None, str, Transport] = None,
    faults: Optional[FaultInjector] = None,
    retry: Optional[RetryPolicy] = None,
    detector: Optional[SwimFailureDetector] = None,
    metrics: Optional[NetworkMetrics] = None,
    max_bisection_steps: int = 40,
    count_rounds: Optional[int] = None,
) -> NetQuantileAnswer:
    """Async body of :func:`net_approximate_quantile`."""
    array = np.asarray(values, dtype=float)
    if array.ndim != 1 or array.size < 2:
        raise ConfigurationError("values must be a 1-d array of length >= 2")
    if not 0.0 <= phi <= 1.0:
        raise ConfigurationError(f"phi must be in [0, 1], got {phi}")
    if not 0.0 < eps < 0.5:
        raise ConfigurationError(f"eps must be in (0, 0.5), got {eps}")
    n = array.size
    source = rng if isinstance(rng, RandomSource) else RandomSource(rng)
    stats = metrics if metrics is not None else NetworkMetrics()
    live_transport, owned = resolve_transport(transport, n)
    if count_rounds is None:
        count_rounds = default_push_sum_rounds(n, relative_error=1.0 / (8.0 * n))

    try:
        # Phase 1: bracket the live value range with one fused extrema run.
        pair = ExtremaPairProtocol(array, array)
        result = await arun_protocol(
            pair,
            rng=source.child(),
            metrics=stats,
            transport=live_transport,
            faults=faults,
            retry=retry,
            detector=detector,
            raise_on_budget=False,
        )
        rounds = result.rounds
        live = np.array(
            [v for v in range(n) if not live_transport.is_down(v)],
            dtype=np.int64,
        )
        if live.size < 2:
            raise ConfigurationError(
                "fewer than 2 peers survived the extrema phase; no quorum "
                "to answer from"
            )
        # The widest bracket any surviving node holds contains every value
        # a surviving node contributed.
        lo_v = float(pair.lo_values_array()[live].min())
        hi_v = float(pair.hi_values_array()[live].max())

        # Phase 2: bisection by counting over the surviving pool.  Frozen
        # (dead) mass never reaches the live pool, so live estimates
        # converge to the live indicator average; times n_live, a count.
        n_live = int(live.size)
        target = phi * n_live
        lo_rank, hi_rank = 0.0, float(n_live)
        answer = hi_v
        steps = 0
        while (
            steps < max_bisection_steps
            and (hi_rank - lo_rank) > eps * n_live
            and (hi_v - lo_v) > 0.0
        ):
            mid = 0.5 * (lo_v + hi_v)
            if mid <= lo_v or mid >= hi_v:
                break
            counter = PushSumProtocol(
                (array <= mid).astype(float), rounds=count_rounds
            )
            count_run = await arun_protocol(
                counter,
                rng=source.child(),
                metrics=stats,
                transport=live_transport,
                faults=faults,
                retry=retry,
                detector=detector,
                raise_on_budget=False,
            )
            rounds += count_run.rounds
            steps += 1
            survivors = np.array(
                [v for v in live if not live_transport.is_down(int(v))],
                dtype=np.int64,
            )
            if survivors.size < 2:
                break
            estimates = count_run.outputs_array[survivors]
            count = float(np.median(estimates)) * n_live
            if count >= target:
                hi_v, hi_rank, answer = mid, count, mid
            else:
                lo_v, lo_rank = mid, count
            live = survivors

        crashed = tuple(sorted(live_transport.down))
        degraded = bool(crashed)
        accuracy = eps + (len(crashed) / float(n))
        return NetQuantileAnswer(
            phi=phi,
            eps=eps,
            n=n,
            n_live=int(live.size),
            value=float(answer),
            accuracy=float(accuracy),
            degraded=degraded,
            rounds=int(rounds),
            bisection_steps=steps,
            crashed=crashed,
            rank_bracket=(float(lo_rank), float(hi_rank)),
            metrics=stats,
        )
    finally:
        if owned:
            await live_transport.stop()


def net_approximate_quantile(
    values: Union[Sequence[float], np.ndarray],
    phi: float = 0.5,
    eps: float = 0.1,
    rng: SeedLike = None,
    transport: Union[None, str, Transport] = None,
    faults: Optional[FaultInjector] = None,
    retry: Optional[RetryPolicy] = None,
    detector: Optional[SwimFailureDetector] = None,
    metrics: Optional[NetworkMetrics] = None,
    max_bisection_steps: int = 40,
    count_rounds: Optional[int] = None,
    run_timeout_s: float = 120.0,
) -> NetQuantileAnswer:
    """ε-approximate φ-quantile over a live transport, degradation included.

    Pass a shared :class:`~repro.net.transport.Transport` instance to carry
    kill state into the query (peers already down answer nothing and the
    result is honestly widened), and/or a ``faults`` injector to kill peers
    *during* it.  ``run_timeout_s`` bounds the whole query in wall time.
    """
    if run_timeout_s <= 0:
        raise ConfigurationError("run_timeout_s must be positive")
    return asyncio.run(
        asyncio.wait_for(
            anet_approximate_quantile(
                values,
                phi=phi,
                eps=eps,
                rng=rng,
                transport=transport,
                faults=faults,
                retry=retry,
                detector=detector,
                metrics=metrics,
                max_bisection_steps=max_bisection_steps,
                count_rounds=count_rounds,
            ),
            run_timeout_s,
        )
    )
