"""The Appendix A buffer-doubling algorithm.

Each node starts with a buffer holding one uniformly sampled value.  Every
round it pulls the buffer of a random node and takes the union, so the
buffer size doubles each round; after ``O(log log n + log 1/ε)`` rounds the
buffer holds ``Ω(log n / ε²)`` (correlated but usable — Lemma A.2) samples
and its empirical φ-quantile is an ε-approximation.  The price is the
message size: buffers of ``Θ(log n / ε²)`` values, i.e. ``Θ(log² n / ε²)``
bits per message, far above the standard O(log n) budget.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.exceptions import ConfigurationError
from repro.gossip.messages import buffer_bits
from repro.gossip.metrics import NetworkMetrics
from repro.utils.rand import RandomSource
from repro.utils.stats import empirical_quantile

#: Refuse to materialise buffer matrices above this many entries.
MAX_TOTAL_BUFFER_ENTRIES = 30_000_000


def doubling_target_size(n: int, eps: float, constant: float = 1.0) -> int:
    """Buffer size Ω(log n / ε²) at which the doubling algorithm stops."""
    if n < 2:
        raise ConfigurationError("n must be at least 2")
    if not 0.0 < eps < 1.0:
        raise ConfigurationError("eps must be in (0, 1)")
    return int(math.ceil(constant * math.log2(n) / (eps * eps)))


@dataclass
class DoublingResult:
    """Outcome of the buffer-doubling baseline."""

    phi: float
    eps: float
    n: int
    estimates: np.ndarray
    estimate: float
    rounds: int
    buffer_size: int
    max_message_bits: int
    metrics: NetworkMetrics


def doubling_quantile(
    values: Union[np.ndarray, list, tuple],
    phi: float,
    eps: float,
    rng: Union[None, int, RandomSource] = None,
    target_size: Optional[int] = None,
    constant: float = 1.0,
) -> DoublingResult:
    """Run the buffer-doubling algorithm of Appendix A.

    Raises :class:`ConfigurationError` if the required buffer matrix would
    exceed :data:`MAX_TOTAL_BUFFER_ENTRIES` (choose a larger ``eps`` or a
    smaller ``n`` — the point of this baseline is its message size, which
    experiment E8 measures at moderate scale).
    """
    if not 0.0 <= phi <= 1.0:
        raise ConfigurationError("phi must be in [0, 1]")
    if not 0.0 < eps < 1.0:
        raise ConfigurationError("eps must be in (0, 1)")
    array = np.asarray(values, dtype=float)
    if array.ndim != 1 or array.size < 2:
        raise ConfigurationError("values must be a 1-d array of length >= 2")
    n = array.size
    if target_size is None:
        target_size = doubling_target_size(n, eps, constant)
    if n * target_size > MAX_TOTAL_BUFFER_ENTRIES:
        raise ConfigurationError(
            f"doubling buffers would need {n * target_size} entries in total; "
            "increase eps, reduce n, or pass an explicit smaller target_size"
        )

    source = rng if isinstance(rng, RandomSource) else RandomSource(rng)
    metrics = NetworkMetrics(keep_history=False)

    # Round 0: every node samples one uniformly random value.
    metrics.begin_round(label="doubling")
    metrics.record_messages(n, buffer_bits(1))
    buffers = array[source.integers(0, n, size=(n, 1))]

    max_bits = buffer_bits(1)
    rounds = 1
    while buffers.shape[1] < target_size:
        partners = source.integers(0, n, size=n)
        own = np.arange(n)
        mask = partners == own
        while np.any(mask):
            partners[mask] = source.integers(0, n, size=int(mask.sum()))
            mask = partners == own
        incoming = buffers[partners]
        bits = buffer_bits(buffers.shape[1])
        max_bits = max(max_bits, bits)
        metrics.begin_round(label="doubling")
        metrics.record_messages(n, bits)
        buffers = np.concatenate([buffers, incoming], axis=1)
        rounds += 1

    estimates = np.array(
        [empirical_quantile(buffers[i], phi) for i in range(n)], dtype=float
    )
    return DoublingResult(
        phi=phi,
        eps=eps,
        n=n,
        estimates=estimates,
        estimate=float(np.median(estimates)),
        rounds=rounds,
        buffer_size=int(buffers.shape[1]),
        max_message_bits=max_bits,
        metrics=metrics,
    )
