"""The Doerr et al. [DGM+11] median rule.

Every node repeatedly samples three uniformly random values and adopts the
median.  Doerr et al. show that O(log n) rounds of this dynamic converge to
a value within ±O(√(log n)/√n) of the median even under adversarial node
failures — but only for the median, not for general quantiles, and not with
a sub-logarithmic round complexity.  The paper's 3-TOURNAMENT phase is the
same dynamic run for only O(log 1/ε + log log n) iterations with an
explicit stopping rule; this module provides the original fixed-length
variant as a baseline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.exceptions import ConfigurationError
from repro.gossip.failures import FailureModel
from repro.gossip.metrics import NetworkMetrics
from repro.gossip.network import GossipNetwork
from repro.utils.rand import RandomSource
from repro.utils.stats import quantile_of_value


@dataclass
class MedianRuleResult:
    """Outcome of the median-rule dynamic."""

    n: int
    iterations: int
    rounds: int
    values: np.ndarray
    metrics: NetworkMetrics
    #: Quantile (in the initial data) of the most common final value.
    consensus_quantile: float
    #: Fraction of nodes holding the most common final value.
    consensus_fraction: float


def median_rule(
    values: Union[np.ndarray, list, tuple],
    rng: Union[None, int, RandomSource] = None,
    iterations: Optional[int] = None,
    failure_model: Union[None, float, FailureModel] = None,
    constant: float = 3.0,
) -> MedianRuleResult:
    """Run the 3-sample median rule for ``iterations`` (default c·log2 n) rounds."""
    array = np.asarray(values, dtype=float)
    if array.ndim != 1 or array.size < 2:
        raise ConfigurationError("values must be a 1-d array of length >= 2")
    n = array.size
    if iterations is None:
        iterations = int(math.ceil(constant * math.log2(n)))
    if iterations < 1:
        raise ConfigurationError("iterations must be positive")

    network = GossipNetwork(array, rng=rng, failure_model=failure_model,
                            keep_history=False)
    for _ in range(iterations):
        current = network.snapshot()
        batch = network.pull(3, label="median-rule")
        pulled = np.where(batch.ok, batch.values, current[:, None])
        network.set_values(np.sort(pulled, axis=1)[:, 1])

    final = network.snapshot()
    uniques, counts = np.unique(final, return_counts=True)
    winner = float(uniques[int(np.argmax(counts))])
    return MedianRuleResult(
        n=n,
        iterations=iterations,
        rounds=network.metrics.rounds,
        values=final,
        metrics=network.metrics,
        consensus_quantile=quantile_of_value(array, winner),
        consensus_fraction=float(np.max(counts)) / n,
    )
