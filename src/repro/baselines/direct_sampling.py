"""The trivial sampling baseline: O(log n / ε²) rounds.

Each node pulls one uniformly random value per round for
``t = ceil(c · log2 n / ε²)`` rounds and outputs the φ-quantile of its
sample.  By Chernoff/Hoeffding (Lemma A.1) the sample quantile is within ε
of the population quantile w.h.p.  The message size is a single value
(O(log n) bits), but the round complexity is exponentially worse in ε than
the tournament algorithm.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.exceptions import ConfigurationError
from repro.gossip.failures import FailureModel
from repro.gossip.metrics import NetworkMetrics
from repro.gossip.network import GossipNetwork
from repro.utils.rand import RandomSource
from repro.utils.stats import empirical_quantile


def sampling_rounds(n: int, eps: float, constant: float = 1.0) -> int:
    """The baseline's round budget ``ceil(constant * log2 n / eps^2)``."""
    if n < 2:
        raise ConfigurationError("n must be at least 2")
    if not 0.0 < eps < 1.0:
        raise ConfigurationError("eps must be in (0, 1)")
    return int(math.ceil(constant * math.log2(n) / (eps * eps)))


@dataclass
class SamplingResult:
    """Outcome of the direct-sampling baseline."""

    phi: float
    eps: float
    n: int
    estimates: np.ndarray
    estimate: float
    rounds: int
    metrics: NetworkMetrics
    observers: int


def sampling_quantile(
    values: Union[np.ndarray, list, tuple],
    phi: float,
    eps: float,
    rng: Union[None, int, RandomSource] = None,
    failure_model: Union[None, float, FailureModel] = None,
    rounds: Optional[int] = None,
    constant: float = 1.0,
    max_observers: int = 512,
) -> SamplingResult:
    """Run the sampling baseline.

    Because the per-node sample sizes grow like ``log n / eps²``, the full
    ``n × t`` sample matrix can be very large; the simulation therefore
    materialises the outputs of at most ``max_observers`` nodes (the
    algorithm is symmetric, so observer nodes are statistically identical to
    the rest), while the round and message accounting covers all ``n``
    nodes.
    """
    if not 0.0 <= phi <= 1.0:
        raise ConfigurationError("phi must be in [0, 1]")
    if not 0.0 < eps < 1.0:
        raise ConfigurationError("eps must be in (0, 1)")
    array = np.asarray(values, dtype=float)
    if array.ndim != 1 or array.size < 2:
        raise ConfigurationError("values must be a 1-d array of length >= 2")
    n = array.size
    if rounds is None:
        rounds = sampling_rounds(n, eps, constant)
    observers = int(min(n, max(1, max_observers)))

    network = GossipNetwork(array, rng=rng, failure_model=failure_model,
                            keep_history=False)
    # Values never change in this baseline, so each pull is an iid draw from
    # the static value array; we account every round on the network and draw
    # the observer samples directly.
    network.charge_rounds(rounds, label="sampling")
    network.metrics.record_messages(rounds * n, 64 + max(1, int(math.ceil(math.log2(n)))))

    draws = network.rng.integers(0, n, size=(observers, rounds))
    samples = array[draws]
    estimates = np.array(
        [empirical_quantile(samples[i], phi) for i in range(observers)], dtype=float
    )

    return SamplingResult(
        phi=phi,
        eps=eps,
        n=n,
        estimates=estimates,
        estimate=float(np.median(estimates)),
        rounds=rounds,
        metrics=network.metrics,
        observers=observers,
    )
