"""The Appendix A.1 compaction variant of the doubling algorithm.

Instead of shipping whole buffers, every node keeps a compacted summary of
capacity ``k = Θ((1/ε)(log log n + log 1/ε))`` and merges it with the
contacted node's summary each round (``S̃_v <- Compact(S̃_v ∪ S̃_{t(v)})``).
Corollary A.5 bounds the additional rank error introduced by compaction, so
with ``k = Θ((1/ε) log n')`` the algorithm still returns an ε-approximate
quantile while its message size drops to
``O((1/ε) · log n · (log log n + log 1/ε))`` bits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Union

import numpy as np

from repro.exceptions import ConfigurationError
from repro.gossip.metrics import NetworkMetrics
from repro.sketches.compactor import CompactingBuffer
from repro.utils.rand import RandomSource


def compacted_buffer_capacity(n: int, eps: float, constant: float = 4.0) -> int:
    """Capacity k = Θ((1/ε)(log log n + log 1/ε)), at least 8."""
    if n < 2:
        raise ConfigurationError("n must be at least 2")
    if not 0.0 < eps < 1.0:
        raise ConfigurationError("eps must be in (0, 1)")
    log_n = math.log2(n)
    loglog = math.log2(max(2.0, log_n))
    capacity = constant * (1.0 / eps) * (loglog + math.log2(1.0 / eps))
    return max(8, int(math.ceil(capacity)))


@dataclass
class CompactedDoublingResult:
    """Outcome of the compacted doubling baseline."""

    phi: float
    eps: float
    n: int
    estimates: np.ndarray
    estimate: float
    rounds: int
    capacity: int
    represented_samples: int
    max_message_bits: int
    metrics: NetworkMetrics


def compacted_doubling_quantile(
    values: Union[np.ndarray, list, tuple],
    phi: float,
    eps: float,
    rng: Union[None, int, RandomSource] = None,
    capacity: Optional[int] = None,
    target_samples: Optional[int] = None,
    constant: float = 1.0,
) -> CompactedDoublingResult:
    """Run the compaction-based doubling algorithm of Appendix A.1."""
    if not 0.0 <= phi <= 1.0:
        raise ConfigurationError("phi must be in [0, 1]")
    if not 0.0 < eps < 1.0:
        raise ConfigurationError("eps must be in (0, 1)")
    array = np.asarray(values, dtype=float)
    if array.ndim != 1 or array.size < 2:
        raise ConfigurationError("values must be a 1-d array of length >= 2")
    n = array.size
    if capacity is None:
        capacity = compacted_buffer_capacity(n, eps)
    if target_samples is None:
        target_samples = int(math.ceil(constant * math.log2(n) / (eps * eps)))

    source = rng if isinstance(rng, RandomSource) else RandomSource(rng)
    metrics = NetworkMetrics(keep_history=False)

    # Round 0: every node samples one uniformly random value into its buffer.
    metrics.begin_round(label="compacted-doubling")
    initial = array[source.integers(0, n, size=n)]
    buffers: List[CompactingBuffer] = [
        CompactingBuffer.from_samples([initial[i]], capacity=capacity)
        for i in range(n)
    ]
    metrics.record_messages(n, buffers[0].message_bits())

    rounds = 1
    max_bits = buffers[0].message_bits()
    while buffers[0].represented_samples < target_samples:
        partners = source.integers(0, n, size=n)
        own = np.arange(n)
        mask = partners == own
        while np.any(mask):
            partners[mask] = source.integers(0, n, size=int(mask.sum()))
            mask = partners == own
        # Synchronous semantics: merges read the partner's buffer from the
        # start of the round.
        snapshot = [
            CompactingBuffer(
                capacity=b.capacity, weight=b.weight, items=list(b.items)
            )
            for b in buffers
        ]
        round_bits = 0
        metrics.begin_round(label="compacted-doubling")
        for node in range(n):
            partner_buffer = snapshot[int(partners[node])]
            bits = partner_buffer.message_bits()
            round_bits = max(round_bits, bits)
            metrics.record_messages(1, bits)
            buffers[node].merge(partner_buffer)
        max_bits = max(max_bits, round_bits)
        rounds += 1

    estimates = np.array([b.query(phi) for b in buffers], dtype=float)
    return CompactedDoublingResult(
        phi=phi,
        eps=eps,
        n=n,
        estimates=estimates,
        estimate=float(np.median(estimates)),
        rounds=rounds,
        capacity=capacity,
        represented_samples=buffers[0].represented_samples,
        max_message_bits=max_bits,
        metrics=metrics,
    )
