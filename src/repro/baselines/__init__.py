"""Baseline algorithms the paper compares against.

* :mod:`repro.baselines.kempe_quantile` — Kempe-Dobra-Gehrke exact quantile
  selection, Θ(log² n) rounds (the previous state of the art).
* :mod:`repro.baselines.direct_sampling` — the trivial O(log n / ε²)-round
  sampling algorithm.
* :mod:`repro.baselines.doubling` — the Appendix A buffer-doubling algorithm
  (O(log log n + log 1/ε) rounds, Θ(log² n / ε²)-bit messages).
* :mod:`repro.baselines.compacted_doubling` — the Appendix A.1 compaction
  variant with Θ((1/ε)(log log n + log 1/ε))-entry messages.
* :mod:`repro.baselines.median_rule` — the Doerr et al. 3-sample median rule
  (median only, O(log n) rounds).
"""

from repro.baselines.kempe_quantile import KempeQuantileResult, kempe_exact_quantile
from repro.baselines.direct_sampling import SamplingResult, sampling_quantile
from repro.baselines.doubling import DoublingResult, doubling_quantile
from repro.baselines.compacted_doubling import (
    CompactedDoublingResult,
    compacted_doubling_quantile,
)
from repro.baselines.median_rule import MedianRuleResult, median_rule

__all__ = [
    "KempeQuantileResult",
    "kempe_exact_quantile",
    "SamplingResult",
    "sampling_quantile",
    "DoublingResult",
    "doubling_quantile",
    "CompactedDoublingResult",
    "compacted_doubling_quantile",
    "MedianRuleResult",
    "median_rule",
]
