"""Kempe-Dobra-Gehrke exact quantile computation — the Θ(log² n) baseline.

[KDG03] implements the classic randomized selection algorithm
[Hoa61, FR75] over gossip: repeatedly pick a uniformly random *pivot* among
the candidate values, count its rank with gossip aggregation (O(log n)
rounds), and discard the half of the candidates on the wrong side of the
target rank.  The number of candidate values halves in expectation per
phase, so O(log n) phases — and therefore Θ(log² n) rounds — suffice with
high probability.  This is the algorithm Theorem 1.1 improves on
quadratically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Union

import numpy as np

from repro.aggregates.counting import count_leq
from repro.aggregates.push_sum import default_push_sum_rounds
from repro.exceptions import ConfigurationError, ConvergenceError
from repro.gossip.failures import FailureModel, resolve_failure_model
from repro.gossip.metrics import NetworkMetrics
from repro.utils.rand import RandomSource
from repro.utils.stats import target_rank


@dataclass
class KempePhase:
    """Bookkeeping for one selection phase."""

    phase: int
    pivot: float
    pivot_rank: int
    candidates_before: int
    candidates_after: int
    rounds_so_far: int


@dataclass
class KempeQuantileResult:
    """Outcome of the gossip randomized-selection baseline."""

    phi: float
    n: int
    target_rank: int
    value: float
    rounds: int
    phases: int
    metrics: NetworkMetrics
    fidelity: str
    history: List[KempePhase] = field(default_factory=list)


def _pivot_selection_rounds(n: int) -> int:
    """Rounds charged for selecting a uniformly random candidate value.

    [KDG03] piggybacks pivot selection on the counting gossip (each node
    tags its contribution with a random key and the maximum key wins), which
    spreads in O(log n) rounds like any extremum.
    """
    return int(math.ceil(2 * math.log2(n))) + 8


def kempe_exact_quantile(
    values: Union[np.ndarray, list, tuple],
    phi: float,
    rng: Union[None, int, RandomSource] = None,
    fidelity: str = "idealized",
    failure_model: Union[None, float, FailureModel] = None,
    max_phases: Optional[int] = None,
) -> KempeQuantileResult:
    """Compute the exact φ-quantile with the [KDG03] selection baseline.

    ``fidelity="simulated"`` runs the per-phase rank counting through the
    push-sum substrate; ``fidelity="idealized"`` (default) computes counts
    exactly and charges the proven O(log n) round cost per phase, so the
    Θ(log² n) total is still reflected in the returned ``rounds``.
    """
    if fidelity not in ("idealized", "simulated"):
        raise ConfigurationError("fidelity must be 'idealized' or 'simulated'")
    if not 0.0 <= phi <= 1.0:
        raise ConfigurationError("phi must be in [0, 1]")
    array = np.asarray(values, dtype=float)
    if array.ndim != 1 or array.size < 2:
        raise ConfigurationError("values must be a 1-d array of length >= 2")

    n = array.size
    simulate = fidelity == "simulated"
    source = rng if isinstance(rng, RandomSource) else RandomSource(rng)
    failures = resolve_failure_model(failure_model)
    metrics = NetworkMetrics(keep_history=False)
    if max_phases is None:
        max_phases = int(10 * math.log2(n)) + 20

    k = target_rank(n, phi)
    counting_rounds = default_push_sum_rounds(n, relative_error=1.0 / (8.0 * n))

    # Candidate interval, maintained as value bounds (inclusive).
    lo_value, hi_value = -math.inf, math.inf
    lo_rank = 0                      # number of values <= lo_value
    history: List[KempePhase] = []
    sorted_values = np.sort(array)

    phase = 0
    answer = None
    while phase < max_phases:
        candidates_mask = (array > lo_value) & (array <= hi_value) if math.isfinite(
            lo_value
        ) else (array <= hi_value)
        candidates = array[candidates_mask]
        if candidates.size == 0:
            raise ConvergenceError("Kempe selection lost all candidates")
        if candidates.size == 1:
            answer = float(candidates[0])
            break
        phase += 1

        # Pivot: a uniformly random candidate value.
        pivot = float(source.choice(candidates))
        metrics.charge_rounds(_pivot_selection_rounds(n), label="pivot-selection")

        # Rank of the pivot via gossip counting.
        if simulate:
            count = count_leq(
                array, threshold=pivot, rng=source.child(),
                rounds=counting_rounds, failure_model=failures, metrics=metrics,
            )
            pivot_rank = count.count
            true_rank = int(np.searchsorted(sorted_values, pivot, side="right"))
            if pivot_rank != true_rank:
                # The w.h.p. guarantee failed (possible at small n); fall back
                # to the true rank so the baseline terminates, as [KDG03]'s
                # analysis assumes exact counts.
                pivot_rank = true_rank
        else:
            pivot_rank = int(np.searchsorted(sorted_values, pivot, side="right"))
            metrics.charge_rounds(counting_rounds, label="counting")

        before = int(candidates.size)
        if pivot_rank >= k:
            hi_value = pivot
        if pivot_rank <= k:
            lo_value = pivot
            lo_rank = pivot_rank
        if pivot_rank == k:
            answer = pivot

        candidates_after = int(
            np.count_nonzero((array > lo_value) & (array <= hi_value))
        )
        history.append(
            KempePhase(
                phase=phase,
                pivot=pivot,
                pivot_rank=pivot_rank,
                candidates_before=before,
                candidates_after=candidates_after,
                rounds_so_far=metrics.rounds,
            )
        )
        if answer is not None:
            break

    if answer is None:
        candidates_mask = (array > lo_value) & (array <= hi_value)
        candidates = array[candidates_mask]
        if candidates.size == 1:
            answer = float(candidates[0])
        else:
            raise ConvergenceError(
                f"Kempe selection did not converge within {max_phases} phases"
            )

    # Spreading the answer to all nodes costs one more broadcast.
    metrics.charge_rounds(int(math.ceil(2 * math.log2(n))) + 8, label="broadcast")

    return KempeQuantileResult(
        phi=phi,
        n=n,
        target_rank=k,
        value=float(answer),
        rounds=metrics.rounds,
        phases=phase,
        metrics=metrics,
        fidelity=fidelity,
        history=history,
    )
