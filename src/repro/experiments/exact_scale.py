"""E12 — Theorem 1.1 at scale: simulated-fidelity exact quantiles, n ≥ 10⁴.

The original exact-rounds experiment (E1) sweeps small networks because the
simulated-fidelity driver used to be gated by the loop-only token
split-and-distribute step.  With every sub-protocol vectorized (tournament
pulls, extrema, counting and now tokens) the *fully simulated* exact
algorithm runs at n = 10⁵ in seconds, which is the regime where comparisons
against the congested-clique-style related work become meaningful.

For each (n, φ) the experiment runs the exact algorithm end to end in
simulated fidelity and reports round counts (the Theorem 1.1 shape check:
rounds / log₂ n stays bounded), duplication iterations, sandwich retries,
wall-clock time, and exactness against the offline quantile.  Trials
dispatch through :func:`repro.experiments.runner.run_trials`; the per-n
value array is published to worker processes through shared memory instead
of being pickled per trial.
"""

from __future__ import annotations

import math
import time
from functools import partial
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.exact_quantile import exact_quantile
from repro.datasets.generators import distinct_uniform
from repro.utils.rand import RandomSource
from repro.utils.stats import empirical_quantile

COLUMNS = [
    "n",
    "phi",
    "trials",
    "fidelity",
    "rounds",
    "rounds_per_logn",
    "iterations",
    "retries",
    "wall_s",
    "correct",
]


def _run_one_trial(
    phi: float,
    fidelity: str,
    truth: float,
    trial_index: int,
    rng: RandomSource,
    values: Optional[np.ndarray] = None,
) -> Dict[str, float]:
    """One simulated exact query; module-level so process pools can pickle it.

    ``values`` arrives as a (read-only) shared-memory view published by
    :func:`repro.experiments.runner.run_trials`; ``truth`` is the offline
    quantile, computed once per (n, phi) rather than per trial.
    """
    start = time.perf_counter()
    result = exact_quantile(values, phi=phi, rng=rng, fidelity=fidelity)
    wall = time.perf_counter() - start
    return {
        "rounds": float(result.rounds),
        "iterations": float(result.iterations),
        "retries": float(result.retries),
        "wall_s": wall,
        "correct": float(result.value == truth),
    }


def run(
    sizes: Sequence[int] = (10_000, 100_000, 300_000),
    phis: Sequence[float] = (0.5,),
    trials: int = 1,
    seed: int = 21,
    fidelity: str = "simulated",
    workers: Optional[int] = None,
) -> List[Dict[str, float]]:
    """Run experiment E12 and return one row per (n, phi)."""
    from repro.experiments.runner import run_trials

    master = RandomSource(seed)
    rows: List[Dict[str, float]] = []
    for n in sizes:
        values = distinct_uniform(n, rng=master.child())
        for phi in phis:
            truth = empirical_quantile(values, phi)
            outcomes = run_trials(
                partial(_run_one_trial, phi, fidelity, truth),
                trials,
                seed=master.child(),
                workers=workers,
                shared={"values": values},
            )
            mean_rounds = float(np.mean([o["rounds"] for o in outcomes]))
            rows.append(
                {
                    "n": n,
                    "phi": phi,
                    "trials": trials,
                    "fidelity": fidelity,
                    "rounds": mean_rounds,
                    "rounds_per_logn": mean_rounds / math.log2(n),
                    "iterations": float(np.mean([o["iterations"] for o in outcomes])),
                    "retries": float(np.mean([o["retries"] for o in outcomes])),
                    "wall_s": float(np.mean([o["wall_s"] for o in outcomes])),
                    "correct": float(np.mean([o["correct"] for o in outcomes])),
                }
            )
    return rows
