"""E12 — Theorem 1.1 at scale: simulated-fidelity exact quantiles, n ≥ 10⁴.

The original exact-rounds experiment (E1) sweeps small networks because the
simulated-fidelity driver used to be gated by the loop-only token
split-and-distribute step.  With every sub-protocol vectorized (tournament
pulls, extrema, counting and tokens), the Step-3/Step-4 pairs fused into
multi-lane runs, and an opt-in float32 key path, the *fully simulated*
exact algorithm runs to n = 10⁶ single-threaded, which is the regime where
comparisons against the congested-clique-style related work become
meaningful.

For each (n, φ, dtype) the experiment runs the exact algorithm end to end
in simulated fidelity and reports round counts (the Theorem 1.1 shape
check: rounds / log₂ n stays bounded), duplication iterations, sandwich
retries, wall-clock time, exactness against the offline quantile, the rank
error of the returned value, and — for float32 rows — whether the rank
error matches the float64 run bit for bit (``f32_parity``: keys are ranks,
exactly representable in float32 below 2²⁴, so parity is the documented
expectation, not an approximation).  Trials dispatch through
:func:`repro.experiments.runner.run_trials`; the per-n value array is
published to worker processes through shared memory instead of being
pickled per trial.
"""

from __future__ import annotations

import math
from functools import partial
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.exact_quantile import exact_quantile
from repro.datasets.generators import distinct_uniform
from repro.exceptions import ConfigurationError
from repro.obs.tracer import Tracer
from repro.utils.rand import RandomSource
from repro.utils.stats import empirical_quantile
from repro.utils.views import ReadOnlyArray

COLUMNS = [
    "n",
    "phi",
    "trials",
    "fidelity",
    "dtype",
    "rounds",
    "rounds_per_logn",
    "iterations",
    "retries",
    "wall_s",
    "correct",
    "rank_error",
    "f32_parity",
]

#: Preset sweep: the fused multi-lane + float32 path reaches n = 10⁶
#: single-threaded (see benchmarks/BENCH_exact.json for the trajectory).
DEFAULT_SIZES = (10_000, 100_000, 300_000, 1_000_000)


def _run_one_trial(
    phi: float,
    fidelity: str,
    dtype: Optional[str],
    truth: float,
    trial_index: int,
    rng: RandomSource,
    values: Optional[ReadOnlyArray] = None,
) -> Dict[str, float]:
    """One simulated exact query; module-level so process pools can pickle it.

    ``values`` arrives as a (read-only) shared-memory view published by
    :func:`repro.experiments.runner.run_trials`; ``truth`` is the offline
    quantile, computed once per (n, phi) rather than per trial.
    """
    # A trial-local tracer (not installed ambiently) times the call through
    # the same span API the rest of the stack uses; local scope keeps the
    # engines' per-round hooks disabled, so the timed run stays on the
    # noop-tracer hot path.
    timer = Tracer()
    with timer.span("exact_scale_trial") as span:
        span.annotate(phi=phi, fidelity=fidelity, dtype=dtype or "float64")
        result = exact_quantile(
            values, phi=phi, rng=rng, fidelity=fidelity, dtype=dtype
        )
    wall = timer.spans[0].wall_s
    rank_true = np.searchsorted(np.sort(values), truth, side="right")
    rank_got = np.searchsorted(np.sort(values), result.value, side="right")
    return {
        "rounds": float(result.rounds),
        "iterations": float(result.iterations),
        "retries": float(result.retries),
        "wall_s": wall,
        "correct": float(result.value == truth),
        "rank_error": float(abs(int(rank_got) - int(rank_true))) / values.size,
    }


def run(
    sizes: Sequence[int] = DEFAULT_SIZES,
    phis: Sequence[float] = (0.5,),
    trials: int = 1,
    seed: int = 21,
    fidelity: str = "simulated",
    dtypes: Sequence[str] = ("float64", "float32"),
    workers: Optional[int] = None,
) -> List[Dict[str, float]]:
    """Run experiment E12 and return one row per (n, phi, dtype).

    ``dtypes`` selects the gossip key-array precisions to sweep; when both
    float64 and float32 run for an (n, phi) cell the float32 row carries an
    ``f32_parity`` column — 1.0 iff its measured rank error equals the
    float64 row's.
    """
    for dtype in dtypes:
        if dtype not in ("float64", "float32"):
            raise ConfigurationError(
                f"unknown dtype {dtype!r}; choose float64 and/or float32"
            )
    from repro.experiments.runner import run_trials

    master = RandomSource(seed)
    rows: List[Dict[str, float]] = []
    for n in sizes:
        values = distinct_uniform(n, rng=master.child())
        for phi in phis:
            truth = empirical_quantile(values, phi)
            # one seed per (n, phi) cell, shared across dtypes, so the
            # float32 run replays the float64 gossip schedule exactly.
            # SeedSequence spawning is stateful, so each dtype gets a
            # *fresh* sequence rebuilt from the cell's entropy/spawn_key —
            # reusing one object would hand later dtypes different children.
            cell_seq = master.child().seed_sequence
            rank_errors: Dict[str, float] = {}
            cell_rows: Dict[str, Dict[str, float]] = {}
            for dtype in dtypes:
                replay = np.random.SeedSequence(
                    entropy=cell_seq.entropy, spawn_key=cell_seq.spawn_key
                )
                outcomes = run_trials(
                    partial(_run_one_trial, phi, fidelity, dtype, truth),
                    trials,
                    seed=RandomSource(replay),
                    workers=workers,
                    shared={"values": values},
                )
                mean_rounds = float(np.mean([o["rounds"] for o in outcomes]))
                mean_rank_error = float(np.mean([o["rank_error"] for o in outcomes]))
                rank_errors[dtype] = mean_rank_error
                row = {
                    "n": n,
                    "phi": phi,
                    "trials": trials,
                    "fidelity": fidelity,
                    "dtype": dtype,
                    "rounds": mean_rounds,
                    "rounds_per_logn": mean_rounds / math.log2(n),
                    "iterations": float(np.mean([o["iterations"] for o in outcomes])),
                    "retries": float(np.mean([o["retries"] for o in outcomes])),
                    "wall_s": float(np.mean([o["wall_s"] for o in outcomes])),
                    "correct": float(np.mean([o["correct"] for o in outcomes])),
                    "rank_error": mean_rank_error,
                }
                cell_rows[dtype] = row
                rows.append(row)
            # parity is attached after the sweep so it appears regardless
            # of the order the dtypes were requested in
            if "float32" in cell_rows and "float64" in rank_errors:
                cell_rows["float32"]["f32_parity"] = float(
                    rank_errors["float32"] == rank_errors["float64"]
                )
    return rows
