"""E10 — ablations of the design choices called out in DESIGN.md.

Three questions the paper's construction answers implicitly; each ablation
removes one ingredient and measures what breaks:

* **Truncated last iteration (δ).**  Algorithm 1 performs the tournament in
  its final iteration only with probability δ so the above-band mass lands
  *at* T = 1/2 − ε instead of overshooting.  The ablation always performs
  the tournament (δ ≡ 1) and measures how far the band drifts past the
  median, which translates directly into extra rank error.
* **Phase I (band shifting).**  For φ ≠ 1/2 one could hope to run only the
  3-TOURNAMENT median dynamics.  The ablation skips Phase I and shows the
  returned value collapses towards the median regardless of φ — the error
  becomes ≈ |φ − 1/2| instead of ≤ ε.
* **Final vote size K.**  Lemma 2.17 only needs K = O(1); the ablation
  sweeps K and measures the per-node failure fraction, showing diminishing
  returns beyond a small constant.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.core.schedules import two_tournament_schedule
from repro.core.three_tournament import run_three_tournament
from repro.core.two_tournament import run_two_tournament
from repro.datasets.generators import distinct_uniform
from repro.gossip.network import GossipNetwork
from repro.utils.rand import RandomSource
from repro.utils.stats import fraction_within_eps, rank_error

COLUMNS = [
    "ablation",
    "n",
    "phi",
    "eps",
    "setting",
    "trials",
    "mean_error",
    "max_error",
    "node_success_fraction",
]


def _full_pipeline(
    values: np.ndarray,
    phi: float,
    eps: float,
    rng: RandomSource,
    truncate_last: bool = True,
    skip_phase1: bool = False,
    final_samples: int = 15,
) -> np.ndarray:
    """Run the two-phase algorithm with individual ingredients switched off."""
    network = GossipNetwork(values, rng=rng, keep_history=False)
    if not skip_phase1:
        schedule = two_tournament_schedule(phi, eps)
        if not truncate_last and schedule.iterations:
            # force delta = 1 in every iteration (the ablated variant)
            forced = [it.__class__(it.index, it.h_before, it.h_after, 1.0)
                      for it in schedule.iterations]
            schedule = schedule.__class__(
                phi=schedule.phi,
                eps=schedule.eps,
                direction=schedule.direction,
                h0=schedule.h0,
                threshold=schedule.threshold,
                iterations=forced,
            )
        run_two_tournament(network, phi=phi, eps=eps, schedule=schedule, track_band=False)
    phase2 = run_three_tournament(
        network, eps=eps / 4.0, final_samples=final_samples, track_band=False
    )
    return phase2.final_values


def run(
    n: int = 2048,
    phi: float = 0.25,
    eps: float = 0.1,
    trials: int = 3,
    vote_sizes: Sequence[int] = (1, 3, 7, 15),
    seed: int = 11,
) -> List[Dict[str, object]]:
    """Run the three ablations and return one row per configuration."""
    rng = RandomSource(seed)
    rows: List[Dict[str, object]] = []

    def record(ablation: str, setting: str, errors, node_success):
        rows.append(
            {
                "ablation": ablation,
                "n": n,
                "phi": phi,
                "eps": eps,
                "setting": setting,
                "trials": trials,
                "mean_error": float(np.mean(errors)),
                "max_error": float(np.max(errors)),
                "node_success_fraction": float(np.mean(node_success)),
            }
        )

    # --- ablation 1: truncated vs un-truncated last iteration ------------------
    for truncate, label in ((True, "delta-truncated (paper)"), (False, "delta=1 (ablated)")):
        errors, success = [], []
        for _ in range(trials):
            trial_rng = rng.child()
            values = distinct_uniform(n, rng=trial_rng.child())
            estimates = _full_pipeline(
                values, phi, eps, trial_rng.child(), truncate_last=truncate
            )
            representative = float(np.median(estimates[np.isfinite(estimates)]))
            errors.append(rank_error(values, representative, phi))
            success.append(fraction_within_eps(values, estimates, phi, eps))
        record("last-iteration-truncation", label, errors, success)

    # --- ablation 2: with vs without Phase I ------------------------------------
    for skip, label in ((False, "phase I + phase II (paper)"), (True, "phase II only (ablated)")):
        errors, success = [], []
        for _ in range(trials):
            trial_rng = rng.child()
            values = distinct_uniform(n, rng=trial_rng.child())
            estimates = _full_pipeline(
                values, phi, eps, trial_rng.child(), skip_phase1=skip
            )
            representative = float(np.median(estimates[np.isfinite(estimates)]))
            errors.append(rank_error(values, representative, phi))
            success.append(fraction_within_eps(values, estimates, phi, eps))
        record("phase-one", label, errors, success)

    # --- ablation 3: final vote size K -------------------------------------------
    for k in vote_sizes:
        if k % 2 == 0:
            continue
        errors, success = [], []
        for _ in range(trials):
            trial_rng = rng.child()
            values = distinct_uniform(n, rng=trial_rng.child())
            estimates = _full_pipeline(
                values, phi, eps, trial_rng.child(), final_samples=int(k)
            )
            representative = float(np.median(estimates[np.isfinite(estimates)]))
            errors.append(rank_error(values, representative, phi))
            success.append(fraction_within_eps(values, estimates, phi, eps))
        record("final-vote-size", f"K={k}", errors, success)

    return rows
