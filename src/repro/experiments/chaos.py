"""E13 — chaos: serving quantiles through churn, drift and injected faults.

Lifecycle exercised per trial (the robustness story end to end):

1. build a :class:`~repro.core.service.QuantileService` **fault-free**;
2. run a seeded :class:`~repro.topology.dynamic.ChurnProcess` for
   ``churn_rounds`` and shift a fraction of the surviving values upward —
   uniform churn alone preserves the distribution in expectation, so the
   shift is what actually moves ranks and makes lanes stale;
3. measure the *degraded* regime: how many answers carry the degraded
   flag, and the true rank error of the served values against the current
   active population;
4. attach a :class:`~repro.faults.FaultInjector` at the row's intensity
   (chaos starts mid-life) and run an incremental epoch rebuild through
   it — recording retry attempts, the incremental-vs-full chunk ratio and
   whether validation passed;
5. re-measure: post-rebuild degraded rate and rank error.

Expected shape: rank error and degraded rate drop back to the ε regime
after the rebuild at low intensities; at high intensities rebuild retries
climb and validation starts failing, but every query is still answered
(degraded, never an exception).  All trials dispatch through the parallel
trial executor, so rows are identical for any ``workers`` count.
"""

from __future__ import annotations

from functools import partial
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.service import QuantileService
from repro.datasets.generators import distinct_uniform
from repro.exceptions import ConfigurationError
from repro.faults import (
    FAULT_KINDS,
    CrashRestart,
    FaultInjector,
    MessageDelay,
    MessageDrop,
    MessageDuplication,
    ValueCorruption,
)
from repro.topology import ChurnProcess
from repro.utils.rand import RandomSource

COLUMNS = [
    "n",
    "faults",
    "intensity",
    "churn_rate",
    "trials",
    "degraded_pre",
    "rank_err_pre",
    "rebuild_attempts",
    "chunks_ratio",
    "validated_fraction",
    "degraded_post",
    "rank_err_post",
    "injected",
]

#: The rank targets every trial queries before and after the rebuild.
PROBE_PHIS = (0.1, 0.25, 0.5, 0.75, 0.9)

_SPEC_TYPES = {
    "drop": MessageDrop,
    "duplicate": MessageDuplication,
    "delay": MessageDelay,
    "crash": CrashRestart,
    "corrupt": ValueCorruption,
}


def build_injector(
    kinds: Sequence[str], intensity: float, rng
) -> FaultInjector:
    """One spec per kind, all at ``intensity``; seeded for exact replay."""
    unknown = sorted(set(kinds) - set(FAULT_KINDS))
    if unknown:
        raise ConfigurationError(
            f"unknown fault kind(s) {unknown}; choose from {FAULT_KINDS}"
        )
    return FaultInjector(
        [_SPEC_TYPES[kind](intensity) for kind in kinds], rng=rng
    )


def _rank_error(
    values: np.ndarray, active: np.ndarray, answers
) -> Tuple[float, float]:
    """(mean rank error, degraded fraction) of answers vs the live multiset.

    The error of one answer is the distance of its target ``phi`` from the
    rank *interval* its value occupies in the sorted active population (0
    when phi falls inside the tie range), matching the service's own
    rebuild validation rule.
    """
    live = np.sort(values[active])
    m = live.size
    errors = []
    degraded = 0
    for answer in answers:
        degraded += int(answer.degraded)
        if not np.isfinite(answer.value):
            errors.append(1.0)
            continue
        left = np.searchsorted(live, answer.value, side="left") / m
        right = np.searchsorted(live, answer.value, side="right") / m
        errors.append(max(0.0, left - answer.phi, answer.phi - right))
    return float(np.mean(errors)), degraded / float(len(answers))


def _run_cell(
    grid: Tuple[Tuple[int, float, float], ...],
    fault_kinds: Tuple[str, ...],
    churn_rounds: int,
    shift_fraction: float,
    eps: float,
    max_lanes: int,
    trial_index: int,
    rng: RandomSource,
) -> Dict[str, float]:
    """One (n, churn_rate, intensity) trial; module-level for process pools."""
    n, churn_rate, intensity = grid[trial_index]
    values = distinct_uniform(n, rng=rng.child())
    churn = ChurnProcess(n, churn_rate=churn_rate, rng=rng.child())
    service = QuantileService(
        values,
        eps=eps,
        rng=rng.child(),
        max_lanes=max_lanes,
        churn_process=churn,
    )

    # Phase 2: churn + a genuine distribution shift.  ``values`` is kept in
    # lockstep with the service's internal array so the rank-error probe
    # scores answers against the population the service actually serves.
    service.advance_churn(churn_rounds)
    active = churn.active.copy()
    survivors = np.flatnonzero(active)
    shift_rng = rng.child()
    shifted = shift_rng.choice(
        survivors, size=max(1, int(shift_fraction * survivors.size)),
        replace=False,
    )
    span = float(values.max() - values.min())
    for index in shifted:
        new_value = float(values[index] + 0.5 * span)
        values[index] = new_value
        service.update_value(int(index), new_value)

    pre_err, pre_degraded = _rank_error(
        values, active, [service.quantile(phi) for phi in PROBE_PHIS]
    )

    # Phase 4: chaos starts mid-life — the rebuild runs under the injector.
    service.attach_faults(
        build_injector(fault_kinds, intensity, rng.child())
    )
    report = service.rebuild(incremental=True)
    chunks_ratio = (
        report.chunks_run / report.full_chunks if report.full_chunks else 0.0
    )

    post_err, post_degraded = _rank_error(
        values, churn.active, [service.quantile(phi) for phi in PROBE_PHIS]
    )
    injected = sum(service.faults.counters.values())
    return {
        "degraded_pre": pre_degraded,
        "rank_err_pre": pre_err,
        "attempts": float(report.attempts),
        "chunks_ratio": chunks_ratio,
        "validated": float(report.validated),
        "degraded_post": post_degraded,
        "rank_err_post": post_err,
        "injected": float(injected),
    }


def run(
    sizes: Sequence[int] = (512,),
    fault_kinds: Sequence[str] = ("drop", "crash"),
    fault_intensities: Sequence[float] = (0.0, 0.05, 0.2),
    churn_rates: Sequence[float] = (0.05,),
    churn_rounds: int = 30,
    shift_fraction: float = 0.3,
    eps: float = 0.1,
    max_lanes: int = 4,
    trials: int = 2,
    seed: int = 23,
    workers: Optional[int] = None,
) -> List[Dict[str, float]]:
    """Run experiment E13; one row per (n, churn_rate, fault intensity)."""
    from repro.experiments.runner import run_trials

    kinds = tuple(fault_kinds)
    unknown = sorted(set(kinds) - set(FAULT_KINDS))
    if unknown:
        raise ConfigurationError(
            f"unknown fault kind(s) {unknown}; choose from {FAULT_KINDS}"
        )
    for intensity in fault_intensities:
        if not 0.0 <= intensity <= 1.0:
            raise ConfigurationError(
                f"fault intensity must be in [0, 1], got {intensity}"
            )
    if not 0.0 <= shift_fraction <= 1.0:
        raise ConfigurationError(
            f"shift_fraction must be in [0, 1], got {shift_fraction}"
        )

    configs: List[Tuple[int, float, float]] = []
    for n in sizes:
        for rate in churn_rates:
            for intensity in fault_intensities:
                configs.append((n, rate, intensity))
    grid = tuple(config for config in configs for _ in range(trials))

    task = partial(
        _run_cell, grid, kinds, churn_rounds, shift_fraction, eps, max_lanes
    )
    outcomes = run_trials(task, len(grid), seed=seed, workers=workers)

    rows: List[Dict[str, float]] = []
    for index, (n, rate, intensity) in enumerate(configs):
        batch = outcomes[index * trials : (index + 1) * trials]
        rows.append(
            {
                "n": n,
                "faults": "+".join(kinds),
                "intensity": intensity,
                "churn_rate": rate,
                "trials": trials,
                "degraded_pre": float(
                    np.mean([b["degraded_pre"] for b in batch])
                ),
                "rank_err_pre": float(
                    np.mean([b["rank_err_pre"] for b in batch])
                ),
                "rebuild_attempts": float(
                    np.mean([b["attempts"] for b in batch])
                ),
                "chunks_ratio": float(
                    np.mean([b["chunks_ratio"] for b in batch])
                ),
                "validated_fraction": float(
                    np.mean([b["validated"] for b in batch])
                ),
                "degraded_post": float(
                    np.mean([b["degraded_post"] for b in batch])
                ),
                "rank_err_post": float(
                    np.mean([b["rank_err_post"] for b in batch])
                ),
                "injected": float(np.mean([b["injected"] for b in batch])),
            }
        )
    return rows
