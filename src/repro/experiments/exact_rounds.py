"""E1 — Theorem 1.1: exact quantile in Θ(log n) rounds vs. Kempe's Θ(log² n).

For each network size the experiment runs the tournament-based exact
algorithm and the [KDG03] selection baseline on the same inputs and reports
round counts, the normalised ratios rounds/log₂n and rounds/log₂²n, and the
speed-up of the new algorithm.  The reproduction target is the *shape*:
the tournament column grows linearly in log n (its normalised ratio stays
roughly flat), the baseline grows quadratically, and the speed-up widens
with n.

Trials dispatch through the parallel trial executor
(:func:`repro.experiments.runner.run_trials`): each (n, φ, trial) cell gets
its own deterministic child seed, so rows are identical for any ``workers``
count.
"""

from __future__ import annotations

import math
from functools import partial
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.kempe_quantile import kempe_exact_quantile
from repro.core.exact_quantile import exact_quantile
from repro.datasets.generators import distinct_uniform
from repro.utils.rand import RandomSource
from repro.utils.stats import empirical_quantile

COLUMNS = [
    "n",
    "phi",
    "trials",
    "tournament_rounds",
    "kempe_rounds",
    "tournament_per_logn",
    "kempe_per_log2n",
    "speedup",
    "tournament_correct",
    "kempe_correct",
]


def _run_one_trial(
    grid: Tuple[Tuple[int, float], ...],
    fidelity: str,
    trial_index: int,
    rng: RandomSource,
) -> Dict[str, float]:
    """One (n, phi) trial; module-level so process pools can pickle it."""
    n, phi = grid[trial_index]
    values = distinct_uniform(n, rng=rng.child())
    truth = empirical_quantile(values, phi)
    ours = exact_quantile(values, phi=phi, rng=rng.child(), fidelity=fidelity)
    base = kempe_exact_quantile(values, phi=phi, rng=rng.child(), fidelity=fidelity)
    return {
        "tournament_rounds": ours.rounds,
        "kempe_rounds": base.rounds,
        "tournament_correct": int(ours.value == truth),
        "kempe_correct": int(base.value == truth),
    }


def run(
    sizes: Sequence[int] = (256, 512, 1024, 2048, 4096),
    phis: Sequence[float] = (0.5,),
    trials: int = 3,
    seed: int = 1,
    fidelity: str = "idealized",
    workers: Optional[int] = None,
) -> List[Dict[str, float]]:
    """Run experiment E1 and return one row per (n, phi)."""
    from repro.experiments.runner import run_trials

    grid = tuple(
        (n, phi) for n in sizes for phi in phis for _ in range(trials)
    )
    outcomes = run_trials(
        partial(_run_one_trial, grid, fidelity), len(grid), seed=seed,
        workers=workers,
    )

    rows: List[Dict[str, float]] = []
    cursor = 0
    for n in sizes:
        for phi in phis:
            batch = outcomes[cursor : cursor + trials]
            cursor += trials
            mean_ours = float(np.mean([b["tournament_rounds"] for b in batch]))
            mean_kempe = float(np.mean([b["kempe_rounds"] for b in batch]))
            log_n = math.log2(n)
            rows.append(
                {
                    "n": n,
                    "phi": phi,
                    "trials": trials,
                    "tournament_rounds": mean_ours,
                    "kempe_rounds": mean_kempe,
                    "tournament_per_logn": mean_ours / log_n,
                    "kempe_per_log2n": mean_kempe / (log_n * log_n),
                    "speedup": mean_kempe / mean_ours if mean_ours else float("nan"),
                    "tournament_correct": sum(
                        b["tournament_correct"] for b in batch
                    ) / trials,
                    "kempe_correct": sum(b["kempe_correct"] for b in batch) / trials,
                }
            )
    return rows
