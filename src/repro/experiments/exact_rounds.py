"""E1 — Theorem 1.1: exact quantile in Θ(log n) rounds vs. Kempe's Θ(log² n).

For each network size the experiment runs the tournament-based exact
algorithm and the [KDG03] selection baseline on the same inputs and reports
round counts, the normalised ratios rounds/log₂n and rounds/log₂²n, and the
speed-up of the new algorithm.  The reproduction target is the *shape*:
the tournament column grows linearly in log n (its normalised ratio stays
roughly flat), the baseline grows quadratically, and the speed-up widens
with n.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.baselines.kempe_quantile import kempe_exact_quantile
from repro.core.exact_quantile import exact_quantile
from repro.datasets.generators import distinct_uniform
from repro.utils.rand import RandomSource
from repro.utils.stats import empirical_quantile

COLUMNS = [
    "n",
    "phi",
    "trials",
    "tournament_rounds",
    "kempe_rounds",
    "tournament_per_logn",
    "kempe_per_log2n",
    "speedup",
    "tournament_correct",
    "kempe_correct",
]


def run(
    sizes: Sequence[int] = (256, 512, 1024, 2048, 4096),
    phis: Sequence[float] = (0.5,),
    trials: int = 3,
    seed: int = 1,
    fidelity: str = "idealized",
) -> List[Dict[str, float]]:
    """Run experiment E1 and return one row per (n, phi)."""
    rng = RandomSource(seed)
    rows: List[Dict[str, float]] = []
    for n in sizes:
        for phi in phis:
            tournament_rounds = []
            kempe_rounds = []
            tournament_correct = 0
            kempe_correct = 0
            for _ in range(trials):
                trial_rng = rng.child()
                values = distinct_uniform(n, rng=trial_rng.child())
                truth = empirical_quantile(values, phi)
                ours = exact_quantile(
                    values, phi=phi, rng=trial_rng.child(), fidelity=fidelity
                )
                base = kempe_exact_quantile(
                    values, phi=phi, rng=trial_rng.child(), fidelity=fidelity
                )
                tournament_rounds.append(ours.rounds)
                kempe_rounds.append(base.rounds)
                tournament_correct += int(ours.value == truth)
                kempe_correct += int(base.value == truth)
            mean_ours = float(np.mean(tournament_rounds))
            mean_kempe = float(np.mean(kempe_rounds))
            log_n = math.log2(n)
            rows.append(
                {
                    "n": n,
                    "phi": phi,
                    "trials": trials,
                    "tournament_rounds": mean_ours,
                    "kempe_rounds": mean_kempe,
                    "tournament_per_logn": mean_ours / log_n,
                    "kempe_per_log2n": mean_kempe / (log_n * log_n),
                    "speedup": mean_kempe / mean_ours if mean_ours else float("nan"),
                    "tournament_correct": tournament_correct / trials,
                    "kempe_correct": kempe_correct / trials,
                }
            )
    return rows
