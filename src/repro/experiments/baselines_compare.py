"""E7 — head-to-head comparison of all approximate-quantile algorithms.

At a fixed (n, ε, φ) the experiment runs the tournament algorithm, the
direct-sampling baseline, the buffer-doubling baseline and the compacted
doubling baseline on the same inputs and reports rounds, maximum message
size and measured error.  The expected shape: the tournament algorithm uses
the fewest rounds among the O(log n)-bit algorithms; sampling needs ~1/ε²
more rounds; doubling matches the tournament's rounds only by inflating the
message size by orders of magnitude; compaction sits in between.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.baselines.compacted_doubling import compacted_doubling_quantile
from repro.baselines.direct_sampling import sampling_quantile
from repro.baselines.doubling import doubling_quantile
from repro.core.approx_quantile import approximate_quantile
from repro.datasets.generators import distinct_uniform
from repro.gossip.messages import tournament_message_bits
from repro.utils.rand import RandomSource
from repro.utils.stats import rank_error

COLUMNS = [
    "algorithm",
    "n",
    "phi",
    "eps",
    "rounds",
    "max_message_bits",
    "mean_error",
    "success_fraction",
]


def run(
    n: int = 2048,
    eps: float = 0.1,
    phi: float = 0.75,
    trials: int = 3,
    seed: int = 7,
) -> List[Dict[str, float]]:
    """Run experiment E7 and return one row per algorithm."""
    rng = RandomSource(seed)
    records: Dict[str, Dict[str, List[float]]] = {
        name: {"rounds": [], "bits": [], "errors": []}
        for name in ("tournament", "sampling", "doubling", "compacted-doubling")
    }
    for _ in range(trials):
        trial_rng = rng.child()
        values = distinct_uniform(n, rng=trial_rng.child())

        ours = approximate_quantile(values, phi=phi, eps=eps, rng=trial_rng.child())
        records["tournament"]["rounds"].append(ours.rounds)
        records["tournament"]["bits"].append(tournament_message_bits(n))
        records["tournament"]["errors"].append(rank_error(values, ours.estimate, phi))

        samp = sampling_quantile(values, phi=phi, eps=eps, rng=trial_rng.child())
        records["sampling"]["rounds"].append(samp.rounds)
        records["sampling"]["bits"].append(tournament_message_bits(n))
        records["sampling"]["errors"].append(rank_error(values, samp.estimate, phi))

        dbl = doubling_quantile(values, phi=phi, eps=eps, rng=trial_rng.child())
        records["doubling"]["rounds"].append(dbl.rounds)
        records["doubling"]["bits"].append(dbl.max_message_bits)
        records["doubling"]["errors"].append(rank_error(values, dbl.estimate, phi))

        cmp_ = compacted_doubling_quantile(
            values, phi=phi, eps=eps, rng=trial_rng.child()
        )
        records["compacted-doubling"]["rounds"].append(cmp_.rounds)
        records["compacted-doubling"]["bits"].append(cmp_.max_message_bits)
        records["compacted-doubling"]["errors"].append(
            rank_error(values, cmp_.estimate, phi)
        )

    rows: List[Dict[str, float]] = []
    for name, data in records.items():
        errors = np.array(data["errors"], dtype=float)
        rows.append(
            {
                "algorithm": name,
                "n": n,
                "phi": phi,
                "eps": eps,
                "rounds": float(np.mean(data["rounds"])),
                "max_message_bits": float(np.max(data["bits"])),
                "mean_error": float(errors.mean()),
                "success_fraction": float(np.mean(errors <= eps + 1e-12)),
            }
        )
    return rows
