"""E4 — Theorem 1.4: robustness to per-round node failures.

Runs the robust ε-approximate φ-quantile algorithm under increasing failure
probabilities μ and reports the round count (which should inflate only by
the Θ(1/(1−μ) log 1/(1−μ)) per-iteration factor), the fraction of nodes
that stayed good, the fraction that learned an answer, and the error of the
answers that were produced.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.analysis.theory import robust_slowdown_reference
from repro.core.approx_quantile import approximate_quantile
from repro.core.robust import robust_approximate_quantile
from repro.datasets.generators import distinct_uniform
from repro.utils.rand import RandomSource
from repro.utils.stats import rank_error

COLUMNS = [
    "n",
    "mu",
    "eps",
    "phi",
    "trials",
    "rounds",
    "failure_free_rounds",
    "slowdown",
    "reference_slowdown",
    "good_fraction",
    "answered_fraction",
    "mean_error",
    "success_fraction",
]


def run(
    sizes: Sequence[int] = (1024, 2048),
    mus: Sequence[float] = (0.0, 0.2, 0.5),
    eps: float = 0.1,
    phi: float = 0.5,
    trials: int = 3,
    seed: int = 4,
) -> List[Dict[str, float]]:
    """Run experiment E4 and return one row per (n, mu)."""
    rng = RandomSource(seed)
    rows: List[Dict[str, float]] = []
    for n in sizes:
        # Failure-free reference: the plain algorithm on the same sizes.
        ref_rng = rng.child()
        ref_values = distinct_uniform(n, rng=ref_rng.child())
        reference = approximate_quantile(
            ref_values, phi=phi, eps=eps, rng=ref_rng.child()
        )
        for mu in mus:
            errors = []
            rounds = []
            good_fracs = []
            answered = []
            successes = 0
            for _ in range(trials):
                trial_rng = rng.child()
                values = distinct_uniform(n, rng=trial_rng.child())
                result = robust_approximate_quantile(
                    values,
                    phi=phi,
                    eps=eps,
                    failure_model=mu,
                    rng=trial_rng.child(),
                )
                error = rank_error(values, result.estimate, phi)
                errors.append(error)
                rounds.append(result.rounds)
                good_fracs.append(result.good_fraction)
                answered.append(result.answered_fraction)
                successes += int(error <= eps + 1e-12)
            mean_rounds = float(np.mean(rounds))
            rows.append(
                {
                    "n": n,
                    "mu": mu,
                    "eps": eps,
                    "phi": phi,
                    "trials": trials,
                    "rounds": mean_rounds,
                    "failure_free_rounds": reference.rounds,
                    "slowdown": mean_rounds / reference.rounds,
                    "reference_slowdown": robust_slowdown_reference(mu),
                    "good_fraction": float(np.mean(good_fracs)),
                    "answered_fraction": float(np.mean(answered)),
                    "mean_error": float(np.mean(errors)),
                    "success_fraction": successes / trials,
                }
            )
    return rows
