"""E4 — Theorem 1.4: robustness to per-round node failures.

Runs the robust ε-approximate φ-quantile algorithm under increasing failure
probabilities μ and reports the round count (which should inflate only by
the Θ(1/(1−μ) log 1/(1−μ)) per-iteration factor), the fraction of nodes
that stayed good, the fraction that learned an answer, and the error of the
answers that were produced.
"""

from __future__ import annotations

from functools import partial
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.theory import robust_slowdown_reference
from repro.core.approx_quantile import approximate_quantile
from repro.core.robust import robust_approximate_quantile
from repro.datasets.generators import distinct_uniform
from repro.utils.rand import RandomSource, resolve_seed_sequence
from repro.utils.stats import rank_error

COLUMNS = [
    "n",
    "mu",
    "eps",
    "phi",
    "trials",
    "rounds",
    "failure_free_rounds",
    "slowdown",
    "reference_slowdown",
    "good_fraction",
    "answered_fraction",
    "mean_error",
    "success_fraction",
]


def _run_one_trial(
    grid: Tuple[Tuple[int, float], ...],
    eps: float,
    phi: float,
    trial_index: int,
    rng: RandomSource,
) -> Dict[str, float]:
    """One (n, mu) trial; module-level so process pools can pickle it."""
    n, mu = grid[trial_index]
    values = distinct_uniform(n, rng=rng.child())
    result = robust_approximate_quantile(
        values, phi=phi, eps=eps, failure_model=mu, rng=rng.child()
    )
    error = rank_error(values, result.estimate, phi)
    return {
        "error": error,
        "rounds": result.rounds,
        "good_fraction": result.good_fraction,
        "answered_fraction": result.answered_fraction,
        "success": int(error <= eps + 1e-12),
    }


def run(
    sizes: Sequence[int] = (1024, 2048),
    mus: Sequence[float] = (0.0, 0.2, 0.5),
    eps: float = 0.1,
    phi: float = 0.5,
    trials: int = 3,
    seed: int = 4,
    workers: Optional[int] = None,
) -> List[Dict[str, float]]:
    """Run experiment E4 and return one row per (n, mu).

    The (n, mu, trial) grid dispatches through the parallel trial executor;
    the per-``n`` failure-free reference runs are cheap and stay inline.
    """
    from repro.experiments.runner import run_trials

    grid = tuple((n, mu) for n in sizes for mu in mus for _ in range(trials))
    outcomes = run_trials(
        partial(_run_one_trial, grid, eps, phi), len(grid), seed=seed,
        workers=workers,
    )

    # The reference runs draw from a separate branch of the seed space:
    # spawning children of SeedSequence(seed) here would replay the exact
    # streams run_trials handed to the first trials, making the mu = 0
    # "slowdown" a comparison of a run against itself.
    rng = resolve_seed_sequence((seed, 1)) if seed is not None else RandomSource()
    rows: List[Dict[str, float]] = []
    cursor = 0
    for n in sizes:
        # Failure-free reference: the plain algorithm on the same sizes.
        ref_rng = rng.child()
        ref_values = distinct_uniform(n, rng=ref_rng.child())
        reference = approximate_quantile(
            ref_values, phi=phi, eps=eps, rng=ref_rng.child()
        )
        for mu in mus:
            batch = outcomes[cursor : cursor + trials]
            cursor += trials
            mean_rounds = float(np.mean([b["rounds"] for b in batch]))
            rows.append(
                {
                    "n": n,
                    "mu": mu,
                    "eps": eps,
                    "phi": phi,
                    "trials": trials,
                    "rounds": mean_rounds,
                    "failure_free_rounds": reference.rounds,
                    "slowdown": mean_rounds / reference.rounds,
                    "reference_slowdown": robust_slowdown_reference(mu),
                    "good_fraction": float(
                        np.mean([b["good_fraction"] for b in batch])
                    ),
                    "answered_fraction": float(
                        np.mean([b["answered_fraction"] for b in batch])
                    ),
                    "mean_error": float(np.mean([b["error"] for b in batch])),
                    "success_fraction": sum(b["success"] for b in batch) / trials,
                }
            )
    return rows
