"""E2 — Theorem 1.2: approximate quantile rounds scale as O(log log n + log 1/ε).

Two sweeps: rounds vs. n at fixed ε (the curve should be nearly flat — the
log log n term), and rounds vs. ε at fixed n (the curve should grow
linearly in log 1/ε).  Every row also reports the measured rank error so
the ε guarantee can be checked alongside the round counts.

Trials are independent and dispatch through the parallel trial executor
(:func:`repro.experiments.runner.run_trials`): each (n, ε, φ, trial) cell
gets its own deterministic child seed, so the rows are identical for any
``workers`` count.
"""

from __future__ import annotations

from functools import partial
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.theory import approx_rounds_reference
from repro.core.approx_quantile import approximate_quantile
from repro.datasets.generators import distinct_uniform
from repro.utils.rand import RandomSource
from repro.utils.stats import fraction_within_eps, rank_error

COLUMNS = [
    "n",
    "phi",
    "eps",
    "trials",
    "rounds",
    "reference",
    "rounds_per_reference",
    "mean_error",
    "max_error",
    "success_fraction",
    "node_success_fraction",
]


def _run_one_trial(
    grid: Tuple[Tuple[int, float, float], ...], trial_index: int, rng: RandomSource
) -> Dict[str, float]:
    """One (n, eps, phi) trial; module-level so process pools can pickle it."""
    n, eps, phi = grid[trial_index]
    values = distinct_uniform(n, rng=rng.child())
    result = approximate_quantile(values, phi=phi, eps=eps, rng=rng.child())
    error = rank_error(values, result.estimate, phi)
    return {
        "error": error,
        "rounds": result.rounds,
        "success": int(error <= eps + 1e-12),
        "node_success": fraction_within_eps(values, result.estimates, phi, eps),
    }


def run(
    sizes: Sequence[int] = (512, 1024, 2048, 4096, 8192),
    eps_values: Sequence[float] = (0.2, 0.1, 0.05),
    phis: Sequence[float] = (0.5, 0.9),
    trials: int = 3,
    seed: int = 2,
    workers: Optional[int] = None,
) -> List[Dict[str, float]]:
    """Run experiment E2 and return one row per (n, eps, phi)."""
    from repro.experiments.runner import run_trials

    grid = tuple(
        (n, eps, phi)
        for n in sizes
        for eps in eps_values
        for phi in phis
        for _ in range(trials)
    )
    outcomes = run_trials(
        partial(_run_one_trial, grid), len(grid), seed=seed, workers=workers
    )

    rows: List[Dict[str, float]] = []
    cursor = 0
    for n in sizes:
        for eps in eps_values:
            for phi in phis:
                batch = outcomes[cursor : cursor + trials]
                cursor += trials
                reference = approx_rounds_reference(n, eps)
                mean_rounds = float(np.mean([b["rounds"] for b in batch]))
                errors = [b["error"] for b in batch]
                rows.append(
                    {
                        "n": n,
                        "phi": phi,
                        "eps": eps,
                        "trials": trials,
                        "rounds": mean_rounds,
                        "reference": reference,
                        "rounds_per_reference": mean_rounds / reference,
                        "mean_error": float(np.mean(errors)),
                        "max_error": float(np.max(errors)),
                        "success_fraction": sum(b["success"] for b in batch) / trials,
                        "node_success_fraction": float(
                            np.mean([b["node_success"] for b in batch])
                        ),
                    }
                )
    return rows
