"""E2 — Theorem 1.2: approximate quantile rounds scale as O(log log n + log 1/ε).

Two sweeps: rounds vs. n at fixed ε (the curve should be nearly flat — the
log log n term), and rounds vs. ε at fixed n (the curve should grow
linearly in log 1/ε).  Every row also reports the measured rank error so
the ε guarantee can be checked alongside the round counts.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.analysis.theory import approx_rounds_reference
from repro.core.approx_quantile import approximate_quantile
from repro.datasets.generators import distinct_uniform
from repro.utils.rand import RandomSource
from repro.utils.stats import fraction_within_eps, rank_error

COLUMNS = [
    "n",
    "phi",
    "eps",
    "trials",
    "rounds",
    "reference",
    "rounds_per_reference",
    "mean_error",
    "max_error",
    "success_fraction",
    "node_success_fraction",
]


def run(
    sizes: Sequence[int] = (512, 1024, 2048, 4096, 8192),
    eps_values: Sequence[float] = (0.2, 0.1, 0.05),
    phis: Sequence[float] = (0.5, 0.9),
    trials: int = 3,
    seed: int = 2,
) -> List[Dict[str, float]]:
    """Run experiment E2 and return one row per (n, eps, phi)."""
    rng = RandomSource(seed)
    rows: List[Dict[str, float]] = []
    for n in sizes:
        for eps in eps_values:
            for phi in phis:
                errors = []
                rounds = []
                node_success = []
                successes = 0
                for _ in range(trials):
                    trial_rng = rng.child()
                    values = distinct_uniform(n, rng=trial_rng.child())
                    result = approximate_quantile(
                        values, phi=phi, eps=eps, rng=trial_rng.child()
                    )
                    error = rank_error(values, result.estimate, phi)
                    errors.append(error)
                    rounds.append(result.rounds)
                    successes += int(error <= eps + 1e-12)
                    node_success.append(
                        fraction_within_eps(values, result.estimates, phi, eps)
                    )
                reference = approx_rounds_reference(n, eps)
                mean_rounds = float(np.mean(rounds))
                rows.append(
                    {
                        "n": n,
                        "phi": phi,
                        "eps": eps,
                        "trials": trials,
                        "rounds": mean_rounds,
                        "reference": reference,
                        "rounds_per_reference": mean_rounds / reference,
                        "mean_error": float(np.mean(errors)),
                        "max_error": float(np.max(errors)),
                        "success_fraction": successes / trials,
                        "node_success_fraction": float(np.mean(node_success)),
                    }
                )
    return rows
