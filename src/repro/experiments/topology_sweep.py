"""E10 — gossip dynamics beyond the complete graph: the topology sweep.

The paper's algorithms are analysed for uniform gossip on the complete
graph.  This experiment re-runs the library's three core dynamics on
structured topologies (see :mod:`repro.topology`) and relates convergence
to the topology's spectral gap:

* **push-sum** — rounds until the per-node average estimates agree to a
  relative spread below ``tolerance`` (the quantile-counting primitive of
  Algorithm 3, Step 5);
* **broadcast** — rounds until a single rumor informs every node (the
  extrema-spreading primitive of Step 4);
* **approx-quantile** — the tournament algorithms of Theorems 1.2/2.1 run
  unchanged with neighbor pulls; their *round* count is fixed by the
  schedule, so the sweep reports the achieved rank error instead.

Expected shape: expanders (random regular, Erdős–Rényi, small-world at
moderate rewiring) track the complete graph to within a constant factor —
their spectral gap is constant — while the ring and torus need polynomially
many rounds (gap ``1/n²`` and ``1/n``) and blow past the round cap.

All trials run on the vectorized engine and dispatch through the parallel
trial executor, so rows are identical for any ``workers`` count.
"""

from __future__ import annotations

from functools import partial
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.aggregates.broadcast import BroadcastProtocol
from repro.aggregates.push_sum import PushSumProtocol
from repro.core.approx_quantile import approximate_quantile
from repro.datasets.generators import distinct_uniform
from repro.exceptions import ConfigurationError
from repro.gossip.engine import run_protocol
from repro.topology import build_topology, degree_stats, estimate_spectral_gap
from repro.utils.rand import RandomSource
from repro.utils.stats import rank_error

COLUMNS = [
    "n",
    "topology",
    "protocol",
    "degree",
    "trials",
    "rounds",
    "converged_fraction",
    "quality",
    "spectral_gap",
    "mean_degree",
]

#: Protocols the sweep knows how to drive.
PROTOCOLS = ("push-sum", "broadcast", "approx-quantile")

#: Default topology list: complete as the paper's reference plus the
#: structured families (torus is omitted by default because its ``1/n``
#: gap makes the round cap the only possible outcome at large n; add it
#: explicitly to see exactly that).
DEFAULT_TOPOLOGIES = ("complete", "ring", "regular", "erdos-renyi", "small-world")


def _quality_label(protocol: str) -> str:
    """What the ``quality`` column means for each protocol (docs + tests)."""
    return {
        "push-sum": "final relative spread of the average estimates",
        "broadcast": "fraction of nodes informed",
        "approx-quantile": "rank error of the estimate",
    }[protocol]


def _run_cell(
    grid: Tuple[Tuple[int, str, str], ...],
    degree: int,
    rewire_p: float,
    max_rounds: int,
    tolerance: float,
    eps: float,
    phi: float,
    trial_index: int,
    rng: RandomSource,
) -> Dict[str, float]:
    """One (n, topology, protocol) trial; module-level for process pools."""
    n, topo_name, protocol = grid[trial_index]
    topology = build_topology(
        topo_name, n, degree=degree, rewire_p=rewire_p, rng=rng.child()
    )
    # Diagnostics come from the same sampled graph the trial runs on.
    gap = estimate_spectral_gap(topology, rng=rng.child())
    mean_degree = degree_stats(topology)["mean_degree"]
    values = distinct_uniform(n, rng=rng.child())

    if protocol == "push-sum":
        proto = PushSumProtocol(values, rounds=max_rounds, tolerance=tolerance)
        result = run_protocol(
            proto, rng=rng.child(), topology=topology, raise_on_budget=False,
            max_rounds=max_rounds + 1,
        )
        spread = proto.relative_spread()
        return {
            "rounds": result.rounds,
            "converged": float(spread <= tolerance),
            "quality": spread,
            "spectral_gap": gap,
            "mean_degree": mean_degree,
        }
    if protocol == "broadcast":
        proto = BroadcastProtocol(n, max_rounds=max_rounds)
        result = run_protocol(
            proto, rng=rng.child(), topology=topology, raise_on_budget=False,
            max_rounds=max_rounds + 1,
        )
        informed = proto.informed_count / n
        return {
            "rounds": result.rounds,
            "converged": float(informed == 1.0),
            "quality": informed,
            "spectral_gap": gap,
            "mean_degree": mean_degree,
        }
    # approx-quantile: fixed O(log log n + log 1/eps) schedule; quality is
    # the achieved rank error of the tournament estimate on this topology.
    result = approximate_quantile(
        values, phi=phi, eps=eps, rng=rng.child(), topology=topology
    )
    error = rank_error(values, result.estimate, phi)
    return {
        "rounds": result.rounds,
        "converged": float(error <= eps + 1e-12),
        "quality": error,
        "spectral_gap": gap,
        "mean_degree": mean_degree,
    }


def run(
    sizes: Sequence[int] = (10_000,),
    topologies: Sequence[str] = DEFAULT_TOPOLOGIES,
    protocols: Sequence[str] = PROTOCOLS,
    degree: int = 8,
    rewire_p: float = 0.1,
    max_rounds: int = 1_500,
    tolerance: float = 1e-3,
    eps: float = 0.1,
    phi: float = 0.5,
    trials: int = 2,
    seed: int = 10,
    workers: Optional[int] = None,
) -> List[Dict[str, float]]:
    """Run experiment E10 and return one row per (n, topology, protocol)."""
    from repro.experiments.runner import run_trials

    for protocol in protocols:
        if protocol not in PROTOCOLS:
            raise ConfigurationError(
                f"unknown protocol {protocol!r}; choose from {PROTOCOLS}"
            )
    grid = tuple(
        (n, topo, protocol)
        for n in sizes
        for topo in topologies
        for protocol in protocols
        for _ in range(trials)
    )
    task = partial(_run_cell, grid, degree, rewire_p, max_rounds, tolerance, eps, phi)
    outcomes = run_trials(task, len(grid), seed=seed, workers=workers)

    rows: List[Dict[str, float]] = []
    cursor = 0
    for n in sizes:
        for topo in topologies:
            for protocol in protocols:
                batch = outcomes[cursor : cursor + trials]
                cursor += trials
                rows.append(
                    {
                        "n": n,
                        "topology": topo,
                        "protocol": protocol,
                        "degree": degree,
                        "trials": trials,
                        "rounds": float(np.mean([b["rounds"] for b in batch])),
                        "converged_fraction": float(
                            np.mean([b["converged"] for b in batch])
                        ),
                        "quality": float(np.mean([b["quality"] for b in batch])),
                        "spectral_gap": float(
                            np.mean([b["spectral_gap"] for b in batch])
                        ),
                        "mean_degree": float(
                            np.mean([b["mean_degree"] for b in batch])
                        ),
                    }
                )
    return rows
