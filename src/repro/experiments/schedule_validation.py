"""E6 — Lemmas 2.2 / 2.12: the tournament schedules and their iteration bounds.

Two checks: (i) the deterministic schedule lengths respect the closed-form
bounds log_{7/4}(4/ε)+2 and log_{11/8}(1/4ε)+log₂log₄n; (ii) when the
2-TOURNAMENT phase actually runs, the measured above-band fraction tracks
the schedule's h_i trajectory (Lemma 2.5's concentration).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.core.schedules import (
    three_tournament_iteration_bound,
    three_tournament_schedule,
    two_tournament_iteration_bound,
    two_tournament_schedule,
)
from repro.core.two_tournament import run_two_tournament
from repro.datasets.generators import distinct_uniform
from repro.gossip.network import GossipNetwork
from repro.utils.rand import RandomSource

COLUMNS = [
    "n",
    "phi",
    "eps",
    "phase1_iterations",
    "phase1_bound",
    "phase2_iterations",
    "phase2_bound",
    "max_trajectory_deviation",
]


def run(
    sizes: Sequence[int] = (1024, 4096),
    phis: Sequence[float] = (0.25, 0.5, 0.75),
    eps_values: Sequence[float] = (0.2, 0.1, 0.05),
    seed: int = 6,
) -> List[Dict[str, float]]:
    """Run experiment E6 and return one row per (n, phi, eps)."""
    rng = RandomSource(seed)
    rows: List[Dict[str, float]] = []
    for n in sizes:
        for phi in phis:
            for eps in eps_values:
                schedule1 = two_tournament_schedule(phi, eps)
                schedule2 = three_tournament_schedule(eps / 4.0, n)
                values = distinct_uniform(n, rng=rng.child())
                network = GossipNetwork(values, rng=rng.child(), keep_history=False)
                phase = run_two_tournament(
                    network, phi=phi, eps=eps, schedule=schedule1, track_band=True
                )
                deviations = []
                for stat, iteration in zip(phase.stats, schedule1.iterations):
                    heavy = (
                        stat.high_fraction
                        if schedule1.direction == "min"
                        else stat.low_fraction
                    )
                    deviations.append(abs(heavy - stat.predicted))
                rows.append(
                    {
                        "n": n,
                        "phi": phi,
                        "eps": eps,
                        "phase1_iterations": schedule1.num_iterations,
                        "phase1_bound": two_tournament_iteration_bound(eps),
                        "phase2_iterations": schedule2.num_iterations,
                        "phase2_bound": three_tournament_iteration_bound(eps / 4.0, n),
                        "max_trajectory_deviation": float(np.max(deviations))
                        if deviations
                        else 0.0,
                    }
                )
    return rows
