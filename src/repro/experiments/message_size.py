"""E8 — Appendix A: message-size accounting across algorithms.

For each (n, ε) the experiment reports the measured maximum message size of
the tournament algorithm (a single value, O(log n) bits), the doubling
baseline (Θ(log² n / ε²) bits) and the compacted doubling baseline
(Θ((1/ε)(log log n + log 1/ε)) values), next to the asymptotic formulas.
The expected shape: the tournament column is flat and tiny, doubling blows
up quadratically in log n and 1/ε, compaction sits orders of magnitude
below doubling but above the O(log n) budget.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.baselines.compacted_doubling import (
    compacted_buffer_capacity,
    compacted_doubling_quantile,
)
from repro.baselines.doubling import doubling_quantile, doubling_target_size
from repro.core.approx_quantile import approximate_quantile
from repro.datasets.generators import distinct_uniform
from repro.gossip.messages import theoretical_message_bits, tournament_message_bits
from repro.utils.rand import RandomSource

COLUMNS = [
    "n",
    "eps",
    "tournament_bits",
    "doubling_bits",
    "compacted_bits",
    "doubling_over_tournament",
    "compacted_over_tournament",
    "doubling_formula",
    "compacted_formula",
]


def run(
    sizes: Sequence[int] = (512, 1024, 2048),
    eps_values: Sequence[float] = (0.1, 0.05),
    phi: float = 0.5,
    seed: int = 8,
    measure: bool = True,
) -> List[Dict[str, float]]:
    """Run experiment E8 and return one row per (n, eps).

    With ``measure=True`` the doubling/compaction algorithms are actually
    executed and their measured maximum message sizes reported; with
    ``measure=False`` only the closed-form sizes are tabulated (used for
    very large parameter combinations).
    """
    rng = RandomSource(seed)
    rows: List[Dict[str, float]] = []
    for n in sizes:
        for eps in eps_values:
            tournament_bits = float(tournament_message_bits(n))
            if measure:
                values = distinct_uniform(n, rng=rng.child())
                # The tournament algorithm's message is always one value.
                approximate_quantile(values, phi=phi, eps=eps, rng=rng.child())
                doubling = doubling_quantile(values, phi=phi, eps=eps, rng=rng.child())
                compacted = compacted_doubling_quantile(
                    values, phi=phi, eps=eps, rng=rng.child()
                )
                doubling_bits = float(doubling.max_message_bits)
                compacted_bits = float(compacted.max_message_bits)
            else:
                doubling_bits = float(
                    theoretical_message_bits("doubling", n, eps)[0]
                )
                compacted_bits = float(
                    theoretical_message_bits("compacted", n, eps)[0]
                )
            rows.append(
                {
                    "n": n,
                    "eps": eps,
                    "tournament_bits": tournament_bits,
                    "doubling_bits": doubling_bits,
                    "compacted_bits": compacted_bits,
                    "doubling_over_tournament": doubling_bits / tournament_bits,
                    "compacted_over_tournament": compacted_bits / tournament_bits,
                    "doubling_formula": f"~{doubling_target_size(n, eps)} values",
                    "compacted_formula": f"~{compacted_buffer_capacity(n, eps)} values",
                }
            )
    return rows
