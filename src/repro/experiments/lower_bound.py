"""E3 — Theorem 1.3: the Ω(log log n + log 1/ε) lower bound.

Simulates the information-spreading process of the lower bound argument:
``2⌊2εn⌋`` nodes start with distinguishing information and every round
every node both pushes and pulls (the most favourable spreading any
algorithm could achieve).  The measured number of rounds until no
uninformed node remains is an empirical floor for any gossip algorithm; it
should always exceed the theorem's bound max(½ log log n, log₄(8/ε)) − O(1)
and grow with both log log n and log 1/ε.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.lowerbound.spreading import lower_bound_rounds, simulate_spreading
from repro.utils.rand import RandomSource

COLUMNS = [
    "n",
    "eps",
    "trials",
    "initial_good",
    "rounds_to_all_informed",
    "theorem_bound",
    "ratio",
]


def run(
    sizes: Sequence[int] = (1024, 4096, 16384, 65536),
    eps_values: Sequence[float] = (0.1, 0.05, 0.02),
    trials: int = 3,
    seed: int = 3,
) -> List[Dict[str, float]]:
    """Run experiment E3 and return one row per (n, eps)."""
    rng = RandomSource(seed)
    rows: List[Dict[str, float]] = []
    for n in sizes:
        for eps in eps_values:
            measured = []
            initial = None
            for _ in range(trials):
                result = simulate_spreading(n, eps, rng=rng.child())
                measured.append(result.rounds_to_all_good)
                initial = result.initial_good
            bound = lower_bound_rounds(n, eps)
            mean_rounds = float(np.mean(measured))
            rows.append(
                {
                    "n": n,
                    "eps": eps,
                    "trials": trials,
                    "initial_good": initial,
                    "rounds_to_all_informed": mean_rounds,
                    "theorem_bound": bound,
                    "ratio": mean_rounds / bound if bound else float("nan"),
                }
            )
    return rows
