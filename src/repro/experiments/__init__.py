"""Experiment harness: one module per reproduced claim (see DESIGN.md).

Every experiment module exposes a ``run(...)`` function returning a list of
result-row dictionaries plus module-level ``COLUMNS`` describing the table
layout.  The benchmarks under ``benchmarks/`` call the same ``run``
functions with reduced parameters, so the tables in EXPERIMENTS.md can be
regenerated either through pytest-benchmark or through the CLI
(``python -m repro <experiment>``).
"""

from repro.experiments import (
    ablations,
    approx_rounds,
    baselines_compare,
    churn_sweep,
    exact_rounds,
    lower_bound,
    message_size,
    robustness,
    schedule_validation,
    self_rank,
    token_distribution,
    topology_sweep,
)
from repro.experiments.runner import ExperimentSpec, REGISTRY, run_experiment

__all__ = [
    "ablations",
    "approx_rounds",
    "baselines_compare",
    "churn_sweep",
    "exact_rounds",
    "lower_bound",
    "message_size",
    "robustness",
    "schedule_validation",
    "self_rank",
    "token_distribution",
    "topology_sweep",
    "ExperimentSpec",
    "REGISTRY",
    "run_experiment",
]
