"""E9 — Step 7: token split-and-distribute in O(log n) cheap phases.

For each (n, μ) the experiment distributes tokens with a power-of-two
multiplicity and reports the number of phases (should grow like log n), the
total rounds, and the maximum number of tokens that ever co-located on one
node (should stay O(1), which is what makes each phase O(1) rounds).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.tokens import distribute_tokens
from repro.utils.rand import RandomSource

COLUMNS = [
    "n",
    "mu",
    "engine",
    "items",
    "multiplicity",
    "trials",
    "phases",
    "phases_per_logn",
    "rounds",
    "max_tokens_per_node",
    "failed_pushes",
]


def run(
    sizes: Sequence[int] = (512, 1024, 2048, 4096),
    mus: Sequence[float] = (0.0, 0.3),
    item_fraction: float = 0.05,
    multiplicity: int = 8,
    trials: int = 3,
    seed: int = 9,
    engine: Optional[str] = None,
) -> List[Dict[str, float]]:
    """Run experiment E9 and return one row per (n, mu).

    ``engine`` selects the token engine (``"loop"`` / ``"vectorized"``);
    ``None`` defers to the global engine default, like every other
    experiment.
    """
    rng = RandomSource(seed)
    rows: List[Dict[str, float]] = []
    for n in sizes:
        items = max(1, int(item_fraction * n))
        for mu in mus:
            phases = []
            rounds = []
            max_tokens = []
            failed = []
            used_engine = "auto"
            for _ in range(trials):
                trial_rng = rng.child()
                item_nodes = trial_rng.choice(
                    np.arange(n), size=items, replace=False
                )
                result = distribute_tokens(
                    item_nodes,
                    multiplicity=multiplicity,
                    n=n,
                    rng=trial_rng.child(),
                    failure_model=mu if mu > 0 else None,
                    engine=engine,
                )
                used_engine = result.engine
                phases.append(result.phases)
                rounds.append(result.rounds)
                max_tokens.append(result.max_tokens_per_node)
                failed.append(result.failed_pushes)
            rows.append(
                {
                    "n": n,
                    "mu": mu,
                    "engine": used_engine,
                    "items": items,
                    "multiplicity": multiplicity,
                    "trials": trials,
                    "phases": float(np.mean(phases)),
                    "phases_per_logn": float(np.mean(phases)) / math.log2(n),
                    "rounds": float(np.mean(rounds)),
                    "max_tokens_per_node": float(np.max(max_tokens)),
                    "failed_pushes": float(np.mean(failed)),
                }
            )
    return rows
