"""Experiment registry and uniform runner used by the CLI and benchmarks.

Besides the registry this module provides :func:`run_trials`, the parallel
multi-trial executor: every trial gets an independent child random stream
spawned deterministically from the master seed (see :mod:`repro.utils.rand`),
so results are identical whether trials run inline or across a process
pool, and are always returned in trial order.
"""

from __future__ import annotations

import atexit
import inspect
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.tables import format_table, rows_to_csv
from repro.exceptions import ConfigurationError
from repro.gossip.engine import get_default_engine, set_default_engine
from repro.utils.rand import RandomSource, SeedLike, spawn_rngs
from repro.utils.views import readonly, readonly_view
from repro.experiments import (
    ablations,
    approx_rounds,
    baselines_compare,
    chaos,
    churn_sweep,
    exact_rounds,
    exact_scale,
    lower_bound,
    message_size,
    robustness,
    schedule_validation,
    self_rank,
    token_distribution,
    topology_sweep,
)


@dataclass(frozen=True)
class ExperimentSpec:
    """A named experiment: its run function, columns, and description."""

    name: str
    claim: str
    description: str
    run: Callable[..., List[Dict[str, object]]]
    columns: Sequence[str]


REGISTRY: Dict[str, ExperimentSpec] = {
    "exact-rounds": ExperimentSpec(
        name="exact-rounds",
        claim="Theorem 1.1",
        description="Exact quantile rounds: tournament Θ(log n) vs Kempe Θ(log² n)",
        run=exact_rounds.run,
        columns=exact_rounds.COLUMNS,
    ),
    "exact-scale": ExperimentSpec(
        name="exact-scale",
        claim="Theorem 1.1 at scale",
        description="Fully simulated exact quantiles at n ≥ 10⁴ on the vectorized substrates",
        run=exact_scale.run,
        columns=exact_scale.COLUMNS,
    ),
    "approx-rounds": ExperimentSpec(
        name="approx-rounds",
        claim="Theorem 1.2",
        description="Approximate quantile rounds: O(log log n + log 1/eps) and error ≤ eps",
        run=approx_rounds.run,
        columns=approx_rounds.COLUMNS,
    ),
    "lower-bound": ExperimentSpec(
        name="lower-bound",
        claim="Theorem 1.3",
        description="Information-spreading floor Ω(log log n + log 1/eps)",
        run=lower_bound.run,
        columns=lower_bound.COLUMNS,
    ),
    "robustness": ExperimentSpec(
        name="robustness",
        claim="Theorem 1.4",
        description="Robust approximate quantiles under per-round failures",
        run=robustness.run,
        columns=robustness.COLUMNS,
    ),
    "self-rank": ExperimentSpec(
        name="self-rank",
        claim="Corollary 1.5",
        description="Every node estimates its own quantile to within O(eps)",
        run=self_rank.run,
        columns=self_rank.COLUMNS,
    ),
    "schedules": ExperimentSpec(
        name="schedules",
        claim="Lemmas 2.2 / 2.12",
        description="Tournament schedule lengths and trajectory concentration",
        run=schedule_validation.run,
        columns=schedule_validation.COLUMNS,
    ),
    "baselines": ExperimentSpec(
        name="baselines",
        claim="Related work comparison",
        description="Tournament vs sampling vs doubling vs compacted doubling",
        run=baselines_compare.run,
        columns=baselines_compare.COLUMNS,
    ),
    "message-size": ExperimentSpec(
        name="message-size",
        claim="Appendix A",
        description="Per-message bit budgets across algorithms",
        run=message_size.run,
        columns=message_size.COLUMNS,
    ),
    "tokens": ExperimentSpec(
        name="tokens",
        claim="Algorithm 3, Step 7",
        description="Token split-and-distribute phases and per-node load",
        run=token_distribution.run,
        columns=token_distribution.COLUMNS,
    ),
    "ablations": ExperimentSpec(
        name="ablations",
        claim="Design-choice ablations",
        description="Truncated last iteration, Phase I, and final vote size K",
        run=ablations.run,
        columns=ablations.COLUMNS,
    ),
    "topology": ExperimentSpec(
        name="topology",
        claim="Beyond the complete graph",
        description="Gossip convergence across topologies vs the spectral gap",
        run=topology_sweep.run,
        columns=topology_sweep.COLUMNS,
    ),
    "churn": ExperimentSpec(
        name="churn",
        claim="Dynamic topologies",
        description="Convergence under churn and newscast-style edge resampling",
        run=churn_sweep.run,
        columns=churn_sweep.COLUMNS,
    ),
    "chaos": ExperimentSpec(
        name="chaos",
        claim="Graceful degradation",
        description="Degraded serving and epoch rebuilds under churn + injected faults",
        run=chaos.run,
        columns=chaos.COLUMNS,
    ),
}


#: Worker-process registry of attached shared arrays, keyed by kwarg name.
#: Populated by :func:`_worker_initializer`; the segments are kept referenced
#: for the worker's lifetime so the views stay valid.
_WORKER_SHARED_VIEWS: Dict[str, "np.ndarray"] = {}
_WORKER_SHARED_SEGMENTS: List[shared_memory.SharedMemory] = []

#: Spec describing one shared array: (kwarg name, shm name, shape, dtype str).
_SharedSpec = Tuple[str, str, Tuple[int, ...], str]

#: Parent-side registry of live shared segments, keyed by segment name.
#: Segments register here the moment they are created — before any copy or
#: pool work that could raise — and deregister when unlinked, so an
#: interpreter exit between creation and the ``finally`` cleanup (e.g. a
#: KeyboardInterrupt landing mid-copy, or a crashing worker tearing the
#: pool down) cannot leak ``/dev/shm`` segments.
_PARENT_SEGMENTS: Dict[str, shared_memory.SharedMemory] = {}


def _release_segment(segment: shared_memory.SharedMemory) -> None:
    """Close and unlink one parent-owned segment, tolerating re-entry."""
    _PARENT_SEGMENTS.pop(segment.name, None)
    try:
        segment.close()
        segment.unlink()
    except FileNotFoundError:  # pragma: no cover - already unlinked
        pass


def _cleanup_parent_segments() -> None:  # pragma: no cover - exit hook
    for segment in list(_PARENT_SEGMENTS.values()):
        _release_segment(segment)


atexit.register(_cleanup_parent_segments)


def _worker_initializer(engine: str, specs: Tuple[_SharedSpec, ...] = ()) -> None:
    """Pool initializer: re-apply the engine default, attach shared arrays.

    With the spawn/forkserver start methods a fresh interpreter would
    otherwise fall back to the "auto" engine default and ignore an
    ``--engine`` override.  Shared arrays are attached once per worker and
    handed to every task as read-only keyword arguments, so large value
    arrays cross the process boundary through shared memory instead of
    being pickled per trial.
    """
    set_default_engine(engine)
    _WORKER_SHARED_VIEWS.clear()
    import multiprocessing

    own_tracker = multiprocessing.get_start_method(allow_none=False) != "fork"
    for name, shm_name, shape, dtype in specs:
        segment = shared_memory.SharedMemory(name=shm_name)
        if own_tracker:
            # The parent owns (and unlinks) the segment.  Under spawn /
            # forkserver the worker has its own resource tracker which
            # would claim the attached segment and emit spurious "leaked
            # shared_memory" warnings at exit; under fork the tracker is
            # shared with the parent and must keep its entry.
            try:
                from multiprocessing import resource_tracker

                resource_tracker.unregister(segment._name, "shared_memory")
            except Exception:  # pragma: no cover - CPython implementation detail
                pass
        _WORKER_SHARED_SEGMENTS.append(segment)
        view = readonly(np.ndarray(shape, dtype=np.dtype(dtype), buffer=segment.buf))
        _WORKER_SHARED_VIEWS[name] = view


def _run_task_with_shared(
    task: Callable[..., Any], index: int, rng: RandomSource
) -> Any:
    """Module-level trampoline: forwards the worker's shared views to the task."""
    return task(index, rng, **_WORKER_SHARED_VIEWS)


def run_trials(
    task: Callable[[int, RandomSource], Any],
    trials: int,
    seed: SeedLike = None,
    workers: Optional[int] = None,
    shared: Optional[Mapping[str, "np.ndarray"]] = None,
) -> List[Any]:
    """Run ``task(trial_index, rng)`` once per trial, optionally in parallel.

    Every trial receives an independent child :class:`RandomSource` spawned
    from ``seed`` in trial order, so the set of random streams — and hence
    every result — is the same for any worker count.  Results are returned
    ordered by trial index regardless of completion order.

    Parameters
    ----------
    task:
        A picklable callable (module-level function or
        :func:`functools.partial` of one) taking ``(trial_index, rng)``.
        When ``shared`` is given the task additionally receives each shared
        array as a keyword argument: ``task(index, rng, name=array, ...)``.
    trials:
        Number of trials to run.
    seed:
        Master seed; child streams are spawned deterministically from it.
    workers:
        ``None`` or ``<= 1`` runs inline; larger values use a
        ``concurrent.futures`` process pool of that size.
    shared:
        Optional mapping of keyword name to numpy array.  The arrays are
        published to the worker processes once, through POSIX shared memory
        (``multiprocessing.shared_memory``), instead of being pickled into
        every task submission — at large ``n`` this removes the dominant
        serialization cost of fan-out experiments.  Workers receive
        read-only views; tasks must copy before mutating.  The inline path
        passes the arrays through unchanged (also read-only, for parity).
    """
    if trials < 0:
        raise ConfigurationError("trials must be non-negative")
    shared_arrays: Dict[str, np.ndarray] = {}
    for name, array in (shared or {}).items():
        shared_arrays[name] = readonly_view(np.ascontiguousarray(array))
    rngs = spawn_rngs(seed, trials)
    if workers is None or workers <= 1 or trials <= 1:
        return [task(index, rng, **shared_arrays) for index, rng in enumerate(rngs)]

    segments: List[shared_memory.SharedMemory] = []
    specs: List[_SharedSpec] = []
    try:
        for name, arr in shared_arrays.items():
            segment = shared_memory.SharedMemory(
                create=True, size=max(int(arr.nbytes), 1)
            )
            # Register for cleanup *at creation time*: the copy below (or a
            # later submission) may raise, and the atexit hook covers hard
            # interpreter exits the ``finally`` block never sees.
            segments.append(segment)
            _PARENT_SEGMENTS[segment.name] = segment
            if arr.size:
                np.ndarray(arr.shape, dtype=arr.dtype, buffer=segment.buf)[...] = arr
            specs.append((name, segment.name, arr.shape, arr.dtype.str))
        with ProcessPoolExecutor(
            max_workers=min(workers, trials),
            initializer=_worker_initializer,
            initargs=(get_default_engine(), tuple(specs)),
        ) as pool:
            if specs:
                futures = [
                    pool.submit(_run_task_with_shared, task, index, rng)
                    for index, rng in enumerate(rngs)
                ]
            else:
                futures = [
                    pool.submit(task, index, rng) for index, rng in enumerate(rngs)
                ]
            return [future.result() for future in futures]
    finally:
        for segment in segments:
            _release_segment(segment)


def run_experiment(
    name: str,
    output: str = "table",
    engine: Optional[str] = None,
    workers: Optional[int] = None,
    **kwargs,
) -> str:
    """Run a registered experiment and render its result rows.

    Parameters
    ----------
    name:
        Key in :data:`REGISTRY`.
    output:
        ``"table"`` (aligned text), ``"csv"``, or ``"rows"`` (repr of the raw
        row dictionaries).
    engine:
        Optional gossip engine override (``"auto"``, ``"loop"`` or
        ``"vectorized"``) applied for the duration of the experiment.
    workers:
        Optional process-pool size for experiments whose ``run`` function
        supports parallel trials; asking for parallelism from one that does
        not is an error (``workers=1`` is always accepted).
    kwargs:
        Forwarded to the experiment's ``run`` function (sizes, trials, ...).
    """
    try:
        spec = REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {name!r}; available: {sorted(REGISTRY)}"
        ) from None
    accepted = inspect.signature(spec.run).parameters
    if workers is not None:
        if "workers" in accepted:
            kwargs["workers"] = workers
        elif workers > 1:
            raise ConfigurationError(
                f"experiment {name!r} does not support parallel trials"
            )
    unknown = sorted(key for key in kwargs if key not in accepted)
    if unknown:
        raise ConfigurationError(
            f"experiment {name!r} does not accept parameter(s) {unknown}; "
            f"it takes {sorted(accepted)}"
        )
    previous_engine = get_default_engine()
    if engine is not None:
        set_default_engine(engine)
    try:
        rows = spec.run(**kwargs)
    finally:
        if engine is not None:
            set_default_engine(previous_engine)
    if output == "rows":
        return repr(rows)
    if output == "csv":
        return rows_to_csv(rows, columns=spec.columns)
    if output == "table":
        title = f"[{spec.name}] {spec.claim}: {spec.description}"
        return format_table(rows, columns=spec.columns, title=title)
    raise ConfigurationError(f"unknown output format {output!r}")
