"""Experiment registry and uniform runner used by the CLI and benchmarks."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.analysis.tables import format_table, rows_to_csv
from repro.exceptions import ConfigurationError
from repro.experiments import (
    ablations,
    approx_rounds,
    baselines_compare,
    exact_rounds,
    lower_bound,
    message_size,
    robustness,
    schedule_validation,
    self_rank,
    token_distribution,
)


@dataclass(frozen=True)
class ExperimentSpec:
    """A named experiment: its run function, columns, and description."""

    name: str
    claim: str
    description: str
    run: Callable[..., List[Dict[str, object]]]
    columns: Sequence[str]


REGISTRY: Dict[str, ExperimentSpec] = {
    "exact-rounds": ExperimentSpec(
        name="exact-rounds",
        claim="Theorem 1.1",
        description="Exact quantile rounds: tournament Θ(log n) vs Kempe Θ(log² n)",
        run=exact_rounds.run,
        columns=exact_rounds.COLUMNS,
    ),
    "approx-rounds": ExperimentSpec(
        name="approx-rounds",
        claim="Theorem 1.2",
        description="Approximate quantile rounds: O(log log n + log 1/eps) and error ≤ eps",
        run=approx_rounds.run,
        columns=approx_rounds.COLUMNS,
    ),
    "lower-bound": ExperimentSpec(
        name="lower-bound",
        claim="Theorem 1.3",
        description="Information-spreading floor Ω(log log n + log 1/eps)",
        run=lower_bound.run,
        columns=lower_bound.COLUMNS,
    ),
    "robustness": ExperimentSpec(
        name="robustness",
        claim="Theorem 1.4",
        description="Robust approximate quantiles under per-round failures",
        run=robustness.run,
        columns=robustness.COLUMNS,
    ),
    "self-rank": ExperimentSpec(
        name="self-rank",
        claim="Corollary 1.5",
        description="Every node estimates its own quantile to within O(eps)",
        run=self_rank.run,
        columns=self_rank.COLUMNS,
    ),
    "schedules": ExperimentSpec(
        name="schedules",
        claim="Lemmas 2.2 / 2.12",
        description="Tournament schedule lengths and trajectory concentration",
        run=schedule_validation.run,
        columns=schedule_validation.COLUMNS,
    ),
    "baselines": ExperimentSpec(
        name="baselines",
        claim="Related work comparison",
        description="Tournament vs sampling vs doubling vs compacted doubling",
        run=baselines_compare.run,
        columns=baselines_compare.COLUMNS,
    ),
    "message-size": ExperimentSpec(
        name="message-size",
        claim="Appendix A",
        description="Per-message bit budgets across algorithms",
        run=message_size.run,
        columns=message_size.COLUMNS,
    ),
    "tokens": ExperimentSpec(
        name="tokens",
        claim="Algorithm 3, Step 7",
        description="Token split-and-distribute phases and per-node load",
        run=token_distribution.run,
        columns=token_distribution.COLUMNS,
    ),
    "ablations": ExperimentSpec(
        name="ablations",
        claim="Design-choice ablations",
        description="Truncated last iteration, Phase I, and final vote size K",
        run=ablations.run,
        columns=ablations.COLUMNS,
    ),
}


def run_experiment(
    name: str,
    output: str = "table",
    **kwargs,
) -> str:
    """Run a registered experiment and render its result rows.

    Parameters
    ----------
    name:
        Key in :data:`REGISTRY`.
    output:
        ``"table"`` (aligned text), ``"csv"``, or ``"rows"`` (repr of the raw
        row dictionaries).
    kwargs:
        Forwarded to the experiment's ``run`` function (sizes, trials, ...).
    """
    try:
        spec = REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {name!r}; available: {sorted(REGISTRY)}"
        ) from None
    rows = spec.run(**kwargs)
    if output == "rows":
        return repr(rows)
    if output == "csv":
        return rows_to_csv(rows, columns=spec.columns)
    if output == "table":
        title = f"[{spec.name}] {spec.claim}: {spec.description}"
        return format_table(rows, columns=spec.columns, title=title)
    raise ConfigurationError(f"unknown output format {output!r}")
