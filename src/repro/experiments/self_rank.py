"""E5 — Corollary 1.5: every node estimates its own quantile to within ±O(ε).

Runs the grid-of-quantiles construction over several workload shapes
(uniform permutation, Zipf, sensor field) and reports the distribution of
per-node self-rank errors together with the total round count, which should
scale like (1/ε)·O(log log n + log 1/ε).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.core.all_quantiles import estimate_all_ranks, true_self_quantiles
from repro.datasets.workloads import make_workload
from repro.utils.rand import RandomSource

COLUMNS = [
    "workload",
    "n",
    "eps",
    "rounds",
    "grid_queries",
    "mean_error",
    "p95_error",
    "max_error",
    "fraction_within_2eps",
]


def run(
    workloads: Sequence[str] = ("distinct", "zipf", "sensor"),
    sizes: Sequence[int] = (1024,),
    eps_values: Sequence[float] = (0.1, 0.05),
    seed: int = 5,
) -> List[Dict[str, float]]:
    """Run experiment E5 and return one row per (workload, n, eps)."""
    rng = RandomSource(seed)
    rows: List[Dict[str, float]] = []
    for workload in workloads:
        for n in sizes:
            for eps in eps_values:
                trial_rng = rng.child()
                values = make_workload(workload, n, rng=trial_rng.child())
                result = estimate_all_ranks(values, eps=eps, rng=trial_rng.child())
                truth = true_self_quantiles(values)
                errors = np.abs(result.quantile_estimates - truth)
                rows.append(
                    {
                        "workload": workload,
                        "n": n,
                        "eps": eps,
                        "rounds": result.rounds,
                        "grid_queries": int(result.grid.size),
                        "mean_error": float(errors.mean()),
                        "p95_error": float(np.quantile(errors, 0.95)),
                        "max_error": float(errors.max()),
                        "fraction_within_2eps": float(np.mean(errors <= 2 * eps)),
                    }
                )
    return rows
