"""E5 — Corollary 1.5: every node estimates its own quantile to within ±O(ε).

Runs the grid-of-quantiles construction over several workload shapes
(uniform permutation, Zipf, sensor field) along a fused-vs-sequential
execution axis: the fused mode column-stacks the whole grid into
(lane-chunked) multi-lane tournaments — one shared partner stream, rounds
= max-of-lanes per chunk — while the sequential mode runs the pre-fusion
reference of one single-lane tournament per grid target.  Reported per
row: the distribution of per-node self-rank errors (against midrank
ground truth, so duplicate-heavy workloads are not charged for ties) and
the total round count, which is the corollary's
(1/ε)·O(log log n + log 1/ε) sequentially and sheds the (1/ε) factor
when fused.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.core.all_quantiles import (
    DEFAULT_MAX_LANES,
    estimate_all_ranks,
    true_self_quantiles,
)
from repro.datasets.workloads import make_workload
from repro.utils.rand import RandomSource

COLUMNS = [
    "workload",
    "mode",
    "n",
    "eps",
    "rounds",
    "grid_queries",
    "chunks",
    "mean_error",
    "p95_error",
    "max_error",
    "fraction_within_2eps",
]

MODES = ("fused", "sequential")


def run(
    workloads: Sequence[str] = ("distinct", "zipf", "sensor"),
    sizes: Sequence[int] = (1024,),
    eps_values: Sequence[float] = (0.1, 0.05),
    seed: int = 5,
    modes: Sequence[str] = MODES,
    max_lanes: int = DEFAULT_MAX_LANES,
) -> List[Dict[str, float]]:
    """Run experiment E5: one row per (workload, n, eps, mode)."""
    for mode in modes:
        if mode not in MODES:
            raise ValueError(f"unknown mode {mode!r}; choose from {MODES}")
    rng = RandomSource(seed)
    rows: List[Dict[str, float]] = []
    for workload in workloads:
        for n in sizes:
            for eps in eps_values:
                trial_rng = rng.child()
                values = make_workload(workload, n, rng=trial_rng.child())
                truth = true_self_quantiles(values)
                for mode in modes:
                    result = estimate_all_ranks(
                        values,
                        eps=eps,
                        rng=trial_rng.child(),
                        fused=(mode == "fused"),
                        max_lanes=max_lanes,
                    )
                    errors = np.abs(result.quantile_estimates - truth)
                    rows.append(
                        {
                            "workload": workload,
                            "mode": mode,
                            "n": n,
                            "eps": eps,
                            "rounds": result.rounds,
                            "grid_queries": int(result.grid.size),
                            "chunks": result.chunks,
                            "mean_error": float(errors.mean()),
                            "p95_error": float(np.quantile(errors, 0.95)),
                            "max_error": float(errors.max()),
                            "fraction_within_2eps": float(
                                np.mean(errors <= 2 * eps)
                            ),
                        }
                    )
    return rows
