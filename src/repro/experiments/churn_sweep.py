"""E11 — gossip under dynamic topologies: churn and edge resampling.

The paper's model is a static complete graph; this experiment measures how
push-sum convergence degrades (or doesn't) when the graph itself changes
every round (:mod:`repro.topology.dynamic`):

* **churn** rows run a :class:`~repro.topology.dynamic.ChurnProcess` over
  each base topology: every round active nodes depart with probability
  ``churn_rate`` and departed nodes rejoin at the same rate.  Departed
  nodes neither act nor receive, so aggregate ``(s, w)`` mass is conserved
  exactly — the ``mass_rel_error`` column verifies this to float precision
  on every trial.
* **resample** rows run a newscast-style
  :class:`~repro.topology.dynamic.EdgeResamplingProcess`: every node keeps
  a ``degree``-sized uniformly random neighbor view, re-drawn every
  ``resample_every`` rounds.  Expected shape: even tiny views gossip like
  an expander when resampled often, and degrade toward the static
  random-graph behaviour as the period grows.

``--failures topology`` layers position-correlated failures
(:class:`~repro.gossip.failures.TopologyFailures`, hubs failing more) on
top of the dynamics.  All trials dispatch through the parallel trial
executor, so rows are identical for any ``workers`` count, and the
``--engine`` flag picks the gossip engine (both give identical rows; the
vectorized engine is the n >= 10^4 workhorse).
"""

from __future__ import annotations

from functools import partial
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.aggregates.push_sum import PushSumProtocol
from repro.datasets.generators import distinct_uniform
from repro.exceptions import ConfigurationError
from repro.gossip.engine import run_protocol
from repro.gossip.failures import TopologyFailures
from repro.topology import ChurnProcess, EdgeResamplingProcess, build_topology
from repro.utils.rand import RandomSource

COLUMNS = [
    "n",
    "process",
    "topology",
    "churn_rate",
    "resample_every",
    "failures",
    "trials",
    "rounds",
    "converged_fraction",
    "final_spread",
    "active_fraction",
    "mass_rel_error",
]

#: Failure layers the experiment knows how to apply on top of the dynamics.
FAILURE_CHOICES = ("none", "topology")

DEFAULT_TOPOLOGIES = ("complete", "small-world")


def _run_cell(
    grid: Tuple[Tuple[int, str, str, float, int], ...],
    degree: int,
    rewire_p: float,
    max_rounds: int,
    tolerance: float,
    failures: str,
    failure_mu: float,
    trial_index: int,
    rng: RandomSource,
) -> Dict[str, float]:
    """One (n, process-config) trial; module-level for process pools."""
    n, process_kind, topo_name, churn_rate, resample_every = grid[trial_index]
    failure_model = None
    if process_kind == "churn":
        base = build_topology(
            topo_name, n, degree=degree, rewire_p=rewire_p, rng=rng.child()
        )
        process = ChurnProcess(
            topology=base, churn_rate=churn_rate, rng=rng.child()
        )
        if failures == "topology":
            failure_model = TopologyFailures(base, mu=failure_mu, mode="degree")
    else:  # resample (newscast views; the base graph is the evolving view union)
        process = EdgeResamplingProcess(
            n, view_size=degree, resample_every=resample_every, rng=rng.child()
        )
        if failures == "topology":
            # Views are degree-regular by construction of the draw; a flat
            # degree profile makes position-correlated failures uniform.
            failure_model = TopologyFailures(
                np.full(n, degree), mu=failure_mu, mode="degree"
            )

    values = distinct_uniform(n, rng=rng.child())
    protocol = PushSumProtocol(values, rounds=max_rounds, tolerance=tolerance)
    result = run_protocol(
        protocol,
        rng=rng.child(),
        failure_model=failure_model,
        topology_process=process,
        raise_on_budget=False,
        max_rounds=max_rounds + 1,
    )
    spread = protocol.relative_spread()
    total = float(np.sum(values))
    mass_err = abs(protocol.total_mass - total) / max(abs(total), 1e-300)
    weight_err = abs(protocol.total_weight - n) / n
    active_fraction = (
        process.mean_active_fraction()
        if isinstance(process, ChurnProcess)
        else 1.0
    )
    return {
        "rounds": result.rounds,
        "converged": float(spread <= tolerance),
        "spread": spread,
        "active_fraction": active_fraction,
        "mass_rel_error": max(mass_err, weight_err),
    }


def run(
    sizes: Sequence[int] = (10_000,),
    topologies: Sequence[str] = DEFAULT_TOPOLOGIES,
    churn_rates: Sequence[float] = (0.0, 0.05, 0.2),
    resample_every: Sequence[int] = (1, 16),
    degree: int = 8,
    rewire_p: float = 0.1,
    max_rounds: int = 1_500,
    tolerance: float = 1e-3,
    failures: str = "none",
    failure_mu: float = 0.1,
    trials: int = 2,
    seed: int = 17,
    workers: Optional[int] = None,
) -> List[Dict[str, float]]:
    """Run experiment E11 and return one row per dynamic-topology config.

    The grid is ``sizes x topologies x churn_rates`` churn rows plus
    ``sizes x resample_every`` newscast rows (pass an empty sequence to
    drop either family).
    """
    from repro.experiments.runner import run_trials

    if failures not in FAILURE_CHOICES:
        raise ConfigurationError(
            f"unknown failures layer {failures!r}; choose from {FAILURE_CHOICES}"
        )
    for rate in churn_rates:
        if not 0.0 <= rate < 1.0:
            raise ConfigurationError(f"churn rate must be in [0, 1), got {rate}")
    for period in resample_every:
        if period < 1:
            raise ConfigurationError(
                f"resample period must be >= 1, got {period}"
            )

    configs: List[Tuple[int, str, str, float, int]] = []
    for n in sizes:
        for topo in topologies:
            for rate in churn_rates:
                configs.append((n, "churn", topo, rate, 0))
        for period in resample_every:
            configs.append((n, "resample", "newscast", 0.0, period))
    grid = tuple(config for config in configs for _ in range(trials))

    task = partial(
        _run_cell, grid, degree, rewire_p, max_rounds, tolerance,
        failures, failure_mu,
    )
    outcomes = run_trials(task, len(grid), seed=seed, workers=workers)

    rows: List[Dict[str, float]] = []
    for index, (n, kind, topo, rate, period) in enumerate(configs):
        batch = outcomes[index * trials : (index + 1) * trials]
        rows.append(
            {
                "n": n,
                "process": kind,
                "topology": topo,
                "churn_rate": rate,
                "resample_every": period,
                "failures": failures,
                "trials": trials,
                "rounds": float(np.mean([b["rounds"] for b in batch])),
                "converged_fraction": float(
                    np.mean([b["converged"] for b in batch])
                ),
                "final_spread": float(np.mean([b["spread"] for b in batch])),
                "active_fraction": float(
                    np.mean([b["active_fraction"] for b in batch])
                ),
                "mass_rel_error": float(
                    np.max([b["mass_rel_error"] for b in batch])
                ),
            }
        )
    return rows
