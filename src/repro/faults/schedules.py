"""Schedule combinators: shape *when* and *where* fault specs fire.

A schedule wraps any :class:`~repro.faults.injectors.FaultSpec` (including
another schedule — they nest) and reshapes its per-round, per-node
intensity while forwarding every other attribute (``max_delay``,
``downtime``, ``magnitude``, ``reset_values``) to the wrapped spec:

* :class:`Burst` — full intensity inside a round window, zero outside.
  The classic chaos shape: a partition or rack failure with a start and an
  end.
* :class:`Ramp` — intensity scales linearly from 0 to 1 over the first
  ``rounds`` rounds (grey failure / progressive overload).
* :class:`TargetedByDegree` — per-node intensity weighted by graph degree
  (``"degree"``: hubs fault more, the attack-the-well-connected scenario;
  ``"inverse-degree"``: flaky leaf devices), normalised so the most
  targeted node fires at the spec's full intensity.  Mirrors
  :class:`~repro.gossip.failures.TopologyFailures` for the richer fault
  vocabulary.

Composition is list-valued at the injector:
``FaultInjector([Burst(MessageDrop(0.5), 10, 30), CrashRestart(0.01)])``
runs both schedules on one private seeded stream.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.faults.injectors import FaultSpec


class _Wrapper(FaultSpec):
    """Base schedule: delegates kind and extra attributes to the spec."""

    def __init__(self, spec: FaultSpec) -> None:
        if not isinstance(spec, FaultSpec):
            raise ConfigurationError(
                f"schedules wrap FaultSpec instances, got {spec!r}"
            )
        self.spec = spec
        self.kind = spec.kind

    def __getattr__(self, name):
        # Forward max_delay / downtime / magnitude / reset_values / p to the
        # wrapped spec so the injector reads them through any nesting.
        return getattr(self.__dict__["spec"], name)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.spec!r})"


class Burst(_Wrapper):
    """Full intensity for rounds in ``[start, stop)``, zero elsewhere."""

    def __init__(self, spec: FaultSpec, start: int, stop: int) -> None:
        super().__init__(spec)
        if not 0 <= int(start) < int(stop):
            raise ConfigurationError(
                f"need 0 <= start < stop, got [{start}, {stop})"
            )
        self.start = int(start)
        self.stop = int(stop)

    def probabilities(self, round_index: int, n: int) -> np.ndarray:
        if self.start <= round_index < self.stop:
            return self.spec.probabilities(round_index, n)
        return np.zeros(n)

    def __repr__(self) -> str:
        return f"Burst({self.spec!r}, [{self.start}, {self.stop}))"


class Ramp(_Wrapper):
    """Intensity grows linearly from 0 at round 0 to full at ``rounds``."""

    def __init__(self, spec: FaultSpec, rounds: int) -> None:
        super().__init__(spec)
        if int(rounds) < 1:
            raise ConfigurationError(f"rounds must be >= 1, got {rounds}")
        self.rounds = int(rounds)

    def probabilities(self, round_index: int, n: int) -> np.ndarray:
        scale = min(1.0, max(0.0, (round_index + 1) / self.rounds))
        return self.spec.probabilities(round_index, n) * scale

    def __repr__(self) -> str:
        return f"Ramp({self.spec!r}, rounds={self.rounds})"


class TargetedByDegree(_Wrapper):
    """Per-node intensity weighted by graph degree.

    Parameters
    ----------
    spec:
        The wrapped fault spec; its intensity becomes the *maximum*
        per-node intensity.
    topology:
        A :class:`~repro.topology.graphs.Topology` (anything exposing a
        ``degrees`` array) or the degree array itself.
    mode:
        ``"degree"`` — hubs fault more (weights ∝ degree);
        ``"inverse-degree"`` — poorly connected nodes fault more.
    """

    MODES = ("degree", "inverse-degree")

    def __init__(self, spec: FaultSpec, topology, mode: str = "degree") -> None:
        super().__init__(spec)
        if mode not in self.MODES:
            raise ConfigurationError(
                f"unknown targeting mode {mode!r}; choose from {self.MODES}"
            )
        degrees = np.asarray(
            getattr(topology, "degrees", topology), dtype=float
        )
        if degrees.ndim != 1 or degrees.size < 2:
            raise ConfigurationError(
                "degrees must be a 1-d array of length >= 2"
            )
        if np.any(degrees < 1):
            raise ConfigurationError(
                "degree targeting needs every node to have degree >= 1"
            )
        if mode == "degree":
            self.weights = degrees / degrees.max()
        else:
            self.weights = degrees.min() / degrees
        self.mode = mode

    def probabilities(self, round_index: int, n: int) -> np.ndarray:
        if self.weights.shape[0] != n:
            raise ConfigurationError(
                f"degree weights cover {self.weights.shape[0]} nodes, "
                f"round has {n}"
            )
        return self.spec.probabilities(round_index, n) * self.weights

    def __repr__(self) -> str:
        return f"TargetedByDegree({self.spec!r}, mode={self.mode!r})"
