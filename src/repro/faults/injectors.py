"""Composable, seeded, replayable fault injection beyond the static mask.

The Section-5 failure model (:mod:`repro.gossip.failures`) answers one
question per round — *which nodes fail to act* — from a pre-determined
probability bound µ.  Chaos engineering needs richer, message-level
vocabulary: a request that is sent but lost, a response delivered twice, a
payload that arrives late or corrupted, a node that crashes and comes back
with amnesia.  This module provides that vocabulary as two layers:

* :class:`FaultSpec` — a *declarative*, stateless description of one fault
  kind and its per-round / per-node intensity.  Concrete specs:
  :class:`MessageDrop`, :class:`MessageDuplication`, :class:`MessageDelay`,
  :class:`CrashRestart`, :class:`ValueCorruption`.  Specs compose through
  the schedule wrappers of :mod:`repro.faults.schedules` (burst windows,
  ramps, degree-targeted intensity).
* :class:`FaultInjector` — the seeded *runtime*: it owns a private random
  stream (the same design rule as
  :class:`~repro.topology.dynamic.TopologyProcess` — fault draws never
  touch the consumer's stream, so attaching an injector leaves every
  fault-free seeded stream bit-identical, and a seeded chaos run replays
  bit-for-bit), turns the specs into one concrete
  :class:`RoundFaults` decision per round, keeps per-kind injection
  counters, and reports every faulty round as a ``repro.obs`` point event.

Consumers apply what their surface can express:
:class:`~repro.gossip.network.GossipNetwork` applies all five kinds on its
pull surface; the round engines (:mod:`repro.gossip.engine`) fold the
act-suppression kinds (``crash``, ``drop``) into their existing
failure-mask plumbing.  The injector draws *every* kind each round
regardless of consumer, so the private stream layout — and therefore the
replay — is independent of which surface consumes it.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Union

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.rand import RandomSource

#: The fault vocabulary, in the (fixed) order the injector draws each round.
FAULT_KINDS = ("drop", "duplicate", "delay", "crash", "corrupt")


def _validate_probability(p: float, name: str) -> float:
    p = float(p)
    if not 0.0 <= p <= 1.0:
        raise ConfigurationError(f"{name} must be in [0, 1], got {p}")
    return p


class FaultSpec(abc.ABC):
    """One declarative fault kind with a per-round, per-node intensity.

    Specs are stateless: :meth:`probabilities` maps ``(round_index, n)`` to
    the per-node probability of the fault firing that round.  Schedule
    wrappers (:mod:`repro.faults.schedules`) reshape that intensity in time
    (burst, ramp) or across nodes (targeted-by-degree) and forward every
    other attribute (``max_delay``, ``downtime``, ...) to the wrapped spec.
    """

    #: One of :data:`FAULT_KINDS`.
    kind: str = ""

    @abc.abstractmethod
    def probabilities(self, round_index: int, n: int) -> np.ndarray:
        """Per-node probability (length ``n``) of this fault this round."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class _UniformSpec(FaultSpec):
    """Shared base: one probability, constant over rounds and nodes."""

    def __init__(self, p: float) -> None:
        self.p = _validate_probability(p, "p")

    def probabilities(self, round_index: int, n: int) -> np.ndarray:
        return np.full(n, self.p)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(p={self.p})"


class MessageDrop(_UniformSpec):
    """A node's message this round is sent but lost (the pull sees no
    response; on the engines the node's action is suppressed)."""

    kind = "drop"


class MessageDuplication(_UniformSpec):
    """A delivered message arrives twice.  Pull payloads are idempotent, so
    the observable effect is honest accounting: the duplicate is charged as
    an extra message at the same bit cost."""

    kind = "duplicate"


class MessageDelay(_UniformSpec):
    """A message arrives late: the pulled payload is the partner's value
    from up to ``max_delay`` value-update windows (pull batches) ago,
    served from the network's bounded snapshot ring."""

    kind = "delay"

    def __init__(self, p: float, max_delay: int = 4) -> None:
        super().__init__(p)
        if int(max_delay) < 1:
            raise ConfigurationError(
                f"max_delay must be >= 1, got {max_delay}"
            )
        self.max_delay = int(max_delay)

    def __repr__(self) -> str:
        return f"MessageDelay(p={self.p}, max_delay={self.max_delay})"


class CrashRestart(_UniformSpec):
    """A node crashes (per-round probability ``rate``), stays down for
    ``downtime`` rounds, then restarts.  While down it neither acts nor
    responds (folded into the failure mask).  With ``reset_values=True``
    (the default) the restart loses in-protocol state: the network resets
    the node's working values to its initial values — crash-and-restart
    mid-protocol, not a mere long failure."""

    kind = "crash"

    def __init__(
        self, rate: float, downtime: int = 4, reset_values: bool = True
    ) -> None:
        super().__init__(rate)
        if int(downtime) < 1:
            raise ConfigurationError(
                f"downtime must be >= 1, got {downtime}"
            )
        self.downtime = int(downtime)
        self.reset_values = bool(reset_values)

    def __repr__(self) -> str:
        return (
            f"CrashRestart(rate={self.p}, downtime={self.downtime}, "
            f"reset_values={self.reset_values})"
        )


class ValueCorruption(_UniformSpec):
    """Byzantine-lite: a delivered payload is corrupted in flight — every
    lane of the message is scaled by ``1 + magnitude * u`` with
    ``u ~ U[-1, 1)`` drawn from the injector's stream.  The sender's stored
    state is untouched; only the receiver sees the corrupted copy."""

    kind = "corrupt"

    def __init__(self, p: float, magnitude: float = 0.5) -> None:
        super().__init__(p)
        if not float(magnitude) > 0.0:
            raise ConfigurationError(
                f"magnitude must be > 0, got {magnitude}"
            )
        self.magnitude = float(magnitude)

    def __repr__(self) -> str:
        return f"ValueCorruption(p={self.p}, magnitude={self.magnitude})"


@dataclass
class RoundFaults:
    """The injector's concrete decision for one synchronous round.

    All masks have length ``n``; a mask entry applies to that node's single
    message of the round (one pull / one action), so per-node-per-round is
    exactly per-message granularity.
    """

    round_index: int
    #: Nodes down this round (crash-and-restart state machine).
    crashed: np.ndarray
    #: Nodes whose downtime ended *this* round — the consumer applies the
    #: spec's state loss (value reset) for these before they act again.
    restarted: np.ndarray
    #: Messages sent but lost this round.
    dropped: np.ndarray
    #: Delivered messages that also arrive a second time (accounting).
    duplicated: np.ndarray
    #: Per-node delivery delay in value-update windows (0 = on time).
    delay: np.ndarray
    #: Per-node payload corruption factor (1.0 = clean).
    corruption: np.ndarray
    injected: int = 0

    @property
    def suppressed(self) -> np.ndarray:
        """Nodes whose action this round never takes effect (crash | drop)."""
        return self.crashed | self.dropped


class FaultInjector:
    """Seeded, replayable runtime for a set of composed fault specs.

    Parameters
    ----------
    specs:
        One :class:`FaultSpec` or a sequence of them (including schedule
        wrappers).  Multiple specs of the same kind compose by probability
        union: ``q = 1 - prod(1 - p_i)``.
    rng:
        Seed for the private fault stream.  Like a
        :class:`~repro.topology.dynamic.TopologyProcess`, :meth:`begin`
        replays the stream from its start, so one injector yields the same
        fault schedule on every seeded run — chaos runs replay bit-for-bit.

    The injector draws one :class:`RoundFaults` per round via :meth:`draw`,
    called by its consumer with the consumer's global round index (the
    network's ``metrics.rounds`` counter, the engine's ``round_index``).
    Round indices that do not increase between calls restart the stream
    (the same fresh-run heuristic as
    :class:`~repro.gossip.failures.TopologyProcessFailures`) unless the
    consumer called :meth:`begin` explicitly.
    """

    def __init__(
        self,
        specs: Union[FaultSpec, Sequence[FaultSpec]],
        rng=None,
    ) -> None:
        if isinstance(specs, FaultSpec):
            specs = [specs]
        specs = list(specs)
        if not specs:
            raise ConfigurationError("FaultInjector needs at least one spec")
        for spec in specs:
            if not isinstance(spec, FaultSpec):
                raise ConfigurationError(
                    f"specs must be FaultSpec instances, got {spec!r}"
                )
            if spec.kind not in FAULT_KINDS:
                raise ConfigurationError(
                    f"unknown fault kind {spec.kind!r} on {spec!r}"
                )
        self.specs = specs
        self._by_kind: Dict[str, list] = {
            kind: [s for s in specs if s.kind == kind] for kind in FAULT_KINDS
        }
        #: Largest delay any delay spec can assign (snapshot-ring bound).
        self.max_delay = max(
            (int(getattr(s, "max_delay", 1)) for s in self._by_kind["delay"]),
            default=0,
        )
        #: Whether any crash spec loses state on restart.
        self.reset_on_restart = any(
            bool(getattr(s, "reset_values", False))
            for s in self._by_kind["crash"]
        )
        if isinstance(rng, RandomSource):
            self._seed_seq = rng.seed_sequence
        elif isinstance(rng, np.random.SeedSequence):
            self._seed_seq = rng
        else:
            self._seed_seq = np.random.SeedSequence(rng)
        self._rng: Optional[RandomSource] = None
        self._down_until: Optional[np.ndarray] = None
        self._last_round: Optional[int] = None
        self.counters: Dict[str, int] = {}
        self.rounds_drawn = 0
        self.begin()

    def begin(self) -> None:
        """Reset to round 0, replaying the identical seeded fault schedule."""
        self._rng = RandomSource(self._seed_seq)
        self._down_until = None
        self._last_round = None
        self.rounds_drawn = 0
        self.counters = {kind: 0 for kind in FAULT_KINDS}
        self.counters["restart"] = 0

    def _kind_probabilities(
        self, kind: str, round_index: int, n: int
    ) -> Optional[np.ndarray]:
        specs = self._by_kind[kind]
        if not specs:
            return None
        survive = np.ones(n)
        for spec in specs:
            probs = np.asarray(spec.probabilities(round_index, n), dtype=float)
            if probs.shape != (n,):
                raise ConfigurationError(
                    f"{spec!r} produced shape {probs.shape}, expected ({n},)"
                )
            survive *= 1.0 - np.clip(probs, 0.0, 1.0)
        return 1.0 - survive

    def mu_bound(self) -> float:
        """An upper bound on the per-round act-suppression probability.

        Combines the maximum crash and drop intensities by union; the
        Section-5 surfaces (:func:`repro.core.robust.default_pulls_per_iteration`)
        use it to size their pull counts.  Capped just below 1.
        """
        survive = 1.0
        for kind in ("crash", "drop"):
            for spec in self._by_kind[kind]:
                p = float(getattr(spec, "p", 0.0))
                survive *= 1.0 - min(p, 1.0)
        return min(1.0 - survive, 0.999)

    def draw(self, round_index: int, n: int) -> RoundFaults:
        """The concrete fault decision for one round (consumes the private
        stream only).  Draw order is fixed by :data:`FAULT_KINDS`, so the
        replayed stream layout never depends on the consumer."""
        if self._last_round is not None and round_index <= self._last_round:
            # A fresh run restarted its round counter: replay from round 0,
            # mirroring TopologyProcessFailures' reuse semantics.
            self.begin()
        self._last_round = round_index
        if self._down_until is None or self._down_until.shape[0] != n:
            # First draw, or the population changed (e.g. a service epoch
            # rebuild over the churn survivors): node identities differ, so
            # pending crash windows cannot carry over — start the crash
            # state machine fresh.  The stream itself keeps advancing, so
            # replays stay deterministic across the size change.
            self._down_until = np.full(n, -1, dtype=np.int64)
        rng = self._rng
        zeros_bool = np.zeros(n, dtype=bool)

        probs = self._kind_probabilities("drop", round_index, n)
        dropped = zeros_bool if probs is None else rng.random(n) < probs

        probs = self._kind_probabilities("duplicate", round_index, n)
        duplicated = zeros_bool if probs is None else rng.random(n) < probs

        delay = np.zeros(n, dtype=np.int64)
        probs = self._kind_probabilities("delay", round_index, n)
        if probs is not None:
            late = rng.random(n) < probs
            if self.max_delay > 0:
                amounts = rng.integers(1, self.max_delay + 1, size=n)
                delay = np.where(late, amounts, 0)

        restarted = zeros_bool
        crashed = zeros_bool
        probs = self._kind_probabilities("crash", round_index, n)
        if probs is not None:
            restarted = self._down_until == round_index
            was_down = self._down_until > round_index
            fresh = (rng.random(n) < probs) & ~was_down
            if np.any(fresh):
                downtime = max(
                    int(getattr(s, "downtime", 1))
                    for s in self._by_kind["crash"]
                )
                # A node crashing at round r is down for rounds
                # [r, r + downtime) and restarts at round r + downtime.
                self._down_until = np.where(
                    fresh, round_index + downtime, self._down_until
                )
            crashed = fresh | was_down

        corruption = None
        probs = self._kind_probabilities("corrupt", round_index, n)
        corrupted = zeros_bool
        if probs is not None:
            corrupted = rng.random(n) < probs
            magnitude = max(
                float(getattr(s, "magnitude", 0.5))
                for s in self._by_kind["corrupt"]
            )
            factors = 1.0 + magnitude * (2.0 * rng.random(n) - 1.0)
            corruption = np.where(corrupted, factors, 1.0)
        if corruption is None:
            corruption = np.ones(n)

        counts = {
            "drop": int(dropped.sum()),
            "duplicate": int(duplicated.sum()),
            "delay": int(np.count_nonzero(delay)),
            "crash": int(crashed.sum()),
            "corrupt": int(corrupted.sum()),
            "restart": int(restarted.sum()),
        }
        injected = sum(
            counts[k] for k in ("drop", "duplicate", "delay", "crash", "corrupt")
        )
        for key, value in counts.items():
            self.counters[key] += value
        self.rounds_drawn += 1

        if injected:
            from repro.obs.tracer import get_tracer

            tracer = get_tracer()
            if tracer.active:
                tracer.event("fault", round=int(round_index), **counts)

        return RoundFaults(
            round_index=round_index,
            crashed=crashed,
            restarted=restarted,
            dropped=dropped,
            duplicated=duplicated,
            delay=delay,
            corruption=corruption,
            injected=injected,
        )

    @property
    def total_injected(self) -> int:
        """Total faults injected (all kinds except restarts) since begin()."""
        return sum(self.counters.get(k, 0) for k in FAULT_KINDS)

    def as_failure_model(self):
        """This injector's act-suppression faults as a Section-5 model.

        For surfaces that understand failure models but not injectors: the
        crash/drop masks become the round's failure mask.  Message-level
        kinds (duplicate, delay, corrupt) are still *drawn* — the stream
        layout is consumer-independent — but have no effect through this
        view.
        """
        from repro.gossip.failures import FaultInjectorFailures

        return FaultInjectorFailures(self)

    def __repr__(self) -> str:
        return (
            f"FaultInjector({', '.join(repr(s) for s in self.specs)}; "
            f"injected={self.total_injected})"
        )
