"""``repro.faults`` — composable, seeded, replayable fault injection.

See :mod:`repro.faults.injectors` for the fault vocabulary (message drop /
duplication / bounded delay, node crash-and-restart, byzantine-lite value
corruption) and :mod:`repro.faults.schedules` for the burst / ramp /
degree-targeted schedule combinators.
"""

from repro.faults.injectors import (
    FAULT_KINDS,
    CrashRestart,
    FaultInjector,
    FaultSpec,
    MessageDelay,
    MessageDrop,
    MessageDuplication,
    RoundFaults,
    ValueCorruption,
)
from repro.faults.schedules import Burst, Ramp, TargetedByDegree

__all__ = [
    "FAULT_KINDS",
    "Burst",
    "CrashRestart",
    "FaultInjector",
    "FaultSpec",
    "MessageDelay",
    "MessageDrop",
    "MessageDuplication",
    "Ramp",
    "RoundFaults",
    "TargetedByDegree",
    "ValueCorruption",
]
