"""Theorem 1.3 — the Ω(log log n + log 1/ε) lower bound harness.

The lower bound argument plants ``Θ(εn)`` nodes with distinguishing values
("good" nodes) and shows that spreading their information to every node —
a prerequisite for answering correctly in either of the two scenarios —
takes Ω(log log n + log 1/ε) rounds regardless of message size.  This
subpackage builds the two scenarios and simulates the information-spreading
process so the experiment can measure the number of rounds until no
uninformed node remains.
"""

from repro.lowerbound.scenario import LowerBoundScenario, build_scenarios
from repro.lowerbound.spreading import SpreadingResult, simulate_spreading, lower_bound_rounds

__all__ = [
    "LowerBoundScenario",
    "build_scenarios",
    "SpreadingResult",
    "simulate_spreading",
    "lower_bound_rounds",
]
