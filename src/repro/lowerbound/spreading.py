"""Information-spreading simulation for the Theorem 1.3 lower bound.

A node is *good* once it has received (directly or transitively) a value
from the distinguishing set; bad nodes cannot answer correctly with
probability better than 1/2, **regardless of the algorithm and of the
message size**.  The theorem shows the good set needs
Ω(log log n + log 1/ε) rounds to cover all nodes; this module simulates the
(most favourable) spreading process — in every round every node both pushes
its knowledge to and pulls knowledge from a uniformly random node — and
records how long full coverage takes, giving an empirical floor on the
round complexity of *any* gossip algorithm for the problem.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Union

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.rand import RandomSource


@dataclass
class SpreadingResult:
    """Trajectory of the good-node fraction and the full-coverage round."""

    n: int
    eps: float
    initial_good: int
    rounds_to_all_good: int
    good_history: List[int] = field(default_factory=list)

    @property
    def all_good(self) -> bool:
        return self.good_history and self.good_history[-1] == self.n


def lower_bound_rounds(n: int, eps: float) -> float:
    """Theorem 1.3: the larger of ½·log log n and log₄(8/ε)."""
    if n < 4:
        raise ConfigurationError("n must be at least 4")
    if not 0.0 < eps < 1.0:
        raise ConfigurationError("eps must be in (0, 1)")
    loglog = 0.5 * math.log2(max(2.0, math.log2(n)))
    eps_term = math.log(8.0 / eps) / math.log(4.0)
    return max(loglog, eps_term)


def simulate_spreading(
    n: int,
    eps: float,
    rng: Union[None, int, RandomSource] = None,
    max_rounds: Optional[int] = None,
) -> SpreadingResult:
    """Simulate the spread of distinguishing information (push and pull).

    Starts with ``2⌊2εn⌋`` good nodes.  In every round each node contacts a
    uniformly random other node; knowledge flows in both directions (this
    over-approximates any real algorithm, which is exactly what a lower
    bound experiment needs).  Returns the number of rounds until every node
    is good.
    """
    if n < 16:
        raise ConfigurationError("n must be at least 16")
    if not 0.0 < eps < 0.5:
        raise ConfigurationError("eps must be in (0, 0.5)")
    source = rng if isinstance(rng, RandomSource) else RandomSource(rng)
    initial_good = min(n, max(1, 2 * int(math.floor(2 * eps * n))))
    if max_rounds is None:
        max_rounds = int(8 * (math.log2(n) + math.log2(1.0 / eps))) + 32

    good = np.zeros(n, dtype=bool)
    good[:initial_good] = True
    history: List[int] = [int(good.sum())]

    rounds = 0
    while not np.all(good) and rounds < max_rounds:
        partners = source.integers(0, n, size=n)
        own = np.arange(n)
        mask = partners == own
        while np.any(mask):
            partners[mask] = source.integers(0, n, size=int(mask.sum()))
            mask = partners == own
        # pull: I become good if my partner is good.
        newly_good = good | good[partners]
        # push: my partner becomes good if I am good.
        pushed = np.zeros(n, dtype=bool)
        np.logical_or.at(pushed, partners, good)
        good = newly_good | pushed
        rounds += 1
        history.append(int(good.sum()))

    return SpreadingResult(
        n=n,
        eps=eps,
        initial_good=initial_good,
        rounds_to_all_good=rounds if bool(np.all(good)) else max_rounds,
        good_history=history,
    )
