"""The two-scenario construction of Theorem 1.3.

Scenario A assigns the nodes the distinct values ``{1, ..., n}``; scenario B
assigns ``{1 + ⌊2εn⌋, ..., n + ⌊2εn⌋}``.  The φ-quantiles of the two
scenarios differ by at least ``⌊2εn⌋ ≥ εn`` ranks, so a node that has never
seen a value from the distinguishing set

    S = {1, ..., 1 + ⌊2εn⌋} ∪ {n + 1, ..., n + ⌊2εn⌋}

cannot tell the scenarios apart and answers correctly with probability at
most 1/2.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class LowerBoundScenario:
    """The pair of value assignments plus the distinguishing set size."""

    n: int
    eps: float
    shift: int
    values_a: np.ndarray
    values_b: np.ndarray

    @property
    def distinguishing_nodes(self) -> int:
        """Number of initially informed ("good") nodes: 2·⌊2εn⌋."""
        return 2 * self.shift

    def distinguishing_mask(self, scenario: str = "a") -> np.ndarray:
        """Boolean mask of nodes whose value belongs to the set ``S``."""
        if scenario not in ("a", "b"):
            raise ConfigurationError("scenario must be 'a' or 'b'")
        values = self.values_a if scenario == "a" else self.values_b
        low_cut = 1 + self.shift
        high_cut = self.n
        return (values <= low_cut) | (values > high_cut)


def build_scenarios(n: int, eps: float, rng_permutation=None) -> LowerBoundScenario:
    """Build the Theorem 1.3 scenario pair for ``n`` nodes and parameter ``eps``.

    The theorem requires ``10 log n / n < eps < 1/8``; we validate the upper
    bound strictly and the lower bound loosely (the experiment sweeps ``n``
    small enough that the constant matters little).
    """
    if n < 16:
        raise ConfigurationError("n must be at least 16")
    if not 0.0 < eps < 0.125:
        raise ConfigurationError("eps must be in (0, 1/8) for the lower bound")
    if eps <= math.log(n) / n:
        raise ConfigurationError("eps must exceed ~log(n)/n for the lower bound")
    shift = int(math.floor(2 * eps * n))
    if shift < 1:
        raise ConfigurationError("eps * n too small: the distinguishing set is empty")
    base = np.arange(1, n + 1, dtype=float)
    if rng_permutation is not None:
        base = rng_permutation.permutation(base)
    return LowerBoundScenario(
        n=n,
        eps=eps,
        shift=shift,
        values_a=base.copy(),
        values_b=base + shift,
    )
