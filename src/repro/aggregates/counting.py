"""Counting / rank computation on top of push-sum (Step 5 of Algorithm 3).

To compute the rank of a threshold value, every node contributes an
indicator (1 if its value is at most the threshold, else 0) and push-sum
averages the indicators; multiplying the average by ``n`` and rounding
yields the exact integer count once the relative error of push-sum is below
``1/(4n)``, which takes ``O(log n)`` rounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np

from repro.exceptions import ConfigurationError
from repro.aggregates.push_sum import default_push_sum_rounds, push_sum_average
from repro.gossip.failures import FailureModel
from repro.gossip.metrics import NetworkMetrics
from repro.utils.rand import RandomSource


@dataclass
class CountResult:
    """Per-node count estimates and the rounded consensus count."""

    estimates: np.ndarray
    count: int
    rounds: int
    metrics: NetworkMetrics
    exact: bool


def count_leq(
    values: Union[Sequence[float], np.ndarray],
    threshold: float,
    rng: Union[None, int, RandomSource] = None,
    rounds: Optional[int] = None,
    failure_model: Union[None, float, FailureModel] = None,
    metrics: Optional[NetworkMetrics] = None,
    engine: Optional[str] = None,
    topology=None,
    peer_sampling: str = "uniform",
) -> CountResult:
    """Count, via gossip, how many node values are ``<= threshold``.

    Returns the per-node estimates (``n`` times the push-sum average) and the
    rounded count from node 0 (all nodes agree up to the push-sum error).
    ``exact`` reports whether *every* node's rounded estimate matches the
    true count — the condition the w.h.p. analysis guarantees.

    The underlying push-sum run is batch-capable; ``engine`` selects the
    execution path (``None`` defers to the process-wide default, which
    dispatches counting to the vectorized engine).
    """
    array = np.asarray(values, dtype=float)
    if array.ndim != 1 or array.size < 2:
        raise ConfigurationError("values must be a 1-d array of length >= 2")
    n = array.size
    indicators = (array <= threshold).astype(float)
    if rounds is None:
        rounds = default_push_sum_rounds(n, relative_error=1.0 / (8.0 * n))
    result = push_sum_average(
        indicators,
        rng=rng,
        rounds=rounds,
        failure_model=failure_model,
        metrics=metrics,
        engine=engine,
        topology=topology,
        peer_sampling=peer_sampling,
    )
    estimates = result.estimates * n
    true_count = int(indicators.sum())
    rounded = np.rint(estimates).astype(int)
    return CountResult(
        estimates=estimates,
        count=int(np.rint(float(np.median(estimates)))),
        rounds=result.rounds,
        metrics=result.metrics,
        exact=bool(np.all(rounded == true_count)),
    )


def rank_of_min(
    values: Union[Sequence[float], np.ndarray],
    minimum: float,
    rng: Union[None, int, RandomSource] = None,
    rounds: Optional[int] = None,
    failure_model: Union[None, float, FailureModel] = None,
    metrics: Optional[NetworkMetrics] = None,
    engine: Optional[str] = None,
    topology=None,
    peer_sampling: str = "uniform",
) -> CountResult:
    """Step 5 of Algorithm 3: the rank of ``minimum`` among all node values."""
    return count_leq(
        values,
        threshold=minimum,
        rng=rng,
        rounds=rounds,
        failure_model=failure_model,
        metrics=metrics,
        engine=engine,
        topology=topology,
        peer_sampling=peer_sampling,
    )
