"""Single-message rumor spreading (push-pull broadcast).

Broadcasting one message to all ``n`` nodes takes Θ(log n) rounds
[FG85, Pit87, KSSV00].  This is the reference point that makes the O(log n)
exact-quantile algorithm of Theorem 1.1 optimal: even after the quantile
value has been identified, spreading it to every node costs Ω(log n).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Union

import numpy as np

from repro.exceptions import ConfigurationError
from repro.gossip.engine import run_protocol
from repro.gossip.failures import FailureModel
from repro.gossip.metrics import NetworkMetrics
from repro.gossip.protocol import Action, GossipProtocol
from repro.utils.rand import RandomSource


class BroadcastProtocol(GossipProtocol):
    """Push-pull spreading of a single rumor from one source node."""

    name = "broadcast"

    def __init__(
        self,
        n: int,
        source: int = 0,
        payload: float = 1.0,
        max_rounds: Optional[int] = None,
    ) -> None:
        super().__init__(n)
        if not 0 <= source < n:
            raise ConfigurationError("source must be a valid node index")
        self._informed = np.zeros(n, dtype=bool)
        self._informed[source] = True
        self._payload = payload
        self._budget = (
            max_rounds
            if max_rounds is not None
            else int(math.ceil(4 * math.log2(n) + 12))
        )

    def act(self, node: int, round_index: int) -> Action:
        if self._informed[node]:
            return Action.pushpull(self._payload)
        return Action.pull()

    def serve_pull(self, node: int, requester: int, round_index: int):
        return self._payload if self._informed[node] else None

    def on_receive(self, node, payload, sender, kind, round_index) -> None:
        if payload is not None:
            self._informed[node] = True

    def is_done(self, round_index: int) -> bool:
        if round_index >= self._budget:
            return True
        return bool(np.all(self._informed)) and round_index > 0

    def outputs(self) -> List[bool]:
        return [bool(v) for v in self._informed]

    @property
    def informed_count(self) -> int:
        return int(self._informed.sum())


@dataclass
class BroadcastResult:
    rounds: int
    informed: int
    n: int
    metrics: NetworkMetrics

    @property
    def all_informed(self) -> bool:
        return self.informed == self.n


def broadcast_rounds(
    n: int,
    rng: Union[None, int, RandomSource] = None,
    failure_model: Union[None, float, FailureModel] = None,
    source: int = 0,
    max_rounds: Optional[int] = None,
    metrics: Optional[NetworkMetrics] = None,
) -> BroadcastResult:
    """Measure how many rounds push-pull broadcast needs to inform all nodes."""
    protocol = BroadcastProtocol(n, source=source, max_rounds=max_rounds)
    result = run_protocol(
        protocol,
        rng=rng,
        failure_model=failure_model,
        max_rounds=protocol._budget + 1,
        metrics=metrics,
        raise_on_budget=False,
    )
    return BroadcastResult(
        rounds=result.rounds,
        informed=protocol.informed_count,
        n=n,
        metrics=result.metrics,
    )
