"""Single-message rumor spreading (push-pull broadcast).

Broadcasting one message to all ``n`` nodes takes Θ(log n) rounds
[FG85, Pit87, KSSV00].  This is the reference point that makes the O(log n)
exact-quantile algorithm of Theorem 1.1 optimal: even after the quantile
value has been identified, spreading it to every node costs Ω(log n).

The protocol is the first *mixed-kind* batch protocol: informed nodes
push-pull while uninformed nodes only pull, so one vectorized round carries
a per-node kind array (``BatchAction(kind="mixed")``).  Pushes and pull
responses answer from the round-start snapshot of the informed set — the
synchronous semantics of the uniform gossip model (see
:class:`repro.gossip.network.PullBatch`) — which makes the round outcome
independent of delivery order and lets the vectorized engine reproduce the
loop engine bit for bit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Union

import numpy as np

from repro.exceptions import ConfigurationError
from repro.gossip.engine import run_protocol
from repro.gossip.failures import FailureModel
from repro.gossip.messages import payload_bits
from repro.gossip.metrics import NetworkMetrics
from repro.gossip.protocol import (
    Action,
    BatchAction,
    BatchGossipProtocol,
    GossipProtocol,
    KIND_PULL,
    KIND_PUSHPULL,
)
from repro.topology.graphs import Topology
from repro.utils.rand import RandomSource
from repro.utils.views import ReadOnlyArray


class BroadcastProtocol(BatchGossipProtocol, GossipProtocol):
    """Push-pull spreading of a single rumor from one source node."""

    name = "broadcast"

    def __init__(
        self,
        n: int,
        source: int = 0,
        payload: float = 1.0,
        max_rounds: Optional[int] = None,
    ) -> None:
        super().__init__(n)
        if not 0 <= source < n:
            raise ConfigurationError("source must be a valid node index")
        self._informed = np.zeros(n, dtype=bool)
        self._informed[source] = True
        self._payload = payload
        self._budget = (
            max_rounds
            if max_rounds is not None
            else int(math.ceil(4 * math.log2(n) + 12))
        )
        self._snapshot = self._informed.copy()

    # -- lifecycle: round-start snapshot of the informed set ----------------------
    def begin(self) -> None:
        self._snapshot = self._informed.copy()

    def end_round(self, round_index: int) -> None:
        self._snapshot = self._informed.copy()

    # -- per-node (loop-engine) interface -----------------------------------------
    def act(self, node: int, round_index: int) -> Action:
        if self._snapshot[node]:
            return Action.pushpull(self._payload)
        return Action.pull()

    def serve_pull(self, node: int, requester: int, round_index: int):
        return self._payload if self._snapshot[node] else None

    def on_receive(self, node, payload, sender, kind, round_index) -> None:
        if payload is not None:
            self._informed[node] = True

    # -- batch (vectorized-engine) interface --------------------------------------
    def act_batch(self, round_index: int, alive: ReadOnlyArray) -> BatchAction:
        kinds = np.where(self._snapshot, KIND_PUSHPULL, KIND_PULL).astype(np.int8)
        return BatchAction("mixed", kinds=kinds)

    def receive_batch(self, round_index, alive: ReadOnlyArray, partners, action):
        kinds = action.kinds
        # Pushes: alive nodes whose declared kind includes a push ship the
        # rumor to their partner.
        pushers = alive & (kinds == KIND_PUSHPULL)
        self._informed[partners[pushers]] = True
        # Pull responses: alive nodes whose kind includes a pull receive the
        # rumor iff the partner was informed at the start of the round.
        pullers = alive & ((kinds == KIND_PULL) | (kinds == KIND_PUSHPULL))
        answered = pullers & self._snapshot[partners]
        self._informed[answered] = True
        full_bits = payload_bits(self._payload, n=self.n)
        empty_bits = payload_bits(None, n=self.n)
        full_responses = int(answered.sum())
        empty_responses = int(pullers.sum()) - full_responses
        return [
            (int(pushers.sum()), full_bits),
            (full_responses, full_bits),
            (empty_responses, empty_bits),
        ]

    def is_done(self, round_index: int) -> bool:
        if round_index >= self._budget:
            return True
        return bool(np.all(self._informed)) and round_index > 0

    def outputs(self) -> List[bool]:
        return [bool(v) for v in self._informed]

    @property
    def informed_count(self) -> int:
        return int(self._informed.sum())


@dataclass
class BroadcastResult:
    rounds: int
    informed: int
    n: int
    metrics: NetworkMetrics

    @property
    def all_informed(self) -> bool:
        return self.informed == self.n


def broadcast_rounds(
    n: int,
    rng: Union[None, int, RandomSource] = None,
    failure_model: Union[None, float, FailureModel] = None,
    source: int = 0,
    max_rounds: Optional[int] = None,
    metrics: Optional[NetworkMetrics] = None,
    engine: Optional[str] = None,
    topology: Optional[Topology] = None,
    peer_sampling: str = "uniform",
) -> BroadcastResult:
    """Measure how many rounds push-pull broadcast needs to inform all nodes."""
    protocol = BroadcastProtocol(n, source=source, max_rounds=max_rounds)
    result = run_protocol(
        protocol,
        rng=rng,
        failure_model=failure_model,
        max_rounds=protocol._budget + 1,
        metrics=metrics,
        raise_on_budget=False,
        engine=engine,
        topology=topology,
        peer_sampling=peer_sampling,
    )
    return BroadcastResult(
        rounds=result.rounds,
        informed=protocol.informed_count,
        n=n,
        metrics=result.metrics,
    )
