"""Extrema (min/max) spreading by push-pull rumor spreading.

Step 4 of Algorithm 3 requires every node to learn the global minimum and
maximum of a set of values.  Forwarding the best value seen so far with
push-pull gossip informs all nodes in ``O(log n)`` rounds w.h.p.
[FG85, Pit87]; under the Section-5 failure model the same holds with a
constant-factor slowdown [ES09].
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.exceptions import ConfigurationError
from repro.gossip.engine import run_protocol
from repro.gossip.failures import FailureModel
from repro.gossip.messages import payload_bits
from repro.gossip.metrics import NetworkMetrics
from repro.gossip.protocol import Action, BatchAction, BatchGossipProtocol, GossipProtocol
from repro.utils.rand import RandomSource


class ExtremaProtocol(BatchGossipProtocol, GossipProtocol):
    """Push-pull forwarding of the extreme (min or max) value seen so far.

    Pushes and pull responses both carry the sender's best value *as of the
    start of the round* — the synchronous snapshot semantics of the uniform
    gossip model (see :class:`repro.gossip.network.PullBatch`).  Because
    min/max merges are exact and commutative, a round's outcome is
    independent of delivery order, which is what lets the vectorized engine
    reproduce the loop engine bit for bit.
    """

    def __init__(
        self,
        values: Union[Sequence[float], np.ndarray],
        mode: str = "max",
        max_rounds: Optional[int] = None,
        stop_when_converged: bool = True,
    ) -> None:
        array = np.asarray(values, dtype=float)
        if array.ndim != 1 or array.size < 2:
            raise ConfigurationError("values must be a 1-d array of length >= 2")
        if mode not in ("min", "max"):
            raise ConfigurationError("mode must be 'min' or 'max'")
        super().__init__(array.size)
        self.name = f"extrema-{mode}"
        self._mode = mode
        self._best = array.copy()
        self._target = float(array.max() if mode == "max" else array.min())
        self._budget = (
            max_rounds
            if max_rounds is not None
            else int(math.ceil(4 * math.log2(self.n) + 12))
        )
        self._stop_when_converged = stop_when_converged
        self._snapshot = self._best.copy()

    def _better(self, a: float, b: float) -> float:
        return max(a, b) if self._mode == "max" else min(a, b)

    def begin(self) -> None:
        self._snapshot = self._best.copy()

    def end_round(self, round_index: int) -> None:
        self._snapshot = self._best.copy()

    def act(self, node: int, round_index: int) -> Action:
        return Action.pushpull(float(self._snapshot[node]))

    def serve_pull(self, node: int, requester: int, round_index: int) -> float:
        return float(self._snapshot[node])

    def on_receive(self, node, payload, sender, kind, round_index) -> None:
        if payload is None:
            return
        self._best[node] = self._better(float(self._best[node]), float(payload))

    # -- batch (vectorized-engine) interface --------------------------------------
    def act_batch(self, round_index: int, alive: np.ndarray) -> BatchAction:
        bits = payload_bits(0.0, n=self.n)
        return BatchAction(
            "pushpull",
            payload=self._snapshot[alive],
            push_bits=bits,
            pull_bits=bits,
        )

    def receive_batch(self, round_index, alive, partners, action) -> None:
        merge = np.maximum if self._mode == "max" else np.minimum
        targets = partners[alive]
        # pushes: scatter each alive node's snapshot value onto its partner
        merge.at(self._best, targets, action.payload)
        # pull responses: gather each partner's snapshot value
        self._best[alive] = merge(self._best[alive], self._snapshot[targets])

    def is_done(self, round_index: int) -> bool:
        if round_index >= self._budget:
            return True
        if self._stop_when_converged and round_index > 0:
            return bool(np.all(self._best == self._target))
        return False

    def outputs(self) -> List[float]:
        return [float(v) for v in self._best]

    @property
    def converged(self) -> bool:
        return bool(np.all(self._best == self._target))


@dataclass
class ExtremaResult:
    """Per-node extremum estimates plus accounting."""

    values: np.ndarray
    rounds: int
    metrics: NetworkMetrics
    converged: bool

    @property
    def agreed_value(self) -> float:
        """The single agreed value (only meaningful when ``converged``)."""
        return float(self.values[0])


def spread_extrema(
    values: Union[Sequence[float], np.ndarray],
    mode: str = "max",
    rng: Union[None, int, RandomSource] = None,
    failure_model: Union[None, float, FailureModel] = None,
    max_rounds: Optional[int] = None,
    metrics: Optional[NetworkMetrics] = None,
    engine: Optional[str] = None,
    topology=None,
    peer_sampling: str = "uniform",
) -> ExtremaResult:
    """Spread the global min or max of ``values`` to every node."""
    protocol = ExtremaProtocol(values, mode=mode, max_rounds=max_rounds)
    result = run_protocol(
        protocol,
        rng=rng,
        failure_model=failure_model,
        max_rounds=protocol._budget + 1,
        metrics=metrics,
        raise_on_budget=False,
        engine=engine,
        topology=topology,
        peer_sampling=peer_sampling,
    )
    return ExtremaResult(
        values=np.asarray(result.outputs, dtype=float),
        rounds=result.rounds,
        metrics=result.metrics,
        converged=protocol.converged,
    )
