"""Extrema (min/max) spreading by push-pull rumor spreading.

Step 4 of Algorithm 3 requires every node to learn the global minimum and
maximum of a set of values.  Forwarding the best value seen so far with
push-pull gossip informs all nodes in ``O(log n)`` rounds w.h.p.
[FG85, Pit87]; under the Section-5 failure model the same holds with a
constant-factor slowdown [ES09].
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.exceptions import ConfigurationError
from repro.gossip.engine import run_protocol
from repro.gossip.failures import FailureModel
from repro.gossip.messages import BITS_HEADER, payload_bits
from repro.gossip.metrics import NetworkMetrics
from repro.gossip.protocol import Action, BatchAction, BatchGossipProtocol, GossipProtocol
from repro.utils.rand import RandomSource
from repro.utils.views import ReadOnlyArray


class ExtremaProtocol(BatchGossipProtocol, GossipProtocol):
    """Push-pull forwarding of the extreme (min or max) value seen so far.

    Pushes and pull responses both carry the sender's best value *as of the
    start of the round* — the synchronous snapshot semantics of the uniform
    gossip model (see :class:`repro.gossip.network.PullBatch`).  Because
    min/max merges are exact and commutative, a round's outcome is
    independent of delivery order, which is what lets the vectorized engine
    reproduce the loop engine bit for bit.
    """

    def __init__(
        self,
        values: Union[Sequence[float], np.ndarray],
        mode: str = "max",
        max_rounds: Optional[int] = None,
        stop_when_converged: bool = True,
    ) -> None:
        array = np.asarray(values, dtype=float)
        if array.ndim != 1 or array.size < 2:
            raise ConfigurationError("values must be a 1-d array of length >= 2")
        if mode not in ("min", "max"):
            raise ConfigurationError("mode must be 'min' or 'max'")
        super().__init__(array.size)
        self.name = f"extrema-{mode}"
        self._mode = mode
        self._best = array.copy()
        self._target = float(array.max() if mode == "max" else array.min())
        self._budget = (
            max_rounds
            if max_rounds is not None
            else int(math.ceil(4 * math.log2(self.n) + 12))
        )
        self._stop_when_converged = stop_when_converged
        self._snapshot = self._best.copy()
        self._scratch: Optional[np.ndarray] = None

    def _better(self, a: float, b: float) -> float:
        return max(a, b) if self._mode == "max" else min(a, b)

    def begin(self) -> None:
        np.copyto(self._snapshot, self._best)

    def end_round(self, round_index: int) -> None:
        np.copyto(self._snapshot, self._best)

    def act(self, node: int, round_index: int) -> Action:
        return Action.pushpull(float(self._snapshot[node]))

    def serve_pull(self, node: int, requester: int, round_index: int) -> float:
        return float(self._snapshot[node])

    def on_receive(self, node, payload, sender, kind, round_index) -> None:
        if payload is None:
            return
        self._best[node] = self._better(float(self._best[node]), float(payload))

    # -- batch (vectorized-engine) interface --------------------------------------
    def act_batch(self, round_index: int, alive: ReadOnlyArray) -> BatchAction:
        bits = payload_bits(0.0, n=self.n)
        # all-alive rounds ship the snapshot itself (read-only) instead of
        # a boolean-masked copy
        payload = self._snapshot if alive.all() else self._snapshot[alive]
        return BatchAction(
            "pushpull",
            payload=payload,
            push_bits=bits,
            pull_bits=bits,
        )

    def receive_batch(self, round_index, alive: ReadOnlyArray, partners, action) -> None:
        merge = np.maximum if self._mode == "max" else np.minimum
        if action.payload.size == self.n:
            # pushes: scatter each node's snapshot value onto its partner,
            # then pulls: gather each partner's snapshot value (take-clip
            # skips the bounds check; partners are in range by construction)
            # — all into a reusable scratch buffer, merged in place
            if self._scratch is None:
                self._scratch = np.empty_like(self._best)
            merge.at(self._best, partners, action.payload)
            np.take(self._snapshot, partners, out=self._scratch, mode="clip")
            merge(self._best, self._scratch, out=self._best)
            return
        targets = partners[alive]
        # pushes: scatter each alive node's snapshot value onto its partner
        merge.at(self._best, targets, action.payload)
        # pull responses: gather each partner's snapshot value
        self._best[alive] = merge(self._best[alive], self._snapshot[targets])

    def is_done(self, round_index: int) -> bool:
        if round_index >= self._budget:
            return True
        if self._stop_when_converged and round_index > 0:
            return bool(np.all(self._best == self._target))
        return False

    def outputs_array(self) -> np.ndarray:
        return self._best.copy()

    def outputs(self) -> List[float]:
        return [float(v) for v in self._best]

    @property
    def converged(self) -> bool:
        return bool(np.all(self._best == self._target))


class ExtremaPairProtocol(BatchGossipProtocol, GossipProtocol):
    """Fused min+max spreading: one run whose messages carry both values.

    Step 4 of Algorithm 3 needs the global *minimum* of the lower sandwich
    estimates and the global *maximum* of the upper ones.  Both spread in
    the same O(log n)-round window — an O(log n)-bit message has room for
    both working values — so the fused protocol runs one partner stream
    whose push/pull payload is the ``(lo, hi)`` pair: the lo lane
    min-merges and the hi lane max-merges, each lane behaving exactly like
    its :class:`ExtremaProtocol` counterpart.  This is the same multi-lane
    trick the tournament phases use on the
    :class:`~repro.gossip.network.GossipNetwork` pull surface.
    """

    name = "extrema-pair"

    def __init__(
        self,
        lo_values: Union[Sequence[float], np.ndarray],
        hi_values: Union[Sequence[float], np.ndarray],
        max_rounds: Optional[int] = None,
        stop_when_converged: bool = True,
    ) -> None:
        lo = np.asarray(lo_values, dtype=float)
        hi = np.asarray(hi_values, dtype=float)
        if lo.ndim != 1 or lo.size < 2:
            raise ConfigurationError("lo_values must be a 1-d array of length >= 2")
        if hi.shape != lo.shape:
            raise ConfigurationError("lo_values and hi_values must have equal length")
        super().__init__(lo.size)
        self._lo = lo.copy()
        self._hi = hi.copy()
        self._lo_target = float(lo.min())
        self._hi_target = float(hi.max())
        self._budget = (
            max_rounds
            if max_rounds is not None
            else int(math.ceil(4 * math.log2(self.n) + 12))
        )
        self._stop_when_converged = stop_when_converged
        self._lo_snapshot = self._lo.copy()
        self._hi_snapshot = self._hi.copy()
        self._scratch: Optional[np.ndarray] = None

    def begin(self) -> None:
        np.copyto(self._lo_snapshot, self._lo)
        np.copyto(self._hi_snapshot, self._hi)

    def end_round(self, round_index: int) -> None:
        np.copyto(self._lo_snapshot, self._lo)
        np.copyto(self._hi_snapshot, self._hi)

    def act(self, node: int, round_index: int) -> Action:
        return Action.pushpull(
            (float(self._lo_snapshot[node]), float(self._hi_snapshot[node]))
        )

    def serve_pull(self, node: int, requester: int, round_index: int):
        return (float(self._lo_snapshot[node]), float(self._hi_snapshot[node]))

    def on_receive(self, node, payload, sender, kind, round_index) -> None:
        if payload is None:
            return
        lo, hi = payload
        self._lo[node] = min(float(self._lo[node]), float(lo))
        self._hi[node] = max(float(self._hi[node]), float(hi))

    # -- batch (vectorized-engine) interface --------------------------------------
    def act_batch(self, round_index: int, alive: ReadOnlyArray) -> BatchAction:
        bits = self.message_bits(None)
        if alive.all():
            payload = (self._lo_snapshot, self._hi_snapshot)
        else:
            payload = (self._lo_snapshot[alive], self._hi_snapshot[alive])
        return BatchAction(
            "pushpull", payload=payload, push_bits=bits, pull_bits=bits
        )

    def receive_batch(self, round_index, alive: ReadOnlyArray, partners, action) -> None:
        lo_payload, hi_payload = action.payload
        if lo_payload.size == self.n:
            if self._scratch is None:
                self._scratch = np.empty_like(self._lo)
            np.minimum.at(self._lo, partners, lo_payload)
            np.take(self._lo_snapshot, partners, out=self._scratch, mode="clip")
            np.minimum(self._lo, self._scratch, out=self._lo)
            np.maximum.at(self._hi, partners, hi_payload)
            np.take(self._hi_snapshot, partners, out=self._scratch, mode="clip")
            np.maximum(self._hi, self._scratch, out=self._hi)
            return
        targets = partners[alive]
        np.minimum.at(self._lo, targets, lo_payload)
        self._lo[alive] = np.minimum(self._lo[alive], self._lo_snapshot[targets])
        np.maximum.at(self._hi, targets, hi_payload)
        self._hi[alive] = np.maximum(self._hi[alive], self._hi_snapshot[targets])

    def is_done(self, round_index: int) -> bool:
        if round_index >= self._budget:
            return True
        if self._stop_when_converged and round_index > 0:
            return self.converged
        return False

    def message_bits(self, payload) -> int:
        # one framing + sender id, two scalar working values
        return payload_bits(0.0, n=self.n) + payload_bits(0.0) - BITS_HEADER

    def lo_values_array(self) -> np.ndarray:
        return self._lo.copy()

    def hi_values_array(self) -> np.ndarray:
        return self._hi.copy()

    def outputs(self) -> List[tuple]:
        return [
            (float(lo), float(hi)) for lo, hi in zip(self._lo, self._hi)
        ]

    @property
    def converged(self) -> bool:
        return bool(
            np.all(self._lo == self._lo_target)
            and np.all(self._hi == self._hi_target)
        )


@dataclass
class ExtremaPairResult:
    """Per-node fused (lo-min, hi-max) estimates plus shared accounting."""

    lo_values: np.ndarray
    hi_values: np.ndarray
    rounds: int
    metrics: NetworkMetrics
    converged: bool


def spread_extrema_pair(
    lo_values: Union[Sequence[float], np.ndarray],
    hi_values: Union[Sequence[float], np.ndarray],
    rng: Union[None, int, RandomSource] = None,
    failure_model: Union[None, float, FailureModel] = None,
    max_rounds: Optional[int] = None,
    metrics: Optional[NetworkMetrics] = None,
    engine: Optional[str] = None,
    topology=None,
    peer_sampling: str = "uniform",
) -> ExtremaPairResult:
    """Spread min(lo_values) and max(hi_values) in one fused run.

    Executes the two spreadings of Algorithm 3's Step 4 in a single
    O(log n) window (rounds = max of the pair by construction) instead of
    two sequential runs; every message carries both working values.
    """
    protocol = ExtremaPairProtocol(lo_values, hi_values, max_rounds=max_rounds)
    result = run_protocol(
        protocol,
        rng=rng,
        failure_model=failure_model,
        max_rounds=protocol._budget + 1,
        metrics=metrics,
        raise_on_budget=False,
        engine=engine,
        topology=topology,
        peer_sampling=peer_sampling,
    )
    return ExtremaPairResult(
        lo_values=protocol.lo_values_array(),
        hi_values=protocol.hi_values_array(),
        rounds=result.rounds,
        metrics=result.metrics,
        converged=protocol.converged,
    )


@dataclass
class ExtremaResult:
    """Per-node extremum estimates plus accounting."""

    values: np.ndarray
    rounds: int
    metrics: NetworkMetrics
    converged: bool

    @property
    def agreed_value(self) -> float:
        """The single agreed value (only meaningful when ``converged``)."""
        return float(self.values[0])


def spread_extrema(
    values: Union[Sequence[float], np.ndarray],
    mode: str = "max",
    rng: Union[None, int, RandomSource] = None,
    failure_model: Union[None, float, FailureModel] = None,
    max_rounds: Optional[int] = None,
    metrics: Optional[NetworkMetrics] = None,
    engine: Optional[str] = None,
    topology=None,
    peer_sampling: str = "uniform",
) -> ExtremaResult:
    """Spread the global min or max of ``values`` to every node."""
    protocol = ExtremaProtocol(values, mode=mode, max_rounds=max_rounds)
    result = run_protocol(
        protocol,
        rng=rng,
        failure_model=failure_model,
        max_rounds=protocol._budget + 1,
        metrics=metrics,
        raise_on_budget=False,
        engine=engine,
        topology=topology,
        peer_sampling=peer_sampling,
    )
    return ExtremaResult(
        values=result.outputs_array,
        rounds=result.rounds,
        metrics=result.metrics,
        converged=protocol.converged,
    )
