"""Push-sum gossip aggregation (Kempe, Dobra, Gehrke, FOCS 2003).

Every node ``v`` maintains a pair ``(s_v, w_v)``; initially ``s_v = x_v``
and ``w_v = 1``.  In every round every node splits its pair in half, keeps
one half and pushes the other half to a uniformly random node.  The ratio
``s_v / w_v`` converges to the global average exponentially fast: after
``O(log n + log 1/eps)`` rounds every node's estimate is within a relative
``eps`` of the true average with high probability.

The paper uses this primitive (Step 5 of Algorithm 3) to count the number
of nodes whose value is below a threshold; counts are integers, so running
push-sum until the relative error is below ``1/(4n)`` and rounding yields
the exact count w.h.p. in ``O(log n)`` rounds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.exceptions import ConfigurationError
from repro.gossip.failures import FailureModel
from repro.gossip.engine import EngineResult, run_protocol
from repro.gossip.messages import BITS_HEADER, BITS_PER_VALUE, BITS_PER_WEIGHT, id_bits
from repro.gossip.metrics import NetworkMetrics
from repro.gossip.protocol import Action, BatchAction, BatchGossipProtocol, GossipProtocol
from repro.utils.rand import RandomSource
from repro.utils.views import ReadOnlyArray


def default_push_sum_rounds(n: int, relative_error: float = 1e-4) -> int:
    """A round budget after which push-sum is within ``relative_error`` w.h.p.

    The classic analysis shows the potential drops by a constant factor per
    round; ``ceil(c1 * log2 n + c2 * log2(1/relative_error) + c3)`` rounds
    with small constants is a comfortable budget for the network sizes this
    library simulates (the tests verify the resulting accuracy directly).
    """
    if n < 2:
        raise ConfigurationError("n must be at least 2")
    if not 0 < relative_error < 1:
        raise ConfigurationError("relative_error must be in (0, 1)")
    return int(math.ceil(2.5 * math.log2(n) + 1.5 * math.log2(1.0 / relative_error) + 10))


class PushSumProtocol(BatchGossipProtocol, GossipProtocol):
    """The push-sum protocol as a :class:`GossipProtocol`.

    Parameters
    ----------
    values:
        Per-node inputs ``x_v``.
    weights:
        Per-node initial weights.  ``None`` means all ones (the estimate
        converges to the average).  For a *sum*, give weight 1 to a single
        node and 0 to all others.
    rounds:
        Number of rounds to run (a hard budget when ``tolerance`` is set).
    tolerance:
        Optional early-stopping criterion: terminate once the relative
        spread of the per-node estimates ``s/w`` — ``(max - min) / |mean|``
        — drops below this value.  ``None`` (the default) keeps the
        historical fixed-round behaviour.  Topology experiments use this to
        *measure* convergence rounds rather than assume them.
    """

    name = "push-sum"

    def __init__(
        self,
        values: Union[Sequence[float], np.ndarray],
        weights: Union[None, Sequence[float], np.ndarray] = None,
        rounds: Optional[int] = None,
        tolerance: Optional[float] = None,
    ) -> None:
        array = np.asarray(values, dtype=float)
        if array.ndim != 1 or array.size < 2:
            raise ConfigurationError("values must be a 1-d array of length >= 2")
        super().__init__(array.size)
        self._s = array.copy()
        if weights is None:
            self._w = np.ones(self.n, dtype=float)
        else:
            w = np.asarray(weights, dtype=float)
            if w.shape != (self.n,):
                raise ConfigurationError("weights must match values in length")
            if np.any(w < 0) or w.sum() <= 0:
                raise ConfigurationError("weights must be non-negative with positive sum")
            self._w = w.copy()
        self._rounds = rounds if rounds is not None else default_push_sum_rounds(self.n)
        if self._rounds <= 0:
            raise ConfigurationError("rounds must be positive")
        if tolerance is not None and tolerance <= 0:
            raise ConfigurationError("tolerance must be positive")
        self._tolerance = tolerance
        self._s_scratch: Optional[np.ndarray] = None
        self._w_scratch: Optional[np.ndarray] = None

    # -- protocol interface -----------------------------------------------------
    def act(self, node: int, round_index: int) -> Action:
        s_half = self._s[node] / 2.0
        w_half = self._w[node] / 2.0
        # The node keeps one half; the other half is shipped.  The kept half
        # is applied here because act() is only invoked for nodes that did
        # not fail this round.
        self._s[node] = s_half
        self._w[node] = w_half
        return Action.push((s_half, w_half))

    def on_receive(self, node, payload, sender, kind, round_index) -> None:
        s_half, w_half = payload
        self._s[node] += s_half
        self._w[node] += w_half

    # -- batch (vectorized-engine) interface --------------------------------------
    def act_batch(self, round_index: int, alive: ReadOnlyArray) -> BatchAction:
        if alive.all():
            # Failure-free fast path: in-place whole-array halving instead
            # of the boolean gathers/scatters (same values — the payload is
            # a private per-protocol scratch buffer, reused across rounds
            # to spare one large allocation per round, that later scatters
            # cannot alias).
            if self._s_scratch is None:
                self._s_scratch = np.empty_like(self._s)
                self._w_scratch = np.empty_like(self._w)
            self._s *= 0.5
            self._w *= 0.5
            np.copyto(self._s_scratch, self._s)
            np.copyto(self._w_scratch, self._w)
            s_half = self._s_scratch
            w_half = self._w_scratch
        else:
            s_half = self._s[alive] / 2.0
            w_half = self._w[alive] / 2.0
            self._s[alive] = s_half
            self._w[alive] = w_half
        return BatchAction(
            "push", payload=(s_half, w_half), push_bits=self.message_bits(None)
        )

    def receive_batch(self, round_index, alive: ReadOnlyArray, partners, action) -> None:
        s_half, w_half = action.payload
        # an all-alive payload pairs with the full partner array; slicing
        # would only copy it
        targets = partners if s_half.size == self.n else partners[alive]
        # ufunc.at accumulates in index order — the same order in which the
        # loop engine delivers — so repeated targets sum bit-identically.
        np.add.at(self._s, targets, s_half)
        np.add.at(self._w, targets, w_half)

    def is_done(self, round_index: int) -> bool:
        if round_index >= self._rounds:
            return True
        if self._tolerance is None or round_index == 0:
            return False
        return self.relative_spread() <= self._tolerance

    def relative_spread(self) -> float:
        """Relative spread of the current estimates: ``(max - min) / |mean|``."""
        estimates = np.where(
            self._w > 0, self._s / np.maximum(self._w, 1e-300), 0.0
        )
        spread = float(estimates.max() - estimates.min())
        scale = abs(float(estimates.mean()))
        return spread / max(scale, 1e-300)

    def outputs_array(self) -> np.ndarray:
        return np.where(self._w > 0, self._s / np.maximum(self._w, 1e-300), 0.0)

    def outputs(self) -> List[float]:
        return [float(e) for e in self.outputs_array()]

    def message_bits(self, payload) -> int:
        return BITS_HEADER + BITS_PER_VALUE + BITS_PER_WEIGHT + id_bits(self.n)

    # -- invariants ---------------------------------------------------------------
    @property
    def total_mass(self) -> float:
        """Invariant: the total ``s`` mass is conserved by every round."""
        return float(self._s.sum())

    @property
    def total_weight(self) -> float:
        """Invariant: the total ``w`` mass is conserved by every round."""
        return float(self._w.sum())


@dataclass
class PushSumResult:
    """Outcome of a push-sum run: per-node estimates plus accounting."""

    estimates: np.ndarray
    rounds: int
    metrics: NetworkMetrics

    @property
    def mean_estimate(self) -> float:
        return float(np.mean(self.estimates))

    @property
    def max_relative_spread(self) -> float:
        """Largest relative deviation of any node's estimate from the mean."""
        mean = self.mean_estimate
        if mean == 0:
            return float(np.max(np.abs(self.estimates)))
        return float(np.max(np.abs(self.estimates - mean)) / abs(mean))


def push_sum_average(
    values: Union[Sequence[float], np.ndarray],
    rng: Union[None, int, RandomSource] = None,
    rounds: Optional[int] = None,
    failure_model: Union[None, float, FailureModel] = None,
    metrics: Optional[NetworkMetrics] = None,
    engine: Optional[str] = None,
    topology=None,
    peer_sampling: str = "uniform",
    tolerance: Optional[float] = None,
    topology_process=None,
) -> PushSumResult:
    """Estimate the average of ``values`` at every node via push-sum."""
    protocol = PushSumProtocol(values, rounds=rounds, tolerance=tolerance)
    result: EngineResult = run_protocol(
        protocol,
        rng=rng,
        failure_model=failure_model,
        max_rounds=protocol._rounds + 1,
        metrics=metrics,
        engine=engine,
        topology=topology,
        peer_sampling=peer_sampling,
        topology_process=topology_process,
    )
    return PushSumResult(
        estimates=result.outputs_array,
        rounds=result.rounds,
        metrics=result.metrics,
    )


def push_sum_sum(
    values: Union[Sequence[float], np.ndarray],
    rng: Union[None, int, RandomSource] = None,
    rounds: Optional[int] = None,
    failure_model: Union[None, float, FailureModel] = None,
    metrics: Optional[NetworkMetrics] = None,
    engine: Optional[str] = None,
    topology=None,
    peer_sampling: str = "uniform",
) -> PushSumResult:
    """Estimate the *sum* of ``values`` at every node.

    Uses the standard trick of giving initial weight 1 to node 0 only, so
    ``s/w`` converges to the sum rather than the average.
    """
    array = np.asarray(values, dtype=float)
    weights = np.zeros(array.size, dtype=float)
    weights[0] = 1.0
    protocol = PushSumProtocol(array, weights=weights, rounds=rounds)
    result = run_protocol(
        protocol,
        rng=rng,
        failure_model=failure_model,
        max_rounds=protocol._rounds + 1,
        metrics=metrics,
        engine=engine,
        topology=topology,
        peer_sampling=peer_sampling,
    )
    return PushSumResult(
        estimates=result.outputs_array,
        rounds=result.rounds,
        metrics=result.metrics,
    )
