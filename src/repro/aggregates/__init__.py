"""Gossip aggregation substrate.

The exact-quantile algorithm (Algorithm 3) relies on three classic gossip
primitives which we implement here from scratch:

* push-sum averaging / counting (Kempe, Dobra, Gehrke, FOCS'03) — Step 5;
* min/max (extrema) spreading by rumor spreading — Step 4;
* single-message broadcast — the Ω(log n) reference point that makes
  Theorem 1.1 optimal.
"""

from repro.aggregates.push_sum import PushSumProtocol, push_sum_average, push_sum_sum
from repro.aggregates.extrema import (
    ExtremaPairProtocol,
    ExtremaProtocol,
    spread_extrema,
    spread_extrema_pair,
)
from repro.aggregates.counting import count_leq, rank_of_min
from repro.aggregates.broadcast import BroadcastProtocol, broadcast_rounds

__all__ = [
    "PushSumProtocol",
    "push_sum_average",
    "push_sum_sum",
    "ExtremaPairProtocol",
    "ExtremaProtocol",
    "spread_extrema",
    "spread_extrema_pair",
    "count_leq",
    "rank_of_min",
    "BroadcastProtocol",
    "broadcast_rounds",
]
