"""Command-line interface: ``python -m repro`` / ``repro-gossip``.

Examples
--------
List the available experiments::

    python -m repro list

Reproduce the Theorem 1.2 round-complexity table with small parameters::

    python -m repro approx-rounds --trials 2 --sizes 512 1024

Compute a quantile of a file of numbers (one per line)::

    python -m repro query --phi 0.9 --eps 0.05 --input values.txt

Let every node estimate its own rank in one fused pass, or stand up a
quantile service that answers many φ queries from a single pass::

    python -m repro ranks --eps 0.05 --input values.txt
    python -m repro serve --eps 0.05 --phi 0.1 0.5 0.9 --input values.txt
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from contextlib import nullcontext
from typing import List, Optional, Sequence

import numpy as np

from repro.core.all_quantiles import (
    DEFAULT_MAX_LANES,
    estimate_all_ranks,
    true_self_quantiles,
)
from repro.core.approx_quantile import approximate_quantile
from repro.core.exact_quantile import exact_quantile
from repro.core.service import QuantileService
from repro.experiments.churn_sweep import FAILURE_CHOICES
from repro.experiments.runner import REGISTRY, run_experiment
from repro.faults import (
    FAULT_KINDS,
    CrashRestart,
    FaultInjector,
    MessageDelay,
    MessageDrop,
    MessageDuplication,
    ValueCorruption,
)
from repro.gossip.engine import (
    ENGINE_CHOICES,
    get_default_engine,
    run_protocol,
    set_default_engine,
)
from repro.gossip.metrics import NetworkMetrics
from repro.obs import (
    Tracer,
    render_profile,
    render_prometheus,
    use_tracer,
    write_trace_jsonl,
)
from repro.topology import (
    TOPOLOGY_CHOICES,
    ChurnProcess,
    build_topology,
    validate_topology_flags,
)

#: Engines a CLI flag may set as the ambient default — the asyncio backend
#: owns an event loop per run, so it is per-call only (the ``net`` command).
SIM_ENGINE_CHOICES = tuple(e for e in ENGINE_CHOICES if e != "asyncio")


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    """Observability flags shared by the run-something subcommands."""
    parser.add_argument(
        "--trace", default=None, metavar="FILE",
        help="write a JSON-lines span/event/round trace of the run to FILE",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="print a hierarchical span profile (wall time, rounds, "
             "messages, payload bits) after the run",
    )
    parser.add_argument(
        "--prom", default=None, metavar="FILE",
        help="write Prometheus-text-format metrics of the run to FILE",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-gossip",
        description=(
            "Reproduction of 'Optimal Gossip Algorithms for Exact and "
            "Approximate Quantile Computations' (PODC 2018)"
        ),
    )
    sub = parser.add_subparsers(dest="command")

    sub.add_parser("list", help="list available experiments")

    for name, spec in REGISTRY.items():
        exp = sub.add_parser(name, help=f"{spec.claim}: {spec.description}")
        exp.add_argument("--output", choices=("table", "csv", "rows"), default="table")
        exp.add_argument("--trials", type=int, default=None)
        exp.add_argument("--sizes", type=int, nargs="+", default=None)
        exp.add_argument("--seed", type=int, default=None)
        exp.add_argument(
            "--workers", type=int, default=None,
            help="process-pool size for experiments with parallel trial support",
        )
        exp.add_argument(
            "--engine", choices=SIM_ENGINE_CHOICES, default=None,
            help="gossip engine: auto (default), loop, or vectorized",
        )
        exp.add_argument(
            "--topology", choices=TOPOLOGY_CHOICES, nargs="+", default=None,
            help="run gossip on these topologies instead of the complete graph "
                 "(experiments with topology support only)",
        )
        exp.add_argument(
            "--degree", type=int, default=None,
            help="target degree for degree-parameterised topologies",
        )
        exp.add_argument(
            "--rewire-p", type=float, default=None, dest="rewire_p",
            help="rewiring probability of the small-world topology",
        )
        exp.add_argument(
            "--churn-rate", type=float, nargs="+", default=None,
            dest="churn_rate",
            help="per-round node departure probabilities to sweep "
                 "(dynamic-topology experiments only)",
        )
        exp.add_argument(
            "--resample-every", type=int, nargs="+", default=None,
            dest="resample_every",
            help="newscast view-refresh periods in rounds to sweep "
                 "(dynamic-topology experiments only)",
        )
        exp.add_argument(
            "--failures", choices=FAILURE_CHOICES, default=None,
            help="failure layer: none, or topology (position-correlated, "
                 "hubs fail more)",
        )
        exp.add_argument(
            "--dtype", choices=("float64", "float32"), nargs="+", default=None,
            help="gossip value dtypes to sweep (experiments with a dtype "
                 "axis only; float32 halves the hot-path memory traffic)",
        )
        exp.add_argument(
            "--fault-kinds", choices=FAULT_KINDS, nargs="+", default=None,
            dest="fault_kinds",
            help="fault kinds to inject (chaos experiment only)",
        )
        exp.add_argument(
            "--fault-intensity", type=float, nargs="+", default=None,
            dest="fault_intensity",
            help="per-round fault probabilities to sweep (chaos "
                 "experiment only)",
        )
        _add_obs_flags(exp)

    query = sub.add_parser("query", help="compute a quantile of a value file via gossip")
    query.add_argument("--input", required=True, help="text file with one value per line")
    query.add_argument("--phi", type=float, required=True)
    query.add_argument("--eps", type=float, default=None,
                       help="approximation parameter; omit for the exact algorithm")
    query.add_argument(
        "--fidelity", choices=("idealized", "simulated"), default="idealized",
        help="exact algorithm only: 'simulated' drives every sub-protocol "
             "through the (vectorized) gossip substrates; 'idealized' "
             "computes their outcomes directly and charges the proven "
             "round cost",
    )
    query.add_argument("--seed", type=int, default=0)
    query.add_argument(
        "--engine", choices=SIM_ENGINE_CHOICES, default=None,
        help="gossip engine: auto (default), loop, or vectorized",
    )
    query.add_argument(
        "--topology", choices=TOPOLOGY_CHOICES, default=None,
        help="gossip topology for the approximate algorithm "
             "(default: complete graph)",
    )
    query.add_argument("--degree", type=int, default=None,
                       help="target degree for degree-parameterised topologies")
    query.add_argument("--rewire-p", type=float, default=None, dest="rewire_p",
                       help="rewiring probability of the small-world topology")
    query.add_argument(
        "--dtype", choices=("float64", "float32"), default=None,
        help="gossip value dtype (default float64; float32 halves the "
             "simulator's memory traffic — the exact algorithm's rank keys "
             "stay exact below 2^24 nodes)",
    )
    _add_obs_flags(query)

    ranks = sub.add_parser(
        "ranks",
        help="every node estimates its own quantile in one fused pass "
             "(Corollary 1.5)",
    )
    serve = sub.add_parser(
        "serve",
        help="build a quantile service from one gossip pass and answer "
             "arbitrary phi queries",
    )
    for command in (ranks, serve):
        command.add_argument(
            "--input", required=True,
            help="text file with one value per line",
        )
        command.add_argument(
            "--eps", type=float, default=0.1,
            help="grid spacing: ceil(1/eps) - 1 quantile targets fused "
                 "into multi-lane tournaments",
        )
        command.add_argument(
            "--query-accuracy", type=float, default=None, dest="query_accuracy",
            help="per-grid-target accuracy (default eps / 2)",
        )
        command.add_argument("--seed", type=int, default=0)
        command.add_argument(
            "--engine", choices=SIM_ENGINE_CHOICES, default=None,
            help="gossip engine: auto (default), loop, or vectorized",
        )
        command.add_argument(
            "--dtype", choices=("float64", "float32"), default=None,
            help="gossip value dtype (default float64)",
        )
        command.add_argument(
            "--topology", choices=TOPOLOGY_CHOICES, default=None,
            help="gossip topology (default: complete graph)",
        )
        command.add_argument(
            "--degree", type=int, default=None,
            help="target degree for degree-parameterised topologies",
        )
        command.add_argument(
            "--rewire-p", type=float, default=None, dest="rewire_p",
            help="rewiring probability of the small-world topology",
        )
        command.add_argument(
            "--sequential", action="store_true",
            help="run the grid as sequential single-lane queries instead "
                 "of the fused multi-lane pass (the pre-fusion reference)",
        )
        command.add_argument(
            "--max-lanes", type=int, default=DEFAULT_MAX_LANES,
            dest="max_lanes",
            help="lane-chunk width of the fused pass (memory bound on the "
                 "per-round gather blocks)",
        )
        _add_obs_flags(command)
    serve.add_argument(
        "--phi", type=float, nargs="+", required=True,
        help="quantile targets to answer from the one pass",
    )
    serve.add_argument(
        "--sketch-k", type=int, default=None, dest="sketch_k",
        help="attach a mergeable KLL sketch of this capacity for phi "
             "targets finer than the eps-grid",
    )
    serve.add_argument(
        "--churn-rate", type=float, default=None, dest="churn_rate",
        help="per-round departure probability of a churn process stepped "
             "after the build; stale answers come back widened + degraded",
    )
    serve.add_argument(
        "--churn-rounds", type=int, default=20, dest="churn_rounds",
        help="how many churn rounds to advance before serving (with "
             "--churn-rate; default 20)",
    )
    serve.add_argument(
        "--faults", choices=FAULT_KINDS, nargs="+", default=None,
        help="inject these fault kinds into the build and any rebuilds "
             "(seeded by --seed; replayable)",
    )
    serve.add_argument(
        "--fault-rate", type=float, default=0.05, dest="fault_rate",
        help="per-round probability of each injected fault kind "
             "(default 0.05)",
    )
    serve.add_argument(
        "--rebuild", choices=("off", "auto"), default="off",
        help="'auto' rebuilds stale grid lanes (a new epoch) when churn "
             "drift crosses the rebuild threshold",
    )
    serve.add_argument(
        "--listen", action="store_true",
        help="after the build, expose the service's metrics as a live "
             "Prometheus /metrics endpoint and keep serving scrapes",
    )
    serve.add_argument(
        "--prom-port", type=int, default=0, dest="prom_port",
        help="port for --listen (default 0 = an ephemeral port, printed)",
    )
    serve.add_argument(
        "--listen-probe", action="store_true", dest="listen_probe",
        help="with --listen: scrape the endpoint once, report, and exit "
             "(the CI-friendly smoke mode instead of serving forever)",
    )

    net = sub.add_parser(
        "net",
        help="run a gossip protocol on the live asyncio backend (each node "
             "a task speaking RPC over a real transport)",
    )
    net.add_argument(
        "--protocol", choices=("push-sum", "extrema"), default="push-sum",
        help="which protocol to run over the network",
    )
    net.add_argument(
        "--input", default=None,
        help="text file with one value per line (omit for seeded gaussians)",
    )
    net.add_argument(
        "--n", type=int, default=32,
        help="node count when no --input is given (default 32)",
    )
    net.add_argument(
        "--rounds", type=int, default=None,
        help="push-sum round budget (default: the O(log n) schedule)",
    )
    net.add_argument("--seed", type=int, default=0)
    net.add_argument(
        "--transport", choices=("channel", "tcp"), default="channel",
        help="in-process channel (default) or loopback TCP streams",
    )
    net.add_argument(
        "--compare", action="store_true",
        help="also run the simulated loop engine with the same seed and "
             "verify round counts and message/bit totals match",
    )
    net.add_argument(
        "--swim", action="store_true",
        help="run a SWIM failure detector alongside the gossip rounds",
    )
    net.add_argument(
        "--faults", choices=FAULT_KINDS, nargs="+", default=None,
        help="inject these fault kinds at the transport level (crash kills "
             "endpoints, drop loses frames, delay holds writes)",
    )
    net.add_argument(
        "--fault-rate", type=float, default=0.05, dest="fault_rate",
        help="per-round probability of each injected fault kind",
    )
    net.add_argument(
        "--prom-port", type=int, default=None, dest="prom_port",
        help="serve live /metrics on this port for the duration of the run "
             "(0 = ephemeral)",
    )
    net.add_argument(
        "--timeout", type=float, default=120.0,
        help="hard wall-clock ceiling on the whole run in seconds",
    )
    net.add_argument(
        "--json", action="store_true",
        help="emit the run summary as JSON instead of text",
    )
    _add_obs_flags(net)
    return parser


def _build_fault_injector(
    kinds: Sequence[str], rate: float, seed
) -> FaultInjector:
    """One spec per requested kind, all at ``rate``, seeded for replay."""
    spec_types = {
        "drop": MessageDrop,
        "duplicate": MessageDuplication,
        "delay": MessageDelay,
        "crash": CrashRestart,
        "corrupt": ValueCorruption,
    }
    return FaultInjector(
        [spec_types[kind](rate) for kind in kinds], rng=seed
    )


def _experiment_kwargs(args: argparse.Namespace) -> dict:
    kwargs = {}
    if args.trials is not None:
        kwargs["trials"] = args.trials
    if args.sizes is not None:
        kwargs["sizes"] = args.sizes
    if args.seed is not None:
        kwargs["seed"] = args.seed
    # Topology axis: forwarded only when given, so topology-unaware
    # experiments keep rejecting the flags with a clear error.  Reject
    # hyper-parameters none of the named topologies consume instead of
    # silently dropping them (without --topology the experiment's own
    # defaults decide, and do use degree/rewire_p).  The churn experiment
    # always consumes --degree (it doubles as the newscast view size), so
    # only --rewire-p is family-checked there.
    validate_topology_flags(
        args.topology,
        degree=None if args.command == "churn" else args.degree,
        rewire_p=args.rewire_p,
    )
    if args.topology is not None:
        kwargs["topologies"] = tuple(args.topology)
    if args.degree is not None:
        kwargs["degree"] = args.degree
    if args.rewire_p is not None:
        kwargs["rewire_p"] = args.rewire_p
    if args.churn_rate is not None:
        kwargs["churn_rates"] = tuple(args.churn_rate)
    if args.resample_every is not None:
        kwargs["resample_every"] = tuple(args.resample_every)
    if args.failures is not None:
        kwargs["failures"] = args.failures
    if args.dtype is not None:
        # forwarded only when given: experiments without a dtype axis keep
        # rejecting the flag with a clear unknown-kwarg error
        kwargs["dtypes"] = tuple(args.dtype)
    if args.fault_kinds is not None:
        kwargs["fault_kinds"] = tuple(args.fault_kinds)
    if args.fault_intensity is not None:
        kwargs["fault_intensities"] = tuple(args.fault_intensity)
    return kwargs


def _run_query(args: argparse.Namespace) -> str:
    values = np.loadtxt(args.input, dtype=float).ravel()
    # query has no topology defaults: a hyper-parameter without --topology
    # (or one its family ignores) would be silently dropped — reject it.
    validate_topology_flags(
        [args.topology] if args.topology is not None else None,
        degree=args.degree,
        rewire_p=args.rewire_p,
        require_topology=True,
    )
    topology = None
    if args.topology is not None:
        topology = build_topology(
            args.topology,
            values.size,
            degree=args.degree,
            rewire_p=args.rewire_p,
            rng=args.seed,
        )
    if args.eps is None:
        # The exact driver threads the topology into its approximate
        # stages (the round-dominating sandwich tournaments + final
        # query); the auxiliary aggregates stay complete-graph.
        result = exact_quantile(
            values, phi=args.phi, rng=args.seed, fidelity=args.fidelity,
            dtype=args.dtype, topology=topology,
        )
        where = f" on {args.topology}" if topology is not None else ""
        return (
            f"exact {args.phi}-quantile = {result.value} "
            f"(rank {result.target_rank} of {result.n}, {result.rounds} gossip "
            f"rounds, {result.fidelity}{where})"
        )
    result = approximate_quantile(
        values, phi=args.phi, eps=args.eps, rng=args.seed, topology=topology,
        dtype=args.dtype,
    )
    where = f" on {args.topology}" if topology is not None else ""
    return (
        f"approximate {args.phi}-quantile (eps={args.eps}) = {result.estimate} "
        f"({result.rounds} gossip rounds, n={result.n}{where})"
    )


def _load_values_and_topology(args: argparse.Namespace):
    """Shared ranks/serve front end: value file + validated topology flags."""
    values = np.loadtxt(args.input, dtype=float).ravel()
    validate_topology_flags(
        [args.topology] if args.topology is not None else None,
        degree=args.degree,
        rewire_p=args.rewire_p,
        require_topology=True,
    )
    topology = None
    if args.topology is not None:
        topology = build_topology(
            args.topology,
            values.size,
            degree=args.degree,
            rewire_p=args.rewire_p,
            rng=args.seed,
        )
    return values, topology


def _run_ranks(args: argparse.Namespace) -> str:
    values, topology = _load_values_and_topology(args)
    result = estimate_all_ranks(
        values,
        eps=args.eps,
        rng=args.seed,
        query_accuracy=args.query_accuracy,
        fused=not args.sequential,
        max_lanes=args.max_lanes,
        topology=topology,
        dtype=args.dtype,
        engine=args.engine,
    )
    errors = np.abs(result.quantile_estimates - true_self_quantiles(values))
    mode = "fused" if result.fused else "sequential"
    where = f" on {args.topology}" if topology is not None else ""
    return (
        f"self-rank estimates for n={result.n} (eps={args.eps}{where}): "
        f"{result.grid.size} grid targets in {result.chunks} {mode} "
        f"tournament run(s), {result.rounds} gossip rounds; "
        f"error mean={float(errors.mean()):.4f} "
        f"p95={float(np.quantile(errors, 0.95)):.4f} "
        f"max={float(errors.max()):.4f}"
    )


def _run_serve(args: argparse.Namespace):
    """Returns ``(output_text, service)`` — the service rides along so the
    observability exporters can include its query-latency histogram and
    serving metrics."""
    values, topology = _load_values_and_topology(args)
    faults = None
    if args.faults:
        faults = _build_fault_injector(args.faults, args.fault_rate, args.seed)
    churn = None
    if args.churn_rate is not None:
        churn = ChurnProcess(values.size, churn_rate=args.churn_rate,
                             rng=args.seed)
    service = QuantileService(
        values,
        eps=args.eps,
        rng=args.seed,
        query_accuracy=args.query_accuracy,
        fused=not args.sequential,
        max_lanes=args.max_lanes,
        topology=topology,
        dtype=args.dtype,
        engine=args.engine,
        sketch_k=args.sketch_k,
        faults=faults,
        churn_process=churn,
        auto_rebuild=(args.rebuild == "auto"),
    )
    lines = []
    if churn is not None and args.churn_rounds > 0:
        service.advance_churn(args.churn_rounds)
        stale = service.stale_lanes()
        lines.append(
            f"churn: advanced {args.churn_rounds} rounds "
            f"({int(np.sum(churn.active))}/{values.size} nodes active, "
            f"{len(stale)} stale lane(s), "
            f"{'degraded' if service.degraded else 'fresh'})"
        )
    for answer in service.batch_quantiles(args.phi):
        flag = ", degraded" if answer.degraded else ""
        lines.append(
            f"phi={answer.phi:g} -> {answer.value} "
            f"({answer.source}, rank accuracy ±{answer.accuracy:.4f}, "
            f"epoch {answer.epoch}{flag})"
        )
    summary = service.summary()
    lines.append(
        f"one pass: {summary['rounds']} gossip rounds over "
        f"{summary['grid_targets']} grid targets "
        f"({summary['chunks']} {'fused' if summary['fused'] else 'sequential'} "
        f"run(s), {summary['gossip_bits']} bits); served "
        f"{summary['queries_answered']} queries for {summary['query_bits']} "
        f"bits — zero additional rounds"
    )
    if summary["rebuilds"] or summary["answers_degraded"]:
        lines.append(
            f"lifecycle: epoch {summary['epoch']}, "
            f"{summary['rebuilds']} rebuild(s), "
            f"{summary['answers_degraded']} degraded answer(s), "
            f"{summary['stale_lanes']} lane(s) still stale"
        )
    if faults is not None:
        injected = ", ".join(
            f"{kind}={count}" for kind, count in sorted(faults.counters.items())
            if count
        )
        lines.append(f"faults injected: {injected or 'none'}")
    return "\n".join(lines), service


async def _serve_listen(render, port: int, probe: bool) -> None:
    """Expose ``render()`` as a live /metrics endpoint (serve --listen)."""
    from repro.net import MetricsServer, fetch_metrics

    server = MetricsServer(render, port=port)
    await server.start()
    print(f"metrics: http://{server.host}:{server.port}/metrics")
    try:
        if probe:
            body = await fetch_metrics(server.host, server.port)
            samples = sum(
                1 for line in body.splitlines()
                if line and not line.startswith("#")
            )
            print(f"probe: scraped {len(body)} bytes, {samples} sample(s)")
        else:  # pragma: no cover - interactive serving loop
            print("serving scrapes; Ctrl-C to stop")
            await asyncio.Event().wait()
    except KeyboardInterrupt:  # pragma: no cover
        pass
    finally:
        await server.stop()


def _run_net(args: argparse.Namespace) -> str:
    """The ``net`` subcommand: one protocol run on the asyncio backend."""
    from repro.aggregates.extrema import ExtremaProtocol
    from repro.aggregates.push_sum import PushSumProtocol
    from repro.net import MetricsServer, SwimFailureDetector, arun_protocol
    from repro.net.transport import ChannelTransport, TcpTransport

    if args.input is not None:
        values = np.loadtxt(args.input, dtype=float).ravel()
    else:
        values = np.random.default_rng(args.seed).normal(size=args.n)
    n = values.size

    def make_protocol():
        if args.protocol == "push-sum":
            return PushSumProtocol(values, rounds=args.rounds)
        return ExtremaProtocol(values)

    faults = None
    if args.faults:
        faults = _build_fault_injector(args.faults, args.fault_rate, args.seed)
    detector = (
        SwimFailureDetector(n, rng=args.seed, ping_timeout_s=0.05)
        if args.swim
        else None
    )
    metrics = NetworkMetrics()
    transport = (
        TcpTransport(n) if args.transport == "tcp" else ChannelTransport(n)
    )

    async def go():
        server = None
        if args.prom_port is not None:
            server = MetricsServer(
                lambda: render_prometheus(
                    metrics={"net": metrics},
                    faults={"net": faults} if faults is not None else None,
                ),
                port=args.prom_port,
            )
            await server.start()
            print(f"metrics: http://{server.host}:{server.port}/metrics")
        try:
            return await asyncio.wait_for(
                arun_protocol(
                    make_protocol(),
                    rng=args.seed,
                    metrics=metrics,
                    faults=faults,
                    transport=transport,
                    detector=detector,
                    raise_on_budget=False,
                ),
                args.timeout,
            )
        finally:
            if server is not None:
                await server.stop()
            await transport.stop()

    result = asyncio.run(go())
    summary = metrics.summary()
    report = {
        "protocol": result.protocol_name,
        "engine": "asyncio",
        "transport": args.transport,
        "n": n,
        "rounds": result.rounds,
        "messages": summary["messages"],
        "bits": summary["total_bits"],
        "rpc_calls": result.extra["rpc_calls"],
        "rpc_retries": result.extra["rpc_retries"],
        "lost_messages": result.extra["lost_messages"],
    }
    if transport.latencies_s:
        latencies = np.asarray(transport.latencies_s)
        report["rpc_p50_us"] = float(np.quantile(latencies, 0.5) * 1e6)
        report["rpc_p99_us"] = float(np.quantile(latencies, 0.99) * 1e6)
    if detector is not None:
        report["suspected"] = result.extra["suspected"]
        report["confirmed_dead"] = result.extra["confirmed_dead"]
    if faults is not None:
        report["crashed_nodes"] = result.extra["crashed_nodes"]
        report["faults_injected"] = {
            kind: count
            for kind, count in sorted(faults.counters.items())
            if count
        }
    if args.compare:
        sim_metrics = NetworkMetrics()
        sim = run_protocol(
            make_protocol(), rng=args.seed, metrics=sim_metrics,
            engine="loop", raise_on_budget=False,
        )
        matches = (
            sim.rounds == result.rounds
            and sim_metrics.summary() == summary
        )
        if faults is not None or args.swim:
            report["parity"] = "n/a (faults/detector change the live run)"
        elif matches:
            report["parity"] = (
                f"ok: rounds={sim.rounds}, messages={summary['messages']}, "
                f"bits={summary['total_bits']} identical on the loop engine"
            )
        else:
            report["parity"] = (
                f"MISMATCH: simulated rounds={sim.rounds} "
                f"messages={sim_metrics.summary()['messages']} vs deployed "
                f"rounds={result.rounds} messages={summary['messages']}"
            )
    if args.json:
        return json.dumps(report, indent=2, sort_keys=True)
    lines = [
        f"{report['protocol']} over {args.transport} transport: "
        f"n={n}, {report['rounds']} rounds, {report['messages']} messages, "
        f"{report['bits']} bits",
        f"rpc: {report['rpc_calls']} calls, {report['rpc_retries']} "
        f"retries, {report['lost_messages']} lost",
    ]
    if "rpc_p99_us" in report:
        lines.append(
            f"latency: p50={report['rpc_p50_us']:.0f}us "
            f"p99={report['rpc_p99_us']:.0f}us"
        )
    if detector is not None:
        lines.append(
            f"swim: suspected={report['suspected']} "
            f"confirmed={report['confirmed_dead']}"
        )
    if faults is not None:
        lines.append(
            f"chaos: crashed={report['crashed_nodes']} "
            f"injected={report['faults_injected']}"
        )
    if "parity" in report:
        lines.append(f"parity: {report['parity']}")
    return "\n".join(lines)


def _make_tracer(args: argparse.Namespace) -> Optional[Tracer]:
    """A tracer when any observability flag asked for one, else None.

    ``--trace`` keeps the per-round timeline (the JSONL dump carries a
    convergence trace); ``--profile`` / ``--prom`` only need span and
    label aggregates, which are O(1) memory per name.
    """
    if not (args.trace or args.profile or args.prom):
        return None
    return Tracer(round_timeline=bool(args.trace))


def _export_observability(
    args: argparse.Namespace, tracer: Optional[Tracer], service=None
) -> None:
    if tracer is None:
        return
    if args.trace:
        write_trace_jsonl(tracer, args.trace)
    if args.profile:
        print(render_profile(tracer))
    if args.prom:
        metrics = {}
        histograms = {}
        if service is not None:
            metrics["service_gossip"] = service.gossip_metrics
            metrics["service_queries"] = service.query_metrics
            histograms["query_latency"] = service.query_latency
        faults = {}
        if service is not None and service.faults is not None:
            faults["service"] = service.faults
        text = render_prometheus(
            tracer=tracer,
            metrics=metrics or None,
            histograms=histograms or None,
            faults=faults or None,
        )
        with open(args.prom, "w", encoding="utf-8") as stream:
            stream.write(text)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for the ``repro-gossip`` console script."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 1
    if args.command == "list":
        lines: List[str] = []
        for name, spec in REGISTRY.items():
            lines.append(f"{name:<16} {spec.claim:<22} {spec.description}")
        print("\n".join(lines))
        return 0
    tracer = _make_tracer(args)
    service = None
    with use_tracer(tracer) if tracer is not None else nullcontext():
        if args.command == "query":
            previous_engine = get_default_engine()
            if args.engine is not None:
                set_default_engine(args.engine)
            try:
                print(_run_query(args))
            finally:
                set_default_engine(previous_engine)
        elif args.command == "ranks":
            print(_run_ranks(args))
        elif args.command == "serve":
            text, service = _run_serve(args)
            print(text)
            if args.listen:
                served = service

                def _render_service() -> str:
                    histograms = {"query_latency": served.query_latency}
                    faults = (
                        {"service": served.faults}
                        if served.faults is not None
                        else None
                    )
                    return render_prometheus(
                        metrics={
                            "service_gossip": served.gossip_metrics,
                            "service_queries": served.query_metrics,
                        },
                        histograms=histograms,
                        faults=faults,
                    )

                asyncio.run(
                    _serve_listen(
                        _render_service, args.prom_port, args.listen_probe
                    )
                )
        elif args.command == "net":
            print(_run_net(args))
        else:
            print(
                run_experiment(
                    args.command,
                    output=args.output,
                    engine=args.engine,
                    workers=args.workers,
                    **_experiment_kwargs(args),
                )
            )
    _export_observability(args, tracer, service=service)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
