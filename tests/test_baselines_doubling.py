"""Tests for the Appendix A buffer-doubling baseline."""

import math

import pytest

from repro.baselines.doubling import (
    MAX_TOTAL_BUFFER_ENTRIES,
    doubling_quantile,
    doubling_target_size,
)
from repro.exceptions import ConfigurationError
from repro.utils.stats import rank_error


def test_target_size_formula():
    assert doubling_target_size(1024, 0.1) == 1000
    assert doubling_target_size(1024, 0.1, constant=2.0) == 2000
    with pytest.raises(ConfigurationError):
        doubling_target_size(1, 0.1)


def test_estimates_within_eps(medium_values):
    result = doubling_quantile(medium_values, phi=0.6, eps=0.1, rng=1)
    assert rank_error(medium_values, result.estimate, 0.6) <= 0.1
    errors = [rank_error(medium_values, float(v), 0.6) for v in result.estimates]
    assert sum(e <= 0.12 for e in errors) / len(errors) > 0.9


def test_rounds_are_doubly_logarithmic(medium_values):
    result = doubling_quantile(medium_values, phi=0.5, eps=0.1, rng=2)
    target = doubling_target_size(medium_values.size, 0.1)
    # buffer doubles each round: rounds ~ log2(target) + 1
    assert result.rounds <= math.ceil(math.log2(target)) + 2
    assert result.buffer_size >= target


def test_message_size_grows_with_buffer(medium_values):
    fine = doubling_quantile(medium_values, phi=0.5, eps=0.1, rng=3)
    coarse = doubling_quantile(medium_values, phi=0.5, eps=0.3, rng=3)
    assert fine.max_message_bits > coarse.max_message_bits
    # the max message carries about half the final buffer
    assert fine.max_message_bits >= 64 * fine.buffer_size / 2


def test_memory_guard():
    import numpy as np

    values = np.arange(float(MAX_TOTAL_BUFFER_ENTRIES // 100))[:70000]
    with pytest.raises(ConfigurationError):
        doubling_quantile(values, phi=0.5, eps=0.01)


def test_explicit_target_size(small_values):
    result = doubling_quantile(small_values, phi=0.5, eps=0.2, rng=4, target_size=64)
    assert result.buffer_size >= 64
    assert result.rounds <= 8


def test_validation(small_values):
    with pytest.raises(ConfigurationError):
        doubling_quantile(small_values, phi=2.0, eps=0.1)
    with pytest.raises(ConfigurationError):
        doubling_quantile(small_values, phi=0.5, eps=0.0)
