"""Tests for repro.utils.mathutils."""

import math

import pytest

from repro.utils.mathutils import (
    binomial_tail_bound,
    ceil_log2,
    ceil_pow2,
    clamp,
    harmonic_number,
    is_power_of_two,
    log_base,
    log_log,
    message_bits_for_value,
)


def test_clamp_inside_and_outside():
    assert clamp(0.5, 0.0, 1.0) == 0.5
    assert clamp(-1.0, 0.0, 1.0) == 0.0
    assert clamp(2.0, 0.0, 1.0) == 1.0


def test_clamp_empty_interval_raises():
    with pytest.raises(ValueError):
        clamp(0.5, 1.0, 0.0)


def test_ceil_log2_values():
    assert ceil_log2(1) == 0
    assert ceil_log2(2) == 1
    assert ceil_log2(3) == 2
    assert ceil_log2(1024) == 10
    assert ceil_log2(1025) == 11


def test_ceil_log2_invalid():
    with pytest.raises(ValueError):
        ceil_log2(0)


def test_ceil_pow2():
    assert ceil_pow2(0.5) == 1
    assert ceil_pow2(1) == 1
    assert ceil_pow2(3) == 4
    assert ceil_pow2(17) == 32


def test_is_power_of_two():
    assert is_power_of_two(1)
    assert is_power_of_two(64)
    assert not is_power_of_two(0)
    assert not is_power_of_two(12)
    assert not is_power_of_two(-4)


def test_log_base():
    assert log_base(8, 2) == pytest.approx(3.0)
    assert log_base(81, 3) == pytest.approx(4.0)
    with pytest.raises(ValueError):
        log_base(-1, 2)
    with pytest.raises(ValueError):
        log_base(2, 1)


def test_log_log():
    assert log_log(1.0) == 0.0
    assert log_log(2.0) == 0.0
    assert log_log(16.0) == pytest.approx(2.0)


def test_message_bits_for_value():
    # one id + one value, both ceil(log2(n)) bits by default
    assert message_bits_for_value(1024) == 20
    assert message_bits_for_value(1024, value_bits=64) == 10 + 64
    with pytest.raises(ValueError):
        message_bits_for_value(0)


def test_harmonic_number():
    assert harmonic_number(0) == 0.0
    assert harmonic_number(1) == 1.0
    assert harmonic_number(3) == pytest.approx(1.0 + 0.5 + 1.0 / 3.0)
    with pytest.raises(ValueError):
        harmonic_number(-1)


def test_binomial_tail_bound_monotone_and_valid():
    assert binomial_tail_bound(100, 0.1, 0) == 1.0
    assert binomial_tail_bound(100, 0.1, 101) == 0.0
    loose = binomial_tail_bound(100, 0.1, 15)
    tight = binomial_tail_bound(100, 0.1, 40)
    assert 0.0 <= tight <= loose <= 1.0
    with pytest.raises(ValueError):
        binomial_tail_bound(10, 1.5, 2)
