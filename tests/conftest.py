"""Shared fixtures for the test suite.

All stochastic tests use fixed seeds through the :class:`RandomSource`
fixture helpers so failures are reproducible.  Network sizes are kept small
(a few hundred nodes) to keep the full suite fast; the concentration
behaviour the paper proves already shows clearly at that scale, and the
experiment harness covers larger sweeps.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.generators import distinct_uniform
from repro.utils.rand import RandomSource


@pytest.fixture
def rng() -> RandomSource:
    """A deterministic random source."""
    return RandomSource(12345)


@pytest.fixture
def small_values() -> np.ndarray:
    """A distinct permutation of 1..256 (deterministic)."""
    return distinct_uniform(256, rng=7)


@pytest.fixture
def medium_values() -> np.ndarray:
    """A distinct permutation of 1..1024 (deterministic)."""
    return distinct_uniform(1024, rng=11)
