"""Tests for repro.gossip.network (the vectorised pull surface)."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.gossip.network import GossipNetwork
from repro.utils.rand import RandomSource


def make_network(n=64, seed=1, **kwargs):
    values = np.arange(1.0, n + 1.0)
    return GossipNetwork(values, rng=seed, **kwargs)


def test_construction_and_properties():
    net = make_network(32)
    assert net.n == 32
    assert net.rounds == 0
    assert np.array_equal(net.values, np.arange(1.0, 33.0))
    assert np.array_equal(net.initial_values, net.values)


def test_construction_validation():
    with pytest.raises(ConfigurationError):
        GossipNetwork([1.0])
    # a 2-d array is a valid *multi-lane* network; only >2-d is rejected
    with pytest.raises(ConfigurationError):
        GossipNetwork(np.ones((2, 2, 2)))
    with pytest.raises(ConfigurationError):
        GossipNetwork(np.ones((1, 3)))  # still needs >= 2 nodes
    with pytest.raises(ConfigurationError):
        GossipNetwork(np.ones(4), dtype=np.int64)


def test_pull_advances_rounds_and_counts_messages():
    net = make_network(64)
    batch = net.pull(3)
    assert batch.partners.shape == (64, 3)
    assert batch.values.shape == (64, 3)
    assert batch.ok.all()
    assert net.rounds == 3
    assert net.metrics.messages == 3 * 64


def test_pull_values_come_from_partners():
    net = make_network(64)
    batch = net.pull(2)
    expected = net.values[batch.partners]
    assert np.array_equal(batch.values, expected)


def test_pull_excludes_self_contacts_by_default():
    net = make_network(16, seed=3)
    for _ in range(5):
        batch = net.pull(4)
        own = np.arange(16)[:, None]
        assert not np.any(batch.partners == own)


def test_pull_with_failures_marks_ok_false_and_nan():
    net = make_network(200, seed=2, failure_model=0.5)
    batch = net.pull(1)
    failed = ~batch.ok[:, 0]
    assert failed.sum() > 50  # roughly half fail
    assert np.all(np.isnan(batch.values[:, 0][failed]))
    assert net.metrics.failed_node_rounds == failed.sum()


def test_pull_values_requires_no_failure_model():
    net = make_network(32, failure_model=0.2)
    with pytest.raises(ConfigurationError):
        net.pull_values(1)


def test_pull_values_shortcut():
    net = make_network(32)
    values = net.pull_values(2)
    assert values.shape == (32, 2)
    assert not np.isnan(values).any()


def test_set_values_and_snapshot():
    net = make_network(16)
    snap = net.snapshot()
    net.set_values(np.zeros(16))
    assert np.all(net.values == 0.0)
    assert not np.all(snap == 0.0)  # snapshot is independent
    with pytest.raises(ConfigurationError):
        net.set_values(np.zeros(8))


def test_pull_values_override_source():
    net = make_network(32)
    override = np.full(32, 7.0)
    batch = net.pull(1, values=override)
    assert np.all(batch.values == 7.0)
    with pytest.raises(ConfigurationError):
        net.pull(1, values=np.zeros(4))


def test_reset_restores_initial_state():
    net = make_network(16)
    net.pull(2)
    net.set_values(np.zeros(16))
    net.reset()
    assert net.rounds == 0
    assert np.array_equal(net.values, np.arange(1.0, 17.0))


def test_charge_rounds():
    net = make_network(16)
    net.charge_rounds(7, label="external")
    assert net.rounds == 7
    assert net.metrics.rounds_by_label()["external"] == 7


def test_shared_metrics_accumulate_across_networks():
    from repro.gossip.metrics import NetworkMetrics

    shared = NetworkMetrics(keep_history=False)
    a = GossipNetwork(np.arange(8.0), rng=1, metrics=shared)
    b = GossipNetwork(np.arange(8.0), rng=2, metrics=shared)
    a.pull(2)
    b.pull(3)
    assert shared.rounds == 5


def test_invalid_pull_count():
    net = make_network(8)
    with pytest.raises(ConfigurationError):
        net.pull(0)


def test_pull_is_deterministic_given_seed():
    a = make_network(32, seed=9)
    b = make_network(32, seed=9)
    assert np.array_equal(a.pull(2).partners, b.pull(2).partners)
