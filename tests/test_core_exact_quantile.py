"""Tests for the exact φ-quantile algorithm (Theorem 1.1 / Algorithm 3)."""

import math

import numpy as np
import pytest

from repro.core.exact_quantile import exact_quantile
from repro.datasets.generators import distinct_uniform, gaussian_values, zipf_values
from repro.exceptions import ConfigurationError
from repro.utils.stats import empirical_quantile, target_rank


def test_returns_exact_quantile_for_several_phis(medium_values):
    for seed, phi in enumerate((0.1, 0.25, 0.5, 0.75, 0.9)):
        result = exact_quantile(medium_values, phi=phi, rng=seed)
        assert result.value == empirical_quantile(medium_values, phi), phi
        assert result.target_rank == target_rank(medium_values.size, phi)


def test_extreme_phis_return_min_and_max(small_values):
    low = exact_quantile(small_values, phi=0.0, rng=1)
    high = exact_quantile(small_values, phi=1.0, rng=2)
    assert low.value == small_values.min()
    assert high.value == small_values.max()


def test_works_on_continuous_and_skewed_data():
    gauss = gaussian_values(512, rng=3)
    zipf = zipf_values(512, exponent=1.7, rng=4)
    for values in (gauss, zipf):
        result = exact_quantile(values, phi=0.85, rng=5)
        assert result.value == empirical_quantile(values, 0.85)


def test_simulated_fidelity_also_exact(small_values):
    result = exact_quantile(small_values, phi=0.6, rng=6, fidelity="simulated")
    assert result.value == empirical_quantile(small_values, 0.6)
    assert result.fidelity == "simulated"
    # simulated runs pay for extrema/counting/token rounds explicitly
    labels = set()
    assert result.rounds > 0


def test_rounds_scale_roughly_linearly_in_log_n():
    """Theorem 1.1 shape check: rounds / log2(n) stays bounded as n grows."""
    rounds = {}
    for n in (256, 1024, 4096):
        values = distinct_uniform(n, rng=7)
        result = exact_quantile(values, phi=0.5, rng=8)
        rounds[n] = result.rounds
    ratio_small = rounds[256] / math.log2(256)
    ratio_large = rounds[4096] / math.log2(4096)
    # the normalised cost may wobble but must not blow up quadratically
    assert ratio_large < 3.0 * ratio_small
    assert rounds[4096] > rounds[256]  # more nodes do cost more rounds overall


def test_history_records_progress(medium_values):
    result = exact_quantile(medium_values, phi=0.3, rng=9)
    assert result.iterations == len(result.history)
    assert result.iterations >= 1
    multiplicities = [h.cumulative_multiplicity for h in result.history]
    assert all(m2 >= m1 for m1, m2 in zip(multiplicities, multiplicities[1:]))
    assert result.history[-1].rounds_so_far <= result.rounds


def test_duplicate_input_values_are_handled():
    values = np.repeat(np.arange(1.0, 65.0), 4)  # 256 nodes, only 64 distinct values
    result = exact_quantile(values, phi=0.5, rng=10)
    assert result.value == empirical_quantile(values, 0.5)


def test_eps_iteration_knob(medium_values):
    fine = exact_quantile(medium_values, phi=0.5, rng=11, eps_iteration=0.03)
    coarse = exact_quantile(medium_values, phi=0.5, rng=11, eps_iteration=0.2)
    assert fine.value == coarse.value == empirical_quantile(medium_values, 0.5)
    # a sharper sandwich needs fewer duplication iterations
    assert fine.iterations <= coarse.iterations


def test_summary_and_metadata(medium_values):
    result = exact_quantile(medium_values, phi=0.4, rng=12)
    summary = result.summary()
    assert summary["value"] == result.value
    assert summary["n"] == medium_values.size
    assert result.metrics.rounds == result.rounds


def test_validation_errors(small_values):
    with pytest.raises(ConfigurationError):
        exact_quantile(small_values, phi=2.0)
    with pytest.raises(ConfigurationError):
        exact_quantile(small_values, phi=0.5, fidelity="magic")
    with pytest.raises(ConfigurationError):
        exact_quantile(small_values, phi=0.5, eps_iteration=0.0)
    with pytest.raises(ConfigurationError):
        exact_quantile([1.0, 2.0, 3.0], phi=0.5)


def test_deterministic_given_seed(small_values):
    a = exact_quantile(small_values, phi=0.7, rng=13)
    b = exact_quantile(small_values, phi=0.7, rng=13)
    assert a.value == b.value
    assert a.rounds == b.rounds


# ---- the fast simulated path (PR 3) -----------------------------------------


def test_simulated_fidelity_exact_at_scale():
    """Regression for the end-to-end vectorized path: a fully simulated
    exact query at n = 10⁴ returns the true quantile in seconds."""
    n = 10_000
    values = np.random.default_rng(7).permutation(n).astype(float)
    result = exact_quantile(values, phi=0.5, rng=8, fidelity="simulated")
    assert result.value == empirical_quantile(values, 0.5)
    assert result.fidelity == "simulated"
    assert result.rounds > 0


def test_simulated_loop_engine_seeded_execution_is_pinned():
    """With the loop engines forced globally, the simulated driver must
    reproduce this pinned seeded execution exactly (value, rounds,
    iterations and retries).

    The pin was re-baselined when the Step-3 sandwich pair and the Step-4
    min/max spreadings became fused runs (a documented deviation: each
    pair now *executes* in one max-of-pair window instead of running
    sequentially, so it consumes a different random stream and strictly
    fewer rounds — this seed used to take 609 rounds and 3 sandwich
    retries)."""
    from repro.gossip.engine import get_default_engine, set_default_engine

    values = np.random.default_rng(42).permutation(512).astype(float)
    before = get_default_engine()
    set_default_engine("loop")
    try:
        result = exact_quantile(values, phi=0.7, rng=11, fidelity="simulated")
    finally:
        set_default_engine(before)
    assert result.value == 358.0
    assert result.rounds == 427
    assert result.iterations == 3
    assert result.retries == 0


def test_simulated_fidelity_engine_choice_does_not_change_the_answer():
    """Loop and vectorized token engines walk different random streams but
    must both return the exact quantile."""
    from repro.gossip.engine import get_default_engine, set_default_engine

    values = np.random.default_rng(3).permutation(1024).astype(float)
    truth = empirical_quantile(values, 0.4)
    before = get_default_engine()
    results = {}
    try:
        for engine in ("loop", "vectorized"):
            set_default_engine(engine)
            results[engine] = exact_quantile(
                values, phi=0.4, rng=19, fidelity="simulated"
            )
    finally:
        set_default_engine(before)
    assert results["loop"].value == truth
    assert results["vectorized"].value == truth
