"""Tests for extrema (min/max) spreading."""

import math

import numpy as np
import pytest

from repro.aggregates.extrema import ExtremaProtocol, spread_extrema
from repro.exceptions import ConfigurationError


def test_max_spreading_reaches_all_nodes():
    values = np.arange(1.0, 257.0)
    result = spread_extrema(values, mode="max", rng=1)
    assert result.converged
    assert np.all(result.values == 256.0)
    assert result.agreed_value == 256.0


def test_min_spreading_reaches_all_nodes():
    values = np.arange(1.0, 257.0)
    result = spread_extrema(values, mode="min", rng=2)
    assert result.converged
    assert np.all(result.values == 1.0)


def test_rounds_scale_logarithmically():
    small = spread_extrema(np.arange(64.0), mode="max", rng=3)
    large = spread_extrema(np.arange(4096.0), mode="max", rng=3)
    assert small.converged and large.converged
    # push-pull spreading needs O(log n) rounds; allow generous constants
    assert large.rounds <= 4 * math.log2(4096) + 12
    assert large.rounds <= small.rounds + 3 * (math.log2(4096) - math.log2(64)) + 6


def test_spreading_under_failures_converges_with_slowdown():
    values = np.arange(1.0, 257.0)
    clean = spread_extrema(values, mode="max", rng=4)
    faulty = spread_extrema(values, mode="max", rng=4, failure_model=0.5)
    assert faulty.converged
    assert faulty.rounds >= clean.rounds


def test_invalid_mode_and_values():
    with pytest.raises(ConfigurationError):
        ExtremaProtocol(np.arange(8.0), mode="median")
    with pytest.raises(ConfigurationError):
        ExtremaProtocol([1.0], mode="max")


def test_budget_exhaustion_reports_not_converged():
    values = np.arange(1.0, 513.0)
    result = spread_extrema(values, mode="max", rng=5, max_rounds=1)
    assert not result.converged
    assert result.rounds <= 2


def test_monotonicity_invariant():
    """A node's best-seen maximum never decreases across rounds."""
    values = np.arange(1.0, 65.0)
    protocol = ExtremaProtocol(values, mode="max", max_rounds=10, stop_when_converged=False)
    from repro.gossip.engine import run_protocol

    previous = np.asarray(protocol.outputs(), dtype=float)
    # run round by round by repeatedly calling the engine with max_rounds=1
    # equivalent: just run fully and check final >= initial
    run_protocol(protocol, rng=6, max_rounds=11, raise_on_budget=False)
    final = np.asarray(protocol.outputs(), dtype=float)
    assert np.all(final >= previous)
