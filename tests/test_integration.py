"""End-to-end integration tests across modules.

These tests exercise the same paths the examples and experiments use:
realistic workloads, composition of the core algorithms with the gossip
substrates, and cross-checks between the new algorithms and the baselines.
"""

import numpy as np
import pytest

from repro import (
    approximate_quantile,
    estimate_all_ranks,
    exact_quantile,
    robust_approximate_quantile,
)
from repro.baselines import (
    compacted_doubling_quantile,
    doubling_quantile,
    kempe_exact_quantile,
    sampling_quantile,
)
from repro.core.all_quantiles import true_self_quantiles
from repro.datasets import make_workload, sensor_temperature_field, zipf_values
from repro.utils.stats import empirical_quantile, rank_error


def test_sensor_network_scenario_end_to_end():
    """The paper's motivating use case: flag the hottest 10% of sensors."""
    readings = sensor_temperature_field(2048, hot_spot_fraction=0.05, rng=1)
    hot = approximate_quantile(readings, phi=0.9, eps=0.05, rng=2)
    assert rank_error(readings, hot.estimate, 0.9) <= 0.05
    flagged = readings >= hot.estimates
    # roughly 10% of sensors flag themselves (within the eps tolerance)
    assert 0.04 <= flagged.mean() <= 0.16


def test_all_algorithms_agree_on_the_same_input():
    values = make_workload("gaussian", 1024, rng=3, mean=50.0, std=10.0)
    phi, eps = 0.75, 0.1
    truth = empirical_quantile(values, phi)

    exact = exact_quantile(values, phi=phi, rng=4)
    kempe = kempe_exact_quantile(values, phi=phi, rng=5)
    approx = approximate_quantile(values, phi=phi, eps=eps, rng=6)
    sampled = sampling_quantile(values, phi=phi, eps=eps, rng=7, max_observers=32)
    doubled = doubling_quantile(values, phi=phi, eps=eps, rng=8)
    compacted = compacted_doubling_quantile(values, phi=phi, eps=eps, rng=9)

    assert exact.value == truth
    assert kempe.value == truth
    for estimate in (approx.estimate, sampled.estimate, doubled.estimate, compacted.estimate):
        assert rank_error(values, estimate, phi) <= eps + 0.05


def test_exact_needs_far_fewer_outer_iterations_than_kempe():
    """Shape check behind the Θ(log n) vs Θ(log² n) separation.

    Both algorithms pay Θ(log n) rounds per outer step (approximate
    quantiles / counting), so the separation comes from the number of outer
    steps: the tournament algorithm needs only a handful of
    restrict-and-duplicate iterations while randomized selection needs
    Θ(log n) pivot phases.  Iteration counts are far less noisy than raw
    round counts at simulation scale, so that is what we assert on.
    """
    large = 4096
    values = make_workload("distinct", large, rng=10)
    ours_iterations = np.mean(
        [exact_quantile(values, 0.5, rng=s).iterations for s in (11, 12, 13)]
    )
    kempe_phases = np.mean(
        [kempe_exact_quantile(values, 0.5, rng=s).phases for s in range(20, 26)]
    )
    assert ours_iterations <= 8
    assert kempe_phases >= 1.5 * ours_iterations
    # and the headline: both return the exact answer
    assert exact_quantile(values, 0.5, rng=30).value == empirical_quantile(values, 0.5)


def test_robust_and_plain_agree_without_failures():
    values = make_workload("distinct", 512, rng=13)
    plain = approximate_quantile(values, phi=0.5, eps=0.1, rng=14)
    robust = robust_approximate_quantile(values, phi=0.5, eps=0.1, failure_model=0.0, rng=14)
    assert rank_error(values, plain.estimate, 0.5) <= 0.1
    assert rank_error(values, robust.estimate, 0.5) <= 0.1


def test_self_rank_composes_with_quantile_queries():
    """Corollary 1.5 output is consistent with direct quantile queries."""
    values = zipf_values(512, exponent=1.8, rng=15)
    ranks = estimate_all_ranks(values, eps=0.1, rng=16)
    truth = true_self_quantiles(values)
    # nodes that believe they are in the top decile mostly are in the top quintile
    claimed_top = ranks.quantile_estimates >= 0.9
    if claimed_top.any():
        assert np.mean(truth[claimed_top] >= 0.8) > 0.8


def test_full_pipeline_under_failures():
    """Exact quantile with every substrate simulated and nodes failing."""
    values = make_workload("distinct", 256, rng=17)
    result = exact_quantile(
        values, phi=0.3, rng=18, fidelity="simulated", failure_model=0.15
    )
    assert result.value == empirical_quantile(values, 0.3)
    assert result.metrics.failed_node_rounds > 0


def test_metrics_round_totals_are_consistent():
    values = make_workload("distinct", 512, rng=19)
    result = approximate_quantile(values, phi=0.6, eps=0.1, rng=20)
    assert result.rounds == result.metrics.rounds
    assert result.metrics.messages > 0
    assert result.metrics.max_message_bits <= 200  # O(log n)-bit messages only
