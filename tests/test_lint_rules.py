"""Golden-fixture tests for every lint rule.

Each rule ships a ``tp_<rule>.py`` true-positive fixture (must make the
linter exit non-zero with a finding of exactly that rule) and an
``nm_<rule>.py`` near-miss fixture (skirts the violation but stays
clean).  The true positives are additionally driven through the real
``python -m repro.lint`` CLI so the non-zero exit code the CI gate
relies on is proven end to end, not just via the library API.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import lint_paths

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = REPO_ROOT / "tests" / "lint_fixtures" / "repro"

#: rule id -> (true-positive fixture, near-miss fixture), relative to FIXTURES.
RULE_FIXTURES = {
    "rng-discipline": ("core/tp_rng_unseeded.py", "core/nm_rng_seeded.py"),
    "private-stream": ("core/tp_private_stream.py", "core/nm_private_stream.py"),
    "thread-kwargs": ("core/tp_thread_kwargs.py", "core/nm_thread_kwargs.py"),
    "stable-sort": ("core/tp_stable_sort.py", "core/nm_stable_sort.py"),
    "shared-view-write": (
        "core/tp_shared_view_write.py",
        "core/nm_shared_view_write.py",
    ),
    "wallclock": ("core/tp_wallclock.py", "core/nm_wallclock.py"),
    "bare-suppression": (
        "core/tp_bare_suppression.py",
        "core/nm_bare_suppression.py",
    ),
    "async-private-stream": (
        "net/tp_async_private_stream.py",
        "net/nm_async_private_stream.py",
    ),
    "no-unawaited-send": (
        "net/tp_no_unawaited_send.py",
        "net/nm_no_unawaited_send.py",
    ),
    "no-blocking-in-loop": (
        "net/tp_no_blocking_in_loop.py",
        "net/nm_no_blocking_in_loop.py",
    ),
}


def _lint_env() -> dict:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else src + os.pathsep + existing
    return env


@pytest.mark.parametrize("rule", sorted(RULE_FIXTURES))
def test_true_positive_fixture_is_flagged(rule):
    path = FIXTURES / RULE_FIXTURES[rule][0]
    result = lint_paths([str(path)])
    assert result.exit_code != 0
    assert rule in {finding.rule for finding in result.findings}


@pytest.mark.parametrize("rule", sorted(RULE_FIXTURES))
def test_near_miss_fixture_is_clean(rule):
    path = FIXTURES / RULE_FIXTURES[rule][1]
    result = lint_paths([str(path)])
    assert result.exit_code == 0
    assert result.findings == []


@pytest.mark.parametrize("rule", sorted(RULE_FIXTURES))
def test_true_positive_fails_through_the_cli(rule):
    """The acceptance gate: each rule's fixture drives a non-zero CLI exit."""
    path = FIXTURES / RULE_FIXTURES[rule][0]
    proc = subprocess.run(
        [sys.executable, "-m", "repro.lint", str(path)],
        capture_output=True,
        text=True,
        env=_lint_env(),
        cwd=str(REPO_ROOT),
    )
    assert proc.returncode == 1, proc.stdout + proc.stderr
    assert rule in proc.stdout


def test_every_registered_rule_has_fixtures():
    from repro.lint import known_rule_ids

    assert set(known_rule_ids()) == set(RULE_FIXTURES)


def test_true_positive_flags_only_its_own_rule():
    """Fixtures are minimal: no true positive trips an unrelated rule.

    ``tp_bare_suppression`` is the deliberate exception — its unjustified
    suppression is *not honoured*, so the underlying stable-sort finding
    surfaces alongside the meta-rule's.
    """
    for rule, (tp, _) in RULE_FIXTURES.items():
        result = lint_paths([str(FIXTURES / tp)])
        expected = {rule}
        if rule == "bare-suppression":
            expected = {"bare-suppression", "stable-sort"}
        assert {finding.rule for finding in result.findings} == expected


def test_wallclock_rule_is_inert_inside_repro_obs():
    """Scoping near miss: time.time() inside repro.obs is the obs layer's job."""
    result = lint_paths([str(FIXTURES / "obs" / "nm_wallclock_scoped.py")])
    assert result.exit_code == 0


def test_wallclock_flags_loop_time_outside_transport():
    """The loop clock is a wall clock too: loop.time() in runner/protocol
    code is flagged by the wallclock rule (RULE_FIXTURES holds the rule's
    canonical time.time fixture; loop.time has its own scoped pair)."""
    result = lint_paths([str(FIXTURES / "net" / "tp_wallclock_loop_time.py")])
    assert result.exit_code != 0
    assert {finding.rule for finding in result.findings} == {"wallclock"}


def test_wallclock_allows_loop_time_inside_net_transport():
    """Containment: repro.net.transport is the one module that may read
    loop.time() — per-RPC latency is a transport property."""
    result = lint_paths([str(FIXTURES / "net" / "transport.py")])
    assert result.exit_code == 0
    assert result.findings == []


def test_justified_suppression_is_recorded_not_dropped():
    result = lint_paths([str(FIXTURES / "core" / "nm_bare_suppression.py")])
    assert result.exit_code == 0
    assert [finding.rule for finding in result.suppressed] == ["stable-sort"]
    assert result.suppressed[0].suppressed is True
    assert "justified suppression" in (result.suppressed[0].justification or "")


def test_unjustified_suppression_is_not_honoured():
    result = lint_paths([str(FIXTURES / "core" / "tp_bare_suppression.py")])
    rules = [finding.rule for finding in result.findings]
    # The stable-sort finding survives, the meta-rule fires twice (bare
    # suppression + unknown rule name), nothing lands in .suppressed.
    assert rules.count("stable-sort") == 1
    assert rules.count("bare-suppression") == 2
    assert result.suppressed == []
