"""Tests for the Theorem 1.3 lower-bound harness."""

import math

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.lowerbound.scenario import build_scenarios
from repro.lowerbound.spreading import (
    lower_bound_rounds,
    simulate_spreading,
)


def test_scenarios_are_shifted_copies():
    scenario = build_scenarios(1000, 0.05)
    assert scenario.shift == 100
    assert np.array_equal(scenario.values_b, scenario.values_a + 100)
    assert scenario.distinguishing_nodes == 200


def test_distinguishing_masks_have_expected_size():
    scenario = build_scenarios(1000, 0.05)
    mask_a = scenario.distinguishing_mask("a")
    mask_b = scenario.distinguishing_mask("b")
    # scenario A: values <= 1 + shift (=101); scenario B: values > n (=1000)
    assert mask_a.sum() == 101
    assert mask_b.sum() == 101
    with pytest.raises(ConfigurationError):
        scenario.distinguishing_mask("c")


def test_scenario_quantiles_differ_by_at_least_eps_n():
    scenario = build_scenarios(1000, 0.05)
    phi = 0.5
    q_a = np.sort(scenario.values_a)[499]
    q_b = np.sort(scenario.values_b)[499]
    assert q_b - q_a >= 0.05 * 1000


def test_scenario_validation():
    with pytest.raises(ConfigurationError):
        build_scenarios(8, 0.05)
    with pytest.raises(ConfigurationError):
        build_scenarios(1000, 0.2)
    with pytest.raises(ConfigurationError):
        build_scenarios(1000, 1e-6)


def test_lower_bound_rounds_monotone():
    assert lower_bound_rounds(10**6, 0.1) >= lower_bound_rounds(100, 0.1)
    assert lower_bound_rounds(1000, 0.01) > lower_bound_rounds(1000, 0.1)
    with pytest.raises(ConfigurationError):
        lower_bound_rounds(2, 0.1)


def test_spreading_needs_at_least_the_theorem_bound():
    """The measured spreading time never beats the Theorem 1.3 floor."""
    for n, eps in ((4096, 0.1), (16384, 0.05), (4096, 0.02)):
        result = simulate_spreading(n, eps, rng=1)
        assert result.all_good
        assert result.rounds_to_all_good >= math.floor(lower_bound_rounds(n, eps)) - 1
        assert result.initial_good <= 4 * eps * n


def test_spreading_rounds_grow_as_eps_shrinks():
    coarse = simulate_spreading(8192, 0.1, rng=2)
    fine = simulate_spreading(8192, 0.005, rng=2)
    assert fine.rounds_to_all_good > coarse.rounds_to_all_good


def test_good_history_is_monotone():
    result = simulate_spreading(2048, 0.05, rng=3)
    history = result.good_history
    assert all(b >= a for a, b in zip(history, history[1:]))
    assert history[-1] == 2048


def test_spreading_validation():
    with pytest.raises(ConfigurationError):
        simulate_spreading(8, 0.1)
    with pytest.raises(ConfigurationError):
        simulate_spreading(1024, 0.6)
