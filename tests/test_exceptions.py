"""Tests for the exception hierarchy."""

import pytest

from repro.exceptions import (
    ConfigurationError,
    ConvergenceError,
    MessageSizeExceeded,
    ProtocolError,
    ReproError,
)


def test_all_errors_derive_from_repro_error():
    for exc_type in (ConfigurationError, ProtocolError, ConvergenceError, MessageSizeExceeded):
        assert issubclass(exc_type, ReproError)


def test_message_size_exceeded_carries_fields():
    exc = MessageSizeExceeded(used_bits=128, budget_bits=64)
    assert exc.used_bits == 128
    assert exc.budget_bits == 64
    assert "128" in str(exc)
    assert isinstance(exc, ProtocolError)


def test_repro_errors_are_catchable_as_base():
    with pytest.raises(ReproError):
        raise ConfigurationError("bad config")
