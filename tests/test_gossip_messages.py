"""Tests for repro.gossip.messages."""

import pytest

from repro.gossip.messages import (
    BITS_HEADER,
    BITS_PER_VALUE,
    Message,
    buffer_bits,
    id_bits,
    payload_bits,
    theoretical_message_bits,
    tournament_message_bits,
)


def test_id_bits():
    assert id_bits(2) == 1
    assert id_bits(1024) == 10
    assert id_bits(1025) == 11
    with pytest.raises(ValueError):
        id_bits(0)


def test_payload_bits_scalars_and_composites():
    assert payload_bits(None) == BITS_HEADER
    assert payload_bits(True) == BITS_HEADER + 1
    assert payload_bits(255) == BITS_HEADER + 8
    assert payload_bits(1.5) == BITS_HEADER + BITS_PER_VALUE
    assert payload_bits((1.0, 2.0)) == BITS_HEADER + 2 * BITS_PER_VALUE
    assert payload_bits([1.0, 2.0, 3.0]) == BITS_HEADER + 3 * BITS_PER_VALUE
    assert payload_bits("ab") == BITS_HEADER + 16
    assert payload_bits({1: 2.0}) > BITS_HEADER


def test_payload_bits_includes_sender_id_when_n_given():
    assert payload_bits(1.0, n=1024) == BITS_HEADER + 10 + BITS_PER_VALUE


def test_message_validation():
    message = Message(sender=0, receiver=1, payload=1.0, kind="push", round_index=0, bits=80)
    assert message.bits == 80
    with pytest.raises(ValueError):
        Message(sender=0, receiver=1, payload=1.0, kind="teleport", round_index=0)
    with pytest.raises(ValueError):
        Message(sender=0, receiver=1, payload=1.0, kind="push", round_index=-1)


def test_buffer_bits_scales_linearly():
    assert buffer_bits(0) == BITS_HEADER
    assert buffer_bits(10) - buffer_bits(0) == 10 * BITS_PER_VALUE
    with pytest.raises(ValueError):
        buffer_bits(-1)


def test_tournament_message_bits_is_small_and_logarithmic():
    small = tournament_message_bits(256)
    large = tournament_message_bits(65536)
    assert small < large < 2 * small  # grows only with log n


def test_theoretical_message_bits_ordering():
    n, eps = 4096, 0.05
    tournament, _ = theoretical_message_bits("tournament", n, eps)
    compacted, _ = theoretical_message_bits("compacted", n, eps)
    doubling, _ = theoretical_message_bits("doubling", n, eps)
    assert tournament < compacted < doubling


def test_theoretical_message_bits_validation():
    with pytest.raises(ValueError):
        theoretical_message_bits("unknown", 1024, 0.1)
    with pytest.raises(ValueError):
        theoretical_message_bits("doubling", 1, 0.1)
    with pytest.raises(ValueError):
        theoretical_message_bits("doubling", 1024, 2.0)
