"""The simulated ≡ deployed equivalence suite.

The ISSUE-10 win condition: the *same* protocol subclasses, unmodified,
run on the loop engine, the vectorized engine, and the live asyncio
backend with identical round counts, identical per-node outputs, and
identical :class:`NetworkMetrics` message/bit totals (faults disabled).
The equivalence is by construction — the asyncio runner consumes the
engines' shared round prologue — and these tests are the pin that keeps
it that way.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.aggregates.extrema import ExtremaProtocol
from repro.aggregates.push_sum import PushSumProtocol
from repro.exceptions import ConfigurationError, ProtocolError
from repro.gossip.engine import (
    ENGINE_CHOICES,
    get_default_engine,
    run_protocol,
    set_default_engine,
)
from repro.gossip.metrics import NetworkMetrics
from repro.gossip.protocol import Action, GossipProtocol
from repro.net import arun_protocol, run_protocol_asyncio


def _values(n: int, seed: int = 0) -> np.ndarray:
    return np.random.default_rng(seed).normal(size=n)


def _run_engine(engine, make_protocol, seed, **kwargs):
    metrics = NetworkMetrics()
    result = run_protocol(
        make_protocol(), rng=seed, metrics=metrics, engine=engine, **kwargs
    )
    return result, metrics


def _assert_triplet_equal(make_protocol, seed, **kwargs):
    """loop ≡ vectorized ≡ asyncio: rounds, outputs, message/bit totals."""
    results = {}
    for engine in ("loop", "vectorized", "asyncio"):
        results[engine] = _run_engine(engine, make_protocol, seed, **kwargs)
    loop_result, loop_metrics = results["loop"]
    for engine in ("vectorized", "asyncio"):
        result, metrics = results[engine]
        assert result.rounds == loop_result.rounds, engine
        assert metrics.summary() == loop_metrics.summary(), engine
        np.testing.assert_array_equal(
            result.outputs_array, loop_result.outputs_array, err_msg=engine
        )
    return results


@pytest.mark.parametrize("n", [8, 32])
def test_push_sum_pins_across_all_three_engines(n):
    values = _values(n, seed=1)
    results = _assert_triplet_equal(
        lambda: PushSumProtocol(values, rounds=20), seed=5
    )
    result, metrics = results["asyncio"]
    assert result.rounds == 20
    # The loop engine's accounting formulas, applied literally: one push
    # per live node per round.
    assert metrics.summary()["messages"] == n * 20
    assert result.extra["transport"] == "ChannelTransport"
    assert result.extra["lost_messages"] == 0


@pytest.mark.parametrize("n", [8, 32])
def test_extrema_pins_across_all_three_engines(n):
    values = _values(n, seed=2)
    results = _assert_triplet_equal(lambda: ExtremaProtocol(values), seed=9)
    result, _ = results["asyncio"]
    assert np.allclose(result.outputs_array, values.max())


def test_push_sum_converges_to_the_mean_over_the_network():
    values = _values(16, seed=3)
    result = run_protocol_asyncio(PushSumProtocol(values), rng=4)
    np.testing.assert_allclose(
        result.outputs_array, values.mean(), rtol=1e-4
    )


def test_failure_model_parity_loop_vs_asyncio():
    """The failure mask comes from the shared prologue, so a lossy run
    (mu=0.2) is *also* bit-identical between simulated and deployed."""
    values = _values(16, seed=4)
    loop_result, loop_metrics = _run_engine(
        "loop", lambda: PushSumProtocol(values, rounds=15), 7,
        failure_model=0.2,
    )
    net_result, net_metrics = _run_engine(
        "asyncio", lambda: PushSumProtocol(values, rounds=15), 7,
        failure_model=0.2,
    )
    assert net_result.rounds == loop_result.rounds
    assert net_metrics.summary() == loop_metrics.summary()
    assert net_metrics.summary()["failed_node_rounds"] > 0
    np.testing.assert_array_equal(
        net_result.outputs_array, loop_result.outputs_array
    )


def test_tcp_transport_matches_the_simulated_engines():
    """One pin over real loopback sockets: the transport is swappable
    without touching the accounting."""
    values = _values(8, seed=5)
    loop_result, loop_metrics = _run_engine(
        "loop", lambda: ExtremaProtocol(values), 11
    )
    metrics = NetworkMetrics()
    result = run_protocol_asyncio(
        ExtremaProtocol(values), rng=11, metrics=metrics, transport="tcp"
    )
    assert result.extra["transport"] == "TcpTransport"
    assert result.rounds == loop_result.rounds
    assert metrics.summary() == loop_metrics.summary()
    np.testing.assert_array_equal(
        result.outputs_array, loop_result.outputs_array
    )


# -- engine dispatch -------------------------------------------------------


def test_asyncio_is_a_first_class_engine_choice():
    assert "asyncio" in ENGINE_CHOICES


def test_auto_never_selects_the_asyncio_engine():
    values = _values(8)
    metrics = NetworkMetrics()
    result = run_protocol(
        PushSumProtocol(values, rounds=3), rng=0, metrics=metrics,
        engine="auto",
    )
    # An asyncio run stamps its transport into result.extra; auto must not.
    assert "transport" not in result.extra


def test_asyncio_cannot_become_the_ambient_default_engine():
    previous = get_default_engine()
    try:
        with pytest.raises(ConfigurationError):
            set_default_engine("asyncio")
        assert get_default_engine() == previous
    finally:
        set_default_engine(previous)


def test_non_batch_protocols_are_rejected_with_a_clear_error():
    class OrderSensitive(GossipProtocol):
        name = "order-sensitive"

        def __init__(self):
            super().__init__(4)

        def act(self, node, round_index):
            return Action("idle")

        def on_receive(self, node, payload, sender, kind, round_index):
            pass

        def is_done(self, round_index):
            return round_index >= 1

        def outputs(self):
            return [0.0] * self.n

    with pytest.raises(ProtocolError, match="delivery-order"):
        run_protocol_asyncio(OrderSensitive(), rng=0)


def test_sync_entry_point_refuses_a_running_loop():
    async def go():
        with pytest.raises(ConfigurationError, match="running event loop"):
            run_protocol_asyncio(PushSumProtocol(_values(4), rounds=2), rng=0)

    asyncio.run(go())


def test_run_timeout_must_be_positive():
    with pytest.raises(ConfigurationError):
        run_protocol_asyncio(
            PushSumProtocol(_values(4), rounds=2), rng=0, run_timeout_s=0
        )


def test_arun_protocol_composes_inside_an_existing_loop():
    """The async body is the composition surface: callers that already own
    a loop (the CLI's --prom-port path, the live-scrape test) await it."""
    values = _values(8, seed=6)

    async def go():
        return await asyncio.wait_for(
            arun_protocol(PushSumProtocol(values, rounds=5), rng=1), 30.0
        )

    result = asyncio.run(go())
    assert result.rounds == 5
