"""Tests for the topology & peer-sampling subsystem.

Covers the generator invariants (determinism under a fixed seed, degree
distributions, connectivity), the CSR representation, the samplers
(neighbor-respecting draws, round-robin coverage, bit-identity of the
uniform default), and the diagnostics.
"""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.gossip.engine import draw_round_partners, run_protocol
from repro.gossip.network import GossipNetwork
from repro.topology import (
    NeighborSampler,
    RoundRobinSampler,
    Topology,
    UniformSampler,
    build_topology,
    complete,
    degree_stats,
    erdos_renyi,
    estimate_spectral_gap,
    is_connected,
    preferential_attachment,
    random_regular,
    resolve_peer_sampler,
    ring,
    torus,
    watts_strogatz,
    TOPOLOGY_CHOICES,
)
from repro.utils.rand import RandomSource


# -- generators --------------------------------------------------------------------


@pytest.mark.parametrize("name", TOPOLOGY_CHOICES)
def test_generators_are_deterministic_under_a_fixed_seed(name):
    a = build_topology(name, 200, degree=6, rewire_p=0.2, rng=42)
    b = build_topology(name, 200, degree=6, rewire_p=0.2, rng=42)
    assert a.n == b.n == 200
    if a.is_complete:
        assert b.is_complete
    else:
        assert np.array_equal(a.indptr, b.indptr)
        assert np.array_equal(a.indices, b.indices)


@pytest.mark.parametrize("name", TOPOLOGY_CHOICES)
def test_adjacency_is_symmetric_and_simple(name):
    topo = build_topology(name, 150, degree=6, rewire_p=0.2, rng=3)
    if topo.is_complete:
        return
    arcs = set()
    for v in range(topo.n):
        neighbors = topo.neighbors(v)
        assert np.all(np.diff(neighbors) > 0)  # sorted, no parallel edges
        assert v not in neighbors  # no self-loops
        arcs.update((v, int(u)) for u in neighbors)
    for v, u in arcs:
        assert (u, v) in arcs  # undirected


def test_degree_invariants():
    assert set(ring(100, k=2).degrees) == {4}
    assert set(torus(144).degrees) == {4}
    assert set(random_regular(200, 6, rng=1).degrees) == {6}
    ws = watts_strogatz(400, 8, 0.1, rng=2)
    assert abs(degree_stats(ws)["mean_degree"] - 8.0) < 0.2
    er = erdos_renyi(400, 8 / 399, rng=3)
    assert abs(degree_stats(er)["mean_degree"] - 8.0) < 1.5
    assert er.min_degree >= 1  # conditioned on min degree 1
    ba = preferential_attachment(300, m=3, rng=4)
    assert ba.min_degree >= 1
    # scale-free: the hub is much larger than the typical degree
    assert degree_stats(ba)["max_degree"] > 4 * degree_stats(ba)["mean_degree"]


def test_complete_topology_is_symbolic():
    topo = complete(10_000)
    assert topo.is_complete
    assert topo.num_edges == 10_000 * 9_999 // 2
    assert set(topo.degrees) == {9_999}
    assert list(topo.neighbors(3)[:4]) == [0, 1, 2, 4]


@pytest.mark.parametrize(
    "factory",
    [
        lambda: ring(100, 3),
        lambda: torus(100),
        lambda: random_regular(100, 4, rng=0),
        lambda: watts_strogatz(100, 6, 0.1, rng=0),
        lambda: preferential_attachment(100, 3, rng=0),
        lambda: complete(100),
    ],
    ids=["ring", "torus", "regular", "small-world", "pref-attach", "complete"],
)
def test_families_are_connected(factory):
    assert is_connected(factory())


def test_disconnected_graph_is_detected():
    # two disjoint triangles
    u = np.array([0, 1, 2, 3, 4, 5])
    v = np.array([1, 2, 0, 4, 5, 3])
    from repro.topology.graphs import _csr_from_edges

    topo = _csr_from_edges("pair-of-triangles", 6, u, v, {})
    assert not is_connected(topo)


def test_generator_validation():
    with pytest.raises(ConfigurationError):
        ring(6, k=3)  # 2k >= n
    with pytest.raises(ConfigurationError):
        random_regular(5, 3)  # n*d odd
    with pytest.raises(ConfigurationError):
        watts_strogatz(50, 5)  # odd k
    with pytest.raises(ConfigurationError):
        erdos_renyi(50, 1.5)
    with pytest.raises(ConfigurationError):
        build_topology("moebius", 50)
    with pytest.raises(ConfigurationError):
        torus(13)  # prime size has no 2-d factorisation


# -- spectral diagnostics ----------------------------------------------------------


def test_spectral_gap_orders_the_families():
    n = 400
    gap_ring = estimate_spectral_gap(ring(n, 2), rng=0)
    gap_torus = estimate_spectral_gap(torus(n), rng=0)
    gap_expander = estimate_spectral_gap(random_regular(n, 8, rng=0), rng=0)
    gap_complete = estimate_spectral_gap(complete(n))
    assert gap_ring < gap_torus < gap_expander < gap_complete
    # the expander's gap is a constant, the ring's vanishes
    assert gap_expander > 0.1
    assert gap_ring < 0.01


# -- samplers ----------------------------------------------------------------------


def test_neighbor_sampler_only_draws_neighbors():
    topo = watts_strogatz(80, 6, 0.3, rng=5)
    sampler = NeighborSampler(topo)
    rng = RandomSource(0)
    partners = sampler.draw_round(rng)
    block = sampler.draw_block(rng, 5)
    for v in range(topo.n):
        neighbors = set(int(u) for u in topo.neighbors(v))
        assert int(partners[v]) in neighbors
        assert set(int(u) for u in block[v]) <= neighbors


def test_round_robin_contacts_every_neighbor_once_per_cycle():
    topo = ring(60, 3)  # degree 6 everywhere
    sampler = RoundRobinSampler(topo)
    rng = RandomSource(1)
    cycle1 = np.stack([sampler.draw_round(rng) for _ in range(6)], axis=1)
    cycle2 = np.stack([sampler.draw_round(rng) for _ in range(6)], axis=1)
    for v in range(topo.n):
        expected = sorted(int(u) for u in topo.neighbors(v))
        assert sorted(int(u) for u in cycle1[v]) == expected
        assert sorted(int(u) for u in cycle2[v]) == expected
    # cycles are reshuffled, not replayed
    assert not np.array_equal(cycle1, cycle2)


def test_uniform_sampler_matches_the_historical_engine_stream():
    ours = UniformSampler(97).draw_round(RandomSource(13))
    theirs = draw_round_partners(RandomSource(13), 97)
    assert np.array_equal(ours, theirs)


def test_resolve_peer_sampler_routes_complete_to_uniform():
    assert isinstance(resolve_peer_sampler(None, n=10), UniformSampler)
    assert isinstance(resolve_peer_sampler(complete(10)), UniformSampler)
    assert isinstance(resolve_peer_sampler(ring(10, 2)), NeighborSampler)
    assert isinstance(
        resolve_peer_sampler(ring(10, 2), sampling="round-robin"),
        RoundRobinSampler,
    )
    with pytest.raises(ConfigurationError):
        resolve_peer_sampler(ring(10, 2), sampling="telepathy")
    with pytest.raises(ConfigurationError):
        resolve_peer_sampler(ring(10, 2), n=11)  # size mismatch
    # round-robin needs a sparse topology: no silent uniform fallback
    with pytest.raises(ConfigurationError):
        resolve_peer_sampler(None, sampling="round-robin", n=10)
    with pytest.raises(ConfigurationError):
        resolve_peer_sampler(complete(10), sampling="round-robin")


def test_sampler_rejects_isolated_nodes():
    from repro.topology.graphs import _csr_from_edges

    u = np.array([0, 1])
    v = np.array([1, 2])
    lonely = _csr_from_edges("path-plus-louner", 4, u, v, {})
    with pytest.raises(ConfigurationError):
        NeighborSampler(lonely)


# -- integration: default paths are bit-identical ----------------------------------


def test_engine_default_and_complete_topology_are_bit_identical():
    from repro.aggregates.push_sum import PushSumProtocol

    values = RandomSource(3).random(64)
    base = run_protocol(PushSumProtocol(values, rounds=20), rng=9)
    topo = run_protocol(
        PushSumProtocol(values, rounds=20), rng=9, topology=complete(64)
    )
    assert base.outputs == topo.outputs
    assert base.metrics.summary() == topo.metrics.summary()


def test_network_default_and_complete_topology_are_bit_identical():
    values = RandomSource(4).random(50)
    a = GossipNetwork(values, rng=8)
    b = GossipNetwork(values, rng=8, topology=complete(50))
    batch_a = a.pull(3)
    batch_b = b.pull(3)
    assert np.array_equal(batch_a.partners, batch_b.partners)
    assert np.array_equal(batch_a.values, batch_b.values)


def test_network_pulls_respect_the_topology():
    topo = torus(64)
    values = RandomSource(5).random(64)
    network = GossipNetwork(values, rng=2, topology=topo)
    batch = network.pull(4)
    for v in range(64):
        neighbors = set(int(u) for u in topo.neighbors(v))
        assert set(int(u) for u in batch.partners[v]) <= neighbors
    assert network.topology is topo


def test_approx_quantile_rejects_topology_with_prebuilt_network():
    from repro.core.approx_quantile import approximate_quantile

    values = RandomSource(6).random(64)
    network = GossipNetwork(values, rng=1)
    with pytest.raises(ConfigurationError):
        approximate_quantile(network=network, topology=ring(64, 2))
    with pytest.raises(ConfigurationError):
        approximate_quantile(network=network, peer_sampling="round-robin")


def test_robustness_reference_stream_is_independent_of_trials():
    """The mu=0 slowdown must compare two independent runs, not a run
    against a replay of itself (regression for the seed-branch collision)."""
    from repro.experiments.robustness import run as run_rob

    rows = run_rob(sizes=(256,), mus=(0.0,), trials=1, seed=4)
    # identical streams would make the trial reproduce the reference
    # exactly: same values, same rounds, zero error on both sides.
    row = rows[0]
    assert row["rounds"] != row["failure_free_rounds"] or row["mean_error"] > 0


def test_topology_validation():
    with pytest.raises(ConfigurationError):
        Topology(name="bad", n=1, indptr=None, indices=None)
    with pytest.raises(ConfigurationError):
        Topology(
            name="bad", n=3,
            indptr=np.array([0, 1]), indices=np.array([1]),
        )
