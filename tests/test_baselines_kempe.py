"""Tests for the Kempe et al. exact-quantile baseline."""

import math

import numpy as np
import pytest

from repro.baselines.kempe_quantile import kempe_exact_quantile
from repro.datasets.generators import distinct_uniform
from repro.exceptions import ConfigurationError
from repro.utils.stats import empirical_quantile


def test_returns_exact_quantile(medium_values):
    for seed, phi in enumerate((0.1, 0.5, 0.9)):
        result = kempe_exact_quantile(medium_values, phi=phi, rng=seed)
        assert result.value == empirical_quantile(medium_values, phi)


def test_simulated_fidelity_also_exact(small_values):
    result = kempe_exact_quantile(small_values, phi=0.5, rng=1, fidelity="simulated")
    assert result.value == empirical_quantile(small_values, 0.5)


def test_phases_logarithmic_in_n():
    values = distinct_uniform(4096, rng=2)
    result = kempe_exact_quantile(values, phi=0.5, rng=3)
    # randomized selection halves the candidates per phase in expectation
    assert result.phases <= 6 * math.log2(4096)
    assert result.phases >= 3


def test_rounds_scale_like_log_squared():
    small_n, large_n = 256, 4096
    small = kempe_exact_quantile(distinct_uniform(small_n, rng=4), phi=0.5, rng=5)
    large = kempe_exact_quantile(distinct_uniform(large_n, rng=4), phi=0.5, rng=5)
    # normalised by log^2 n the cost should stay within a small constant band
    ratio_small = small.rounds / math.log2(small_n) ** 2
    ratio_large = large.rounds / math.log2(large_n) ** 2
    assert 0.2 < ratio_large / ratio_small < 5.0
    assert large.rounds > small.rounds


def test_candidates_shrink_monotonically(medium_values):
    result = kempe_exact_quantile(medium_values, phi=0.3, rng=6)
    sizes = [phase.candidates_after for phase in result.history]
    assert all(b <= a for a, b in zip(sizes, sizes[1:])) or sizes[-1] <= sizes[0]


def test_extreme_phis(small_values):
    assert kempe_exact_quantile(small_values, phi=0.0, rng=7).value == small_values.min()
    assert kempe_exact_quantile(small_values, phi=1.0, rng=8).value == small_values.max()


def test_validation():
    with pytest.raises(ConfigurationError):
        kempe_exact_quantile([1.0], phi=0.5)
    with pytest.raises(ConfigurationError):
        kempe_exact_quantile([1.0, 2.0], phi=1.5)
    with pytest.raises(ConfigurationError):
        kempe_exact_quantile([1.0, 2.0], phi=0.5, fidelity="other")
