"""Tests for Algorithm 1 (2-TOURNAMENT)."""

import numpy as np
import pytest

from repro.core.schedules import two_tournament_schedule
from repro.core.two_tournament import band_thresholds, measure_band, run_two_tournament
from repro.datasets.generators import distinct_uniform
from repro.gossip.network import GossipNetwork


def test_band_thresholds_and_measure_band():
    values = np.arange(1.0, 101.0)
    lo, hi = band_thresholds(values, phi=0.5, eps=0.1)
    assert lo == 40.0
    assert hi == 60.0
    low, band, high = measure_band(values, lo, hi)
    assert low == pytest.approx(0.39)
    assert high == pytest.approx(0.40)
    assert band == pytest.approx(0.21)


def test_phase_shifts_band_to_the_median(medium_values):
    """After Phase I the above-band mass sits near T = 1/2 - eps (Lemma 2.5/2.6)."""
    phi, eps = 0.25, 0.1
    network = GossipNetwork(medium_values, rng=1, keep_history=False)
    result = run_two_tournament(network, phi=phi, eps=eps, track_band=True)
    assert result.iterations > 0
    final = result.stats[-1]
    # |H_t|/n should be within eps/2 of T = 1/2 - eps (Lemma 2.6)
    assert abs(final.high_fraction - (0.5 - eps)) < eps
    # the band itself must not shrink below its initial 2*eps mass (Lemma 2.10)
    assert final.band_fraction > 1.5 * eps


def test_band_mass_never_collapses(medium_values):
    phi, eps = 0.7, 0.1
    network = GossipNetwork(medium_values, rng=2, keep_history=False)
    result = run_two_tournament(network, phi=phi, eps=eps, track_band=True)
    for stat in result.stats:
        assert stat.band_fraction > eps


def test_round_accounting_matches_schedule(medium_values):
    phi, eps = 0.25, 0.1
    schedule = two_tournament_schedule(phi, eps)
    network = GossipNetwork(medium_values, rng=3, keep_history=False)
    result = run_two_tournament(network, phi=phi, eps=eps, schedule=schedule)
    assert result.rounds == schedule.rounds
    assert network.rounds == schedule.rounds


def test_values_stay_within_original_support(medium_values):
    network = GossipNetwork(medium_values, rng=4, keep_history=False)
    result = run_two_tournament(network, phi=0.3, eps=0.1)
    assert set(np.unique(result.final_values)).issubset(set(medium_values.tolist()))


def test_empty_schedule_leaves_values_untouched(small_values):
    network = GossipNetwork(small_values, rng=5, keep_history=False)
    result = run_two_tournament(network, phi=0.5, eps=0.1)
    assert result.iterations == 0
    assert np.array_equal(result.final_values, small_values)


def test_trajectory_tracks_schedule(medium_values):
    """Measured heavy-side fractions stay close to the deterministic h_i."""
    phi, eps = 0.2, 0.1
    schedule = two_tournament_schedule(phi, eps)
    network = GossipNetwork(medium_values, rng=6, keep_history=False)
    result = run_two_tournament(network, phi=phi, eps=eps, schedule=schedule, track_band=True)
    for stat in result.stats[:-1]:
        assert abs(stat.high_fraction - stat.predicted) < 0.08


def test_direction_max_for_high_phi(medium_values):
    phi, eps = 0.85, 0.05
    network = GossipNetwork(medium_values, rng=7, keep_history=False)
    result = run_two_tournament(network, phi=phi, eps=eps, track_band=True)
    final = result.stats[-1]
    # for phi > 1/2 the *low* side is driven to T
    assert abs(final.low_fraction - (0.5 - eps)) < eps
