"""Tests for gossip counting / rank computation."""

import numpy as np
import pytest

from repro.aggregates.counting import count_leq, rank_of_min
from repro.exceptions import ConfigurationError


def test_count_leq_exact_on_clean_run():
    values = np.arange(1.0, 129.0)
    result = count_leq(values, threshold=37.0, rng=1)
    assert result.count == 37
    assert result.exact


def test_count_leq_zero_and_full():
    values = np.arange(1.0, 65.0)
    assert count_leq(values, threshold=0.0, rng=2).count == 0
    assert count_leq(values, threshold=100.0, rng=3).count == 64


def test_count_estimates_agree_across_nodes():
    values = np.arange(1.0, 129.0)
    result = count_leq(values, threshold=64.0, rng=4)
    rounded = np.rint(result.estimates)
    assert np.all(rounded == 64)


def test_rank_of_min_matches_count_leq():
    values = np.array([5.0, 1.0, 9.0, 3.0, 7.0, 2.0, 8.0, 4.0])
    result = rank_of_min(values, minimum=3.0, rng=5)
    assert result.count == 3


def test_counting_under_failures_still_close():
    values = np.arange(1.0, 257.0)
    result = count_leq(values, threshold=128.0, rng=6, failure_model=0.2)
    assert abs(result.count - 128) <= 2


def test_counting_rounds_logarithmic():
    values = np.arange(1.0, 257.0)
    result = count_leq(values, threshold=100.0, rng=7)
    assert result.rounds < 120  # O(log n) with moderate constants


def test_invalid_inputs():
    with pytest.raises(ConfigurationError):
        count_leq([1.0], threshold=0.5)
