"""Tests for repro.gossip.metrics."""

import pytest

from repro.gossip.metrics import NetworkMetrics, RoundRecord, total_rounds


def test_begin_round_increments_round_count():
    metrics = NetworkMetrics()
    metrics.begin_round("phase-a")
    metrics.begin_round("phase-a")
    metrics.begin_round("phase-b")
    assert metrics.rounds == 3
    assert metrics.rounds_by_label() == {"phase-a": 2, "phase-b": 1}


def test_record_messages_accumulates_bits_and_max():
    metrics = NetworkMetrics()
    record = metrics.begin_round()
    metrics.record_messages(10, 64, record)
    metrics.record_messages(1, 256, record)
    assert metrics.messages == 11
    assert metrics.total_bits == 10 * 64 + 256
    assert metrics.max_message_bits == 256
    assert record.messages == 11
    assert record.max_message_bits == 256


def test_record_messages_validation():
    metrics = NetworkMetrics()
    metrics.begin_round()
    with pytest.raises(ValueError):
        metrics.record_messages(-1, 10)
    with pytest.raises(ValueError):
        metrics.record_messages(1, -10)


def test_record_failures():
    metrics = NetworkMetrics()
    record = metrics.begin_round()
    metrics.record_failures(3, record)
    assert metrics.failed_node_rounds == 3
    assert record.failed_nodes == 3
    with pytest.raises(ValueError):
        metrics.record_failures(-1)


def test_charge_rounds_counts_without_messages():
    metrics = NetworkMetrics()
    metrics.charge_rounds(5, label="charged")
    assert metrics.rounds == 5
    assert metrics.messages == 0
    assert metrics.rounds_by_label() == {"charged": 5}


def test_merge_offsets_history_and_sums_counts():
    a = NetworkMetrics()
    a.begin_round("x")
    a.record_messages(2, 10)
    b = NetworkMetrics()
    b.begin_round("y")
    b.record_messages(3, 20)
    a.merge(b)
    assert a.rounds == 2
    assert a.messages == 5
    assert a.total_bits == 2 * 10 + 3 * 20
    assert a.history[1].round_index == 1
    assert a.history[1].label == "y"


def test_summary_keys():
    metrics = NetworkMetrics()
    metrics.begin_round()
    metrics.record_messages(1, 8)
    summary = metrics.summary()
    assert set(summary) == {
        "rounds",
        "messages",
        "total_bits",
        "max_message_bits",
        "failed_node_rounds",
        "queries",
        "query_bits",
    }


def test_no_history_mode():
    metrics = NetworkMetrics(keep_history=False)
    metrics.begin_round()
    metrics.begin_round()
    assert metrics.rounds == 2
    assert metrics.history == []


def test_total_rounds_helper():
    a, b = NetworkMetrics(), NetworkMetrics()
    a.charge_rounds(2)
    b.charge_rounds(3)
    assert total_rounds([a, b]) == 5


def test_round_record_merge_message():
    record = RoundRecord(round_index=0)
    record.merge_message(100)
    record.merge_message(50)
    assert record.messages == 2
    assert record.bits == 150
    assert record.max_message_bits == 100


def test_record_query_charges_bits_not_rounds():
    metrics = NetworkMetrics()
    metrics.record_query(96)
    metrics.record_query(96, count=4)
    assert metrics.queries == 5
    assert metrics.messages == 5
    assert metrics.total_bits == 5 * 96
    assert metrics.max_message_bits == 96
    assert metrics.rounds == 0
    # the summary breaks the query cost out instead of silently folding it
    # into messages / total_bits only
    summary = metrics.summary()
    assert summary["queries"] == 5
    assert summary["query_bits"] == 5 * 96
    assert set(summary) == {
        "rounds",
        "messages",
        "total_bits",
        "max_message_bits",
        "failed_node_rounds",
        "queries",
        "query_bits",
    }


def test_record_query_validation():
    metrics = NetworkMetrics()
    with pytest.raises(ValueError):
        metrics.record_query(-1)
    with pytest.raises(ValueError):
        metrics.record_query(8, count=-1)


def test_merge_folds_query_counts():
    a, b = NetworkMetrics(), NetworkMetrics()
    a.record_query(64, count=2)
    b.record_query(64, count=3)
    a.merge(b)
    assert a.queries == 5
    assert a.messages == 5
    assert a.query_bits == 5 * 64


def test_counters_tuple_tracks_every_summed_counter():
    metrics = NetworkMetrics()
    metrics.begin_round()
    metrics.record_messages(2, 10)
    metrics.record_failures(3)
    metrics.record_query(64, count=4)
    assert metrics.counters() == (1, 6, 2 * 10 + 4 * 64, 4, 4 * 64, 3)


def test_merge_lands_inside_an_open_span_snapshot():
    """A span over a merge() sees the folded counters as its deltas."""
    from repro.obs.tracer import Tracer

    target = NetworkMetrics()
    target.charge_rounds(2)
    other = NetworkMetrics()
    other.begin_round()
    other.record_messages(5, 12)
    other.record_failures(2)
    other.record_query(64)

    tracer = Tracer()
    with tracer.span("merge_window", target):
        target.merge(other)
    span = tracer.spans[0]
    assert span.rounds == other.rounds
    assert span.messages == other.messages
    assert span.bits == other.total_bits
    assert span.queries == other.queries
    assert span.query_bits == other.query_bits
    assert span.failed_node_rounds == other.failed_node_rounds
