"""Property-based tests for the tournament schedules (hypothesis)."""

import math

from hypothesis import given, settings, strategies as st

from repro.core.schedules import (
    three_tournament_iteration_bound,
    three_tournament_schedule,
    two_tournament_iteration_bound,
    two_tournament_schedule,
)

phis = st.floats(min_value=0.0, max_value=1.0)
eps_values = st.floats(min_value=0.005, max_value=0.45)
sizes = st.integers(min_value=4, max_value=1 << 20)


@settings(max_examples=80, deadline=None)
@given(phi=phis, eps=eps_values)
def test_two_tournament_schedule_invariants(phi, eps):
    schedule = two_tournament_schedule(phi, eps)
    threshold = 0.5 - eps
    assert schedule.direction in ("min", "max")
    # masses strictly decrease and only the final mass crosses the threshold
    masses = [it.h_before for it in schedule.iterations]
    assert all(a > b for a, b in zip(masses, masses[1:]))
    for iteration in schedule.iterations[:-1]:
        assert iteration.delta == 1.0
        assert iteration.h_after > 0.0
    if schedule.iterations:
        assert schedule.iterations[-1].h_before > threshold
    # iteration count respects Lemma 2.2 (plus rounding slack)
    assert schedule.num_iterations <= two_tournament_iteration_bound(eps) + 1


@settings(max_examples=80, deadline=None)
@given(phi=phis, eps=eps_values)
def test_two_tournament_deltas_are_probabilities(phi, eps):
    schedule = two_tournament_schedule(phi, eps)
    for iteration in schedule.iterations:
        assert 0.0 < iteration.delta <= 1.0


@settings(max_examples=80, deadline=None)
@given(eps=eps_values, n=sizes)
def test_three_tournament_schedule_invariants(eps, n):
    schedule = three_tournament_schedule(eps, n)
    threshold = n ** (-1.0 / 3.0)
    masses = [it.l_before for it in schedule.iterations]
    assert all(a >= b for a, b in zip(masses, masses[1:]))
    for iteration in schedule.iterations:
        assert iteration.l_before > threshold
        expected = 3 * iteration.l_before ** 2 - 2 * iteration.l_before ** 3
        assert math.isclose(iteration.l_after, expected, rel_tol=1e-12)
    assert schedule.num_iterations <= three_tournament_iteration_bound(eps, n) + 1


@settings(max_examples=40, deadline=None)
@given(eps=eps_values)
def test_three_tournament_iterations_monotone_in_n(eps):
    small = three_tournament_schedule(eps, 64).num_iterations
    large = three_tournament_schedule(eps, 1 << 18).num_iterations
    assert large >= small
