"""Live /metrics endpoint and the CLI surfaces of the net backend.

The headline test scrapes the Prometheus endpoint *while* a gossip run is
in flight on the same event loop — the deployment story of ``serve
--listen`` and ``net --prom-port``, exercised in-process.
"""

from __future__ import annotations

import asyncio
import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.aggregates.push_sum import PushSumProtocol
from repro.gossip.metrics import NetworkMetrics
from repro.net import MetricsServer, arun_protocol, fetch_metrics
from repro.obs import render_prometheus

REPO_ROOT = Path(__file__).resolve().parents[1]
TIMEOUT_S = 30.0


def run(coro, timeout_s: float = TIMEOUT_S):
    return asyncio.run(asyncio.wait_for(coro, timeout_s))


def _cli_env() -> dict:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else src + os.pathsep + existing
    return env


def _cli(*argv: str, timeout_s: float = 120.0):
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *argv],
        capture_output=True,
        text=True,
        env=_cli_env(),
        cwd=str(REPO_ROOT),
        timeout=timeout_s,
    )


# -- the live endpoint -----------------------------------------------------


def test_metrics_endpoint_scrapes_a_run_in_flight():
    """Counters move between scrapes taken mid-run: the endpoint serves the
    live run, not a post-hoc snapshot."""
    metrics = NetworkMetrics()
    values = np.random.default_rng(0).normal(size=16)
    mid_run_bodies = []

    async def go():
        server = MetricsServer(
            lambda: render_prometheus(metrics={"net": metrics})
        )
        await server.start()
        runner = asyncio.create_task(
            arun_protocol(PushSumProtocol(values, rounds=40), rng=1,
                          metrics=metrics)
        )
        try:
            while not runner.done() and len(mid_run_bodies) < 3:
                mid_run_bodies.append(
                    await fetch_metrics(server.host, server.port)
                )
                await asyncio.sleep(0.005)
            await runner
        finally:
            await server.stop()
        return server.scrapes

    scrapes = run(go())
    assert scrapes == len(mid_run_bodies) >= 1
    for body in mid_run_bodies:
        assert "repro_metrics_messages" in body
    counts = [
        float(line.split()[-1])
        for body in mid_run_bodies
        for line in body.splitlines()
        if line.startswith("repro_metrics_messages{")
    ]
    # Monotone non-decreasing across scrapes; the run finished past them.
    assert counts == sorted(counts)
    assert metrics.messages == 16 * 40


def test_metrics_endpoint_rejects_unknown_paths():
    async def go():
        server = MetricsServer(lambda: "x 1\n")
        await server.start()
        try:
            with pytest.raises(ConnectionError, match="404"):
                await fetch_metrics(server.host, server.port, path="/nope")
            body = await fetch_metrics(server.host, server.port)
            assert body == "x 1\n"
        finally:
            await server.stop()

    run(go())


def test_metrics_server_renders_at_scrape_time():
    state = {"v": 1}

    async def go():
        server = MetricsServer(lambda: f"v {state['v']}\n")
        await server.start()
        try:
            first = await fetch_metrics(server.host, server.port)
            state["v"] = 2
            second = await fetch_metrics(server.host, server.port)
        finally:
            await server.stop()
        return first, second

    first, second = run(go())
    assert first == "v 1\n"
    assert second == "v 2\n"


# -- CLI surfaces ----------------------------------------------------------


def test_cli_net_compare_pins_parity():
    proc = _cli("net", "--n", "8", "--seed", "3", "--compare")
    assert proc.returncode == 0, proc.stderr
    assert "parity: ok" in proc.stdout


def test_cli_net_json_reports_the_run(tmp_path):
    proc = _cli(
        "net", "--n", "8", "--seed", "3", "--protocol", "extrema", "--json"
    )
    assert proc.returncode == 0, proc.stderr
    report = json.loads(proc.stdout)
    assert report["engine"] == "asyncio"
    assert report["protocol"].startswith("extrema")
    assert report["rounds"] >= 1
    assert report["rpc_retries"] == 0
    assert "rpc_p99_us" in report


def test_cli_net_serves_metrics_during_the_run():
    proc = _cli(
        "net", "--n", "8", "--seed", "3", "--prom-port", "0",
    )
    assert proc.returncode == 0, proc.stderr
    assert "metrics: http://127.0.0.1:" in proc.stdout


def test_cli_serve_listen_probe_scrapes_itself(tmp_path):
    values_file = tmp_path / "values.txt"
    np.savetxt(values_file, np.random.default_rng(0).normal(size=64))
    proc = _cli(
        "serve", "--input", str(values_file), "--eps", "0.1",
        "--phi", "0.5", "--listen", "--listen-probe",
    )
    assert proc.returncode == 0, proc.stderr
    assert "metrics: http://127.0.0.1:" in proc.stdout
    assert "probe: scraped" in proc.stdout


def test_cli_rejects_asyncio_as_an_ambient_engine():
    proc = _cli("query", "--input", "x", "--phi", "0.5", "--engine", "asyncio")
    assert proc.returncode != 0
    assert "invalid choice" in proc.stderr
