"""Tests for the workload generators."""

import numpy as np
import pytest

from repro.datasets.generators import (
    adversarial_shifted,
    distinct_uniform,
    gaussian_values,
    sensor_temperature_field,
    uniform_values,
    zipf_values,
)
from repro.datasets.workloads import WORKLOADS, make_workload
from repro.exceptions import ConfigurationError


def test_distinct_uniform_is_a_permutation():
    values = distinct_uniform(100, rng=1)
    assert sorted(values.tolist()) == list(range(1, 101))
    assert not np.array_equal(values, np.arange(1.0, 101.0))  # shuffled


def test_uniform_values_range():
    values = uniform_values(1000, low=5.0, high=6.0, rng=2)
    assert values.min() >= 5.0
    assert values.max() < 6.0
    with pytest.raises(ConfigurationError):
        uniform_values(10, low=1.0, high=1.0)


def test_gaussian_values_moments():
    values = gaussian_values(5000, mean=10.0, std=2.0, rng=3)
    assert abs(values.mean() - 10.0) < 0.2
    assert abs(values.std() - 2.0) < 0.2
    with pytest.raises(ConfigurationError):
        gaussian_values(10, std=0.0)


def test_zipf_values_heavy_tail():
    values = zipf_values(5000, exponent=1.5, rng=4)
    assert values.min() >= 1.0
    assert values.max() / np.median(values) > 10  # heavy tail
    with pytest.raises(ConfigurationError):
        zipf_values(10, exponent=1.0)


def test_adversarial_shifted_scenarios():
    a = adversarial_shifted(100, 0.05, scenario="a", rng=5)
    b = adversarial_shifted(100, 0.05, scenario="b", rng=5)
    assert sorted(a.tolist()) == list(range(1, 101))
    assert int(min(b)) == 1 + int(np.floor(2 * 0.05 * 100))
    with pytest.raises(ConfigurationError):
        adversarial_shifted(100, 0.05, scenario="c")


def test_sensor_field_has_hot_spots():
    readings = sensor_temperature_field(2000, hot_spot_fraction=0.05, rng=6)
    baseline = sensor_temperature_field(2000, hot_spot_fraction=0.0, rng=6)
    assert readings.max() > baseline.max() + 5.0
    with pytest.raises(ConfigurationError):
        sensor_temperature_field(100, hot_spot_fraction=1.5)


def test_workload_registry_covers_all_generators():
    assert set(WORKLOADS) == {
        "distinct",
        "uniform",
        "gaussian",
        "zipf",
        "adversarial",
        "sensor",
    }
    for name in WORKLOADS:
        kwargs = {"eps": 0.05} if name == "adversarial" else {}
        values = make_workload(name, 64, rng=7, **kwargs)
        assert values.shape == (64,)


def test_make_workload_unknown_name():
    with pytest.raises(ConfigurationError):
        make_workload("nope", 64)


def test_generators_are_deterministic_given_seed():
    assert np.array_equal(distinct_uniform(50, rng=9), distinct_uniform(50, rng=9))
    assert np.array_equal(zipf_values(50, rng=9), zipf_values(50, rng=9))


def test_minimum_size_validation():
    with pytest.raises(ConfigurationError):
        distinct_uniform(1)
