"""Determinism and ordering tests for the parallel multi-trial executor."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.approx_rounds import run as run_approx
from repro.experiments.runner import run_experiment, run_trials


def _draw_task(trial_index, rng):
    """Module-level so the process pool can pickle it."""
    return (trial_index, int(rng.integers(0, 1_000_000)))


def _failing_task(trial_index, rng):
    if trial_index == 2:
        raise RuntimeError("boom")
    return trial_index


def _engine_probe_task(trial_index, rng):
    from repro.gossip.engine import get_default_engine

    return get_default_engine()


def test_run_trials_is_deterministic_across_worker_counts():
    inline = run_trials(_draw_task, 8, seed=13, workers=1)
    pooled = run_trials(_draw_task, 8, seed=13, workers=4)
    assert inline == pooled


def test_run_trials_preserves_trial_order():
    results = run_trials(_draw_task, 6, seed=0, workers=3)
    assert [index for index, _ in results] == list(range(6))


def test_run_trials_gives_each_trial_an_independent_stream():
    draws = [value for _, value in run_trials(_draw_task, 10, seed=5)]
    assert len(set(draws)) > 1


def test_run_trials_propagates_worker_exceptions():
    with pytest.raises(RuntimeError, match="boom"):
        run_trials(_failing_task, 4, seed=0, workers=2)


def test_run_trials_rejects_negative_trials():
    with pytest.raises(ConfigurationError):
        run_trials(_draw_task, -1, seed=0)


def test_approx_rounds_rows_identical_for_any_worker_count():
    kwargs = dict(
        sizes=(64, 128), eps_values=(0.2,), phis=(0.5,), trials=2, seed=9
    )
    serial = run_approx(workers=1, **kwargs)
    parallel = run_approx(workers=4, **kwargs)
    assert serial == parallel


def test_run_experiment_forwards_workers_and_engine():
    kwargs = dict(sizes=[64], eps_values=(0.2,), phis=(0.5,), trials=2, seed=9)
    serial = run_experiment("approx-rounds", output="rows", workers=1, **kwargs)
    parallel = run_experiment(
        "approx-rounds", output="rows", workers=2, engine="vectorized", **kwargs
    )
    assert serial == parallel


def test_run_experiment_rejects_parallelism_without_support():
    with pytest.raises(ConfigurationError):
        run_experiment("tokens", output="rows", workers=4)


def test_engine_override_propagates_to_pool_workers():
    from repro.gossip.engine import get_default_engine, set_default_engine

    before = get_default_engine()
    set_default_engine("loop")
    try:
        seen = set(run_trials(_engine_probe_task, 4, seed=0, workers=2))
    finally:
        set_default_engine(before)
    assert seen == {"loop"}


def test_run_experiment_restores_default_engine():
    from repro.gossip.engine import get_default_engine

    before = get_default_engine()
    run_experiment(
        "approx-rounds", output="rows", engine="loop",
        sizes=[64], eps_values=(0.2,), phis=(0.5,), trials=1, seed=1,
    )
    assert get_default_engine() == before


# ---- shared-memory value arrays ---------------------------------------------


def _shared_sum_task(trial_index, rng, values=None, weights=None):
    """Module-level so the process pool can pickle it."""
    assert values is not None and weights is not None
    assert not values.flags.writeable  # read-only views on both paths
    return float(values[trial_index] * weights[trial_index]) + float(
        rng.integers(0, 1000)
    )


def _shared_mutation_task(trial_index, rng, values=None):
    values[0] = -1.0  # must raise: shared views are read-only
    return 0.0


def test_run_trials_shared_arrays_identical_inline_and_pooled():
    values = np.arange(16.0)
    weights = np.linspace(1.0, 2.0, 16)
    shared = {"values": values, "weights": weights}
    inline = run_trials(_shared_sum_task, 6, seed=4, shared=shared)
    pooled = run_trials(_shared_sum_task, 6, seed=4, workers=3, shared=shared)
    assert inline == pooled


def test_run_trials_shared_arrays_are_read_only():
    with pytest.raises(ValueError):
        run_trials(_shared_mutation_task, 2, seed=0, shared={"values": np.ones(4)})
    with pytest.raises(ValueError):
        run_trials(
            _shared_mutation_task, 2, seed=0, workers=2,
            shared={"values": np.ones(4)},
        )


def test_run_trials_shared_arrays_do_not_leak_segments():
    from multiprocessing import shared_memory

    values = np.arange(64.0)
    results = run_trials(
        _shared_sum_task, 4, seed=2, workers=2,
        shared={"values": values, "weights": values},
    )
    assert len(results) == 4
    # the parent unlinked its segments; re-attaching by a fresh name works,
    # proving the namespace is usable (a leak would eventually exhaust it)
    probe = shared_memory.SharedMemory(create=True, size=8)
    probe.close()
    probe.unlink()


def test_run_trials_shared_empty_mapping_matches_plain_path():
    plain = run_trials(_draw_task, 5, seed=8, workers=2)
    with_empty = run_trials(_draw_task, 5, seed=8, workers=2, shared={})
    assert plain == with_empty


def _crashing_shared_task(trial_index, rng, values=None):
    """Module-level so the process pool can pickle it."""
    if trial_index == 1:
        raise RuntimeError("shared boom")
    return float(values[trial_index])


def _dying_shared_task(trial_index, rng, values=None):
    import os

    os._exit(3)  # hard worker death -> BrokenProcessPool in the parent


def test_run_trials_failing_worker_does_not_leak_segments(monkeypatch):
    """Segments must be registered for cleanup at creation time, so a task
    exception (or any failure after creation) cannot leak /dev/shm."""
    from multiprocessing import shared_memory

    from repro.experiments import runner as runner_module

    created = []
    real = shared_memory.SharedMemory

    class Recording(real):
        def __init__(self, *args, **kwargs):
            super().__init__(*args, **kwargs)
            if kwargs.get("create"):
                created.append(self.name)

    monkeypatch.setattr(runner_module.shared_memory, "SharedMemory", Recording)
    values = np.arange(8.0)
    with pytest.raises(RuntimeError, match="shared boom"):
        run_trials(
            _crashing_shared_task, 4, seed=0, workers=2,
            shared={"values": values},
        )
    assert created
    for name in created:
        with pytest.raises(FileNotFoundError):
            real(name=name)  # unlinked: re-attach must fail
    assert not runner_module._PARENT_SEGMENTS


def test_run_trials_dead_worker_does_not_leak_segments(monkeypatch):
    from concurrent.futures.process import BrokenProcessPool
    from multiprocessing import shared_memory

    from repro.experiments import runner as runner_module

    created = []
    real = shared_memory.SharedMemory

    class Recording(real):
        def __init__(self, *args, **kwargs):
            super().__init__(*args, **kwargs)
            if kwargs.get("create"):
                created.append(self.name)

    monkeypatch.setattr(runner_module.shared_memory, "SharedMemory", Recording)
    with pytest.raises(BrokenProcessPool):
        run_trials(
            _dying_shared_task, 2, seed=0, workers=2,
            shared={"values": np.arange(4.0)},
        )
    assert created
    for name in created:
        with pytest.raises(FileNotFoundError):
            real(name=name)
    assert not runner_module._PARENT_SEGMENTS


def test_parent_segment_registry_survives_double_release():
    from repro.experiments.runner import _PARENT_SEGMENTS, _release_segment
    from multiprocessing import shared_memory

    segment = shared_memory.SharedMemory(create=True, size=8)
    _PARENT_SEGMENTS[segment.name] = segment
    _release_segment(segment)
    assert segment.name not in _PARENT_SEGMENTS
    _release_segment(segment)  # idempotent: already unlinked
